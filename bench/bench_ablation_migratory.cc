/**
 * @file
 * Ablation — the migratory-sharing optimization (Section 4.2).
 *
 * The paper implements the optimization in *all* compared protocols; a
 * dirty exclusive owner answering a read hands over write permission,
 * which converts each migratory lock/counter handoff from two
 * transactions (read miss + upgrade miss) into one. This bench runs
 * the OLTP workload (migratory-heavy) with the optimization on and
 * off, for every protocol, and reports runtime and misses.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

int
main()
{
    bench::header("Ablation: migratory-sharing optimization "
                  "(OLTP, 16 procs)");
    std::printf("  %-10s %-9s %14s %10s %14s\n", "protocol",
                "migratory", "cycles/txn", "misses", "miss lat (ns)");

    struct P
    {
        ProtocolKind proto;
        const char *topo;
    };
    const P protos[] = {
        {ProtocolKind::tokenB, "torus"},
        {ProtocolKind::snooping, "tree"},
        {ProtocolKind::directory, "torus"},
        {ProtocolKind::hammer, "torus"},
    };

    for (const P &p : protos) {
        double with_opt = 0;
        for (bool opt : {true, false}) {
            SystemConfig cfg =
                bench::paperConfig(p.proto, p.topo, "oltp");
            cfg.proto.migratoryOpt = opt;
            const ExperimentResult r =
                runExperiment(cfg, bench::benchSeeds(),
                              protocolName(p.proto));
            if (opt)
                with_opt = r.cyclesPerTransaction;
            std::printf("  %-10s %-9s %14.1f %10llu %14.0f",
                        protocolName(p.proto), opt ? "on" : "off",
                        r.cyclesPerTransaction,
                        static_cast<unsigned long long>(r.misses),
                        r.avgMissLatencyNs);
            if (!opt && with_opt > 0) {
                std::printf("   (opt speeds up %.1f%%)",
                            100.0 * (r.cyclesPerTransaction -
                                     with_opt) /
                                r.cyclesPerTransaction);
            }
            std::printf("\n");
        }
    }
    std::printf("\n  (expected: disabling the optimization increases "
                "misses — every migratory handoff\n   costs an extra "
                "upgrade transaction — and all protocols lose "
                "comparably)\n");
    return 0;
}
