/**
 * @file
 * Ablation — TokenB's reissue/starvation policy (Sections 3.2, 4.2).
 *
 * Compares, under a contended hot-set microbenchmark where races are
 * common:
 *  - the paper's policy (reissue ~4 times at 2x the average miss
 *    latency with randomized exponential backoff, then a persistent
 *    request);
 *  - aggressive reissue (1x multiple, no room for responses to land);
 *  - conservative reissue (8x multiple);
 *  - no reissues at all (first timeout escalates to a persistent
 *    request);
 *  - the null performance protocol (persistent requests only) as the
 *    correctness-without-performance floor.
 *
 * The point of the figure: the performance protocol's policy affects
 * only performance — every variant completes every miss.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

namespace {

ExperimentResult
run(const char *label, ProtocolKind proto, double multiple,
    int max_reissues, bool reissue_enabled, std::uint64_t ops)
{
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = proto;
    cfg.workload = "uniform";
    cfg.workload.uniformBlocks = 64;   // hot: races are common
    cfg.workload.storeFraction = 0.5;
    cfg.opsPerProcessor = ops;
    cfg.proto.reissueLatencyMultiple = multiple;
    cfg.proto.maxReissues = max_reissues;
    cfg.proto.reissueEnabled = reissue_enabled;
    cfg.seed = 13;
    return runExperiment(cfg, bench::benchSeeds(), label);
}

} // namespace

int
main()
{
    bench::header("Ablation: reissue & persistent-request policy "
                  "(hot 64-block set, 50% stores, 16 procs)");
    std::printf("  %-26s %12s %10s %10s %11s\n", "policy",
                "cycles/txn", "reissued%", "persist%",
                "miss lat ns");

    struct Policy
    {
        const char *label;
        ProtocolKind proto;
        double multiple;
        int max_reissues;
        bool enabled;
    };
    const Policy policies[] = {
        {"paper (2x avg, 4 reissues)", ProtocolKind::tokenB, 2.0, 4,
         true},
        {"aggressive (1x avg)", ProtocolKind::tokenB, 1.0, 4, true},
        {"conservative (8x avg)", ProtocolKind::tokenB, 8.0, 4, true},
        {"no reissues (persist only)", ProtocolKind::tokenB, 2.0, 0,
         false},
        {"null protocol (TokenNull)", ProtocolKind::tokenNull, 2.0, 0,
         false},
    };

    const std::uint64_t base_ops = bench::benchOps() / 2;
    for (const Policy &p : policies) {
        // The null protocol resolves every miss through the arbiter;
        // keep its op count modest so the bench stays quick.
        const std::uint64_t ops =
            p.proto == ProtocolKind::tokenNull ? base_ops / 20
                                               : base_ops;
        const ExperimentResult r =
            run(p.label, p.proto, p.multiple, p.max_reissues,
                p.enabled, ops);
        std::printf("  %-26s %12.1f %9.2f%% %9.2f%% %11.0f\n",
                    p.label, r.cyclesPerTransaction,
                    r.pctReissuedOnce + r.pctReissuedMore,
                    r.pctPersistent, r.avgMissLatencyNs);
    }
    std::printf("\n  (every policy is *correct* — the substrate "
                "guarantees safety and liveness;\n   the policy only "
                "moves the latency/traffic point, which is the "
                "decoupling claim)\n");
    return 0;
}
