/**
 * @file
 * Ablation — token count T and the Section-7 performance protocols.
 *
 * Part 1: the storage encoding cost of Section 3.1 (2 + ceil(log2 T)
 * bits per block) and the performance sensitivity to T (T = N is the
 * minimum; larger T lets more readers hold tokens simultaneously
 * before the owner runs out, at slightly higher storage cost).
 *
 * Part 2: the Section-7 traffic/latency spectrum on one workload —
 * TokenB (broadcast), TokenM (destination-set prediction), TokenD
 * (home-redirected, directory-like traffic) — all on the unchanged
 * correctness substrate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/token_state.hh"

using namespace tokensim;

int
main()
{
    bench::header("Token storage encoding (Section 3.1)");
    std::printf("  %6s %6s %18s\n", "T", "bits", "overhead (64B blk)");
    for (int t : {16, 17, 32, 64, 128}) {
        TokenCoding c(t);
        std::printf("  %6d %6d %17.2f%%\n", t, c.bits(),
                    100.0 * c.overhead(64));
    }
    std::printf("  (paper: 64 tokens with 64-byte blocks adds one "
                "byte, 1.6%% overhead)\n");

    // Both sweeps below go through the ParallelRunner in one shot.
    const int tokenCounts[] = {16, 32, 64};
    const ProtocolKind spectrum[] = {ProtocolKind::tokenB,
                                     ProtocolKind::tokenM,
                                     ProtocolKind::tokenA,
                                     ProtocolKind::tokenD};
    std::vector<ExperimentSpec> specs;
    for (int t : tokenCounts) {
        SystemConfig cfg =
            bench::paperConfig(ProtocolKind::tokenB, "torus", "oltp");
        cfg.proto.tokensPerBlock = t;
        specs.push_back(ExperimentSpec{cfg, bench::benchSeeds(), "T"});
    }
    for (ProtocolKind proto : spectrum) {
        SystemConfig cfg = bench::paperConfig(proto, "torus", "oltp");
        specs.push_back(ExperimentSpec{cfg, bench::benchSeeds(),
                                       protocolName(proto)});
    }
    const std::vector<ExperimentResult> results = bench::runAll(specs);

    bench::header("Sensitivity to tokens per block "
                  "(TokenB, OLTP, 16 procs)");
    std::printf("  %8s %14s %10s %12s\n", "T", "cycles/txn", "misses",
                "reissued%");
    std::size_t at = 0;
    for (int t : tokenCounts) {
        const ExperimentResult &r = results[at++];
        std::printf("  %8d %14.1f %10llu %11.2f%%\n", t,
                    r.cyclesPerTransaction,
                    static_cast<unsigned long long>(r.misses),
                    r.pctReissuedOnce + r.pctReissuedMore);
    }

    bench::header("Section 7 performance-protocol spectrum "
                  "(OLTP, 16 procs, torus)");
    std::printf("  %-8s %14s %14s %14s %12s\n", "proto", "cycles/txn",
                "req bytes/miss", "tot bytes/miss", "persist%");
    for (ProtocolKind proto : spectrum) {
        const ExperimentResult &r = results[at++];
        const double req =
            r.bytesPerMissByClass[static_cast<int>(
                MsgClass::request)] +
            r.bytesPerMissByClass[static_cast<int>(
                MsgClass::reissue)];
        std::printf("  %-8s %14.1f %14.1f %14.1f %11.2f%%\n",
                    protocolName(proto), r.cyclesPerTransaction, req,
                    r.bytesPerMiss, r.pctPersistent);
    }
    std::printf("\n  (expected: TokenB has the lowest latency; TokenM "
                "cuts request traffic via destination-set\n   "
                "prediction at a modest latency cost; TokenD adds the "
                "home indirection for directory-like\n   behavior — "
                "all three share the unchanged correctness "
                "substrate)\n");
    return 0;
}
