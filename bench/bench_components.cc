/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue throughput, cache array operations, topology routing and
 * multicast-tree construction, network message delivery, Zipf
 * sampling, and an end-to-end simulated-ops-per-second figure for the
 * whole stack. These guard the simulator's own performance (the
 * paper-scale benches simulate hundreds of thousands of misses).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "harness/system.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "workload/commercial.hh"

namespace tokensim {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>((i * 37) % 500),
                        [&sink]() { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

struct BenchLine : CacheLineBase
{
    std::uint64_t payload = 0;
};

void
BM_CacheArrayTouch(benchmark::State &state)
{
    CacheArray<BenchLine> cache(CacheParams{4 * 1024 * 1024, 4, 64,
                                            nsToTicks(6)});
    CacheArray<BenchLine>::Victim v;
    for (Addr a = 0; a < 4096 * 64; a += 64)
        cache.allocate(a, &v);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.touch(a));
        a = (a + 64) % (4096 * 64);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayTouch);

void
BM_TorusRouteLookup(benchmark::State &state)
{
    std::unique_ptr<Topology> topo(makeTopology("torus", 64));
    NodeId s = 0, d = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(&topo->route(s, d));
        s = (s + 7) % 64;
        d = (d + 13) % 64;
        if (s == d)
            d = (d + 1) % 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TorusRouteLookup);

void
BM_MulticastTreeConstruction(benchmark::State &state)
{
    std::unique_ptr<Topology> topo(makeTopology("torus", 64));
    std::vector<NodeId> dests{3, 17, 30, 44, 58};
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo->multicastTree(0, dests));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulticastTreeConstruction);

class NullSink : public NetworkEndpoint
{
  public:
    void deliver(const Message &) override {}
};

void
BM_NetworkBroadcast(benchmark::State &state)
{
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 16)),
                NetworkParams{});
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < 16; ++i) {
        sinks.push_back(std::make_unique<NullSink>());
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.type = MsgType::getS;
        m.cls = MsgClass::request;
        m.src = src;
        m.addr = 0x40;
        net.broadcast(m);
        eq.run();
        src = (src + 1) % 16;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkBroadcast);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(1 << 16, 0.65);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_EndToEndSimulatedOps(benchmark::State &state)
{
    // Whole-stack throughput: simulated memory operations per second
    // of wall-clock time, TokenB on the 16-node torus with OLTP.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = "torus";
        cfg.protocol = ProtocolKind::tokenB;
        cfg.workload = "oltp";
        cfg.opsPerProcessor = 500;
        System sys(cfg);
        sys.run();
        benchmark::DoNotOptimize(sys.results().runtimeTicks);
    }
    state.SetItemsProcessed(state.iterations() * 16 * 500);
}
BENCHMARK(BM_EndToEndSimulatedOps)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace tokensim
