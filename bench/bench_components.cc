/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue throughput, cache array operations, topology routing and
 * multicast-tree construction, network message delivery, Zipf
 * sampling, and an end-to-end simulated-ops-per-second figure for the
 * whole stack. These guard the simulator's own performance (the
 * paper-scale benches simulate hundreds of thousands of misses).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "harness/snapshot.hh"
#include "harness/system.hh"
#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "workload/commercial.hh"
#include "workload/trace.hh"
#include "workload/tpcc.hh"
#include "workload/ycsb.hh"

namespace tokensim {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>((i * 37) % 500),
                        [&sink]() { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

struct BenchLine : CacheLineBase
{
    std::uint64_t payload = 0;
};

void
BM_CacheArrayTouch(benchmark::State &state)
{
    CacheArray<BenchLine> cache(CacheParams{4 * 1024 * 1024, 4, 64,
                                            nsToTicks(6)});
    CacheArray<BenchLine>::Victim v;
    for (Addr a = 0; a < 4096 * 64; a += 64)
        cache.allocate(a, &v);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.touch(a));
        a = (a + 64) % (4096 * 64);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayTouch);

void
BM_TorusRouteLookup(benchmark::State &state)
{
    std::unique_ptr<Topology> topo(makeTopology("torus", 64));
    NodeId s = 0, d = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(&topo->route(s, d));
        s = (s + 7) % 64;
        d = (d + 13) % 64;
        if (s == d)
            d = (d + 1) % 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TorusRouteLookup);

void
BM_MulticastTreeConstruction(benchmark::State &state)
{
    std::unique_ptr<Topology> topo(makeTopology("torus", 64));
    std::vector<NodeId> dests{3, 17, 30, 44, 58};
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo->multicastTree(0, dests));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulticastTreeConstruction);

class NullSink : public NetworkEndpoint
{
  public:
    void deliver(const Message &) override {}
};

void
BM_NetworkBroadcast(benchmark::State &state)
{
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 16)),
                NetworkParams{});
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < 16; ++i) {
        sinks.push_back(std::make_unique<NullSink>());
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.type = MsgType::getS;
        m.cls = MsgClass::request;
        m.src = src;
        m.addr = 0x40;
        net.broadcast(m);
        eq.run();
        src = (src + 1) % 16;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkBroadcast);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(1 << 16, 0.65);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_YcsbGenerate(benchmark::State &state)
{
    // Per-op cost of the YCSB generator (scrambled-Zipf key pick +
    // read/update/scan mix). Sequencers pull one op per completed
    // access, so generator speed bounds functional fast-forward.
    AddressMap map;
    YcsbWorkload gen(0, 8, map, YcsbParams{}, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next().addr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YcsbGenerate);

void
BM_TpccGenerate(benchmark::State &state)
{
    // Per-op cost of the TPC-C-like generator (warehouse pick +
    // transaction build amortized over its ops).
    AddressMap map;
    TpccWorkload gen(0, 8, map, TpccParams{}, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next().addr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpccGenerate);

void
BM_EventQueueSteadyState(benchmark::State &state)
{
    // One long-lived queue: after warmup, scheduling and dispatch run
    // entirely out of recycled bucket storage (the allocation-free
    // steady state the Event record + bucket arena are built for).
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            eq.scheduleIn(static_cast<Tick>((i * 37) % 500),
                          [&sink]() { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSteadyState);

void
BM_CacheArrayAllocate(benchmark::State &state)
{
    // Single-pass allocate with steady-state eviction: fill every
    // way, then cycle a 2x-capacity footprint so each allocate must
    // evict the set's LRU way (which is also how the cycled address
    // is guaranteed absent again by the time it comes back around).
    CacheArray<BenchLine> cache(CacheParams{4 * 1024 * 1024, 4, 64,
                                            nsToTicks(6)});
    CacheArray<BenchLine>::Victim v;
    const Addr capacity = 4 * 16384 * 64;
    const Addr span = 2 * capacity;
    for (Addr w = 0; w < capacity; w += 64)
        cache.allocate(w, &v);
    Addr a = capacity;
    std::uint64_t evictions = 0;
    for (auto _ : state) {
        v.valid = false;
        benchmark::DoNotOptimize(cache.allocate(a, &v));
        evictions += v.valid;
        a = (a + 64) % span;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["evict_frac"] =
        state.iterations()
            ? static_cast<double>(evictions) /
                  static_cast<double>(state.iterations())
            : 0.0;
}
BENCHMARK(BM_CacheArrayAllocate);

void
BM_BlockMapUpsertFindErase(benchmark::State &state)
{
    // The per-block state table pattern every protocol runs per miss:
    // insert a transaction, look it up a few times, erase it.
    BlockMap<std::uint64_t> map;
    Addr a = 0;
    for (auto _ : state) {
        map[a] = a;
        benchmark::DoNotOptimize(map.find(a) != map.end());
        benchmark::DoNotOptimize(map.count(a));
        map.erase(a);
        a = (a + 64) % (1 << 22);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockMapUpsertFindErase);

void
BM_NetworkUnicastSteadyState(benchmark::State &state)
{
    // Pooled-transit unicast path: route, hop, batch, deliver — all
    // out of recycled slots after warmup.
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 16)),
                NetworkParams{});
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < 16; ++i) {
        sinks.push_back(std::make_unique<NullSink>());
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.type = MsgType::data;
        m.cls = MsgClass::data;
        m.hasData = true;
        m.src = src;
        m.dest = static_cast<NodeId>((src + 5) % 16);
        m.addr = 0x40;
        net.unicast(m);
        eq.run();
        src = (src + 1) % 16;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkUnicastSteadyState);

void
BM_SystemFreshConstruct(benchmark::State &state)
{
    // Per-shard cost of building a full 16-node System from scratch —
    // the cost the reusable-System path amortizes away.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "uniform";
    cfg.opsPerProcessor = 50;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        std::unique_ptr<System> sys;
        benchmark::DoNotOptimize(
            runOnceReusing(sys, cfg, seed));
        ++seed;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemFreshConstruct);

void
BM_SystemResetReuse(benchmark::State &state)
{
    // Same work with one reused System: System::reset wipes state in
    // place instead of reallocating caches/queues/network.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "uniform";
    cfg.opsPerProcessor = 50;
    std::unique_ptr<System> sys;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runOnceReusing(sys, cfg, seed, true));
        ++seed;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemResetReuse);

void
BM_TimerScheduleCancel(benchmark::State &state)
{
    // The reissue-timeout shape: arm a pooled timer per in-flight
    // miss, cancel most of them (misses usually complete first), let
    // the rest fire. Steady state runs entirely out of the recycled
    // slot pool; the superseded proxies drain as generation checks.
    EventQueue eq;
    std::vector<EventQueue::Timer> timers(64);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < timers.size(); ++i) {
            timers[i].scheduleIn(eq,
                                 static_cast<Tick>(50 + (i % 7)),
                                 [&fired]() { ++fired; });
        }
        for (std::size_t i = 0; i < timers.size(); ++i) {
            if (i % 8 != 0)
                timers[i].cancel();
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(timers.size()));
}
BENCHMARK(BM_TimerScheduleCancel);

void
BM_MultiHopUnicast(benchmark::State &state)
{
    // Cut-through routing: a far (3-4 hop) unicast on the 4x4 torus
    // costs one path walk and one delivery event, regardless of hop
    // count (this was one event per hop before).
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 16)),
                NetworkParams{});
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < 16; ++i) {
        sinks.push_back(std::make_unique<NullSink>());
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.type = MsgType::data;
        m.cls = MsgClass::data;
        m.hasData = true;
        m.src = src;
        m.dest = static_cast<NodeId>((src + 10) % 16);   // 4 hops
        m.addr = 0x40;
        net.unicast(m);
        eq.run();
        src = (src + 1) % 16;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiHopUnicast);

void
BM_EventQueueFarHorizon(benchmark::State &state)
{
    // Far-future scheduling exercises the overflow heap and the
    // migrate-on-advance path of the bucketed queue (reissue timers
    // land thousands of ticks out).
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>((i * 9173) % 100000),
                        [&sink]() { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueFarHorizon);

/**
 * In-memory record → parse round trip shared by the trace benches:
 * one OLTP generator per node, a fixed op count each.
 */
std::shared_ptr<const TraceData>
benchTrace(int nodes, int ops_per_node)
{
    TraceHeader hdr;
    hdr.numNodes = static_cast<std::uint32_t>(nodes);
    hdr.seed = 3;
    hdr.provenance = "bench";
    TraceWriter w(std::move(hdr));
    AddressMap map;
    for (NodeId n = 0; n < nodes; ++n) {
        CommercialWorkload gen(n, nodes, map,
                               CommercialParams::oltp(), 100 + n);
        for (int i = 0; i < ops_per_node; ++i)
            w.append(n, gen.next());
    }
    const std::string buf = w.serialize();
    return std::make_shared<const TraceData>(
        TraceData::parse(buf.data(), buf.size()));
}

void
BM_TraceReplay(benchmark::State &state)
{
    // Replay decode throughput: ops/s pulled from a TraceWorkload —
    // the per-op cost trace-driven experiments pay instead of running
    // a generator. Decode (flags byte + zigzag varint) must stay well
    // above generator speed so replay never becomes the bottleneck.
    const int nodes = 8, ops = 4000;
    const auto trace = benchTrace(nodes, ops);
    std::vector<TraceWorkload> streams;
    for (NodeId n = 0; n < nodes; ++n)
        streams.emplace_back(trace, n);
    for (auto _ : state) {
        std::uint64_t sink = 0;
        for (auto &s : streams) {
            for (int i = 0; i < ops; ++i)
                sink += s.next().addr;
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * nodes * ops);
}
BENCHMARK(BM_TraceReplay);

void
BM_TraceRecord(benchmark::State &state)
{
    // Recording overhead: generator pull + varint append per op.
    const int nodes = 8, ops = 4000;
    AddressMap map;
    for (auto _ : state) {
        TraceHeader hdr;
        hdr.numNodes = nodes;
        hdr.provenance = "bench";
        TraceWriter w(std::move(hdr));
        for (NodeId n = 0; n < nodes; ++n) {
            CommercialWorkload gen(n, nodes, map,
                                   CommercialParams::oltp(),
                                   100 + n);
            for (int i = 0; i < ops; ++i)
                w.append(n, gen.next());
        }
        benchmark::DoNotOptimize(w.opsForNode(0));
    }
    state.SetItemsProcessed(state.iterations() * nodes * ops);
}
BENCHMARK(BM_TraceRecord);

/**
 * The full experiment config matrix — protocol x topology x processor
 * count x token count — that the runner benchmarks below shard. Small
 * per-shard op counts keep one pass in benchmark territory; scale via
 * TOKENSIM_BENCH_OPS-style env in the paper-figure benches instead.
 */
std::vector<ExperimentSpec>
runnerMatrix()
{
    std::vector<ExperimentSpec> specs;
    const ProtocolKind protos[] = {
        ProtocolKind::tokenB,  ProtocolKind::tokenD,
        ProtocolKind::tokenM,  ProtocolKind::snooping,
        ProtocolKind::directory, ProtocolKind::hammer,
    };
    for (ProtocolKind proto : protos) {
        for (const char *topo : {"torus", "tree"}) {
            // Traditional snooping needs the tree's total order.
            if (proto == ProtocolKind::snooping &&
                std::strcmp(topo, "torus") == 0)
                continue;
            for (int nodes : {4, 16}) {
                const int tokenCounts[] = {0, 2 * nodes};
                const int numTokenCounts =
                    isTokenProtocol(proto) ? 2 : 1;
                for (int ti = 0; ti < numTokenCounts; ++ti) {
                    SystemConfig cfg;
                    cfg.numNodes = nodes;
                    cfg.topology = topo;
                    cfg.protocol = proto;
                    cfg.workload = "uniform";
                    cfg.workload.uniformBlocks =
                        64 * static_cast<std::uint64_t>(nodes);
                    cfg.proto.tokensPerBlock = tokenCounts[ti];
                    cfg.opsPerProcessor = 400;
                    cfg.seed = 13;
                    specs.push_back(ExperimentSpec{
                        cfg, 1,
                        std::string(protocolName(proto)) + "/" + topo});
                }
            }
        }
    }
    return specs;
}

/** Serial reference: the same matrix through runExperiment(). */
const std::vector<ExperimentResult> &
serialReference()
{
    static const std::vector<ExperimentResult> ref = []() {
        std::vector<ExperimentResult> out;
        for (const ExperimentSpec &s : runnerMatrix())
            out.push_back(runExperiment(s.cfg, s.seeds, s.label));
        return out;
    }();
    return ref;
}

void
BM_RunnerMatrixSerial(benchmark::State &state)
{
    const std::vector<ExperimentSpec> specs = runnerMatrix();
    for (auto _ : state) {
        ParallelRunner runner(ParallelRunnerOptions{1});
        benchmark::DoNotOptimize(runner.run(specs));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_RunnerMatrixSerial)->Unit(benchmark::kMillisecond);

void
BM_RunnerMatrixParallel(benchmark::State &state)
{
    const std::vector<ExperimentSpec> specs = runnerMatrix();
    ParallelRunner runner;   // TOKENSIM_THREADS or all cores

    // Correctness gate, checked once: parallel sharding must produce
    // stats bit-identical to the serial runExperiment() loop.
    static bool verified = false;
    if (!verified) {
        const std::vector<ExperimentResult> par = runner.run(specs);
        const std::vector<ExperimentResult> &ser = serialReference();
        for (std::size_t i = 0; i < par.size(); ++i) {
            if (!identicalResults(par[i], ser[i])) {
                state.SkipWithError(
                    ("parallel/serial stats diverge at spec " +
                     std::to_string(i) + " (" + par[i].label + ")")
                        .c_str());
                return;
            }
        }
        verified = true;
    }

    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(specs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(specs.size()));
    state.counters["threads"] =
        static_cast<double>(runner.threads());
}
BENCHMARK(BM_RunnerMatrixParallel)->Unit(benchmark::kMillisecond);

void
BM_FastForwardOpRate(benchmark::State &state)
{
    // Functional fast-forward throughput on the same 16-node TokenB +
    // OLTP stack as BM_EndToEndSimulatedOps: the ratio of the two
    // items/s figures is the sampled-simulation speedup on the
    // fast-forwarded fraction (the SMARTS acceptance bar is > 50x).
    // One long-lived System: the generators are infinite, so repeated
    // fast-forwards run in the cache-warm steady state a sampled
    // sweep's spans actually see.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "oltp";
    System sys(cfg);
    for (auto _ : state) {
        sys.fastForward(500);
        benchmark::DoNotOptimize(sys.sequencer(0).completedOps());
    }
    state.SetItemsProcessed(state.iterations() * 16 * 500);
}
BENCHMARK(BM_FastForwardOpRate);

void
BM_SnapshotSave(benchmark::State &state)
{
    // Warm-state snapshot encode throughput. The producer stays
    // fast-forward-only (saving never mutates it), so one setup warm
    // of 20k ops/node serves every iteration; bytes/s is the figure
    // that matters — a sweep pays one save per warmed workload.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "oltp";
    System sys(cfg);
    sys.fastForward(20000);
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string snap = saveWarmSnapshot(sys);
        bytes = snap.size();
        benchmark::DoNotOptimize(snap.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
    state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SnapshotSave);

void
BM_SnapshotRestore(benchmark::State &state)
{
    // Decode + validate + state-restore throughput into a reused
    // System — the per-design-point cost a snapshot-warmed sweep pays
    // instead of re-running the functional warmup.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "oltp";
    System producer(cfg);
    producer.fastForward(20000);
    const std::string snap = saveWarmSnapshot(producer);
    System sys(cfg);
    for (auto _ : state) {
        sys.reset(cfg);
        benchmark::DoNotOptimize(loadWarmSnapshot(sys, snap));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(snap.size()));
}
BENCHMARK(BM_SnapshotRestore);

void
BM_EndToEndSimulatedOps(benchmark::State &state)
{
    // Whole-stack throughput: simulated memory operations per second
    // of wall-clock time, TokenB on the 16-node torus with OLTP.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = "torus";
        cfg.protocol = ProtocolKind::tokenB;
        cfg.workload = "oltp";
        cfg.opsPerProcessor = 500;
        System sys(cfg);
        sys.run();
        benchmark::DoNotOptimize(sys.results().runtimeTicks());
    }
    state.SetItemsProcessed(state.iterations() * 16 * 500);
}
BENCHMARK(BM_EndToEndSimulatedOps)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace tokensim
