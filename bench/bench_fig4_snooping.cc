/**
 * @file
 * Figure 4 — Snooping vs. TokenB: runtime (4a) and traffic (4b).
 *
 * Runtime bars per workload: TokenB on the ordered tree, Snooping on
 * the tree, TokenB on the unordered torus (snooping on the torus is
 * not applicable — it needs the total order), each with 3.2 GB/s links
 * and with unlimited bandwidth. Normalized to TokenB-tree (limited).
 *
 * Paper shape:
 *  - on the same tree, Snooping is slightly (1-5%) faster than TokenB
 *    (reissues cost a little);
 *  - TokenB on the torus beats Snooping on the tree by 15-28%
 *    (unlimited bandwidth) / 26-65% (limited), because the torus has
 *    lower latency and no root bottleneck;
 *  - traffic per miss is approximately equal for both on the tree.
 *
 * Set TOKENSIM_WORKERS=N to shard the sweep across N worker processes
 * (DistRunner) instead of threads; the figure is bit-identical.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

int
main()
{
    const char *workloads[] = {"apache", "oltp", "specjbb"};
    const int seeds = bench::benchSeeds();

    struct Point
    {
        const char *label;
        ProtocolKind proto;
        const char *topo;
        bool unlimited;
    };
    const Point points[] = {
        {"TokenB - tree", ProtocolKind::tokenB, "tree", false},
        {"TokenB - tree (inf bw)", ProtocolKind::tokenB, "tree",
         true},
        {"Snooping - tree", ProtocolKind::snooping, "tree", false},
        {"Snooping - tree (inf bw)", ProtocolKind::snooping,
         "tree", true},
        {"TokenB - torus", ProtocolKind::tokenB, "torus", false},
        {"TokenB - torus (inf bw)", ProtocolKind::tokenB, "torus",
         true},
    };
    constexpr std::size_t numPoints = sizeof(points) / sizeof(points[0]);

    // Build the whole figure — 4a's runtime bars and 4b's traffic
    // table — as one spec list and sweep it in a single parallel
    // invocation.
    std::vector<ExperimentSpec> specs;
    for (const char *w : workloads) {
        for (const Point &p : points) {
            SystemConfig cfg = bench::paperConfig(p.proto, p.topo, w);
            cfg.net.unlimitedBandwidth = p.unlimited;
            specs.push_back(ExperimentSpec{cfg, seeds, p.label});
        }
    }
    const std::size_t trafficBase = specs.size();
    for (const char *w : workloads) {
        for (ProtocolKind proto : {ProtocolKind::tokenB,
                                   ProtocolKind::snooping}) {
            SystemConfig cfg = bench::paperConfig(proto, "tree", w);
            specs.push_back(ExperimentSpec{cfg, seeds, w});
        }
    }
    const std::vector<ExperimentResult> results = bench::runAll(specs);

    bench::header("Figure 4a: runtime, snooping v. token coherence "
                  "(normalized cycles/transaction; lower is better)");

    std::size_t at = 0;
    for (const char *w : workloads) {
        std::printf("\n%s:\n", w);
        double norm = 0;
        for (std::size_t i = 0; i < numPoints; ++i) {
            const Point &p = points[i];
            const ExperimentResult &r = results[at++];
            if (norm == 0)
                norm = r.cyclesPerTransaction;
            bench::bar(p.label, r.cyclesPerTransaction, norm,
                       strformat("(%.1f cyc/txn +/- %.1f, "
                                 "%.1f evt/op)",
                                 r.cyclesPerTransaction,
                                 r.cyclesPerTransactionStddev,
                                 r.eventsPerOp));
        }
        std::printf("  %-28s %6s |  (torus provides no total order)\n",
                    "Snooping - torus", "n/a");
    }

    bench::header("Figure 4b: traffic, snooping v. token coherence "
                  "(bytes per miss on the tree, by category)");
    std::printf("  %-10s %-10s %9s %9s %9s %9s %9s\n", "workload",
                "protocol", "req", "reissue+p", "nonData", "data",
                "total");
    at = trafficBase;
    for (const char *w : workloads) {
        for (ProtocolKind proto : {ProtocolKind::tokenB,
                                   ProtocolKind::snooping}) {
            const ExperimentResult &r = results[at++];
            const double reissue_persistent =
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::reissue)] +
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::persistent)];
            std::printf(
                "  %-10s %-10s %9.1f %9.1f %9.1f %9.1f %9.1f\n", w,
                protocolName(proto),
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::request)],
                reissue_persistent,
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::nonData)],
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::data)],
                r.bytesPerMiss);
        }
    }
    std::printf("\n  (paper: both protocols use approximately the "
                "same bandwidth on the tree)\n");
    return 0;
}
