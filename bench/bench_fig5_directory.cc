/**
 * @file
 * Figure 5 — Directory and Hammer vs. TokenB on the torus: runtime
 * (5a) and traffic (5b).
 *
 * Runtime bars per workload: TokenB, Hammer, Directory (DRAM
 * directory), Directory with a perfect (zero-latency) directory, and
 * each with unlimited bandwidth. Normalized to TokenB (limited).
 *
 * Paper shape:
 *  - TokenB is 17-54% faster than Directory and 8-29% faster than
 *    Hammer (no home-node indirection on cache-to-cache misses);
 *  - even with a zero-cycle directory, TokenB stays 6-18% ahead;
 *  - Hammer is 7-17% faster than Directory (no directory lookup) but
 *    a zero-latency directory beats Hammer by 2-9%;
 *  - traffic: Hammer uses 79-90% more than TokenB; Directory uses
 *    21-25% less than TokenB.
 *
 * Set TOKENSIM_WORKERS=N to shard the sweep across N worker processes
 * (DistRunner) instead of threads; the figure is bit-identical.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

int
main()
{
    const char *workloads[] = {"apache", "oltp", "specjbb"};
    const int seeds = bench::benchSeeds();

    struct Point
    {
        const char *label;
        ProtocolKind proto;
        bool perfect_dir;
        bool unlimited;
    };
    const Point points[] = {
        {"TokenB", ProtocolKind::tokenB, false, false},
        {"TokenB (inf bw)", ProtocolKind::tokenB, false, true},
        {"Hammer", ProtocolKind::hammer, false, false},
        {"Hammer (inf bw)", ProtocolKind::hammer, false, true},
        {"Directory (DRAM dir)", ProtocolKind::directory, false,
         false},
        {"Directory (perfect dir)", ProtocolKind::directory, true,
         false},
        {"Directory (perfect+inf)", ProtocolKind::directory, true,
         true},
    };
    constexpr std::size_t numPoints = sizeof(points) / sizeof(points[0]);

    // One spec list covers 5a and 5b; a single parallel sweep runs it.
    std::vector<ExperimentSpec> specs;
    for (const char *w : workloads) {
        for (const Point &p : points) {
            SystemConfig cfg =
                bench::paperConfig(p.proto, "torus", w);
            cfg.proto.perfectDirectory = p.perfect_dir;
            cfg.net.unlimitedBandwidth = p.unlimited;
            specs.push_back(ExperimentSpec{cfg, seeds, p.label});
        }
    }
    const std::size_t trafficBase = specs.size();
    for (const char *w : workloads) {
        for (ProtocolKind proto : {ProtocolKind::tokenB,
                                   ProtocolKind::hammer,
                                   ProtocolKind::directory}) {
            SystemConfig cfg = bench::paperConfig(proto, "torus", w);
            specs.push_back(ExperimentSpec{cfg, seeds, w});
        }
    }
    const std::vector<ExperimentResult> results = bench::runAll(specs);

    bench::header("Figure 5a: runtime, directory/hammer v. token "
                  "coherence on torus (normalized cycles/transaction)");

    std::size_t at = 0;
    for (const char *w : workloads) {
        std::printf("\n%s:\n", w);
        double norm = 0;
        for (std::size_t i = 0; i < numPoints; ++i) {
            const Point &p = points[i];
            const ExperimentResult &r = results[at++];
            if (norm == 0)
                norm = r.cyclesPerTransaction;
            bench::bar(p.label, r.cyclesPerTransaction, norm,
                       strformat("(%.1f cyc/txn, miss %.0f ns, "
                                 "%.1f evt/op)",
                                 r.cyclesPerTransaction,
                                 r.avgMissLatencyNs,
                                 r.eventsPerOp));
        }
    }

    bench::header("Figure 5b: traffic on torus "
                  "(bytes per miss, by category)");
    std::printf("  %-10s %-10s %9s %9s %9s %9s %9s %7s\n", "workload",
                "protocol", "req+fwd", "reissue+p", "nonData", "data",
                "total", "vs TokB");
    at = trafficBase;
    for (const char *w : workloads) {
        double token_total = 0;
        for (ProtocolKind proto : {ProtocolKind::tokenB,
                                   ProtocolKind::hammer,
                                   ProtocolKind::directory}) {
            const ExperimentResult &r = results[at++];
            if (proto == ProtocolKind::tokenB)
                token_total = r.bytesPerMiss;
            const double reissue_persistent =
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::reissue)] +
                r.bytesPerMissByClass[static_cast<int>(
                    MsgClass::persistent)];
            std::printf("  %-10s %-10s %9.1f %9.1f %9.1f %9.1f %9.1f "
                        "%6.2fx\n",
                        w, protocolName(proto),
                        r.bytesPerMissByClass[static_cast<int>(
                            MsgClass::request)],
                        reissue_persistent,
                        r.bytesPerMissByClass[static_cast<int>(
                            MsgClass::nonData)],
                        r.bytesPerMissByClass[static_cast<int>(
                            MsgClass::data)],
                        r.bytesPerMiss, r.bytesPerMiss / token_total);
        }
    }
    std::printf("\n  (paper: Hammer 1.79-1.90x TokenB; Directory "
                "0.75-0.79x TokenB; data messages\n   dominate "
                "Directory traffic)\n");
    return 0;
}
