/**
 * @file
 * Question 5 — can TokenB scale to an unlimited number of processors?
 *
 * The paper's answer is no: TokenB's broadcasts grow as Theta(n) link
 * crossings per miss while Directory's point-to-point messages grow as
 * Theta(sqrt n) on a torus; a microbenchmark showed TokenB using about
 * twice Directory's interconnect bandwidth at 64 processors. TokenB
 * remains more scalable than Hammer (which adds per-node
 * acknowledgments on top of its broadcast).
 *
 * This bench sweeps 4..64 processors on the torus with the uniform
 * sharing microbenchmark and reports bytes per miss for TokenB,
 * Directory, and Hammer, plus the TokenB/Directory ratio.
 *
 * Set TOKENSIM_WORKERS=N to shard the sweep across N worker processes
 * (DistRunner) instead of threads; the figure is bit-identical.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

namespace {

ExperimentSpec
spec(ProtocolKind proto, int nodes, std::uint64_t ops)
{
    SystemConfig cfg;
    cfg.numNodes = nodes;
    cfg.topology = "torus";
    cfg.protocol = proto;
    cfg.workload = "uniform";
    cfg.workload.uniformBlocks = 64 * static_cast<std::uint64_t>(nodes);
    cfg.workload.storeFraction = 0.3;
    cfg.opsPerProcessor = ops;
    cfg.seed = 11;
    return ExperimentSpec{cfg, 1, protocolName(proto)};
}

} // namespace

int
main()
{
    bench::header("Question 5: interconnect traffic scaling "
                  "(uniform-sharing microbenchmark, torus)");
    std::printf("  %5s %12s %12s %12s %14s\n", "procs",
                "TokenB B/miss", "Dir B/miss", "Hammer B/miss",
                "TokenB/Dir");

    const std::uint64_t ops = bench::benchOps() / 2;
    const int nodeCounts[] = {4, 8, 16, 32, 64};

    // The whole (protocol x processor-count) matrix goes through the
    // runner at once; the 64-node shards dominate, so sharding lets
    // the small configs fill the other cores.
    std::vector<ExperimentSpec> specs;
    for (int nodes : nodeCounts) {
        specs.push_back(spec(ProtocolKind::tokenB, nodes, ops));
        specs.push_back(spec(ProtocolKind::directory, nodes, ops));
        specs.push_back(spec(ProtocolKind::hammer, nodes, ops));
    }
    const std::vector<ExperimentResult> results = bench::runAll(specs);

    std::size_t at = 0;
    for (int nodes : nodeCounts) {
        const ExperimentResult &tb = results[at++];
        const ExperimentResult &dir = results[at++];
        const ExperimentResult &ham = results[at++];
        std::printf("  %5d %12.1f %12.1f %12.1f %13.2fx\n", nodes,
                    tb.bytesPerMiss, dir.bytesPerMiss,
                    ham.bytesPerMiss,
                    tb.bytesPerMiss / dir.bytesPerMiss);
    }

    std::printf("\n  (paper: at 64 processors TokenB uses ~2x the "
                "interconnect bandwidth of Directory;\n   broadcast "
                "cost grows Theta(n) vs Theta(sqrt n) for unicast — "
                "TokenB is a poor choice\n   for larger or "
                "bandwidth-limited systems, motivating Section 7's "
                "TokenD/TokenM)\n");
    return 0;
}
