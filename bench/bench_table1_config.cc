/**
 * @file
 * Table 1 — target system parameters.
 *
 * Prints the simulated memory-system parameters exactly as configured,
 * alongside the paper's published values, plus derived interconnect
 * characteristics (Figure 1's latency claims) so any drift between
 * configuration and implementation is visible.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "net/topology.hh"

using namespace tokensim;

int
main()
{
    SystemConfig cfg;   // defaults are the paper's Table 1

    bench::header("Table 1: Target System Parameters "
                  "(paper value / this simulator)");

    std::printf("  %-28s %-22s %s\n", "parameter", "paper", "tokensim");
    std::printf("  %-28s %-22s %u kB, %u-way, %.0f ns\n",
                "split L1 I & D caches", "128kB, 4-way, 2ns",
                static_cast<unsigned>(
                    SequencerParams{}.l1.sizeBytes / 1024),
                SequencerParams{}.l1.assoc,
                ticksToNsF(SequencerParams{}.l1.latency));
    std::printf("  %-28s %-22s %u MB, %u-way, %.0f ns\n",
                "unified L2 cache", "4MB, 4-way, 6ns",
                static_cast<unsigned>(cfg.l2.sizeBytes >> 20),
                cfg.l2.assoc, ticksToNsF(cfg.l2.latency));
    std::printf("  %-28s %-22s %u bytes\n", "cache block size",
                "64 Bytes", cfg.blockBytes);
    std::printf("  %-28s %-22s %.0f ns\n", "DRAM/directory latency",
                "80ns", ticksToNsF(cfg.dram.latency));
    std::printf("  %-28s %-22s %.0f ns\n", "memory/dir controllers",
                "6ns", ticksToNsF(cfg.ctrlLatency));
    std::printf("  %-28s %-22s %.1f GB/s\n", "network link bandwidth",
                "3.2 GBytes/sec", cfg.net.bytesPerNs);
    std::printf("  %-28s %-22s %.0f ns\n", "network link latency",
                "15ns", ticksToNsF(cfg.net.linkLatency));
    std::printf("  %-28s %-22s %d\n", "processors", "16",
                cfg.numNodes);

    bench::header("Figure 1: interconnect characteristics (16 nodes)");
    std::unique_ptr<Topology> tree(makeTopology("tree", 16));
    std::unique_ptr<Topology> torus(makeTopology("torus", 16));
    std::printf("  %-28s avg %.2f link crossings, ordered=%s\n",
                tree->name().c_str(), tree->averageHops(),
                tree->totallyOrdered() ? "yes" : "no");
    std::printf("  %-28s avg %.2f link crossings, ordered=%s\n",
                torus->name().c_str(), torus->averageHops(),
                torus->totallyOrdered() ? "yes" : "no");
    std::printf("  (paper: four crossings on the tree, two on average "
                "on the 4x4 torus)\n");

    std::printf("\nmessage sizes: control 8 B, data 72 B "
                "(8 B header + 64 B block)\n");
    return 0;
}
