/**
 * @file
 * Table 2 — overhead due to reissued requests.
 *
 * TokenB on the 16-processor torus, per workload: the percentage of
 * misses that completed without reissue, after one reissue, after more
 * than one, and that escalated to a persistent request.
 *
 * Paper values (Table 2):
 *   Apache   95.75 / 3.25 / 0.71 / 0.29
 *   OLTP     97.57 / 1.79 / 0.43 / 0.21
 *   SPECjbb  97.60 / 2.03 / 0.30 / 0.07
 *   Average  96.97 / 2.36 / 0.48 / 0.19
 */

#include <cstdio>

#include "bench_util.hh"

using namespace tokensim;

int
main()
{
    bench::header(
        "Table 2: Percentage of TokenB misses (torus, 16 procs)");
    std::printf("  %-10s %12s %12s %12s %12s\n", "Workload",
                "NotReissued", "Once", ">Once", "Persistent");

    double sum[4] = {0, 0, 0, 0};
    const char *workloads[] = {"apache", "oltp", "specjbb"};
    for (const char *w : workloads) {
        SystemConfig cfg =
            bench::paperConfig(ProtocolKind::tokenB, "torus", w);
        const ExperimentResult r =
            runExperiment(cfg, bench::benchSeeds(), w);
        std::printf("  %-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    w, r.pctNotReissued, r.pctReissuedOnce,
                    r.pctReissuedMore, r.pctPersistent);
        sum[0] += r.pctNotReissued;
        sum[1] += r.pctReissuedOnce;
        sum[2] += r.pctReissuedMore;
        sum[3] += r.pctPersistent;
    }
    std::printf("  %-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                "Average", sum[0] / 3, sum[1] / 3, sum[2] / 3,
                sum[3] / 3);
    std::printf("\n  (paper average: 96.97 / 2.36 / 0.48 / 0.19; "
                "the claim is that reissued and\n   persistent "
                "requests are rare on commercial workloads)\n");
    return 0;
}
