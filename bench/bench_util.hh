/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries:
 * standard configurations (Table 1), run sizing, and table/bar
 * printing in the style of the paper's figures.
 *
 * Environment knobs:
 *   TOKENSIM_BENCH_OPS    operations per processor (default 6000)
 *   TOKENSIM_BENCH_SEEDS  seeds per design point   (default 2)
 *   TOKENSIM_THREADS      ParallelRunner threads   (default all cores)
 *   TOKENSIM_WORKERS      when set >= 1, shard the sweep across that
 *                         many worker *processes* (DistRunner) instead
 *                         of threads — results are bit-identical
 *                         either way (the dist ctest gate enforces it)
 */

#ifndef TOKENSIM_BENCH_BENCH_UTIL_HH
#define TOKENSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/dist_runner.hh"
#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "harness/system.hh"

namespace tokensim {
namespace bench {

inline std::uint64_t
benchOps()
{
    if (const char *s = std::getenv("TOKENSIM_BENCH_OPS"))
        return std::strtoull(s, nullptr, 10);
    return 6000;
}

inline int
benchSeeds()
{
    if (const char *s = std::getenv("TOKENSIM_BENCH_SEEDS"))
        return static_cast<int>(std::strtol(s, nullptr, 10));
    return 2;
}

/** The paper's 16-processor target system (Table 1). */
inline SystemConfig
paperConfig(ProtocolKind proto, const std::string &topology,
            const std::string &workload)
{
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = topology;
    cfg.protocol = proto;
    cfg.workload = workload;
    cfg.opsPerProcessor = benchOps();
    // The paper measures from warmed checkpoints; warm the caches
    // and sharing state before the measured window.
    cfg.warmupOpsPerProcessor = benchOps();
    cfg.seed = 7;
    return cfg;
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print one normalized bar with a text gauge. */
inline void
bar(const std::string &label, double value, double norm,
    const std::string &extra = "")
{
    const double rel = norm > 0 ? value / norm : 0.0;
    std::printf("  %-28s %6.3f |", label.c_str(), rel);
    const int width = static_cast<int>(rel * 32.0 + 0.5);
    for (int i = 0; i < width && i < 64; ++i)
        std::putchar('#');
    if (!extra.empty())
        std::printf("  %s", extra.c_str());
    std::putchar('\n');
}

/** A labelled runtime/traffic result. */
struct Row
{
    std::string label;
    ExperimentResult r;
};

/**
 * Run a whole figure's design points in one invocation: across worker
 * processes (DistRunner) when TOKENSIM_WORKERS is set, else across
 * threads (ParallelRunner, thread count from TOKENSIM_THREADS).
 * Results come back in spec order, bit-identical to running each spec
 * serially with runExperiment() — the runner choice is pure
 * performance policy and can never change a figure.
 */
inline std::vector<ExperimentResult>
runAll(const std::vector<ExperimentSpec> &specs)
{
    if (const char *s = std::getenv("TOKENSIM_WORKERS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v >= 1) {
            DistRunnerOptions opts;
            opts.workers = static_cast<int>(v);
            return DistRunner(std::move(opts)).run(specs);
        }
    }
    return ParallelRunner().run(specs);
}

} // namespace bench
} // namespace tokensim

#endif // TOKENSIM_BENCH_BENCH_UTIL_HH
