file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_migratory.dir/bench/bench_ablation_migratory.cc.o"
  "CMakeFiles/bench_ablation_migratory.dir/bench/bench_ablation_migratory.cc.o.d"
  "bench_ablation_migratory"
  "bench_ablation_migratory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_migratory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
