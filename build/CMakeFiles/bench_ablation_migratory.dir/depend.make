# Empty dependencies file for bench_ablation_migratory.
# This may be replaced when dependencies are built.
