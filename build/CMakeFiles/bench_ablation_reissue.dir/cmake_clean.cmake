file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reissue.dir/bench/bench_ablation_reissue.cc.o"
  "CMakeFiles/bench_ablation_reissue.dir/bench/bench_ablation_reissue.cc.o.d"
  "bench_ablation_reissue"
  "bench_ablation_reissue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reissue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
