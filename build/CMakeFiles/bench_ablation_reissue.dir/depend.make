# Empty dependencies file for bench_ablation_reissue.
# This may be replaced when dependencies are built.
