file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tokens.dir/bench/bench_ablation_tokens.cc.o"
  "CMakeFiles/bench_ablation_tokens.dir/bench/bench_ablation_tokens.cc.o.d"
  "bench_ablation_tokens"
  "bench_ablation_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
