# Empty dependencies file for bench_ablation_tokens.
# This may be replaced when dependencies are built.
