file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_snooping.dir/bench/bench_fig4_snooping.cc.o"
  "CMakeFiles/bench_fig4_snooping.dir/bench/bench_fig4_snooping.cc.o.d"
  "bench_fig4_snooping"
  "bench_fig4_snooping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_snooping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
