# Empty dependencies file for bench_fig4_snooping.
# This may be replaced when dependencies are built.
