file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_directory.dir/bench/bench_fig5_directory.cc.o"
  "CMakeFiles/bench_fig5_directory.dir/bench/bench_fig5_directory.cc.o.d"
  "bench_fig5_directory"
  "bench_fig5_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
