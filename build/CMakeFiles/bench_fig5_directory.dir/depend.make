# Empty dependencies file for bench_fig5_directory.
# This may be replaced when dependencies are built.
