file(REMOVE_RECURSE
  "CMakeFiles/bench_q5_scaling.dir/bench/bench_q5_scaling.cc.o"
  "CMakeFiles/bench_q5_scaling.dir/bench/bench_q5_scaling.cc.o.d"
  "bench_q5_scaling"
  "bench_q5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
