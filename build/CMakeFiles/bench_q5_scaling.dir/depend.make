# Empty dependencies file for bench_q5_scaling.
# This may be replaced when dependencies are built.
