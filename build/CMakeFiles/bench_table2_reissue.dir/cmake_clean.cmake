file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reissue.dir/bench/bench_table2_reissue.cc.o"
  "CMakeFiles/bench_table2_reissue.dir/bench/bench_table2_reissue.cc.o.d"
  "bench_table2_reissue"
  "bench_table2_reissue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reissue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
