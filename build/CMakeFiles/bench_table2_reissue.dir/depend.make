# Empty dependencies file for bench_table2_reissue.
# This may be replaced when dependencies are built.
