file(REMOVE_RECURSE
  "CMakeFiles/race_example.dir/examples/race_example.cpp.o"
  "CMakeFiles/race_example.dir/examples/race_example.cpp.o.d"
  "race_example"
  "race_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
