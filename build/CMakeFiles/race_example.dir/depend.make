# Empty dependencies file for race_example.
# This may be replaced when dependencies are built.
