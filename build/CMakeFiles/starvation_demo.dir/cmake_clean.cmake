file(REMOVE_RECURSE
  "CMakeFiles/starvation_demo.dir/examples/starvation_demo.cpp.o"
  "CMakeFiles/starvation_demo.dir/examples/starvation_demo.cpp.o.d"
  "starvation_demo"
  "starvation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starvation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
