# Empty dependencies file for starvation_demo.
# This may be replaced when dependencies are built.
