file(REMOVE_RECURSE
  "CMakeFiles/test_hammer.dir/tests/test_hammer.cc.o"
  "CMakeFiles/test_hammer.dir/tests/test_hammer.cc.o.d"
  "test_hammer"
  "test_hammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
