# Empty dependencies file for test_hammer.
# This may be replaced when dependencies are built.
