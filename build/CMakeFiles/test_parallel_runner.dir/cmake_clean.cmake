file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_runner.dir/tests/test_parallel_runner.cc.o"
  "CMakeFiles/test_parallel_runner.dir/tests/test_parallel_runner.cc.o.d"
  "test_parallel_runner"
  "test_parallel_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
