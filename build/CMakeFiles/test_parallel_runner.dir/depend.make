# Empty dependencies file for test_parallel_runner.
# This may be replaced when dependencies are built.
