file(REMOVE_RECURSE
  "CMakeFiles/test_persistent.dir/tests/test_persistent.cc.o"
  "CMakeFiles/test_persistent.dir/tests/test_persistent.cc.o.d"
  "test_persistent"
  "test_persistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
