# Empty dependencies file for test_persistent.
# This may be replaced when dependencies are built.
