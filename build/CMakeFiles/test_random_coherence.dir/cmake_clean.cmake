file(REMOVE_RECURSE
  "CMakeFiles/test_random_coherence.dir/tests/test_random_coherence.cc.o"
  "CMakeFiles/test_random_coherence.dir/tests/test_random_coherence.cc.o.d"
  "test_random_coherence"
  "test_random_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
