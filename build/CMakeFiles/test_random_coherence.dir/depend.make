# Empty dependencies file for test_random_coherence.
# This may be replaced when dependencies are built.
