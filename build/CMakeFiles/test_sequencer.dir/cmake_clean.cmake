file(REMOVE_RECURSE
  "CMakeFiles/test_sequencer.dir/tests/test_sequencer.cc.o"
  "CMakeFiles/test_sequencer.dir/tests/test_sequencer.cc.o.d"
  "test_sequencer"
  "test_sequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
