# Empty dependencies file for test_sequencer.
# This may be replaced when dependencies are built.
