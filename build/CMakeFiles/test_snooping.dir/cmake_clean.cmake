file(REMOVE_RECURSE
  "CMakeFiles/test_snooping.dir/tests/test_snooping.cc.o"
  "CMakeFiles/test_snooping.dir/tests/test_snooping.cc.o.d"
  "test_snooping"
  "test_snooping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snooping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
