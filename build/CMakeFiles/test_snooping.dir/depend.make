# Empty dependencies file for test_snooping.
# This may be replaced when dependencies are built.
