file(REMOVE_RECURSE
  "CMakeFiles/test_token_state.dir/tests/test_token_state.cc.o"
  "CMakeFiles/test_token_state.dir/tests/test_token_state.cc.o.d"
  "test_token_state"
  "test_token_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
