# Empty dependencies file for test_token_state.
# This may be replaced when dependencies are built.
