file(REMOVE_RECURSE
  "CMakeFiles/test_tokenb.dir/tests/test_tokenb.cc.o"
  "CMakeFiles/test_tokenb.dir/tests/test_tokenb.cc.o.d"
  "test_tokenb"
  "test_tokenb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tokenb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
