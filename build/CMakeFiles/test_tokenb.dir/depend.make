# Empty dependencies file for test_tokenb.
# This may be replaced when dependencies are built.
