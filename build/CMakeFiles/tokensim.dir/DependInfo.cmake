
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ext/tokena.cc" "CMakeFiles/tokensim.dir/src/core/ext/tokena.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/ext/tokena.cc.o.d"
  "/root/repo/src/core/ext/tokend.cc" "CMakeFiles/tokensim.dir/src/core/ext/tokend.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/ext/tokend.cc.o.d"
  "/root/repo/src/core/ext/tokenm.cc" "CMakeFiles/tokensim.dir/src/core/ext/tokenm.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/ext/tokenm.cc.o.d"
  "/root/repo/src/core/persistent.cc" "CMakeFiles/tokensim.dir/src/core/persistent.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/persistent.cc.o.d"
  "/root/repo/src/core/substrate.cc" "CMakeFiles/tokensim.dir/src/core/substrate.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/substrate.cc.o.d"
  "/root/repo/src/core/tokenb.cc" "CMakeFiles/tokensim.dir/src/core/tokenb.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/core/tokenb.cc.o.d"
  "/root/repo/src/cpu/sequencer.cc" "CMakeFiles/tokensim.dir/src/cpu/sequencer.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/cpu/sequencer.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "CMakeFiles/tokensim.dir/src/harness/experiment.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/harness/experiment.cc.o.d"
  "/root/repo/src/harness/parallel_runner.cc" "CMakeFiles/tokensim.dir/src/harness/parallel_runner.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/harness/parallel_runner.cc.o.d"
  "/root/repo/src/harness/random_tester.cc" "CMakeFiles/tokensim.dir/src/harness/random_tester.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/harness/random_tester.cc.o.d"
  "/root/repo/src/harness/system.cc" "CMakeFiles/tokensim.dir/src/harness/system.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/harness/system.cc.o.d"
  "/root/repo/src/net/message.cc" "CMakeFiles/tokensim.dir/src/net/message.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/net/message.cc.o.d"
  "/root/repo/src/net/network.cc" "CMakeFiles/tokensim.dir/src/net/network.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/net/network.cc.o.d"
  "/root/repo/src/net/topology.cc" "CMakeFiles/tokensim.dir/src/net/topology.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/net/topology.cc.o.d"
  "/root/repo/src/proto/directory/directory.cc" "CMakeFiles/tokensim.dir/src/proto/directory/directory.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/proto/directory/directory.cc.o.d"
  "/root/repo/src/proto/hammer/hammer.cc" "CMakeFiles/tokensim.dir/src/proto/hammer/hammer.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/proto/hammer/hammer.cc.o.d"
  "/root/repo/src/proto/snooping/snooping.cc" "CMakeFiles/tokensim.dir/src/proto/snooping/snooping.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/proto/snooping/snooping.cc.o.d"
  "/root/repo/src/proto/types.cc" "CMakeFiles/tokensim.dir/src/proto/types.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/proto/types.cc.o.d"
  "/root/repo/src/sim/log.cc" "CMakeFiles/tokensim.dir/src/sim/log.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/sim/log.cc.o.d"
  "/root/repo/src/sim/stats.cc" "CMakeFiles/tokensim.dir/src/sim/stats.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/sim/stats.cc.o.d"
  "/root/repo/src/workload/commercial.cc" "CMakeFiles/tokensim.dir/src/workload/commercial.cc.o" "gcc" "CMakeFiles/tokensim.dir/src/workload/commercial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
