file(REMOVE_RECURSE
  "libtokensim.a"
)
