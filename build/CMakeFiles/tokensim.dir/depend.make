# Empty dependencies file for tokensim.
# This may be replaced when dependencies are built.
