/**
 * @file
 * Side-by-side comparison of all protocols on one workload — a
 * miniature of the paper's whole evaluation in one table.
 *
 *   $ ./examples/protocol_comparison [workload] [ops]
 *
 * workload is any WorkloadSpec preset (oltp, apache, specjbb,
 * producer-consumer, lock-ping, uniform, hot, private); recorded
 * traces are driven via examples/trace_tool instead.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"

using namespace tokensim;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "oltp";
    const std::uint64_t ops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4000;

    struct Row
    {
        ProtocolKind proto;
        const char *topo;
    };
    const Row rows[] = {
        {ProtocolKind::snooping, "tree"},
        {ProtocolKind::tokenB, "tree"},
        {ProtocolKind::tokenB, "torus"},
        {ProtocolKind::tokenM, "torus"},
        {ProtocolKind::tokenA, "torus"},
        {ProtocolKind::tokenD, "torus"},
        {ProtocolKind::hammer, "torus"},
        {ProtocolKind::directory, "torus"},
    };

    // All protocols sweep in one ParallelRunner invocation: every
    // (protocol, seed) shard is an independent System.
    std::vector<ExperimentSpec> specs;
    for (const Row &row : rows) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = row.topo;
        cfg.protocol = row.proto;
        cfg.workload = workload;
        cfg.opsPerProcessor = ops;
        cfg.warmupOpsPerProcessor = ops;
        specs.push_back(
            ExperimentSpec{cfg, 2, protocolName(row.proto)});
    }
    const std::vector<ExperimentResult> results =
        ParallelRunner().run(specs);

    std::printf("%-10s %-6s %12s %12s %10s %9s\n", "protocol",
                "topo", "cycles/txn", "missLat(ns)", "bytes/miss",
                "c2c%");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Row &row = rows[i];
        const ExperimentResult &r = results[i];
        std::printf("%-10s %-6s %12.1f %12.0f %10.1f %8.1f%%\n",
                    protocolName(row.proto), row.topo,
                    r.cyclesPerTransaction, r.avgMissLatencyNs,
                    r.bytesPerMiss, 100.0 * r.cacheToCacheFrac);
    }
    std::printf("\n(the paper's Figure 4/5 story: TokenB-torus wins "
                "runtime; Directory wins traffic;\n Hammer pays "
                "per-node acks; snooping is stuck on the ordered "
                "tree)\n");
    return 0;
}
