/**
 * @file
 * Quickstart: build the paper's 16-processor target system running
 * TokenB on the unordered torus, execute an OLTP-like workload, and
 * read out the headline statistics.
 *
 *   $ ./examples/quickstart [workload] [protocol]
 *
 * workload: oltp | apache | specjbb | producer-consumer | lock-ping |
 *           uniform | private (default oltp)
 * protocol: tokenb | tokend | tokenm | tokena | snooping | directory | hammer
 */

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "harness/system.hh"

using namespace tokensim;

namespace {

ProtocolKind
parseProtocol(const std::string &s)
{
    if (s == "tokenb")
        return ProtocolKind::tokenB;
    if (s == "tokend")
        return ProtocolKind::tokenD;
    if (s == "tokenm")
        return ProtocolKind::tokenM;
    if (s == "tokena")
        return ProtocolKind::tokenA;
    if (s == "snooping")
        return ProtocolKind::snooping;
    if (s == "directory")
        return ProtocolKind::directory;
    if (s == "hammer")
        return ProtocolKind::hammer;
    throw std::invalid_argument("unknown protocol: " + s);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "oltp";
    const ProtocolKind proto =
        parseProtocol(argc > 2 ? argv[2] : "tokenb");

    // 1. Describe the system. Defaults reproduce the paper's Table 1:
    //    16 nodes, 4 MB L2, 80 ns DRAM, 3.2 GB/s 15 ns links.
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = proto;
    // Snooping needs the totally-ordered tree; everything else runs
    // on the lower-latency unordered torus.
    cfg.topology = proto == ProtocolKind::snooping ? "tree" : "torus";
    cfg.workload = workload;
    cfg.opsPerProcessor = 6000;
    cfg.warmupOpsPerProcessor = 6000;
    cfg.attachAuditor = isTokenProtocol(proto);   // run-time safety net

    // 2. Build and run. run() drains all protocol activity before
    //    returning, so the results are quiescent-state numbers.
    System sys(cfg);
    sys.run();

    // 3. Read the aggregate results.
    const System::Results r = sys.results();
    std::printf("system:        %d nodes, %s, %s on %s\n",
                cfg.numNodes, protocolName(proto), workload.c_str(),
                cfg.topology.c_str());
    std::printf("simulated:     %.1f us (%llu ops, %llu transactions)\n",
                ticksToNsF(r.runtimeTicks()) / 1000.0,
                static_cast<unsigned long long>(r.ops()),
                static_cast<unsigned long long>(r.transactions()));
    std::printf("runtime:       %.1f cycles/transaction\n",
                r.cyclesPerTransaction());
    std::printf("L1 hits:       %.1f%% of ops\n",
                100.0 * static_cast<double>(r.l1Hits()) /
                    static_cast<double>(r.ops()));
    std::printf("L2 misses:     %llu (%.1f%% of L2 accesses, "
                "%.1f%% cache-to-cache)\n",
                static_cast<unsigned long long>(r.misses()),
                100.0 * static_cast<double>(r.misses()) /
                    static_cast<double>(r.l2Accesses()),
                100.0 * static_cast<double>(r.cacheToCache()) /
                    static_cast<double>(r.misses()));
    std::printf("miss latency:  %.1f ns average\n",
                ticksToNsF(r.avgMissLatencyTicks()));
    std::printf("traffic:       %.1f bytes/miss on the interconnect\n",
                r.bytesPerMiss());
    std::printf("sim kernel:    %.1f events/op dispatched "
                "(%llu scheduled, %llu timer cancels)\n",
                r.eventsPerOp(),
                static_cast<unsigned long long>(r.eventsScheduled()),
                static_cast<unsigned long long>(r.timersCancelled()));
    if (isTokenProtocol(proto)) {
        std::printf("reissues:      %.2f%% of misses reissued, "
                    "%.2f%% used persistent requests\n",
                    100.0 *
                        static_cast<double>(r.missesReissuedOnce() +
                                            r.missesReissuedMore()) /
                        static_cast<double>(r.misses()),
                    100.0 * static_cast<double>(r.missesPersistent()) /
                        static_cast<double>(r.misses()));
        std::string err;
        if (sys.auditor() && sys.auditor()->auditAll(&err)) {
            std::printf("token audit:   all %zu touched blocks "
                        "conserve exactly T tokens\n",
                        sys.auditor()->touchedBlocks().size());
        } else if (sys.auditor()) {
            std::printf("token audit:   FAILED: %s\n", err.c_str());
            return 1;
        }
    }
    return 0;
}
