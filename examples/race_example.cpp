/**
 * @file
 * The paper's Section-2 example race (Figure 2), replayed live.
 *
 * P0 wants to write a block while P1 wants to read it, on an
 * unordered interconnect with no home-node serialization. The naive
 * broadcast protocol of Figure 2a would let P0 believe it holds a
 * writable copy while P1 still reads — token counting makes that
 * impossible: P0 cannot write until it holds all T tokens, and the
 * reissue/persistent machinery guarantees it eventually does
 * (Figure 2b).
 *
 * Run with trace output to watch every message:
 *   $ ./examples/race_example
 */

#include <cstdio>

#include "core/tokenb.hh"
#include "harness/system.hh"
#include "sim/log.hh"

using namespace tokensim;

int
main()
{
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenB;
    cfg.opsPerProcessor = 0;   // we drive the caches by hand
    // The workload spec is unused at zero ops; the explicit "private"
    // preset keeps every node in its own address range if anyone
    // raises the op budget while experimenting.
    WorkloadSpec wl("private");
    wl.storeFraction = 0.3;
    cfg.workload = wl;
    cfg.attachAuditor = true;
    System sys(cfg);

    const Addr block = 0x400;   // home node 0; T = 4 tokens
    auto &p0 = dynamic_cast<TokenBCache &>(sys.cache(0));
    auto &p1 = dynamic_cast<TokenBCache &>(sys.cache(1));

    int completed = 0;
    ProcResponse resp0, resp1;
    sys.cache(0).setCompletionCallback([&](const ProcResponse &r) {
        resp0 = r;
        ++completed;
    });
    sys.cache(1).setCompletionCallback([&](const ProcResponse &r) {
        resp1 = r;
        ++completed;
    });

    std::printf("Figure 2 race: P0 issues ReqM (store) while P1 "
                "issues ReqS (load)\n");
    std::printf("block %#lx has T=%d tokens, all initially at its "
                "home memory\n\n",
                static_cast<unsigned long>(block),
                p0.tokensPerBlock());

    logging::setLevel(logging::Level::trace);

    ProcRequest store;
    store.op = MemOp::store;
    store.addr = block;
    store.storeValue = 0xd00d;
    store.reqId = 1;
    sys.cache(0).request(store);

    ProcRequest load;
    load.op = MemOp::load;
    load.addr = block;
    load.reqId = 2;
    sys.cache(1).request(load);

    sys.eq().runUntil([&]() { return completed == 2; },
                      nsToTicks(1'000'000));
    logging::setLevel(logging::Level::none);

    std::printf("\nP0's store: completed at %.1f ns, %d reissue(s), "
                "persistent=%s\n",
                ticksToNsF(resp0.completedAt), resp0.reissues,
                resp0.usedPersistent ? "yes" : "no");
    std::printf("P1's load:  completed at %.1f ns, value %#lx "
                "(%s the race)\n",
                ticksToNsF(resp1.completedAt),
                static_cast<unsigned long>(resp1.value),
                resp1.value == 0xd00d ? "write won" : "read won");

    std::printf("\nfinal states: P0 %s, P1 %s  "
                "(single writer XOR readers - safety held throughout)\n",
                p0.moesiState(block) == TokenMoesi::modified
                    ? "M (all 4 tokens)" : "not exclusive",
                p1.moesiState(block) == TokenMoesi::invalid
                    ? "I (0 tokens)" : "holds token(s)");

    // Drain and prove conservation: exactly T tokens exist.
    sys.eq().run(sys.eq().curTick() + nsToTicks(1'000'000));
    std::string err;
    if (!sys.auditor()->auditAll(&err)) {
        std::printf("token conservation FAILED: %s\n", err.c_str());
        return 1;
    }
    std::printf("token audit: conserved (exactly %d tokens, one "
                "owner) at all times\n",
                p0.tokensPerBlock());
    return 0;
}
