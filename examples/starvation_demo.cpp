/**
 * @file
 * Starvation avoidance demo (Section 3.2).
 *
 * Eight processors hammer a single block with stores — the worst case
 * for racing transient requests, where tokens can ping-pong and a
 * plain broadcast protocol could starve a requester indefinitely.
 * The correctness substrate's persistent requests guarantee every
 * operation completes:
 *
 *   1. TokenB under extreme contention: watch reissues climb and the
 *      occasional persistent request break ties.
 *   2. TokenNull — the null performance protocol that never issues
 *      transient requests at all: every single miss is resolved by
 *      the arbiter. Correct, dreadfully slow, exactly as Section 4.1
 *      promises ("a null or random performance protocol would perform
 *      poorly but not incorrectly").
 */

#include <cstdio>

#include "core/tokenb.hh"
#include "harness/system.hh"

using namespace tokensim;

namespace {

void
runCase(const char *label, ProtocolKind proto, std::uint64_t ops)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.topology = "torus";
    cfg.protocol = proto;
    cfg.workload = "hot";            // every op hits one block
    cfg.workload.storeFraction = 0.9;
    cfg.opsPerProcessor = ops;
    cfg.attachAuditor = true;
    System sys(cfg);
    sys.run();

    const System::Results r = sys.results();
    const auto &arb =
        dynamic_cast<TokenBMemory &>(sys.memory(0)).arbiter();
    std::printf("%-22s %8llu ops, %7.1f ns/miss, "
                "reissued %5.1f%%, persistent %5.1f%%, "
                "arbiter activations %llu\n",
                label, static_cast<unsigned long long>(r.ops()),
                ticksToNsF(r.avgMissLatencyTicks()),
                100.0 *
                    static_cast<double>(r.missesReissuedOnce() +
                                        r.missesReissuedMore()) /
                    static_cast<double>(r.misses()),
                100.0 * static_cast<double>(r.missesPersistent()) /
                    static_cast<double>(r.misses()),
                static_cast<unsigned long long>(
                    arb.stats().activations));

    std::string err;
    if (!sys.auditor()->auditAll(&err)) {
        std::printf("  TOKEN AUDIT FAILED: %s\n", err.c_str());
        std::exit(1);
    }
}

} // namespace

int
main()
{
    std::printf("eight processors, one block, 90%% stores - the "
                "starvation stress case\n\n");
    runCase("TokenB", ProtocolKind::tokenB, 2000);
    runCase("TokenNull (persistent)", ProtocolKind::tokenNull, 100);
    std::printf("\nevery operation completed in both cases: safety "
                "from token counting,\nliveness from the "
                "persistent-request arbiter (FIFO per block)\n");
    return 0;
}
