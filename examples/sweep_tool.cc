/**
 * @file
 * Process-sharded sweep CLI: run a protocol x workload experiment
 * matrix through the DistRunner (or in-process runners, for
 * comparison), and serve as the worker subprocess the DistRunner
 * shards onto.
 *
 *   $ ./sweep_tool run [options]
 *   $ ./sweep_tool worker [--connect HOST:PORT | --listen HOST:PORT]
 *
 * `run` prints exactly one machine-parseable line per design point on
 * stdout — `<label> <resultDigest()>` in spec order — so piping or
 * diffing sweep outputs works unconditionally; all progress, partial
 * aggregates, and the --stats summary go to stderr. Because every
 * runner is bit-identical, `diff <(sweep_tool run --serial ...)
 * <(TOKENSIM_WORKERS=8 sweep_tool run ...)` must always be empty —
 * CI's multi-process smoke step enforces exactly that.
 *
 * `worker` speaks the harness/wire.hh frame protocol on stdin/stdout
 * (hello, then one result or error frame per job frame) until EOF.
 * DistRunner spawns it via --worker-bin or workerArgv; anything that
 * can ship byte streams between hosts can drive it remotely.
 *
 * Cross-host TCP: `worker --connect HOST:PORT` dials a sweeping
 * parent's listener and serves the same protocol over the socket
 * (retrying the connect so workers may be launched first); `worker
 * --listen HOST:PORT` waits for the parent to dial it instead. On the
 * run side, `--hosts FILE|LIST` takes newline- or comma-separated
 * endpoints: a `listen:HOST:PORT` entry opens the parent's listener
 * (port 0 = ephemeral, announced on stderr), every other entry is a
 * `worker --listen` endpoint to dial. Workers join and leave freely
 * mid-sweep; digests never change.
 *
 * Options (run):
 *   --protocols a,b,c  comma list (default tokenb,snooping)
 *   --workloads a,b    comma list of presets or trace:PATH entries
 *                      (default oltp)
 *   --tenants p:N,p:N  multi-tenant mode: co-schedule these preset
 *                      workloads on contiguous disjoint node groups
 *                      (counts must sum to --nodes); replaces the
 *                      --workloads axis and adds per-tenant
 *                      diagnostic metrics to --metrics output
 *   --topology T       torus|tree (default: tree for snooping, else
 *                      torus)
 *   --nodes N          processors per system (default 8)
 *   --ops N            measured ops/processor (default 1000)
 *   --warmup N         warmup ops/processor (default 0)
 *   --l2-kb N          L2 size per node in KB (default: Table 1's
 *                      4096; small values make 256-1024-node sweeps
 *                      fit in memory)
 *   --l1-kb N          L1 size per node in KB (default 64)
 *   --sample FF:WIN:N  SMARTS-style sampling on every design point:
 *                      alternate FF fast-forwarded ops with WIN
 *                      detailed ops, N windows; --ops is ignored and
 *                      sampled means carry across-window stderr
 *   --snapshot PATH    warm-state snapshot reuse: if PATH exists,
 *                      load it into every design point (warmup
 *                      skipped); else fast-forward --warmup ops once,
 *                      save to PATH, and use it. Requires --seeds 1
 *                      and design points differing only in timing
 *                      knobs; any shape/workload/seed mismatch is a
 *                      typed error before the sweep starts
 *   --seeds N          seeds per design point (default 2)
 *   --seed S           base seed (default 1)
 *   --workers N        local worker subprocesses (default:
 *                      TOKENSIM_WORKERS, else 0 = in-process
 *                      ParallelRunner; with --hosts, 0 = remote-only)
 *   --hosts FILE|LIST  TCP fleet manifest: `listen:HOST:PORT` opens
 *                      the parent listener, other entries are dialed
 *   --join-timeout MS  wait this long for a TCP worker to (re)join
 *                      an empty pool before degrading in-process
 *                      (default 30000; -1 = forever)
 *   --hello-timeout MS drop a connected peer with no valid hello
 *                      after MS (default 10000)
 *   --threads N        ParallelRunner threads when workers = 0
 *   --serial           serial runExperiment loop (the oracle)
 *   --fork-workers     fork-only workers instead of exec'ing self
 *   --checkpoint PATH  crash-safe checkpoint: append each completed
 *                      shard to PATH; rerunning the same sweep with
 *                      the same PATH resumes instead of recomputing
 *                      (requires --workers >= 1)
 *   --retries N        max reassignments of one shard after worker
 *                      failures (default 2)
 *   --shard-timeout MS per-shard hang deadline in ms; 0 = auto (10x
 *                      the slowest completed shard of the same
 *                      design point, >= 10 s), -1 = off (default 0)
 *   --progress         stream shard/partial-aggregate lines (stderr;
 *                      checkpoint and worker-lifecycle lines print
 *                      regardless)
 *   --stats            print a summary table after the run (stderr)
 *   --metrics          dump every named metric of every design
 *                      point's merged registry (stderr)
 *   --help             print option summary with defaults
 */

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "harness/argparse.hh"
#include "harness/dist_runner.hh"
#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "harness/snapshot.hh"
#include "harness/system.hh"

using namespace tokensim;

namespace {

ProtocolKind
parseProtocol(const std::string &s)
{
    if (s == "tokenb")
        return ProtocolKind::tokenB;
    if (s == "tokend")
        return ProtocolKind::tokenD;
    if (s == "tokenm")
        return ProtocolKind::tokenM;
    if (s == "tokena")
        return ProtocolKind::tokenA;
    if (s == "tokennull")
        return ProtocolKind::tokenNull;
    if (s == "snooping")
        return ProtocolKind::snooping;
    if (s == "directory")
        return ProtocolKind::directory;
    if (s == "hammer")
        return ProtocolKind::hammer;
    throw std::invalid_argument("unknown protocol: " + s);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= s.size()) {
        const std::size_t comma = s.find(',', at);
        if (comma == std::string::npos) {
            out.push_back(s.substr(at));
            break;
        }
        out.push_back(s.substr(at, comma - at));
        at = comma + 1;
    }
    return out;
}

struct Options
{
    std::vector<std::string> protocols{"tokenb", "snooping"};
    std::vector<std::string> workloads{"oltp"};
    std::vector<TenantSpec> tenants;  // --tenants (empty: single)
    std::string tenantsLabel;         // the --tenants text, for labels
    std::string topology;   // empty: per-protocol default
    int nodes = 8;
    std::uint64_t ops = 1000;
    std::uint64_t warmup = 0;
    std::uint64_t l2Kb = 0;  // --l2-kb (0: Table 1 default)
    std::uint64_t l1Kb = 0;  // --l1-kb (0: default)
    SamplingSpec sample;    // --sample FF:WIN:N (disabled: all zero)
    std::string snapshot;   // --snapshot PATH (empty: no snapshot)
    int seeds = 2;
    std::uint64_t seed = 1;
    int workers = -1;       // -1: TOKENSIM_WORKERS, else 0
    int threads = 0;
    bool serial = false;
    bool forkWorkers = false;
    std::string hosts;      // --hosts FILE|LIST (empty: no TCP)
    long joinTimeoutMs = 30000;
    long helloTimeoutMs = 10000;
    std::string checkpoint;
    int retries = 2;
    long shardTimeoutMs = 0;
    bool progress = false;
    bool stats = false;
    bool metrics = false;
    bool help = false;
};

/** Option summary (--help / bad usage), with the live defaults. */
void
printHelp(const char *argv0)
{
    const Options d;
    std::fprintf(
        stderr,
        "usage: %s run [options]\n"
        "       %s worker [--connect HOST:PORT | --listen "
        "HOST:PORT]\n"
        "              [--retry-ms MS] [--identity S]\n"
        "\n"
        "run options:\n"
        "  --protocols a,b,c   comma list (default tokenb,snooping)\n"
        "  --workloads a,b     presets or trace:PATH (default oltp)\n"
        "  --tenants p:N,p:N   co-schedule preset workloads on "
        "contiguous disjoint\n"
        "                      node groups (counts sum to --nodes); "
        "replaces the\n"
        "                      --workloads axis\n"
        "  --topology T        torus|tree (default: tree for "
        "snooping, else torus)\n"
        "  --nodes N           processors per system (default %d)\n"
        "  --ops N             measured ops/processor (default "
        "%llu)\n"
        "  --warmup N          warmup ops/processor (default %llu)\n"
        "  --l2-kb N           L2 KB per node (default: Table 1's "
        "4096)\n"
        "  --l1-kb N           L1 KB per node (default 64)\n"
        "  --sample FF:WIN:N   SMARTS sampling: N windows of FF "
        "fast-forwarded +\n"
        "                      WIN detailed ops per processor "
        "(--ops ignored;\n"
        "                      sampled means carry across-window "
        "stderr)\n"
        "  --snapshot PATH     load PATH as the warm-state snapshot "
        "for every design\n"
        "                      point, or create it first (one "
        "fast-forward of --warmup\n"
        "                      ops) if missing; needs --seeds 1, and "
        "points may differ\n"
        "                      only in timing knobs (shape/workload/"
        "seed mismatches are\n"
        "                      typed errors up front)\n"
        "  --seeds N           seeds per design point (default %d)\n"
        "  --seed S            base seed (default %llu)\n"
        "  --workers N         local worker subprocesses (default: "
        "TOKENSIM_WORKERS, else 0 =\n"
        "                      in-process threads; with --hosts, 0 = "
        "remote-only)\n"
        "  --hosts FILE|LIST   TCP fleet manifest: `listen:HOST:PORT` "
        "opens the parent\n"
        "                      listener (port 0 = ephemeral, printed "
        "to stderr); other\n"
        "                      entries are `worker --listen` "
        "endpoints to dial\n"
        "  --join-timeout MS   wait for a TCP (re)join when the pool "
        "is empty before\n"
        "                      degrading in-process (default %ld; -1 "
        "= forever)\n"
        "  --hello-timeout MS  drop a connected peer with no valid "
        "hello (default %ld)\n"
        "  --threads N         ParallelRunner threads when workers "
        "= 0 (default: hardware)\n"
        "  --serial            serial oracle loop\n"
        "  --fork-workers      fork-only workers instead of exec'ing "
        "self\n"
        "  --checkpoint PATH   append completed shards to PATH; "
        "rerun with the same\n"
        "                      PATH to resume after a crash "
        "(requires --workers >= 1)\n"
        "  --retries N         max reassignments of one shard after "
        "worker failures (default %d)\n"
        "  --shard-timeout MS  per-shard hang deadline; 0 = auto "
        "(10x slowest shard of\n"
        "                      that design point, >= 10 s), -1 = off "
        "(default %ld)\n"
        "  --progress          stream per-shard progress to stderr\n"
        "  --stats             summary table after the run (stderr)\n"
        "  --metrics           dump merged metric registries "
        "(stderr)\n",
        argv0, argv0, d.nodes,
        static_cast<unsigned long long>(d.ops),
        static_cast<unsigned long long>(d.warmup), d.seeds,
        static_cast<unsigned long long>(d.seed), d.joinTimeoutMs,
        d.helloTimeoutMs, d.retries, d.shardTimeoutMs);
}

/** --sample FF:WIN:N -> SamplingSpec{FF, WIN, N}. */
SamplingSpec
parseSample(const std::string &s)
{
    const std::size_t c1 = s.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? c1 : s.find(':', c1 + 1);
    if (c2 == std::string::npos) {
        throw std::invalid_argument(
            "--sample wants FF:WIN:N (fast-forward ops : detailed "
            "ops : windows), got \"" + s + "\"");
    }
    SamplingSpec spec;
    spec.ffOps = parseU64("--sample FF", s.substr(0, c1));
    spec.measureOps =
        parseU64("--sample WIN", s.substr(c1 + 1, c2 - c1 - 1), 1);
    spec.windows = parseU64("--sample N", s.substr(c2 + 1), 1);
    return spec;
}

/**
 * --tenants preset:N,preset:N -> contiguous tenant groups. Node
 * counts must sum to --nodes (checked in buildMatrix, once both are
 * parsed).
 */
std::vector<TenantSpec>
parseTenants(const std::string &s)
{
    std::vector<TenantSpec> tenants;
    for (const std::string &e : splitCommas(s)) {
        const std::size_t colon = e.rfind(':');
        if (colon == std::string::npos || colon == 0) {
            throw std::invalid_argument(
                "--tenants wants preset:N[,preset:N...], got \"" + s +
                "\"");
        }
        TenantSpec t;
        t.workload = WorkloadSpec(e.substr(0, colon));
        t.nodes = static_cast<int>(parseU64(
            "--tenants node count", e.substr(colon + 1), 1,
            std::numeric_limits<int>::max()));
        tenants.push_back(std::move(t));
    }
    return tenants;
}

/**
 * Apply a --l2-kb/--l1-kb size override, keeping the set count a
 * power of two (CacheArray's indexing requirement) — a clear error
 * here instead of an assert inside the first shard.
 */
void
applyCacheKb(const char *what, CacheParams &c, std::uint64_t kb)
{
    const std::uint64_t bytes = kb * 1024;
    const std::uint64_t line = std::uint64_t{c.assoc} * c.blockBytes;
    const std::uint64_t sets = bytes / line;
    if (sets == 0 || bytes % line != 0 || (sets & (sets - 1)) != 0) {
        throw std::invalid_argument(
            std::string(what) + " " + std::to_string(kb) +
            ": size must give a power-of-two number of " +
            std::to_string(line) + "-byte sets (assoc " +
            std::to_string(c.assoc) + " x " +
            std::to_string(c.blockBytes) + "-byte blocks)");
    }
    c.sizeBytes = bytes;
}

Options
parseOptions(int argc, char **argv, int first)
{
    Options o;
    if (const char *s = std::getenv("TOKENSIM_WORKERS")) {
        const long v = std::strtol(s, nullptr, 10);
        o.workers = v >= 1 ? static_cast<int>(v) : 0;
    }
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                throw std::invalid_argument(a + " needs a value");
            return argv[++i];
        };
        if (a == "--protocols")
            o.protocols = splitCommas(value());
        else if (a == "--workloads")
            o.workloads = splitCommas(value());
        else if (a == "--tenants") {
            o.tenantsLabel = value();
            o.tenants = parseTenants(o.tenantsLabel);
        } else if (a == "--topology")
            o.topology = value();
        else if (a == "--nodes")
            o.nodes = parseInt(a, value(), 1);
        else if (a == "--ops")
            o.ops = parseU64(a, value(), 1);
        else if (a == "--warmup")
            o.warmup = parseU64(a, value());
        else if (a == "--l2-kb")
            o.l2Kb = parseU64(a, value(), 1);
        else if (a == "--l1-kb")
            o.l1Kb = parseU64(a, value(), 1);
        else if (a == "--sample")
            o.sample = parseSample(value());
        else if (a == "--snapshot")
            o.snapshot = value();
        else if (a == "--seeds")
            o.seeds = parseInt(a, value(), 1);
        else if (a == "--seed")
            o.seed = parseU64(a, value());
        else if (a == "--workers")
            o.workers = parseInt(a, value(), 0);
        else if (a == "--hosts")
            o.hosts = value();
        else if (a == "--join-timeout")
            o.joinTimeoutMs = parseI64(a, value(), -1);
        else if (a == "--hello-timeout")
            o.helloTimeoutMs = parseI64(a, value(), 1);
        else if (a == "--threads")
            o.threads = parseInt(a, value(), 0);
        else if (a == "--serial")
            o.serial = true;
        else if (a == "--fork-workers")
            o.forkWorkers = true;
        else if (a == "--checkpoint")
            o.checkpoint = value();
        else if (a == "--retries")
            o.retries = parseInt(a, value(), 0);
        else if (a == "--shard-timeout")
            o.shardTimeoutMs = parseI64(a, value(), -1);
        else if (a == "--help")
            o.help = true;
        else if (a == "--progress")
            o.progress = true;
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--metrics")
            o.metrics = true;
        else
            throw std::invalid_argument("unknown option: " + a);
    }
    return o;
}

WorkloadSpec
parseWorkload(const std::string &s)
{
    const std::string trace_prefix = "trace:";
    if (s.compare(0, trace_prefix.size(), trace_prefix) == 0)
        return WorkloadSpec::trace(s.substr(trace_prefix.size()));
    return WorkloadSpec(s);
}

std::vector<ExperimentSpec>
buildMatrix(const Options &o)
{
    if (!o.tenants.empty()) {
        int total = 0;
        for (const TenantSpec &t : o.tenants)
            total += t.nodes;
        if (total != o.nodes) {
            throw std::invalid_argument(
                "--tenants node counts sum to " +
                std::to_string(total) + " but --nodes is " +
                std::to_string(o.nodes));
        }
    }
    std::vector<ExperimentSpec> specs;
    for (const std::string &proto_name : o.protocols) {
        const ProtocolKind proto = parseProtocol(proto_name);
        // Multi-tenant mode replaces the workload axis: one design
        // point per protocol, labeled with the tenant list.
        const std::vector<std::string> wl_axis = o.tenants.empty()
            ? o.workloads
            : std::vector<std::string>{o.tenantsLabel};
        for (const std::string &w : wl_axis) {
            SystemConfig cfg;
            cfg.numNodes = o.nodes;
            cfg.protocol = proto;
            cfg.topology = !o.topology.empty() ? o.topology
                : proto == ProtocolKind::snooping ? "tree"
                                                  : "torus";
            if (o.tenants.empty())
                cfg.workload = parseWorkload(w);
            else
                cfg.tenants = o.tenants;
            if (o.l2Kb)
                applyCacheKb("--l2-kb", cfg.l2, o.l2Kb);
            if (o.l1Kb)
                applyCacheKb("--l1-kb", cfg.seq.l1, o.l1Kb);
            cfg.opsPerProcessor = o.ops;
            cfg.warmupOpsPerProcessor = o.warmup;
            cfg.sampling = o.sample;
            cfg.seed = o.seed;
            specs.push_back(ExperimentSpec{
                cfg, o.seeds, proto_name + "/" + w});
        }
    }
    return specs;
}

/**
 * Human-readable dump of one design point's merged metric registry:
 * every named metric — counters, stats, log-histograms — with its
 * pinned/diagnostic flag. Walks the registry generically, so metrics
 * added in System::results() appear here with no tool change.
 */
void
dumpMetrics(const ExperimentResult &r)
{
    std::fprintf(stderr, "\nmetrics for %s:\n", r.label.c_str());
    for (const Metric &m : r.metrics.all()) {
        const char flag = m.pinned ? 'P' : 'd';
        switch (m.kind) {
          case MetricKind::counter:
            std::fprintf(stderr, "  [%c] %-28s %llu\n", flag,
                         m.name.c_str(),
                         static_cast<unsigned long long>(m.value));
            break;
          case MetricKind::stat:
            std::fprintf(stderr,
                         "  [%c] %-28s n=%llu mean=%.4f sd=%.4f "
                         "min=%.1f max=%.1f\n",
                         flag, m.name.c_str(),
                         static_cast<unsigned long long>(
                             m.stat.count()),
                         m.stat.mean(), m.stat.stddev(),
                         m.stat.min(), m.stat.max());
            break;
          case MetricKind::histogram:
            std::fprintf(stderr, "  [%c] %-28s", flag,
                         m.name.c_str());
            for (const auto &[bucket, count] : m.hist.buckets()) {
                std::fprintf(stderr, " 2^%d:%llu", bucket - 1,
                             static_cast<unsigned long long>(count));
            }
            std::fprintf(stderr, "\n");
            break;
        }
    }
}

/**
 * Resolve --hosts: a readable file is one endpoint per line ('#'
 * comments and blanks skipped), anything else a comma list. Each
 * `listen:HOST:PORT` entry opens the parent's listener (last one
 * wins); every other entry is dialed as a `worker --listen` endpoint.
 */
void
parseHosts(const std::string &arg, std::string &listen,
           std::vector<std::string> &dial)
{
    std::vector<std::string> entries;
    std::ifstream f(arg);
    if (f.is_open()) {
        std::string line;
        while (std::getline(f, line))
            entries.push_back(line);
    } else {
        entries = splitCommas(arg);
    }
    const std::string listen_prefix = "listen:";
    for (std::string e : entries) {
        const std::size_t b = e.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        e = e.substr(b, e.find_last_not_of(" \t\r") - b + 1);
        if (e.empty() || e[0] == '#')
            continue;
        if (e.compare(0, listen_prefix.size(), listen_prefix) == 0)
            listen = e.substr(listen_prefix.size());
        else
            dial.push_back(e);
    }
}

/** "host:pid", the worker identity shown in the parent's logs. */
std::string
defaultIdentity()
{
    char host[256];
    if (::gethostname(host, sizeof(host)) != 0)
        std::strcpy(host, "unknown");
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

/** Path of this binary, for exec'ing ourselves as the worker. */
std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf,
                                 sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

/**
 * Resolve --snapshot: load PATH if it exists, else warm the first
 * design point once (fast-forward of --warmup ops) and write it.
 * Every spec then runs from the snapshot with its own warmup skipped.
 * Mismatches are typed errors before any simulation starts: each
 * spec's shape fingerprint is checked against the snapshot's header,
 * so "this sweep varies something a snapshot binds" fails with the
 * offending label, not 20 minutes in on a worker.
 */
void
attachSnapshot(const Options &o, std::vector<ExperimentSpec> &specs)
{
    if (o.seeds != 1) {
        throw std::invalid_argument(
            "--snapshot requires --seeds 1: a snapshot binds the "
            "per-node op streams, which the seed determines");
    }
    std::string bytes;
    std::ifstream in(o.snapshot, std::ios::binary);
    if (in.is_open()) {
        std::ostringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
        std::fprintf(stderr, "sweep: loaded warm snapshot %s "
                             "(%zu bytes, %llu warm ops/node)\n",
                     o.snapshot.c_str(), bytes.size(),
                     static_cast<unsigned long long>(
                         peekSnapshotHeader(bytes).warmOps));
    } else {
        if (o.warmup == 0) {
            throw std::invalid_argument(
                "--snapshot " + o.snapshot +
                " does not exist and --warmup is 0; pass --warmup N "
                "to say how far to fast-forward the fresh snapshot");
        }
        System sys(specs.front().cfg);
        sys.fastForward(o.warmup);
        bytes = saveWarmSnapshot(sys);
        std::ofstream out(o.snapshot,
                          std::ios::binary | std::ios::trunc);
        if (!out || !(out << bytes)) {
            throw std::runtime_error("cannot write snapshot " +
                                     o.snapshot);
        }
        std::fprintf(stderr, "sweep: warmed %llu ops/node and saved "
                             "snapshot %s (%zu bytes)\n",
                     static_cast<unsigned long long>(o.warmup),
                     o.snapshot.c_str(), bytes.size());
    }

    const std::uint64_t fp = peekSnapshotHeader(bytes).fingerprint;
    const auto shared =
        std::make_shared<const std::string>(std::move(bytes));
    for (ExperimentSpec &s : specs) {
        if (snapshotShapeFingerprint(s.cfg) != fp) {
            throw SnapshotError(
                "design point \"" + s.label + "\" does not match " +
                o.snapshot + ": a snapshot binds structure, "
                "workload, and seed — only timing knobs may vary "
                "across a snapshot-warmed sweep");
        }
        s.cfg.warmSnapshot = shared;
        s.cfg.warmupOpsPerProcessor = 0;
    }
}

int
runSweep(const Options &o)
{
    std::vector<ExperimentSpec> specs = buildMatrix(o);
    if (!o.snapshot.empty())
        attachSnapshot(o, specs);

    std::string tcpListenEp;
    std::vector<std::string> tcpDial;
    if (!o.hosts.empty())
        parseHosts(o.hosts, tcpListenEp, tcpDial);
    const bool tcpFleet = !tcpListenEp.empty() || !tcpDial.empty();

    if (!o.checkpoint.empty() &&
        (o.serial || (o.workers < 1 && !tcpFleet))) {
        throw std::invalid_argument(
            "--checkpoint requires --workers >= 1 or --hosts "
            "(checkpointing lives in the process-sharded runner)");
    }

    std::vector<ExperimentResult> results;
    if (o.serial) {
        std::fprintf(stderr, "sweep: %zu design points x %d seeds, "
                             "serial\n",
                     specs.size(), o.seeds);
        for (const ExperimentSpec &s : specs)
            results.push_back(
                runExperiment(s.cfg, s.seeds, s.label));
    } else if (o.workers >= 1 || tcpFleet) {
        DistRunnerOptions d;
        d.workers = std::max(o.workers, 0);
        d.maxShardRetries = o.retries;
        d.shardTimeoutMs = o.shardTimeoutMs;
        d.checkpointPath = o.checkpoint;
        d.listen = tcpListenEp;
        d.dial = tcpDial;
        d.joinTimeoutMs = o.joinTimeoutMs;
        d.helloTimeoutMs = o.helloTimeoutMs;
        if (!tcpListenEp.empty()) {
            // Announce the bound port (ephemeral or not) so scripts
            // can scrape it and point their workers at it.
            d.onListen = [](int port) {
                std::fprintf(stderr, "sweep: listening on port %d\n",
                             port);
            };
        }
        if (!o.forkWorkers && d.workers >= 1) {
            const std::string self = selfExe();
            if (!self.empty())
                d.workerArgv = {self, "worker"};
            // readlink failed (no /proc?): fall back to forked
            // in-process workers — same protocol, same results.
        }
        // Checkpoint, worker-lifecycle, and TCP fleet events
        // (restore counts, hang kills, respawns, joins, drops,
        // degradation) are operationally significant, so they print
        // even without --progress; the chatty per-shard lines stay
        // opt-in.
        const bool verbose = o.progress;
        d.progress = [verbose](const std::string &line) {
            if (verbose || line.rfind("checkpoint", 0) == 0 ||
                line.rfind("worker", 0) == 0 ||
                line.rfind("tcp", 0) == 0)
                std::fprintf(stderr, "sweep: %s\n", line.c_str());
        };
        std::fprintf(stderr,
                     "sweep: %zu design points x %d seeds across %d "
                     "local worker processes (%s)%s\n",
                     specs.size(), o.seeds, d.workers,
                     d.workerArgv.empty() ? "forked" : "exec'd",
                     tcpFleet ? " + TCP fleet" : "");
        results = DistRunner(std::move(d)).run(specs);
    } else {
        ParallelRunner runner(ParallelRunnerOptions{o.threads});
        std::fprintf(stderr, "sweep: %zu design points x %d seeds "
                             "across %d threads\n",
                     specs.size(), o.seeds, runner.threads());
        results = runner.run(specs);
    }

    // The machine-parseable contract: stdout carries exactly one
    // "<label> <digest>" line per design point, in spec order.
    for (const ExperimentResult &r : results)
        std::printf("%s %s\n", r.label.c_str(),
                    resultDigest(r).c_str());

    if (o.stats) {
        std::fprintf(stderr, "\n%-24s %12s %12s %10s %8s\n", "label",
                     "cyc/txn", "bytes/miss", "missRate", "evt/op");
        for (const ExperimentResult &r : results) {
            std::fprintf(stderr, "%-24s %12.2f %12.2f %10.4f %8.2f\n",
                         r.label.c_str(), r.cyclesPerTransaction,
                         r.bytesPerMiss, r.missRate, r.eventsPerOp);
        }
    }

    if (o.metrics) {
        for (const ExperimentResult &r : results)
            dumpMetrics(r);
    }
    return 0;
}

int
usage(const char *argv0)
{
    printHelp(argv0);
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string mode = argv[1];
    try {
        if (mode == "--help" || mode == "-h" || mode == "help") {
            printHelp(argv[0]);
            return 0;
        }
        if (mode == "worker") {
            std::string connect;
            std::string listenEp;
            std::string identity;
            long retryMs = 10000;
            for (int i = 2; i < argc; ++i) {
                const std::string a = argv[i];
                const auto value = [&]() -> std::string {
                    if (i + 1 >= argc) {
                        throw std::invalid_argument(a +
                                                    " needs a value");
                    }
                    return argv[++i];
                };
                if (a == "--connect")
                    connect = value();
                else if (a == "--listen")
                    listenEp = value();
                else if (a == "--retry-ms")
                    retryMs = parseI64(a, value(), 0);
                else if (a == "--identity")
                    identity = value();
                else
                    throw std::invalid_argument(
                        "unknown worker option: " + a);
            }
            if (!connect.empty() && !listenEp.empty()) {
                throw std::invalid_argument(
                    "worker: --connect and --listen are exclusive");
            }
            if (identity.empty())
                identity = defaultIdentity();
            if (!connect.empty()) {
                // A parent that dies mid-write must surface as EPIPE
                // (worker exits 2), not SIGPIPE.
                std::signal(SIGPIPE, SIG_IGN);
                const int fd = tcpConnect(connect, retryMs);
                const int rc = runDistWorker(fd, fd, {}, identity);
                ::close(fd);
                return rc;
            }
            if (!listenEp.empty()) {
                std::signal(SIGPIPE, SIG_IGN);
                int port = 0;
                const int lfd = tcpListen(listenEp, port);
                std::fprintf(stderr,
                             "worker: listening on port %d\n", port);
                const int fd = ::accept(lfd, nullptr, nullptr);
                if (fd < 0) {
                    throw std::runtime_error(
                        std::string("worker: accept(): ") +
                        std::strerror(errno));
                }
                ::close(lfd);
                const int rc = runDistWorker(fd, fd, {}, identity);
                ::close(fd);
                return rc;
            }
            return runDistWorker(0, 1, {}, identity);
        }
        if (mode == "run") {
            const Options o = parseOptions(argc, argv, 2);
            if (o.help) {
                printHelp(argv[0]);
                return 0;
            }
            return runSweep(o);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_tool: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
