/**
 * @file
 * Trace tooling: record a live generator run to a trace artifact,
 * replay a trace through any protocol, and inspect trace contents.
 *
 *   $ ./trace_tool record out.trace [options]
 *   $ ./trace_tool replay in.trace [options]
 *   $ ./trace_tool dump in.trace [node [limit]]
 *   $ ./trace_tool stats in.trace
 *
 * Options (record and replay):
 *   --workload P   preset for record (default oltp)
 *   --protocol P   tokenb|tokend|tokenm|tokena|tokennull|snooping|
 *                  directory|hammer (default tokenb)
 *   --topology T   torus|tree (default torus; tree for snooping)
 *   --nodes N      processors (default 8; replay takes it from the
 *                  trace header)
 *   --ops N        measured ops/processor (default 1000; replay
 *                  defaults to the trace's recorded budget)
 *   --warmup N     warmup ops/processor (default 0)
 *   --seed S       base seed (default 1; replay defaults to the
 *                  trace's recorded seed)
 *
 * A record → replay round trip with matching knobs reproduces the
 * live run's results bit-identically; both subcommands print the
 * resultDigest() line so the round trip is checkable by eye or diff.
 */

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "workload/trace.hh"

using namespace tokensim;

namespace {

ProtocolKind
parseProtocol(const std::string &s)
{
    if (s == "tokenb")
        return ProtocolKind::tokenB;
    if (s == "tokend")
        return ProtocolKind::tokenD;
    if (s == "tokenm")
        return ProtocolKind::tokenM;
    if (s == "tokena")
        return ProtocolKind::tokenA;
    if (s == "tokennull")
        return ProtocolKind::tokenNull;
    if (s == "snooping")
        return ProtocolKind::snooping;
    if (s == "directory")
        return ProtocolKind::directory;
    if (s == "hammer")
        return ProtocolKind::hammer;
    throw std::invalid_argument("unknown protocol: " + s);
}

struct Options
{
    std::string workload = "oltp";
    std::string protocol = "tokenb";
    std::string topology;
    int nodes = 8;
    std::uint64_t ops = 1000;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    bool opsSet = false;
    bool seedSet = false;
    bool warmupSet = false;
    bool nodesSet = false;
};

Options
parseOptions(int argc, char **argv, int first)
{
    Options o;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> std::string {
            if (++i >= argc)
                throw std::invalid_argument(flag + " needs a value");
            return argv[i];
        };
        if (flag == "--workload") {
            o.workload = value();
        } else if (flag == "--protocol") {
            o.protocol = value();
        } else if (flag == "--topology") {
            o.topology = value();
        } else if (flag == "--nodes") {
            o.nodes = std::stoi(value());
            o.nodesSet = true;
        } else if (flag == "--ops") {
            o.ops = std::stoull(value());
            o.opsSet = true;
        } else if (flag == "--warmup") {
            o.warmup = std::stoull(value());
            o.warmupSet = true;
        } else if (flag == "--seed") {
            o.seed = std::stoull(value());
            o.seedSet = true;
        } else {
            throw std::invalid_argument("unknown option: " + flag);
        }
    }
    return o;
}

SystemConfig
configFor(const Options &o)
{
    SystemConfig cfg;
    cfg.numNodes = o.nodes;
    cfg.protocol = parseProtocol(o.protocol);
    cfg.topology = !o.topology.empty() ? o.topology
        : cfg.protocol == ProtocolKind::snooping ? "tree" : "torus";
    cfg.opsPerProcessor = o.ops;
    cfg.warmupOpsPerProcessor = o.warmup;
    cfg.seed = o.seed;
    return cfg;
}

void
printResults(const SystemConfig &cfg, const ExperimentResult &r)
{
    std::printf("system:   %d nodes, %s on %s, workload %s\n",
                cfg.numNodes, protocolName(cfg.protocol),
                cfg.topology.c_str(), cfg.workload.name().c_str());
    std::printf("runtime:  %.1f cycles/transaction\n",
                r.cyclesPerTransaction);
    std::printf("misses:   %llu (%.1f%% of L2 accesses, %.1f%% "
                "cache-to-cache)\n",
                static_cast<unsigned long long>(r.misses),
                100.0 * r.missRate, 100.0 * r.cacheToCacheFrac);
    std::printf("traffic:  %.1f bytes/miss\n", r.bytesPerMiss);
    std::printf("digest:   %s\n", resultDigest(r).c_str());
}

int
cmdRecord(const std::string &path, const Options &o)
{
    SystemConfig cfg = configFor(o);
    cfg.workload = o.workload;
    cfg.recordTrace = path;

    System sys(cfg);
    sys.run();
    const ExperimentResult r =
        aggregateResults({sys.results()}, o.workload);
    printResults(cfg, r);

    const auto trace = TraceData::load(path);
    std::printf("recorded: %s (%llu ops over %u nodes)\n",
                path.c_str(),
                static_cast<unsigned long long>(trace->totalOps()),
                trace->numNodes());
    return 0;
}

int
cmdReplay(const std::string &path, const Options &o)
{
    const auto trace = TraceData::loadCached(path);
    const TraceHeader &hdr = trace->header();
    if (o.nodesSet &&
        o.nodes != static_cast<int>(trace->numNodes())) {
        std::fprintf(stderr,
                     "--nodes %d ignored: trace fixes %u nodes\n",
                     o.nodes, trace->numNodes());
    }

    SystemConfig cfg = configFor(o);
    cfg.numNodes = static_cast<int>(trace->numNodes());
    cfg.workload = WorkloadSpec::trace(path);
    cfg.seed = o.seedSet ? o.seed : hdr.seed;
    cfg.warmupOpsPerProcessor =
        o.warmupSet ? o.warmup : hdr.warmupOpsPerProcessor;
    if (!o.opsSet &&
        cfg.warmupOpsPerProcessor >= trace->minOpsPerNode()) {
        throw std::invalid_argument(
            "--warmup " + std::to_string(cfg.warmupOpsPerProcessor) +
            " consumes the whole trace (" +
            std::to_string(trace->minOpsPerNode()) +
            " ops/node); pass --ops to wrap the replay");
    }
    cfg.opsPerProcessor = o.opsSet
        ? o.ops
        : trace->minOpsPerNode() - cfg.warmupOpsPerProcessor;

    const ExperimentResult r = aggregateResults(
        {runOnce(cfg, cfg.seed)}, "replay:" + hdr.provenance);
    printResults(cfg, r);
    return 0;
}

int
cmdDump(const std::string &path, int argc, char **argv, int first)
{
    const auto trace = TraceData::load(path);
    const int node = argc > first ? std::stoi(argv[first]) : 0;
    const std::uint64_t limit = argc > first + 1
        ? std::stoull(argv[first + 1]) : 32;

    TraceData::Reader r(*trace, static_cast<NodeId>(node));
    std::printf("# node %d: %llu ops\n", node,
                static_cast<unsigned long long>(
                    trace->opsForNode(static_cast<NodeId>(node))));
    for (std::uint64_t i = 0; i < limit && !r.done(); ++i) {
        const WorkloadOp op = r.next();
        std::printf("%6llu  %-5s 0x%012llx%s\n",
                    static_cast<unsigned long long>(i),
                    op.op == MemOp::store ? "store" : "load",
                    static_cast<unsigned long long>(op.addr),
                    op.endsTransaction ? "  [txn]" : "");
    }
    return 0;
}

int
cmdStats(const std::string &path)
{
    const auto trace = TraceData::load(path);
    const TraceHeader &hdr = trace->header();
    std::printf("trace:      %s\n", path.c_str());
    std::printf("provenance: %s (seed %llu, warmup %llu "
                "ops/processor)\n",
                hdr.provenance.c_str(),
                static_cast<unsigned long long>(hdr.seed),
                static_cast<unsigned long long>(
                    hdr.warmupOpsPerProcessor));
    std::printf("geometry:   %u nodes, %u-byte blocks\n",
                hdr.numNodes, hdr.blockBytes);

    std::uint64_t stores = 0, txns = 0;
    for (std::uint32_t n = 0; n < hdr.numNodes; ++n) {
        TraceData::Reader r(*trace, static_cast<NodeId>(n));
        std::uint64_t node_stores = 0;
        while (!r.done()) {
            const WorkloadOp op = r.next();
            node_stores += op.op == MemOp::store;
            txns += op.endsTransaction;
        }
        stores += node_stores;
        std::printf("  node %2u: %8llu ops (%4.1f%% stores)\n", n,
                    static_cast<unsigned long long>(
                        trace->opsForNode(static_cast<NodeId>(n))),
                    trace->opsForNode(static_cast<NodeId>(n))
                        ? 100.0 * static_cast<double>(node_stores) /
                            static_cast<double>(trace->opsForNode(
                                static_cast<NodeId>(n)))
                        : 0.0);
    }
    std::printf("total:      %llu ops, %llu transactions, "
                "%.1f%% stores\n",
                static_cast<unsigned long long>(trace->totalOps()),
                static_cast<unsigned long long>(txns),
                trace->totalOps()
                    ? 100.0 * static_cast<double>(stores) /
                        static_cast<double>(trace->totalOps())
                    : 0.0);
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool record <out.trace> [options]\n"
                 "       trace_tool replay <in.trace> [options]\n"
                 "       trace_tool dump <in.trace> [node [limit]]\n"
                 "       trace_tool stats <in.trace>\n"
                 "see the file comment for options\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const std::string path = argv[2];
    try {
        if (cmd == "record")
            return cmdRecord(path, parseOptions(argc, argv, 3));
        if (cmd == "replay")
            return cmdReplay(path, parseOptions(argc, argv, 3));
        if (cmd == "dump")
            return cmdDump(path, argc, argv, 3);
        if (cmd == "stats")
            return cmdStats(path);
        usage();
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "trace_tool: %s\n", e.what());
        return 1;
    }
}
