#include "core/ext/tokena.hh"

#include "sim/stats.hh"

namespace tokensim {

TokenACache::TokenACache(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params,
                         TokenAuditor *auditor, std::uint64_t seed)
    : TokenBCache(ctx, id, params, auditor, seed)
{
    tag_ = strformat("tokena.%u", id);
}

void
TokenACache::sampleUtilization()
{
    const Tick now = ctx_.now();
    if (now < windowStart_ + params_.adaptiveWindow)
        return;
    const std::uint64_t byte_links =
        ctx_.net->traffic().totalByteLinks();
    const Tick elapsed = now - windowStart_;
    // Fraction of aggregate link capacity consumed in the window:
    // byte-links x (ticks per byte) / (links x elapsed ticks).
    const double ticks_per_byte =
        static_cast<double>(ctx_.net->serializationTicks(1));
    const double capacity =
        static_cast<double>(ctx_.net->topology().links().size()) *
        static_cast<double>(elapsed);
    utilization_ = capacity > 0
        ? static_cast<double>(byte_links - windowStartByteLinks_) *
              ticks_per_byte / capacity
        : 0.0;
    windowStart_ = now;
    windowStartByteLinks_ = byte_links;
}

void
TokenACache::issueTransient(Addr addr, const Transaction &trans,
                            bool reissue)
{
    if (reissue) {
        // The fallback stays a broadcast regardless of mode: it must
        // reach every holder.
        TokenBCache::issueTransient(addr, trans, reissue);
        return;
    }

    sampleUtilization();
    if (utilization_ < params_.adaptiveThreshold) {
        ++broadcasts_;
        TokenBCache::issueTransient(addr, trans, reissue);
        return;
    }

    // Bandwidth-scarce mode: TokenD-style unicast to the home, whose
    // soft state redirects toward the probable holders.
    ++unicasts_;
    Message msg;
    msg.type = trans.req.op == MemOp::store ? MsgType::getM
                                            : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

} // namespace tokensim
