/**
 * @file
 * TokenA: bandwidth-adaptive Token Coherence (Section 7).
 *
 * The paper: "bandwidth-adaptive techniques would allow a system to
 * dynamically adapt between TokenB and this directory-like mode,
 * providing high performance for multiple system sizes and workloads"
 * (citing the authors' bandwidth-adaptive snooping work [29]).
 *
 * TokenA issues each first transient request either as a TokenB
 * broadcast (bandwidth is cheap: lowest latency) or as a TokenD-style
 * unicast to the home's soft-state redirector (bandwidth is scarce:
 * directory-like traffic), choosing by a locally observable estimate
 * of interconnect utilization over a sliding window. Reissues always
 * broadcast — the safety net stays unconditional — and the correctness
 * substrate is untouched, so the adaptation policy, like every other
 * performance-protocol choice, cannot affect coherence.
 *
 * TokenA pairs with TokenDMemory so that unicast-mode requests get the
 * soft-state redirection they rely on.
 */

#ifndef TOKENSIM_CORE_EXT_TOKENA_HH
#define TOKENSIM_CORE_EXT_TOKENA_HH

#include "core/tokenb.hh"

namespace tokensim {

/** Bandwidth-adaptive cache controller. */
class TokenACache : public TokenBCache
{
  public:
    TokenACache(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params, TokenAuditor *auditor,
                std::uint64_t seed);

    /** First-issue decisions taken in each mode (for tests/benches). */
    std::uint64_t broadcastIssues() const { return broadcasts_; }
    std::uint64_t unicastIssues() const { return unicasts_; }

    /** Most recent utilization estimate, in [0, 1]. */
    double utilizationEstimate() const { return utilization_; }

    void
    resetState(const ProtocolParams &params,
               std::uint64_t seed) override
    {
        TokenBCache::resetState(params, seed);
        windowStart_ = 0;
        windowStartByteLinks_ = 0;
        utilization_ = 0.0;
        broadcasts_ = 0;
        unicasts_ = 0;
    }

  protected:
    void issueTransient(Addr addr, const Transaction &trans,
                        bool reissue) override;

  private:
    /** Refresh the utilization estimate once per window. */
    void sampleUtilization();

    Tick windowStart_ = 0;
    std::uint64_t windowStartByteLinks_ = 0;
    double utilization_ = 0.0;
    std::uint64_t broadcasts_ = 0;
    std::uint64_t unicasts_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_EXT_TOKENA_HH
