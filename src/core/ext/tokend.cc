#include "core/ext/tokend.hh"

namespace tokensim {

void
TokenDCache::issueTransient(Addr addr, const Transaction &trans,
                            bool reissue)
{
    Message msg;
    msg.type = trans.req.op == MemOp::store ? MsgType::getM
                                            : MsgType::getS;
    msg.cls = reissue ? MsgClass::reissue : MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    if (reissue)
        ++stats_.reissueMessages;
    sendAfter(ctx_.ctrlLatency, msg);
}

const TokenDMemory::SoftState *
TokenDMemory::softState(Addr addr) const
{
    auto it = soft_.find(ctx_.blockAlign(addr));
    return it == soft_.end() ? nullptr : &it->second;
}

void
TokenDMemory::handleTransient(const Message &msg)
{
    const Addr ba = msg.addr;
    const NodeId req = msg.requester;
    const bool exclusive = msg.type == MsgType::getM;

    // Memory responds from its own tokens exactly like TokenB.
    TokenBMemory::handleTransient(msg);

    // Soft-state redirection: forward the transient request to every
    // node predicted to hold tokens. The set must include the actual
    // owner for reads to succeed without a reissue, and the owner
    // token can migrate invisibly to the home (a dirty owner answers
    // a redirected read with everything) — but every owner is a past
    // requester, so redirecting to the whole remembered set keeps the
    // common case one-shot. The soft state is still only a hint;
    // stale entries merely cost a reissue.
    SoftState &ss = soft_[ba];
    std::set<NodeId> targets;
    if (ss.probableOwner != invalidNode && ss.probableOwner != req)
        targets.insert(ss.probableOwner);
    for (NodeId s : ss.probableSharers) {
        if (s != req)
            targets.insert(s);
    }
    for (NodeId t : targets) {
        Message fwd = msg;
        fwd.src = id_;
        fwd.dest = t;
        fwd.dstUnit = Unit::cache;
        fwd.isBroadcast = false;
        sendAfter(ctx_.ctrlLatency, fwd);
    }

    // Update the prediction: an exclusive requester will soon hold
    // everything; a shared requester joins the holder set (and may
    // become the owner through a migratory handoff).
    if (exclusive) {
        ss.probableOwner = req;
        ss.probableSharers.clear();
    } else {
        ss.probableSharers.insert(req);
        if (ss.probableOwner == invalidNode)
            ss.probableOwner = req;
        // Soft state, not a full map: bound the remembered set and
        // let reissues repopulate it after a reset.
        if (ss.probableSharers.size() > 32)
            ss.probableSharers.clear();
    }
}

} // namespace tokensim
