/**
 * @file
 * TokenD: a directory-like Token Coherence performance protocol
 * (Section 7, "Reducing traffic").
 *
 * Transient requests unicast to the home node instead of broadcasting.
 * The home responds from memory when it holds tokens and, in addition,
 * redirects the transient request to the nodes a small *soft-state*
 * directory predicts are holding tokens (a probable-owner/sharer set in
 * the spirit of Li & Hudak [25]). The soft state is only a performance
 * hint: it can be wrong, miss holders, or go stale — reissues fall back
 * to the same path and the persistent-request substrate guarantees
 * eventual success, so no directory-protocol-style races exist.
 *
 * Traffic is directory-like (point-to-point requests and redirects);
 * latency keeps the home indirection that TokenB avoids. TokenD's role
 * in this repository is the bandwidth end of the Section-7 trade-off
 * space, and the base protocol for the bandwidth-adaptive hybrid.
 *
 * TokenNullCache is the degenerate "null performance protocol" the
 * paper uses to argue obligations are empty: it never issues transient
 * requests at all, so every miss completes through a persistent
 * request. It is correct — and dreadfully slow — which the tests and
 * an ablation bench demonstrate.
 */

#ifndef TOKENSIM_CORE_EXT_TOKEND_HH
#define TOKENSIM_CORE_EXT_TOKEND_HH

#include <set>
#include <unordered_map>

#include "core/tokenb.hh"
#include "mem/block_map.hh"

namespace tokensim {

/** TokenD cache controller: unicast transient requests to the home. */
class TokenDCache : public TokenBCache
{
  public:
    using TokenBCache::TokenBCache;

  protected:
    void issueTransient(Addr addr, const Transaction &trans,
                        bool reissue) override;
};

/**
 * TokenD home controller: TokenB memory behavior plus soft-state
 * redirection of transient requests to predicted token holders.
 */
class TokenDMemory : public TokenBMemory
{
  public:
    using TokenBMemory::TokenBMemory;

    /** Soft-state entry for one block (exposed for tests). */
    struct SoftState
    {
        NodeId probableOwner = invalidNode;
        std::set<NodeId> probableSharers;
    };

    const SoftState *softState(Addr addr) const;

    void
    resetState(const ProtocolParams &params) override
    {
        TokenBMemory::resetState(params);
        soft_.clear();
    }

  protected:
    void handleTransient(const Message &msg) override;

  private:
    BlockMap<SoftState> soft_;
};

/** The null performance protocol: persistent requests do all the work. */
class TokenNullCache : public TokenBCache
{
  public:
    using TokenBCache::TokenBCache;

  protected:
    void
    issueTransient(Addr addr, const Transaction &trans,
                   bool reissue) override
    {
        // A null performance protocol has no obligations: issue
        // nothing and let the timeout escalate to a persistent
        // request. Correct, but slow (Section 4.1).
        (void)addr;
        (void)trans;
        (void)reissue;
    }
};

} // namespace tokensim

#endif // TOKENSIM_CORE_EXT_TOKEND_HH
