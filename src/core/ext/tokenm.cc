#include "core/ext/tokenm.hh"

#include "sim/stats.hh"

namespace tokensim {

TokenMCache::TokenMCache(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params,
                         TokenAuditor *auditor, std::uint64_t seed)
    : TokenBCache(ctx, id, params, auditor, seed),
      predictor_(params.predictorEntries, ctx.blockBytes,
                 ctx.numNodes)
{
    tag_ = strformat("tokenm.%u", id);
}

void
TokenMCache::handleMessage(const Message &msg)
{
    // Train the destination-set predictor on everything we observe:
    // a data-bearing token transfer means the sender was a holder; a
    // shared request means the requester is about to hold a token; an
    // exclusive request means the requester is about to hold *all*
    // tokens (so previous holders drop out of the set).
    switch (msg.type) {
      case MsgType::tokenTransfer:
        if (msg.src != id_ && msg.hasData)
            predictor_.train(msg.addr, msg.src);
        break;
      case MsgType::getS:
        if (msg.requester != id_)
            predictor_.train(msg.addr, msg.requester);
        break;
      case MsgType::getM:
        if (msg.requester != id_)
            predictor_.trainExclusive(msg.addr, msg.requester);
        break;
      default:
        break;
    }
    TokenBCache::handleMessage(msg);
}

void
TokenMCache::issueTransient(Addr addr, const Transaction &trans,
                            bool reissue)
{
    if (reissue) {
        // Mispredicts fall back to TokenB's broadcast, which is
        // guaranteed to reach every token holder.
        ++fallbacks_;
        TokenBCache::issueTransient(addr, trans, reissue);
        return;
    }

    Message msg;
    msg.type = trans.req.op == MemOp::store ? MsgType::getM
                                            : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.requester = id_;
    msg.src = id_;

    std::vector<NodeId> dests = predictor_.predict(addr);
    dests.push_back(ctx_.home(addr));   // memory may hold tokens
    ++multicasts_;
    multicastAfter(ctx_.ctrlLatency, msg, std::move(dests));
}

} // namespace tokensim
