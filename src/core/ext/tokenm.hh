/**
 * @file
 * TokenM: Token Coherence with destination-set prediction (Section 7).
 *
 * Instead of broadcasting, the first transient request multicasts to a
 * predicted destination set — the home node plus the nodes a small
 * per-cache predictor believes hold tokens (trained from received
 * token transfers and observed requests, after the destination-set
 * prediction line of work the paper cites [2, 3, 9, 27]). A mispredict
 * costs only a reissue, which falls back to a full broadcast; safety
 * and starvation-freedom come unchanged from the substrate, which is
 * the paper's point: prediction needs no new protocol races.
 */

#ifndef TOKENSIM_CORE_EXT_TOKENM_HH
#define TOKENSIM_CORE_EXT_TOKENM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/tokenb.hh"

namespace tokensim {

/**
 * Direct-mapped destination-set predictor: per block-group, a bitmask
 * of nodes recently seen holding (or about to hold) tokens.
 */
class DestSetPredictor
{
  public:
    DestSetPredictor(std::uint32_t entries, std::uint32_t block_bytes,
                     int num_nodes)
        : entries_(entries), blockBytes_(block_bytes),
          maskWords_((static_cast<std::size_t>(num_nodes) + 63) / 64),
          tags_(entries, ~Addr{0}),
          masks_(static_cast<std::size_t>(entries) * maskWords_, 0)
    {}

    /** Record that @p node holds (or will hold) tokens for @p addr. */
    void
    train(Addr addr, NodeId node)
    {
        const std::size_t idx = indexOf(addr);
        const Addr tag = addr / blockBytes_;
        if (tags_[idx] != tag) {
            tags_[idx] = tag;
            clearMask(idx);
        }
        setBit(idx, node);
    }

    /** Forget all training (reusable-System path). */
    void
    clear()
    {
        std::fill(tags_.begin(), tags_.end(), ~Addr{0});
        std::fill(masks_.begin(), masks_.end(), 0);
    }

    /**
     * Record that @p node is gathering *all* tokens for @p addr (an
     * observed exclusive request): every other holder is about to be
     * emptied, so the destination set collapses to that node. This is
     * what keeps predicted sets small instead of accreting toward
     * broadcast.
     */
    void
    trainExclusive(Addr addr, NodeId node)
    {
        const std::size_t idx = indexOf(addr);
        tags_[idx] = addr / blockBytes_;
        clearMask(idx);
        setBit(idx, node);
    }

    /** Predicted holder set for @p addr (may be empty), ascending. */
    std::vector<NodeId>
    predict(Addr addr) const
    {
        std::vector<NodeId> out;
        const std::size_t idx = indexOf(addr);
        if (tags_[idx] != addr / blockBytes_)
            return out;
        const std::uint64_t *mask = &masks_[idx * maskWords_];
        for (std::size_t w = 0; w < maskWords_; ++w) {
            std::uint64_t bits = mask[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                out.push_back(static_cast<NodeId>(w * 64 +
                                                  std::size_t(b)));
                bits &= bits - 1;
            }
        }
        return out;
    }

  private:
    std::size_t
    indexOf(Addr addr) const
    {
        return (addr / blockBytes_) % entries_;
    }

    void
    clearMask(std::size_t idx)
    {
        std::fill_n(masks_.begin() +
                        static_cast<std::ptrdiff_t>(idx * maskWords_),
                    maskWords_, 0);
    }

    void
    setBit(std::size_t idx, NodeId node)
    {
        const auto n = static_cast<std::size_t>(node);
        if (n < maskWords_ * 64)
            masks_[idx * maskWords_ + n / 64] |=
                std::uint64_t{1} << (n % 64);
    }

    std::uint32_t entries_;
    std::uint32_t blockBytes_;
    /** 64-bit mask words per entry: ceil(numNodes / 64) — the fix for
     *  the former single-word mask that silently dropped every node
     *  >= 64 from trained destination sets. */
    std::size_t maskWords_;
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> masks_;  ///< entries_ x maskWords_
};

/** TokenM cache controller: multicast to a predicted destination set. */
class TokenMCache : public TokenBCache
{
  public:
    TokenMCache(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params, TokenAuditor *auditor,
                std::uint64_t seed);

    void handleMessage(const Message &msg) override;

    /** Multicasts sent vs. broadcast fallbacks (for the ablation). */
    std::uint64_t multicasts() const { return multicasts_; }
    std::uint64_t broadcastFallbacks() const { return fallbacks_; }

    void
    resetState(const ProtocolParams &params,
               std::uint64_t seed) override
    {
        TokenBCache::resetState(params, seed);
        predictor_.clear();
        multicasts_ = 0;
        fallbacks_ = 0;
    }

  protected:
    void issueTransient(Addr addr, const Transaction &trans,
                        bool reissue) override;

  private:
    DestSetPredictor predictor_;
    std::uint64_t multicasts_ = 0;
    std::uint64_t fallbacks_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_EXT_TOKENM_HH
