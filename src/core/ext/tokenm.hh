/**
 * @file
 * TokenM: Token Coherence with destination-set prediction (Section 7).
 *
 * Instead of broadcasting, the first transient request multicasts to a
 * predicted destination set — the home node plus the nodes a small
 * per-cache predictor believes hold tokens (trained from received
 * token transfers and observed requests, after the destination-set
 * prediction line of work the paper cites [2, 3, 9, 27]). A mispredict
 * costs only a reissue, which falls back to a full broadcast; safety
 * and starvation-freedom come unchanged from the substrate, which is
 * the paper's point: prediction needs no new protocol races.
 */

#ifndef TOKENSIM_CORE_EXT_TOKENM_HH
#define TOKENSIM_CORE_EXT_TOKENM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/tokenb.hh"

namespace tokensim {

/**
 * Direct-mapped destination-set predictor: per block-group, a bitmask
 * of nodes recently seen holding (or about to hold) tokens.
 */
class DestSetPredictor
{
  public:
    DestSetPredictor(std::uint32_t entries, std::uint32_t block_bytes)
        : entries_(entries), blockBytes_(block_bytes),
          table_(entries)
    {}

    /** Record that @p node holds (or will hold) tokens for @p addr. */
    void
    train(Addr addr, NodeId node)
    {
        Entry &e = entryFor(addr);
        const Addr tag = addr / blockBytes_;
        if (e.tag != tag) {
            e.tag = tag;
            e.mask = 0;
        }
        if (node < 64)
            e.mask |= (std::uint64_t{1} << node);
    }

    /** Forget all training (reusable-System path). */
    void
    clear()
    {
        std::fill(table_.begin(), table_.end(), Entry{});
    }

    /**
     * Record that @p node is gathering *all* tokens for @p addr (an
     * observed exclusive request): every other holder is about to be
     * emptied, so the destination set collapses to that node. This is
     * what keeps predicted sets small instead of accreting toward
     * broadcast.
     */
    void
    trainExclusive(Addr addr, NodeId node)
    {
        Entry &e = entryFor(addr);
        e.tag = addr / blockBytes_;
        e.mask = node < 64 ? (std::uint64_t{1} << node) : 0;
    }

    /** Predicted holder set for @p addr (may be empty). */
    std::vector<NodeId>
    predict(Addr addr) const
    {
        std::vector<NodeId> out;
        const Entry &e = table_[indexOf(addr)];
        if (e.tag != addr / blockBytes_)
            return out;
        for (NodeId n = 0; n < 64; ++n) {
            if (e.mask & (std::uint64_t{1} << n))
                out.push_back(n);
        }
        return out;
    }

  private:
    struct Entry
    {
        Addr tag = ~Addr{0};
        std::uint64_t mask = 0;
    };

    std::size_t
    indexOf(Addr addr) const
    {
        return (addr / blockBytes_) % entries_;
    }

    Entry &entryFor(Addr addr) { return table_[indexOf(addr)]; }

    std::uint32_t entries_;
    std::uint32_t blockBytes_;
    std::vector<Entry> table_;
};

/** TokenM cache controller: multicast to a predicted destination set. */
class TokenMCache : public TokenBCache
{
  public:
    TokenMCache(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params, TokenAuditor *auditor,
                std::uint64_t seed);

    void handleMessage(const Message &msg) override;

    /** Multicasts sent vs. broadcast fallbacks (for the ablation). */
    std::uint64_t multicasts() const { return multicasts_; }
    std::uint64_t broadcastFallbacks() const { return fallbacks_; }

    void
    resetState(const ProtocolParams &params,
               std::uint64_t seed) override
    {
        TokenBCache::resetState(params, seed);
        predictor_.clear();
        multicasts_ = 0;
        fallbacks_ = 0;
    }

  protected:
    void issueTransient(Addr addr, const Transaction &trans,
                        bool reissue) override;

  private:
    DestSetPredictor predictor_;
    std::uint64_t multicasts_ = 0;
    std::uint64_t fallbacks_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_EXT_TOKENM_HH
