#include "core/persistent.hh"

#include <algorithm>
#include <cassert>

#include "sim/log.hh"
#include "sim/stats.hh"

namespace tokensim {

void
PersistentArbiter::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::persistReq:
        onRequest(msg);
        break;
      case MsgType::persistActAck:
        onActAck(msg);
        break;
      case MsgType::persistDone:
        onDone(msg);
        break;
      case MsgType::persistDeactAck:
        onDeactAck(msg);
        break;
      default:
        assert(false && "non-arbiter message routed to arbiter");
    }
}

void
PersistentArbiter::onRequest(const Message &msg)
{
    ++arbStats_.requestsReceived;
    BlockArb &b = blocks_[msg.addr];

    // Deduplicate: a requester already queued (or active) for this
    // block is not enqueued again.
    if (b.phase != Phase::idle && b.requester == msg.requester)
        return;
    if (std::find(b.queue.begin(), b.queue.end(), msg.requester) !=
        b.queue.end()) {
        return;
    }

    b.queue.push_back(msg.requester);
    arbStats_.maxQueueDepth =
        std::max<std::uint64_t>(arbStats_.maxQueueDepth, b.queue.size());
    if (b.phase == Phase::idle)
        activateNext(msg.addr, b);
}

void
PersistentArbiter::activateNext(Addr addr, BlockArb &b)
{
    assert(b.phase == Phase::idle);
    if (b.queue.empty())
        return;
    b.requester = b.queue.front();
    b.queue.pop_front();
    b.phase = Phase::activating;
    b.acksPending = ctx_.numNodes;
    b.doneReceived = false;
    ++arbStats_.activations;
    broadcastArb(b, MsgType::persistActivate, addr, b.requester);
}

void
PersistentArbiter::onActAck(const Message &msg)
{
    auto it = blocks_.find(msg.addr);
    assert(it != blocks_.end());
    BlockArb &b = it->second;
    assert(b.phase == Phase::activating);
    assert(b.acksPending > 0);
    if (--b.acksPending == 0) {
        b.phase = Phase::active;
        // The requester may have satisfied its request while the
        // activation handshake was still completing.
        if (b.doneReceived)
            startDeactivation(msg.addr, b);
    }
}

void
PersistentArbiter::onDone(const Message &msg)
{
    // A requester that completes several operations on the block
    // before the deactivation reaches it can emit duplicate dones;
    // anything not matching the live activation is stale and dropped.
    // (Per-route FIFO delivery guarantees a stale done cannot arrive
    // after the same node's next persistent request.)
    auto it = blocks_.find(msg.addr);
    if (it == blocks_.end())
        return;
    BlockArb &b = it->second;
    if ((b.phase != Phase::activating && b.phase != Phase::active) ||
        msg.requester != b.requester) {
        return;
    }
    if (b.phase == Phase::activating) {
        b.doneReceived = true;   // finish activation acks first
        return;
    }
    startDeactivation(msg.addr, b);
}

void
PersistentArbiter::startDeactivation(Addr addr, BlockArb &b)
{
    b.phase = Phase::deactivating;
    b.acksPending = ctx_.numNodes;
    ++arbStats_.deactivations;
    broadcastArb(b, MsgType::persistDeactivate, addr, b.requester);
}

void
PersistentArbiter::onDeactAck(const Message &msg)
{
    auto it = blocks_.find(msg.addr);
    assert(it != blocks_.end());
    BlockArb &b = it->second;
    assert(b.phase == Phase::deactivating);
    assert(b.acksPending > 0);
    if (--b.acksPending == 0) {
        b.phase = Phase::idle;
        b.requester = invalidNode;
        activateNext(msg.addr, b);
        if (b.phase == Phase::idle && b.queue.empty())
            blocks_.erase(it);
    }
}

void
PersistentArbiter::broadcastArb(BlockArb &b, MsgType type, Addr addr,
                                NodeId requester)
{
    // The per-block handshake phases serialize: the previous broadcast
    // always left before the next one is requested, so the block's
    // single timer handle is free for reuse here.
    assert(!b.bcastTimer.pending() &&
           "overlapping arbiter broadcasts for one block");
    Message msg;
    msg.type = type;
    msg.cls = MsgClass::persistent;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.src = id_;
    msg.requester = requester;
    b.bcastTimer.scheduleIn(*ctx_.eq, ctx_.ctrlLatency, [this, msg]() {
        if (logging::enabled(logging::Level::debug)) {
            logging::write(logging::Level::debug, ctx_.now(),
                           strformat("arbiter.%u", id_),
                           "broadcast " + msg.toString());
        }
        ctx_.net->broadcast(msg);
    });
}

} // namespace tokensim
