/**
 * @file
 * Persistent-request arbiter (Section 3.2, Figure 3c).
 *
 * One arbiter lives at each home memory module and serializes
 * persistent requests for the blocks homed there. The state machine per
 * block is:
 *
 *   Idle --persistReq--> Activating  (broadcast activation; await one
 *                                     ack from every node)
 *   Activating --all acks--> Active
 *   Active --persistDone--> Deactivating (broadcast deactivation;
 *                                     await acks)
 *   Deactivating --all acks--> Idle  (activate next queued requester)
 *
 * While a request is active every node — including the home memory —
 * forwards all present and future tokens for the block to the
 * initiator, which is what makes persistent requests succeed regardless
 * of races. Activation is fair (FIFO per block), giving starvation
 * freedom.
 */

#ifndef TOKENSIM_CORE_PERSISTENT_HH
#define TOKENSIM_CORE_PERSISTENT_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mem/block_map.hh"
#include "net/message.hh"
#include "proto/context.hh"
#include "sim/small_queue.hh"
#include "sim/types.hh"

namespace tokensim {

/** Arbiter statistics (exposed for tests and the reissue benches). */
struct ArbiterStats
{
    std::uint64_t requestsReceived = 0;
    std::uint64_t activations = 0;
    std::uint64_t deactivations = 0;
    std::uint64_t maxQueueDepth = 0;
};

/**
 * The per-home persistent-request arbiter. It is driven by the four
 * persistent message types its owning memory controller routes to it
 * and sends its own messages directly through the network.
 */
class PersistentArbiter
{
  public:
    /**
     * @param ctx shared protocol context.
     * @param id the home node this arbiter lives at.
     */
    PersistentArbiter(ProtoContext &ctx, NodeId id)
        : ctx_(ctx), id_(id)
    {}

    /** Route one arbiter-bound message (persistReq, persistActAck,
     *  persistDone, persistDeactAck). */
    void handleMessage(const Message &msg);

    const ArbiterStats &stats() const { return arbStats_; }

    /** Drop all per-block state and statistics (reusable-System
     *  path). */
    void
    reset()
    {
        // BlockMap::clear parks value objects; disarm any pending
        // broadcast timers so none fires for a wiped arbiter.
        for (auto entry : blocks_)
            entry.second.bcastTimer.cancel();
        blocks_.clear();
        arbStats_ = ArbiterStats{};
    }

    /** Requester whose persistent request is active for @p addr, or
     *  invalidNode. */
    NodeId
    activeRequester(Addr addr) const
    {
        auto it = blocks_.find(addr);
        if (it == blocks_.end())
            return invalidNode;
        const BlockArb &b = it->second;
        return b.phase == Phase::idle ? invalidNode : b.requester;
    }

    /** True if no block has persistent activity (for test teardown). */
    bool
    quiescent() const
    {
        for (const auto &[addr, b] : blocks_) {
            if (b.phase != Phase::idle || !b.queue.empty())
                return false;
        }
        return true;
    }

  private:
    enum class Phase : std::uint8_t
    {
        idle,
        activating,
        active,
        deactivating,
    };

    struct BlockArb
    {
        Phase phase = Phase::idle;
        NodeId requester = invalidNode;
        int acksPending = 0;
        bool doneReceived = false;
        SmallQueue<NodeId> queue;
        /**
         * Controller-latency delay before the activation/deactivation
         * broadcast leaves this arbiter. The phases serialize, so one
         * reusable timer handle per block covers both broadcasts —
         * never pending twice at once (asserted in broadcastArb).
         */
        EventQueue::Timer bcastTimer;
    };

    void onRequest(const Message &msg);
    void onActAck(const Message &msg);
    void onDone(const Message &msg);
    void onDeactAck(const Message &msg);

    /** Start activation of the queue head for @p addr. */
    void activateNext(Addr addr, BlockArb &b);

    /** Begin the deactivation handshake. */
    void startDeactivation(Addr addr, BlockArb &b);

    /** Broadcast an activation/deactivation for @p b's block after
     *  the controller latency, via the block's reusable timer. */
    void broadcastArb(BlockArb &b, MsgType type, Addr addr,
                      NodeId requester);

    ProtoContext &ctx_;
    NodeId id_;
    BlockMap<BlockArb> blocks_;
    ArbiterStats arbStats_;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_PERSISTENT_HH
