#include "core/substrate.hh"

#include <cassert>

#include "sim/stats.hh"

namespace tokensim {

Message
makeTokenMsg(Addr addr, NodeId src, NodeId dest, Unit dst_unit,
             int count, bool owner, bool has_data, std::uint64_t data,
             MsgClass cls)
{
    assert(count >= 1 && "token message must carry at least one token");
    // Invariant #4': a message with the owner token must contain data.
    assert((!owner || has_data) &&
           "invariant #4' violated: owner token without data");
    Message msg;
    msg.type = MsgType::tokenTransfer;
    msg.cls = cls;
    msg.dstUnit = dst_unit;
    msg.addr = addr;
    msg.src = src;
    msg.dest = dest;
    msg.tokens = count;
    msg.ownerToken = owner;
    msg.hasData = has_data;
    msg.data = data;
    return msg;
}

bool
TokenAuditor::auditBlock(Addr a, std::string *err) const
{
    const Addr ba = align(a);
    int held = 0;
    int owners = 0;
    for (const TokenHolder *h : holders_) {
        const int n = h->tokensHeld(ba);
        assert(n >= 0);
        held += n;
        owners += h->ownerHeld(ba) ? 1 : 0;
    }
    Flight flight;
    auto it = inFlight_.find(ba);
    if (it != inFlight_.end())
        flight = it->second;

    const int total = held + flight.tokens;
    const int total_owners = owners + flight.owners;
    if (total != t_ || total_owners != 1) {
        if (err) {
            *err = strformat(
                "block %#lx: %d tokens (%d held + %d in flight), "
                "%d owner tokens; expected %d tokens, 1 owner",
                static_cast<unsigned long>(ba), total, held,
                flight.tokens, total_owners, t_);
            for (const TokenHolder *h : holders_) {
                if (h->tokensHeld(ba) > 0 || h->ownerHeld(ba)) {
                    *err += strformat(
                        "\n  %s holds %d%s", h->holderName().c_str(),
                        h->tokensHeld(ba),
                        h->ownerHeld(ba) ? " (owner)" : "");
                }
            }
        }
        return false;
    }
    return true;
}

bool
TokenAuditor::auditAll(std::string *err) const
{
    for (Addr a : touched_) {
        if (!auditBlock(a, err))
            return false;
    }
    return true;
}

} // namespace tokensim
