/**
 * @file
 * Correctness-substrate services shared by all Token Coherence
 * performance protocols: token-message construction (enforcing
 * invariant #4'), and the TokenAuditor, a runtime checker for the
 * conservation invariant #1' that tests attach to a simulated system.
 *
 * The auditor watches every token-bearing message enter and leave the
 * interconnect and can, at any instant, verify that the tokens held by
 * all caches, all memory controllers, and all in-flight messages sum to
 * exactly T for every block the system has touched — the inductive
 * argument of Section 3.1 made executable.
 */

#ifndef TOKENSIM_CORE_SUBSTRATE_HH
#define TOKENSIM_CORE_SUBSTRATE_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/token_state.hh"
#include "mem/block_map.hh"
#include "net/message.hh"
#include "sim/types.hh"

namespace tokensim {

/**
 * Construct a token-transfer message, asserting invariant #4' (owner
 * token implies data) at the only place such messages are created.
 *
 * @param addr block address.
 * @param src sending node.
 * @param dest destination node.
 * @param dst_unit receiving controller at the destination.
 * @param count total tokens carried (including the owner token).
 * @param owner true if the owner token is among them.
 * @param has_data true if the 64-byte block travels along.
 * @param data modeled block contents (meaningful when has_data).
 * @param cls traffic class for accounting.
 */
Message makeTokenMsg(Addr addr, NodeId src, NodeId dest, Unit dst_unit,
                     int count, bool owner, bool has_data,
                     std::uint64_t data, MsgClass cls);

/** Interface the auditor uses to inspect a component's holdings. */
class TokenHolder
{
  public:
    virtual ~TokenHolder() = default;

    /** Total tokens (including owner) this component holds for a
     *  block. */
    virtual int tokensHeld(Addr block_addr) const = 0;

    /** True if this component holds the block's owner token. */
    virtual bool ownerHeld(Addr block_addr) const = 0;

    /** Identification for audit failure reports. */
    virtual std::string holderName() const = 0;
};

/**
 * Runtime checker for token-conservation invariant #1'.
 *
 * Components report token sends and deliveries; holders register for
 * inspection. audit() then checks, for every touched block:
 *   sum(held by components) + in-flight == T, and
 *   exactly one owner token exists (held or in flight).
 */
class TokenAuditor
{
  public:
    TokenAuditor(int tokens_per_block, std::uint32_t block_bytes)
        : t_(tokens_per_block), blockBytes_(block_bytes)
    {}

    int tokensPerBlock() const { return t_; }

    /** Register a cache or memory controller for inspection. */
    void addHolder(const TokenHolder *h) { holders_.push_back(h); }

    /** Forget all in-flight and touched-block state; registered
     *  holders stay (the reusable-System path keeps controllers). */
    void
    reset()
    {
        inFlight_.clear();
        touched_.clear();
    }

    /** Note a block exists (blocks with no traffic are still audited). */
    void
    touch(Addr a)
    {
        touched_.insert(align(a));
    }

    /** A token-bearing message entered the network. */
    void
    onSend(const Message &msg)
    {
        if (msg.tokens == 0)
            return;
        auto &f = inFlight_[align(msg.addr)];
        f.tokens += msg.tokens;
        f.owners += msg.ownerToken ? 1 : 0;
        touched_.insert(align(msg.addr));
    }

    /** A token-bearing message was consumed by a component. */
    void
    onReceive(const Message &msg)
    {
        if (msg.tokens == 0)
            return;
        auto &f = inFlight_[align(msg.addr)];
        f.tokens -= msg.tokens;
        f.owners -= msg.ownerToken ? 1 : 0;
    }

    /** Tokens currently inside the interconnect for @p a. */
    int
    inFlight(Addr a) const
    {
        auto it = inFlight_.find(align(a));
        return it == inFlight_.end() ? 0 : it->second.tokens;
    }

    /** Check one block; returns true if conserved. */
    bool auditBlock(Addr a, std::string *err = nullptr) const;

    /** Check every touched block; false (and fills @p err) on the
     *  first violation. */
    bool auditAll(std::string *err = nullptr) const;

    const std::set<Addr> &touchedBlocks() const { return touched_; }

  private:
    struct Flight
    {
        int tokens = 0;
        int owners = 0;
    };

    Addr
    align(Addr a) const
    {
        return a & ~static_cast<Addr>(blockBytes_ - 1);
    }

    int t_;
    std::uint32_t blockBytes_;
    std::vector<const TokenHolder *> holders_;
    BlockMap<Flight> inFlight_;
    std::set<Addr> touched_;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_SUBSTRATE_HH
