/**
 * @file
 * Token-counting state of the correctness substrate (Section 3.1).
 *
 * Each block of shared memory has a fixed number of tokens T (at least
 * the number of processors), one of which is the distinguished *owner*
 * token. The optimized invariants of Section 3.1 are:
 *
 *   #1' At all times, each block has T tokens in the system, one of
 *       which is the owner token.
 *   #2' A processor can write a block only if it holds all T tokens and
 *       has valid data.
 *   #3' A processor can read a block only if it holds at least one
 *       token and has valid data.
 *   #4' If a coherence message contains the owner token, it must
 *       contain data.
 *
 * TokenCount is the holding of one component (a cache line, a memory
 * block, or a message in flight); tokensim::TokenCoding reproduces the
 * paper's 2+ceil(log2 T)-bit storage encoding (valid bit, owner bit,
 * non-owner token count) used for cache tags and memory ECC storage.
 */

#ifndef TOKENSIM_CORE_TOKEN_STATE_HH
#define TOKENSIM_CORE_TOKEN_STATE_HH

#include <cassert>
#include <cstdint>

#include "sim/types.hh"

namespace tokensim {

/** MOESI-equivalent names for token holdings (for reporting/tests). */
enum class TokenMoesi : std::uint8_t
{
    invalid,   ///< no tokens
    shared,    ///< >=1 token, no owner token
    owned,     ///< owner token but not all tokens
    modified,  ///< all T tokens
};

/**
 * One component's holding of a block's tokens.
 *
 * @c count is the total number of tokens held, including the owner
 * token when @c owner is set. @c valid is the data-valid bit that
 * invariant #3' adds: components may hold non-owner tokens without
 * valid data (e.g., after receiving a dataless token message).
 */
struct TokenCount
{
    int count = 0;
    bool owner = false;
    bool valid = false;

    /** Holding with all T tokens, owner, and valid data (initial
     *  state of a block's home memory). */
    static TokenCount
    all(int t)
    {
        return TokenCount{t, true, true};
    }

    bool
    sane(int t) const
    {
        if (count < 0 || count > t)
            return false;
        if (owner && count < 1)
            return false;
        if (valid && count < 1)
            return false;   // valid data requires >=1 token
        return true;
    }

    /** Can this holder read the block (invariant #3')? */
    bool canRead() const { return count >= 1 && valid; }

    /** Can this holder write the block (invariant #2')? */
    bool canWrite(int t) const { return count == t && valid; }

    /** MOESI-equivalent state name. */
    TokenMoesi
    moesi(int t) const
    {
        if (count == 0)
            return TokenMoesi::invalid;
        if (count == t)
            return TokenMoesi::modified;
        return owner ? TokenMoesi::owned : TokenMoesi::shared;
    }

    /**
     * Absorb tokens arriving in a message. @p with_data indicates the
     * message carried the data block; receiving data with at least one
     * token sets the valid bit (Section 3.1).
     */
    void
    absorb(int n, bool owner_token, bool with_data)
    {
        assert(n >= 0);
        assert(!owner_token || n >= 1);
        count += n;
        if (owner_token) {
            assert(!owner && "owner token duplicated");
            owner = true;
        }
        if (with_data && n >= 1)
            valid = true;
    }

    /**
     * Give up @p n tokens (@p owner_token says whether the owner token
     * is among them). Clears the valid bit when no tokens remain.
     */
    void
    release(int n, bool owner_token)
    {
        assert(n >= 1 && n <= count);
        assert(!owner_token || owner);
        // Releasing the owner token while keeping others is legal at
        // the substrate level; performance protocols decide policy.
        count -= n;
        if (owner_token)
            owner = false;
        if (count == 0)
            valid = false;
        assert(!owner || count >= 1);
    }
};

/**
 * The paper's storage encoding: tokens can be stored in
 * 2 + ceil(log2(T)) bits — a data-valid bit, an owner-token bit, and a
 * count of non-owner tokens in [0, T-1]. (For example, 64 tokens with
 * 64-byte blocks adds one byte of storage: 1.6% overhead.)
 */
class TokenCoding
{
  public:
    explicit TokenCoding(int t) : t_(t)
    {
        assert(t >= 1);
        int bits = 0;
        while ((1 << bits) < t)
            ++bits;
        countBits_ = bits;
    }

    /** Total tokens per block. */
    int tokensPerBlock() const { return t_; }

    /** Bits of storage per block: valid + owner + non-owner count. */
    int bits() const { return 2 + countBits_; }

    /** Storage overhead for a block of @p block_bytes bytes. */
    double
    overhead(int block_bytes) const
    {
        return static_cast<double>(bits()) /
               static_cast<double>(block_bytes * 8);
    }

    /** Pack a holding into its storage representation. */
    std::uint32_t
    encode(const TokenCount &tc) const
    {
        assert(tc.sane(t_));
        const int non_owner = tc.count - (tc.owner ? 1 : 0);
        assert(non_owner >= 0 && non_owner <= t_ - 1);
        return (static_cast<std::uint32_t>(tc.valid) << (countBits_ + 1)) |
               (static_cast<std::uint32_t>(tc.owner) << countBits_) |
               static_cast<std::uint32_t>(non_owner);
    }

    /** Unpack a storage representation. */
    TokenCount
    decode(std::uint32_t bits) const
    {
        TokenCount tc;
        const std::uint32_t count_mask =
            (1u << countBits_) - 1u;
        const int non_owner = static_cast<int>(bits & count_mask);
        tc.owner = (bits >> countBits_) & 1u;
        tc.valid = (bits >> (countBits_ + 1)) & 1u;
        tc.count = non_owner + (tc.owner ? 1 : 0);
        return tc;
    }

  private:
    int t_;
    int countBits_;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_TOKEN_STATE_HH
