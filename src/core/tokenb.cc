#include "core/tokenb.hh"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/stats.hh"

namespace tokensim {

// =====================================================================
// TokenBCache
// =====================================================================

TokenBCache::TokenBCache(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params,
                         TokenAuditor *auditor, std::uint64_t seed)
    : CacheController(ctx, id, strformat("tokenb.%u", id)),
      t_(params.tokensPerBlock > 0 ? params.tokensPerBlock
                                   : ctx.numNodes),
      params_(params),
      auditor_(auditor),
      rng_(seed),
      l2_(ctx.l2),
      avgMissLatency_(0.2)
{
    assert(t_ >= ctx.numNodes &&
           "T must be at least the number of processors");
}

void
TokenBCache::resetState(const ProtocolParams &params,
                        std::uint64_t seed)
{
    assert(params.tokensPerBlock == params_.tokensPerBlock);
    params_ = params;
    rng_ = Rng(seed);
    l2_.clear();
    // clear() parks value objects like erase() does; disarm any armed
    // reissue timers first (resetState may be driven directly, without
    // the queue-wide EventQueue::reset that would disarm them).
    for (auto entry : outstanding_)
        entry.second.timer.cancel();
    outstanding_.clear();
    persistentTable_.clear();
    persistDoneSent_.clear();
    avgMissLatency_ = Ewma(0.2);
    stats_ = CacheCtrlStats{};
}

void
TokenBCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    TokenLine *line = l2_.touch(ba);
    const bool hit = line && line->validData &&
        (is_store ? line->tokens == t_ : line->tokens >= 1);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        resp.wasMiss = false;
        if (is_store) {
            line->data = req.storeValue;
            line->dirty = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    auto [it, inserted] = outstanding_.emplace(ba);
    assert(inserted);
    Transaction &tr = it->second;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    issueTransient(ba, tr, false);
    scheduleTimeout(ba);
}

void
TokenBCache::issueTransient(Addr addr, const Transaction &trans,
                            bool reissue)
{
    Message msg;
    msg.type = trans.req.op == MemOp::store ? MsgType::getM
                                            : MsgType::getS;
    msg.cls = reissue ? MsgClass::reissue : MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.requester = id_;
    if (reissue)
        ++stats_.reissueMessages;
    if (tracing()) {
        trace(strformat("%s transient %s for %#lx",
                        reissue ? "reissue" : "issue",
                        msgTypeName(msg.type),
                        static_cast<unsigned long>(addr)));
    }

    // Failure injection: performance protocols have no correctness
    // obligations (Section 4.1), so the tests deliberately sabotage
    // this one — dropped or misdirected transient requests must cost
    // only reissues and persistent requests, never coherence.
    if (params_.chaosDropFraction > 0.0 &&
        rng_.chance(params_.chaosDropFraction)) {
        return;   // request "lost"
    }
    if (params_.chaosMisdirectFraction > 0.0 &&
        rng_.chance(params_.chaosMisdirectFraction)) {
        msg.dest = static_cast<NodeId>(
            rng_.below(static_cast<std::uint64_t>(ctx_.numNodes)));
        sendAfter(ctx_.ctrlLatency, msg);
        return;
    }
    broadcastAfter(ctx_.ctrlLatency, msg);
}

void
TokenBCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM:
        handleTransient(msg);
        break;
      case MsgType::tokenTransfer:
        handleTokenTransfer(msg);
        break;
      case MsgType::persistActivate:
        handlePersistActivate(msg);
        break;
      case MsgType::persistDeactivate:
        handlePersistDeactivate(msg);
        break;
      default:
        assert(false && "unexpected message at token cache");
    }
}

void
TokenBCache::handleTransient(const Message &msg)
{
    if (msg.requester == id_)
        return;   // our own broadcast echoing back

    const Addr ba = msg.addr;

    // Active persistent requests override performance-protocol
    // policies: tokens for this block are committed to the starving
    // requester, so transient requests are ignored.
    if (persistentTable_.count(ba))
        return;

    TokenLine *line = l2_.find(ba);
    if (!line || line->tokens == 0)
        return;   // state I: ignore all transient requests

    const bool exclusive = msg.type == MsgType::getM;
    const NodeId req = msg.requester;
    const Tick resp_delay = ctx_.ctrlLatency + ctx_.l2.latency;

    if (!exclusive) {
        // Shared request: only the owner responds.
        if (!line->owner)
            return;
        if (line->tokens == t_ && line->dirty && params_.migratoryOpt) {
            // Migratory optimization: a dirty exclusive owner hands
            // over read/write permission (data + all tokens).
            sendTokensFromLine(*line, line->tokens, true, true, req,
                               Unit::cache, MsgClass::data, resp_delay);
        } else if (line->tokens >= 2) {
            // Keep the owner token; share one plain token with data.
            sendTokensFromLine(*line, 1, false, true, req, Unit::cache,
                               MsgClass::data, resp_delay);
        } else {
            // Only the owner token remains; it must travel with data.
            sendTokensFromLine(*line, 1, true, true, req, Unit::cache,
                               MsgClass::data, resp_delay);
        }
    } else {
        // Exclusive request: give up everything. The owner includes
        // data; plain sharers send a dataless token message (like a
        // directory protocol's invalidation acknowledgment).
        const bool with_data = line->owner;
        sendTokensFromLine(*line, line->tokens, line->owner, with_data,
                           req, Unit::cache,
                           with_data ? MsgClass::data : MsgClass::nonData,
                           resp_delay);
    }
}

void
TokenBCache::handleTokenTransfer(const Message &msg)
{
    if (auditor_)
        auditor_->onReceive(msg);

    const Addr ba = msg.addr;

    // Forward everything to an active persistent requester.
    auto pit = persistentTable_.find(ba);
    if (pit != persistentTable_.end() && pit->second != id_) {
        Message fwd = makeTokenMsg(ba, id_, pit->second, Unit::cache,
                                   msg.tokens, msg.ownerToken,
                                   msg.hasData, msg.data,
                                   MsgClass::persistent);
        sendTokenMsg(fwd, ctx_.ctrlLatency);
        return;
    }

    TokenLine *line = l2_.find(ba);
    if (!line) {
        const bool wanted = outstanding_.count(ba) ||
            (pit != persistentTable_.end() && pit->second == id_);
        if (!wanted) {
            // Unsolicited tokens and no room wanted for them:
            // redirect to the home memory (Section 3.1's freedom).
            Message fwd = makeTokenMsg(
                ba, id_, ctx_.home(ba), Unit::memory, msg.tokens,
                msg.ownerToken, msg.hasData, msg.data,
                msg.hasData ? MsgClass::data : MsgClass::nonData);
            sendTokenMsg(fwd, ctx_.ctrlLatency);
            return;
        }
        line = allocLine(ba);
    }

    line->tokens += msg.tokens;
    assert(line->tokens <= t_ && "more than T tokens accumulated");
    if (msg.ownerToken) {
        assert(!line->owner && "owner token duplicated");
        line->owner = true;
    }
    if (msg.hasData) {
        if (line->validData) {
            // All simultaneously-valid copies must agree (safety).
            assert(line->data == msg.data &&
                   "incoherent data copies detected");
        } else {
            line->validData = true;
            line->data = msg.data;
        }
    }

    auto it = outstanding_.find(ba);
    if (it != outstanding_.end()) {
        if (msg.hasData && !msg.fromMemoryCtrl && msg.src != id_)
            it->second.sawCacheData = true;
        checkSatisfied(ba);
    }
}

void
TokenBCache::checkSatisfied(Addr addr)
{
    auto it = outstanding_.find(addr);
    if (it == outstanding_.end())
        return;
    TokenLine *line = l2_.find(addr);
    if (!line || !line->validData)
        return;

    Transaction &tr = it->second;
    const bool is_store = tr.req.op == MemOp::store;
    if (is_store ? line->tokens != t_ : line->tokens < 1)
        return;

    if (is_store) {
        line->data = tr.req.storeValue;
        line->dirty = true;
    }

    ProcResponse resp;
    resp.reqId = tr.req.reqId;
    resp.addr = tr.req.addr;
    resp.op = tr.req.op;
    resp.value = line->data;
    resp.issuedAt = tr.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = tr.sawCacheData;
    resp.reissues = tr.reissues;
    resp.usedPersistent = tr.persistentIssued;

    const auto latency =
        static_cast<double>(ctx_.now() - tr.issuedAt);
    ++stats_.missesCompleted;
    stats_.missLatency.add(latency);
    stats_.missLatencyHist.add(latency);
    // The adaptive reissue timeout tracks the latency of *ordinary*
    // misses. Folding in persistent-path latencies (which include the
    // timeout chain itself) makes the estimate — and therefore the
    // next timeouts — grow geometrically under contention: a runaway
    // backoff that starves the system. Found by the failure-injection
    // tests.
    if (!tr.persistentIssued)
        avgMissLatency_.add(latency);
    if (tr.sawCacheData)
        ++stats_.cacheToCache;

    // Table 2 classification (mutually exclusive buckets).
    if (tr.persistentIssued)
        ++stats_.missesPersistent;
    else if (tr.reissues == 1)
        ++stats_.missesReissuedOnce;
    else if (tr.reissues >= 2)
        ++stats_.missesReissuedMore;
    else
        ++stats_.missesNotReissued;

    const bool need_done = [&] {
        auto pit = persistentTable_.find(addr);
        return pit != persistentTable_.end() && pit->second == id_;
    }();

    // BlockMap::erase parks the value object in its tombstoned slot
    // instead of destroying it, so disarm the reissue timer here — it
    // must never fire for a completed transaction.
    tr.timer.cancel();
    outstanding_.erase(it);
    if (need_done)
        sendPersistDone(addr);
    respond(resp);
}

Tick
TokenBCache::avgMissTicks() const
{
    if (avgMissLatency_.primed())
        return static_cast<Tick>(avgMissLatency_.value());
    return params_.initialAvgMissLatency;
}

Tick
TokenBCache::timeoutDelay(int reissues_so_far)
{
    const double base = params_.reissueLatencyMultiple *
        static_cast<double>(avgMissTicks());
    // Small randomized exponential backoff, "much like ethernet".
    const double jitter = rng_.uniform() * params_.reissueJitter *
        static_cast<double>(1u << reissues_so_far);
    auto delay = static_cast<Tick>(base * (1.0 + jitter));
    if (delay > params_.maxReissueTimeout)
        delay = params_.maxReissueTimeout;
    return delay > 0 ? delay : 1;
}

void
TokenBCache::scheduleTimeout(Addr addr)
{
    auto it = outstanding_.find(addr);
    assert(it != outstanding_.end());
    Transaction &tr = it->second;
    tr.timer.scheduleIn(*ctx_.eq, timeoutDelay(tr.reissues),
                        [this, addr]() { onTimeout(addr); });
}

void
TokenBCache::onTimeout(Addr addr)
{
    // A fired timer implies a live, non-escalated transaction: the
    // timer is cancelled by completion (Transaction teardown) and by
    // persistent activation, so no stale-dispatch guard is needed.
    auto it = outstanding_.find(addr);
    assert(it != outstanding_.end() &&
           "reissue timer outlived its transaction");
    Transaction &tr = it->second;
    assert(!tr.persistentIssued &&
           "reissue timer armed past persistent escalation");

    if (params_.reissueEnabled && tr.reissues < params_.maxReissues) {
        ++tr.reissues;
        issueTransient(addr, tr, true);
        scheduleTimeout(addr);
    } else {
        invokePersistent(addr, tr);
    }
}

void
TokenBCache::invokePersistent(Addr addr, Transaction &trans)
{
    trans.persistentIssued = true;
    ++stats_.persistentInvocations;
    if (tracing()) {
        trace(strformat("invoke persistent request for %#lx",
                        static_cast<unsigned long>(addr)));
    }
    Message msg;
    msg.type = MsgType::persistReq;
    msg.cls = MsgClass::persistent;
    msg.dstUnit = Unit::arbiter;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
TokenBCache::sendPersistDone(Addr addr)
{
    // One release per activation: later completions on the same block
    // while the deactivation is still in flight must not re-release.
    if (!persistDoneSent_.insert(addr).second)
        return;
    Message msg;
    msg.type = MsgType::persistDone;
    msg.cls = MsgClass::persistent;
    msg.dstUnit = Unit::arbiter;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
TokenBCache::handlePersistActivate(const Message &msg)
{
    const Addr ba = msg.addr;
    const NodeId starving = msg.requester;

    assert(!persistentTable_.count(ba) &&
           "arbiter activated two persistent requests for one block");
    persistentTable_[ba] = starving;

    if (starving == id_) {
        auto it = outstanding_.find(ba);
        if (it != outstanding_.end()) {
            // The activation now backs whatever transaction is in
            // flight for this block (it may be a successor of the one
            // that invoked the persistent request). Reissuing is
            // pointless from here on: the substrate guarantees the
            // tokens arrive, so the reissue timer is disarmed.
            it->second.persistentIssued = true;
            it->second.timer.cancel();
        } else {
            // Satisfied before activation completed: release it.
            sendPersistDone(ba);
        }
    } else {
        TokenLine *line = l2_.find(ba);
        if (line && line->tokens > 0) {
            const bool with_data = line->owner;
            sendTokensFromLine(*line, line->tokens, line->owner,
                               with_data, starving, Unit::cache,
                               MsgClass::persistent,
                               ctx_.ctrlLatency + ctx_.l2.latency);
        }
    }

    Message ack;
    ack.type = MsgType::persistActAck;
    ack.cls = MsgClass::persistent;
    ack.dstUnit = Unit::arbiter;
    ack.addr = ba;
    ack.dest = msg.src;
    ack.requester = starving;
    sendAfter(ctx_.ctrlLatency, ack);
}

void
TokenBCache::handlePersistDeactivate(const Message &msg)
{
    persistentTable_.erase(msg.addr);
    persistDoneSent_.erase(msg.addr);

    Message ack;
    ack.type = MsgType::persistDeactAck;
    ack.cls = MsgClass::persistent;
    ack.dstUnit = Unit::arbiter;
    ack.addr = msg.addr;
    ack.dest = msg.src;
    ack.requester = msg.requester;
    sendAfter(ctx_.ctrlLatency, ack);
}

TokenLine *
TokenBCache::findLine(Addr addr)
{
    return l2_.find(addr);
}

TokenLine *
TokenBCache::allocLine(Addr addr)
{
    CacheArray<TokenLine>::Victim victim;
    TokenLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
TokenBCache::evictVictim(const TokenLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    assert(victim.tokens > 0 && "token-less line survived in cache");

    // Tokens (and data, when we are the owner) return to the home —
    // unless a persistent request is active, in which case they are
    // owed to the starving node.
    NodeId dest = ctx_.home(victim.addr);
    Unit unit = Unit::memory;
    MsgClass cls = victim.owner ? MsgClass::data : MsgClass::nonData;
    auto pit = persistentTable_.find(victim.addr);
    if (pit != persistentTable_.end() && pit->second != id_) {
        dest = pit->second;
        unit = Unit::cache;
        cls = MsgClass::persistent;
    }
    Message msg = makeTokenMsg(victim.addr, id_, dest, unit,
                               victim.tokens, victim.owner,
                               victim.owner, victim.data, cls);
    sendTokenMsg(msg, ctx_.ctrlLatency);
}

void
TokenBCache::sendTokensFromLine(TokenLine &line, int count,
                                bool send_owner, bool with_data,
                                NodeId dest, Unit dst_unit, MsgClass cls,
                                Tick delay)
{
    assert(count >= 1 && count <= line.tokens);
    assert(!send_owner || line.owner);
    Message msg = makeTokenMsg(line.addr, id_, dest, dst_unit, count,
                               send_owner, with_data, line.data, cls);
    line.tokens -= count;
    if (send_owner)
        line.owner = false;
    sendTokenMsg(msg, delay);
    if (line.tokens == 0)
        freeLine(line);
}

void
TokenBCache::sendTokenMsg(Message msg, Tick delay)
{
    if (auditor_)
        auditor_->onSend(msg);
    if (tracing())
        trace("send " + msg.toString());
    msg.src = id_;
    ctx_.eq->scheduleIn(delay, [this, msg]() { ctx_.net->unicast(msg); });
}

void
TokenBCache::freeLine(TokenLine &line)
{
    assert(line.tokens == 0);
    notifyLineRemoved(line.addr);
    l2_.invalidate(line.addr);
}

bool
TokenBCache::hasPermission(Addr addr, MemOp op) const
{
    const TokenLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line || !line->validData)
        return false;
    return op == MemOp::store ? line->tokens == t_ : line->tokens >= 1;
}

TokenMoesi
TokenBCache::moesiState(Addr addr) const
{
    const TokenLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return TokenMoesi::invalid;
    TokenCount tc{line->tokens, line->owner, line->validData};
    return tc.moesi(t_);
}

int
TokenBCache::tokensHeld(Addr block_addr) const
{
    const TokenLine *line = l2_.find(block_addr);
    return line ? line->tokens : 0;
}

bool
TokenBCache::ownerHeld(Addr block_addr) const
{
    const TokenLine *line = l2_.find(block_addr);
    return line && line->owner;
}

std::string
TokenBCache::holderName() const
{
    return strformat("cache.%u", id_);
}

// =====================================================================
// TokenBMemory
// =====================================================================

TokenBMemory::TokenBMemory(ProtoContext &ctx, NodeId id,
                           const ProtocolParams &params,
                           TokenAuditor *auditor)
    : MemoryController(ctx, id, strformat("tokenmem.%u", id)),
      t_(params.tokensPerBlock > 0 ? params.tokensPerBlock
                                   : ctx.numNodes),
      params_(params),
      auditor_(auditor),
      store_(ctx.blockBytes),
      dram_(ctx.dram),
      arbiter_(ctx, id)
{
}

void
TokenBMemory::resetState(const ProtocolParams &params)
{
    assert(params.tokensPerBlock == params_.tokensPerBlock);
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    arbiter_.reset();
    tokens_.clear();
    persistentTable_.clear();
}

TokenCount &
TokenBMemory::tokensFor(Addr addr)
{
    assert(ctx_.home(addr) == id_ &&
           "memory touched for a block homed elsewhere");
    auto it = tokens_.find(addr);
    if (it == tokens_.end())
        it = tokens_.emplace(addr, TokenCount::all(t_)).first;
    return it->second;
}

void
TokenBMemory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM:
        handleTransient(msg);
        break;
      case MsgType::tokenTransfer:
        handleTokenTransfer(msg);
        break;
      case MsgType::persistActivate:
        handlePersistActivate(msg);
        break;
      case MsgType::persistDeactivate:
        handlePersistDeactivate(msg);
        break;
      case MsgType::persistReq:
      case MsgType::persistActAck:
      case MsgType::persistDone:
      case MsgType::persistDeactAck:
        arbiter_.handleMessage(msg);
        break;
      default:
        assert(false && "unexpected message at token memory");
    }
}

void
TokenBMemory::handleTransient(const Message &msg)
{
    const Addr ba = msg.addr;
    if (persistentTable_.count(ba))
        return;   // tokens are owed to a starving node

    TokenCount &tc = tokensFor(ba);
    if (tc.count == 0)
        return;

    const NodeId req = msg.requester;
    if (msg.type == MsgType::getS) {
        if (!tc.owner)
            return;   // some cache owns it and will respond
        if (tc.count >= 2) {
            sendFromMemory(ba, tc, 1, false, true, req, MsgClass::data);
        } else {
            sendFromMemory(ba, tc, 1, true, true, req, MsgClass::data);
        }
    } else {
        const bool with_data = tc.owner;
        sendFromMemory(ba, tc, tc.count, tc.owner, with_data, req,
                       with_data ? MsgClass::data : MsgClass::nonData);
    }
}

void
TokenBMemory::handleTokenTransfer(const Message &msg)
{
    if (auditor_)
        auditor_->onReceive(msg);

    const Addr ba = msg.addr;

    auto pit = persistentTable_.find(ba);
    if (pit != persistentTable_.end()) {
        // Tokens arriving while a persistent request is active are
        // forwarded onward to the starving node.
        Message fwd = makeTokenMsg(ba, id_, pit->second, Unit::cache,
                                   msg.tokens, msg.ownerToken,
                                   msg.hasData, msg.data,
                                   MsgClass::persistent);
        fwd.fromMemoryCtrl = true;
        if (auditor_)
            auditor_->onSend(fwd);
        ctx_.eq->scheduleIn(ctx_.ctrlLatency, [this, fwd]() {
            ctx_.net->unicast(fwd);
        });
        return;
    }

    TokenCount &tc = tokensFor(ba);
    tc.absorb(msg.tokens, msg.ownerToken, msg.hasData);
    assert(tc.sane(t_));
    if (msg.hasData) {
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
    }
}

void
TokenBMemory::handlePersistActivate(const Message &msg)
{
    const Addr ba = msg.addr;
    assert(!persistentTable_.count(ba));
    persistentTable_[ba] = msg.requester;

    TokenCount &tc = tokensFor(ba);
    if (tc.count > 0) {
        const bool with_data = tc.owner;
        sendFromMemory(ba, tc, tc.count, tc.owner, with_data,
                       msg.requester, MsgClass::persistent);
    }
}

void
TokenBMemory::handlePersistDeactivate(const Message &msg)
{
    persistentTable_.erase(msg.addr);
}

void
TokenBMemory::sendFromMemory(Addr addr, TokenCount &tc, int count,
                             bool send_owner, bool with_data,
                             NodeId dest, MsgClass cls)
{
    Message msg = makeTokenMsg(addr, id_, dest, Unit::cache, count,
                               send_owner, with_data, store_.read(addr),
                               cls);
    msg.fromMemoryCtrl = true;
    tc.release(count, send_owner);
    if (auditor_)
        auditor_->onSend(msg);
    // Tokens live in ECC bits of DRAM: memory responses — data or
    // dataless — pay the DRAM access latency.
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, msg]() { ctx_.net->unicast(msg); });
}

std::uint64_t
TokenBMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

TokenCount
TokenBMemory::tokenState(Addr addr) const
{
    auto it = tokens_.find(addr);
    if (it != tokens_.end())
        return it->second;
    if (ctx_.home(addr) == id_)
        return TokenCount::all(t_);
    return TokenCount{};
}

int
TokenBMemory::tokensHeld(Addr block_addr) const
{
    return tokenState(block_addr).count;
}

bool
TokenBMemory::ownerHeld(Addr block_addr) const
{
    return tokenState(block_addr).owner;
}

std::string
TokenBMemory::holderName() const
{
    return strformat("memory.%u", id_);
}

// =====================================================================
// Fast-forward and warm-state snapshots
// =====================================================================

TokenLine *
TokenBCache::functionalAlloc(Addr ba, FunctionalEnv &env)
{
    CacheArray<TokenLine>::Victim victim;
    TokenLine *line = l2_.allocate(ba, &victim);
    if (victim.valid) {
        const TokenLine &v = victim.line;
        assert(v.tokens > 0 && "token-less line survived in cache");
        env.holders.drop(v.addr, id_);
        notifyLineRemoved(v.addr);
        // The eviction token message, delivered: the home absorbs the
        // tokens (data travels iff we own — invariant #4'). The home's
        // holding must already be materialized: tokens can only have
        // reached this cache through it.
        auto *mem = static_cast<TokenBMemory *>(
            env.memories[ctx_.home(v.addr)]);
        TokenCount &tc = mem->tokensFor(v.addr);
        tc.absorb(v.tokens, v.owner, v.owner);
        assert(tc.sane(t_));
        if (v.owner)
            mem->store_.write(v.addr, v.data);
    }
    return line;
}

std::uint64_t
TokenBCache::applyFunctional(const ProcRequest &req, FunctionalEnv &env)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    assert(outstanding_.empty() && persistentTable_.empty() &&
           "fast-forward requires a quiescent cache");
    if (auditor_)
        auditor_->touch(ba);

    TokenLine *line = l2_.touch(ba);
    const bool hit = line && line->validData &&
        (is_store ? line->tokens == t_ : line->tokens >= 1);
    if (hit) {
        if (is_store) {
            line->data = req.storeValue;
            line->dirty = true;
            return req.storeValue;
        }
        return line->data;
    }

    auto *mem = static_cast<TokenBMemory *>(env.memories[ctx_.home(ba)]);

    // Token conservation makes the home record an O(1) oracle for
    // where the peer scans can stop: the owner token is either in a
    // cache line or folded into the home's TokenCount, and tokens the
    // home still holds cannot be in any peer. Both short-circuits
    // skip only peers that provably hold nothing for this block, so
    // the resulting state is bit-identical to the full scans.
    const TokenCount memView = mem->tokenState(ba);

    // When a scan is unavoidable, the env's holder index bounds it to
    // the caches that actually hold the block. The probe order can
    // differ from the full walk's, but the outcome cannot: GetS takes
    // from the unique owner wherever it sits, and GetM drains every
    // actual holder (conservation pins their token total), so the
    // resulting state is bit-identical either way.
    const auto holderView = [&] {
        return env.holders.holders(ba, [&](auto &&push) {
            for (std::size_t i = 0; i < env.caches.size(); ++i) {
                if (static_cast<TokenBCache *>(env.caches[i])
                        ->l2_.find(ba))
                    push(static_cast<NodeId>(i));
            }
        });
    };

    if (!is_store) {
        // GetS: the owner — a cache line holding the owner token, else
        // the home memory — responds exactly as handleTransient would;
        // the transfer settles atomically.
        int gotTokens = 0;
        bool gotOwner = false;
        std::uint64_t value = 0;
        TokenBCache *ownerCache = nullptr;
        TokenLine *ownerLine = nullptr;
        if (!memView.owner) {
            const HolderIndex::View hv = holderView();
            if (!hv.overflow) {
                for (unsigned i = 0; i < hv.n && !ownerLine; ++i) {
                    if (hv.ids[i] == id_)
                        continue;
                    auto *tc = static_cast<TokenBCache *>(
                        env.caches[hv.ids[i]]);
                    TokenLine *l = tc->l2_.find(ba);
                    assert(l && "holder index lists a cache with "
                                "no line");
                    if (l->owner) {
                        ownerCache = tc;
                        ownerLine = l;
                    }
                }
            } else {
                for (CacheController *c : env.caches) {
                    if (c == this)
                        continue;
                    auto *tc = static_cast<TokenBCache *>(c);
                    TokenLine *l = tc->l2_.find(ba);
                    if (l && l->owner) {
                        ownerCache = tc;
                        ownerLine = l;
                        break;
                    }
                }
            }
            assert(ownerLine &&
                   "owner neither at home nor in any cache");
        }
        if (ownerLine) {
            value = ownerLine->data;
            if (ownerLine->tokens == t_ && ownerLine->dirty &&
                params_.migratoryOpt) {
                // Migratory: data + all tokens + owner.
                gotTokens = ownerLine->tokens;
                gotOwner = true;
            } else if (ownerLine->tokens >= 2) {
                gotTokens = 1;   // one plain token, owner kept
            } else {
                gotTokens = 1;   // the owner token itself, with data
                gotOwner = true;
            }
            ownerLine->tokens -= gotTokens;
            if (gotOwner)
                ownerLine->owner = false;
            if (ownerLine->tokens == 0) {
                env.holders.drop(ba, ownerCache->id_);
                ownerCache->freeLine(*ownerLine);
            }
        } else {
            TokenCount &tc = mem->tokensFor(ba);
            assert(tc.owner &&
                   "no owner anywhere for a quiescent block");
            const bool send_owner = tc.count < 2;
            tc.release(1, send_owner);
            gotTokens = 1;
            gotOwner = send_owner;
            value = mem->store_.read(ba);
        }
        TokenLine *nl = line ? line : functionalAlloc(ba, env);
        env.holders.add(ba, id_);
        nl->tokens += gotTokens;
        assert(nl->tokens <= t_);
        if (gotOwner) {
            assert(!nl->owner && "owner token duplicated");
            nl->owner = true;
        }
        if (!nl->validData) {
            nl->validData = true;
            nl->data = value;
        } else {
            assert(nl->data == value &&
                   "incoherent data copies detected");
        }
        return nl->data;
    }

    // GetM: gather every token in the system — each peer holding any
    // gives up everything (the owner's travel with data), and so does
    // the home. Peers can hold only what neither we nor the home do;
    // once that many have been collected, the remaining peers provably
    // hold nothing and the scan stops.
    int inPeers = t_ - (line ? line->tokens : 0) - memView.count;
    assert(inPeers >= 0);
    const auto gatherFrom = [&](TokenBCache *tc) {
        TokenLine *l = tc->l2_.find(ba);
        if (!l)
            return;
        assert(l->tokens > 0);
        const int n = l->tokens;
        const bool owner = l->owner;
        l->tokens = 0;
        l->owner = false;
        env.holders.drop(ba, tc->id_);
        tc->freeLine(*l);
        TokenLine *nl = line ? line : functionalAlloc(ba, env);
        line = nl;
        nl->tokens += n;
        inPeers -= n;
        if (owner) {
            assert(!nl->owner);
            nl->owner = true;
        }
    };
    if (inPeers > 0) {
        const HolderIndex::View hv = holderView();
        if (!hv.overflow) {
            for (unsigned i = 0; i < hv.n && inPeers > 0; ++i) {
                if (hv.ids[i] == id_)
                    continue;
                gatherFrom(static_cast<TokenBCache *>(
                    env.caches[hv.ids[i]]));
            }
            assert(inPeers == 0);
        } else {
            for (CacheController *c : env.caches) {
                if (inPeers == 0)
                    break;
                if (c == this)
                    continue;
                gatherFrom(static_cast<TokenBCache *>(c));
            }
        }
    }
    {
        TokenCount &tc = mem->tokensFor(ba);
        if (tc.count > 0) {
            const int n = tc.count;
            const bool owner = tc.owner;
            tc.release(n, owner);
            TokenLine *nl = line ? line : functionalAlloc(ba, env);
            line = nl;
            line->tokens += n;
            if (owner) {
                assert(!line->owner);
                line->owner = true;
            }
        }
    }
    env.holders.add(ba, id_);
    assert(line && line->tokens == t_ && line->owner &&
           "store gathered fewer than T tokens");
    line->validData = true;
    line->dirty = true;
    line->data = req.storeValue;
    return req.storeValue;
}

void
TokenBCache::encodeWarmState(WireWriter &w) const
{
    if (!quiescent() || !persistentTable_.empty() ||
        !persistDoneSent_.empty())
        throw WireError("token cache has transactions in flight");
    w.varint(l2_.useCounter());
    w.varint(l2_.validCount());
    l2_.forEachValidIndexed(
        [&](std::size_t way, std::uint64_t stamp, const TokenLine &l) {
            w.varint(way);
            w.varint(stamp);
            w.varint(l.addr);
            w.varint(static_cast<std::uint64_t>(l.tokens));
            w.boolean(l.owner);
            w.boolean(l.validData);
            w.boolean(l.dirty);
            w.varint(l.data);
        });
    putStructEnd(w);
}

void
TokenBCache::decodeWarmState(WireReader &r)
{
    l2_.setUseCounter(r.varint("l2 use counter"));
    const std::uint64_t count = r.varint("l2 line count");
    if (count > l2_.wayCount())
        throw WireError("l2 line count exceeds the array's ways");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t way = r.varint("l2 way index");
        const std::uint64_t stamp = r.varint("l2 lru stamp");
        const Addr addr = r.varint("l2 line address");
        const std::uint64_t tokens = r.varint("token line count");
        const bool owner = r.boolean("token line owner");
        const bool validData = r.boolean("token line validData");
        const bool dirty = r.boolean("token line dirty");
        const std::uint64_t data = r.varint("token line data");
        if (way >= l2_.wayCount())
            throw WireError("l2 way index out of range");
        if (l2_.wayValid(way))
            throw WireError("duplicate l2 way in snapshot");
        if (ctx_.blockAlign(addr) != addr)
            throw WireError("l2 line address not block-aligned");
        if (!l2_.wayMatchesSet(way, addr))
            throw WireError("l2 line mapped to the wrong set");
        if (l2_.contains(addr))
            throw WireError("duplicate l2 block in snapshot");
        if (stamp > l2_.useCounter())
            throw WireError("l2 lru stamp exceeds the use counter");
        if (tokens < 1 || tokens > static_cast<std::uint64_t>(t_))
            throw WireError("token count outside [1, T]");
        if (validData && tokens < 1)
            throw WireError("valid data without a token");
        TokenLine *l = l2_.restoreWay(static_cast<std::size_t>(way),
                                      addr, stamp);
        l->tokens = static_cast<int>(tokens);
        l->owner = owner;
        l->validData = validData;
        l->dirty = dirty;
        l->data = data;
        if (auditor_)
            auditor_->touch(addr);
    }
    checkStructEnd(r, "token cache warm state");
}

void
TokenBMemory::encodeWarmState(WireWriter &w) const
{
    if (!persistentTable_.empty() || !arbiter_.quiescent())
        throw WireError("token memory has persistent activity");
    std::vector<std::pair<Addr, std::uint64_t>> written;
    for (const auto &[a, v] : store_.blocks()) {
        if (v != BackingStore::initialValue(a))
            written.emplace_back(a, v);
    }
    std::sort(written.begin(), written.end());
    w.varint(written.size());
    for (const auto &[a, v] : written) {
        w.varint(a);
        w.varint(v);
    }

    // Holdings that still equal the initial all-T state are omitted:
    // tokensFor() rematerializes them on demand, so the snapshot stays
    // canonical whether or not they were ever touched.
    std::vector<Addr> live;
    for (const auto &[a, tc] : tokens_) {
        if (tc.count != t_ || !tc.owner || !tc.valid)
            live.push_back(a);
    }
    std::sort(live.begin(), live.end());
    w.varint(live.size());
    for (Addr a : live) {
        const TokenCount &tc = tokens_.find(a)->second;
        w.varint(a);
        w.varint(static_cast<std::uint64_t>(tc.count));
        w.boolean(tc.owner);
        w.boolean(tc.valid);
    }
    putStructEnd(w);
}

void
TokenBMemory::decodeWarmState(WireReader &r)
{
    const std::uint64_t nwritten = r.varint("written block count");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < nwritten; ++i) {
        const Addr a = r.varint("written block address");
        const std::uint64_t v = r.varint("written block value");
        if (ctx_.blockAlign(a) != a)
            throw WireError("written block not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("written block homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("written blocks not strictly ascending");
        prev = a;
        store_.write(a, v);
    }
    const std::uint64_t nlive = r.varint("token holding count");
    prev = 0;
    for (std::uint64_t i = 0; i < nlive; ++i) {
        const Addr a = r.varint("token holding address");
        const std::uint64_t count = r.varint("token holding tokens");
        const bool owner = r.boolean("token holding owner");
        const bool valid = r.boolean("token holding valid");
        if (ctx_.blockAlign(a) != a)
            throw WireError("token holding not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("token holding homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("token holdings not strictly ascending");
        prev = a;
        TokenCount tc;
        tc.count = static_cast<int>(count);
        tc.owner = owner;
        tc.valid = valid;
        if (count > static_cast<std::uint64_t>(t_) || !tc.sane(t_))
            throw WireError("token holding violates invariants");
        tokens_.emplace(a, tc);
        if (auditor_)
            auditor_->touch(a);
    }
    checkStructEnd(r, "token memory warm state");
}

} // namespace tokensim
