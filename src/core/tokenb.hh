/**
 * @file
 * TokenB: the Token-Coherence-using-Broadcast performance protocol
 * (Section 4.2), together with the token-counting cache and memory
 * controllers of the correctness substrate it runs on.
 *
 * Policy summary (the paper's three policies):
 *  - Issuing transient requests: broadcast every transient request.
 *  - Responding: like a MOSI protocol. No tokens: ignore. Non-owner
 *    tokens only: ignore shared requests; send all tokens (dataless)
 *    on exclusive requests. Owner: send data + one (usually non-owner)
 *    token on shared requests, data + all tokens on exclusive
 *    requests. An exclusive owner that has written the block answers a
 *    shared request with data + all tokens (migratory optimization).
 *  - Reissuing: after roughly twice the recent average miss latency
 *    (plus a small randomized exponential backoff), reissue; after
 *    maxReissues reissues (~10x the average miss time in total),
 *    invoke a persistent request.
 *
 * The cache controller is written so that the Section-7 performance
 * protocols (TokenD, TokenM) can subclass it and change only the
 * transient-request issue policy; the correctness machinery (token
 * counting, persistent-request tables) is shared, which is exactly the
 * decoupling the paper advocates.
 */

#ifndef TOKENSIM_CORE_TOKENB_HH
#define TOKENSIM_CORE_TOKENB_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/persistent.hh"
#include "core/substrate.hh"
#include "core/token_state.hh"
#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "proto/controller.hh"
#include "sim/random.hh"

namespace tokensim {

/** An L2 line under Token Coherence: tokens live in the tag state. */
struct TokenLine : CacheLineBase
{
    int tokens = 0;        ///< total tokens held (including owner)
    bool owner = false;    ///< owner token held
    bool validData = false;///< data-valid bit (invariant #3')
    bool dirty = false;    ///< written while holding all tokens
    std::uint64_t data = 0;
};

/**
 * Token-coherence L2 cache controller running the TokenB performance
 * protocol.
 */
class TokenBCache : public CacheController, public TokenHolder
{
  public:
    /**
     * @param ctx shared environment.
     * @param id this node.
     * @param params protocol tuning (tokensPerBlock, reissue policy).
     * @param auditor optional conservation checker (tests).
     * @param seed RNG seed for the randomized reissue backoff.
     */
    TokenBCache(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params, TokenAuditor *auditor,
                std::uint64_t seed);

    void request(const ProcRequest &req) override;
    void handleMessage(const Message &msg) override;
    bool hasPermission(Addr addr, MemOp op) const override;
    void resetState(const ProtocolParams &params,
                    std::uint64_t seed) override;

    /**
     * Functional apply, shared by every token performance protocol
     * (TokenD/M/A/Null inherit it): token movements settle atomically
     * — requester gathers what the responding policy would send — so
     * conservation invariant #1' holds at every step. Performance soft
     * state (destination predictors, soft-state directory, adaptation
     * windows) stays cold, as documented on the base class.
     */
    std::uint64_t applyFunctional(const ProcRequest &req,
                                  FunctionalEnv &env) override;
    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    // TokenHolder
    int tokensHeld(Addr block_addr) const override;
    bool ownerHeld(Addr block_addr) const override;
    std::string holderName() const override;

    /** Tokens per block, T. */
    int tokensPerBlock() const { return t_; }

    /** True if no transaction is outstanding (test teardown). */
    bool quiescent() const { return outstanding_.empty(); }

    /** Current MOESI-equivalent state of a block (tests). */
    TokenMoesi moesiState(Addr addr) const;

  protected:
    /**
     * One outstanding processor miss. Move-only: the reissue timer is
     * a pooled EventQueue::Timer handle, cancelled automatically when
     * the transaction completes (erase/overwrite destroys or
     * reassigns the handle) — no stale timeout ever reaches the
     * protocol.
     */
    struct Transaction
    {
        ProcRequest req;
        Tick issuedAt = 0;
        int reissues = 0;
        bool persistentIssued = false;
        bool sawCacheData = false;
        /** Reissue/persistent-escalation deadline. */
        EventQueue::Timer timer;
    };

    /**
     * Send the transient request for @p trans. TokenB broadcasts;
     * subclasses (TokenD, TokenM) override to unicast or multicast.
     */
    virtual void issueTransient(Addr addr, const Transaction &trans,
                                bool reissue);

    /** Handle an incoming transient request (getS/getM). */
    void handleTransient(const Message &msg);

    /** Handle arriving tokens. */
    void handleTokenTransfer(const Message &msg);

    /** Handle persistent-request activation/deactivation broadcasts. */
    void handlePersistActivate(const Message &msg);
    void handlePersistDeactivate(const Message &msg);

    /** Find (or allocate, evicting if needed) the line for a block. */
    TokenLine *findLine(Addr addr);
    TokenLine *allocLine(Addr addr);

    /** Fast-forward allocation: a victim's tokens (and data, when it
     *  owns) move to the home atomically — no message. */
    TokenLine *functionalAlloc(Addr ba, FunctionalEnv &env);

    /** Release tokens from a line into a message and send it. */
    void sendTokensFromLine(TokenLine &line, int count, bool send_owner,
                            bool with_data, NodeId dest, Unit dst_unit,
                            MsgClass cls, Tick delay);

    /** Send an already-built token message (audits + schedules). */
    void sendTokenMsg(Message msg, Tick delay);

    /** Drop a now-empty line and tell the sequencer. */
    void freeLine(TokenLine &line);

    /** Evict a victim line produced by allocation. */
    void evictVictim(const TokenLine &victim);

    /** Complete @p trans if the line now grants its operation. */
    void checkSatisfied(Addr addr);

    /** Reissue/persistent timeout machinery. */
    void scheduleTimeout(Addr addr);
    void onTimeout(Addr addr);
    Tick timeoutDelay(int reissues_so_far);
    void invokePersistent(Addr addr, Transaction &trans);
    void sendPersistDone(Addr addr);

    /** Current average miss latency estimate, in ticks. */
    Tick avgMissTicks() const;

    int t_;
    ProtocolParams params_;
    TokenAuditor *auditor_;
    Rng rng_;
    CacheArray<TokenLine> l2_;
    BlockMap<Transaction> outstanding_;

    /**
     * Active persistent requests this node knows about (the paper's
     * per-node hardware table): block -> starving requester. All
     * tokens for these blocks are forwarded to the requester.
     */
    BlockMap<NodeId> persistentTable_;

    /** Blocks whose active persistent request we already released
     *  (one persistDone per activation). */
    BlockSet persistDoneSent_;

    Ewma avgMissLatency_;
};

/**
 * Token-coherence home memory controller: holds the tokens of
 * uncached blocks (conceptually in ECC bits), responds to transient
 * requests like a cache, accepts evicted tokens, and hosts the
 * persistent-request arbiter for the blocks homed here.
 */
class TokenBMemory : public MemoryController, public TokenHolder
{
  public:
    TokenBMemory(ProtoContext &ctx, NodeId id,
                 const ProtocolParams &params, TokenAuditor *auditor);

    void handleMessage(const Message &msg) override;
    std::uint64_t peekData(Addr addr) const override;
    void resetState(const ProtocolParams &params) override;

    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    // TokenHolder
    int tokensHeld(Addr block_addr) const override;
    bool ownerHeld(Addr block_addr) const override;
    std::string holderName() const override;

    PersistentArbiter &arbiter() { return arbiter_; }
    const PersistentArbiter &arbiter() const { return arbiter_; }

    /** Memory-side token holding for a block (tests). */
    TokenCount tokenState(Addr addr) const;

  protected:
    /** Fast-forward reaches straight into the home's token holdings
     *  and backing store. */
    friend class TokenBCache;

    /** Handle a transient request reaching the home. */
    virtual void handleTransient(const Message &msg);

    void handleTokenTransfer(const Message &msg);
    void handlePersistActivate(const Message &msg);
    void handlePersistDeactivate(const Message &msg);

    /** Mutable holding for a block homed here. */
    TokenCount &tokensFor(Addr addr);

    /** Send tokens out of memory (audits, applies DRAM latency). */
    void sendFromMemory(Addr addr, TokenCount &tc, int count,
                        bool send_owner, bool with_data, NodeId dest,
                        MsgClass cls);

    int t_;
    ProtocolParams params_;
    TokenAuditor *auditor_;
    BackingStore store_;
    Dram dram_;
    PersistentArbiter arbiter_;
    BlockMap<TokenCount> tokens_;
    BlockMap<NodeId> persistentTable_;
};

} // namespace tokensim

#endif // TOKENSIM_CORE_TOKENB_HH
