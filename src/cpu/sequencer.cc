#include "cpu/sequencer.hh"

#include <cassert>

namespace tokensim {

Sequencer::Sequencer(ProtoContext &ctx, NodeId id,
                     CacheController *cache,
                     std::unique_ptr<Workload> workload,
                     const SequencerParams &params,
                     std::uint64_t op_budget, std::uint64_t seed)
    : ctx_(ctx),
      id_(id),
      cache_(cache),
      workload_(std::move(workload)),
      params_(params),
      opBudget_(op_budget),
      rng_(seed),
      l1_(params.l1)
{
    cache_->setCompletionCallback(
        [this](const ProcResponse &resp) { onComplete(resp); });
    cache_->setLineRemovedCallback(
        [this](Addr addr) { onLineRemoved(addr); });
}

void
Sequencer::reset(const SequencerParams &params,
                 std::unique_ptr<Workload> workload,
                 std::uint64_t op_budget, std::uint64_t seed)
{
    params_ = params;
    workload_ = std::move(workload);
    opBudget_ = op_budget;
    rng_ = Rng(seed);
    l1_.clear();
    busyBlocks_.clear();
    outstanding_ = 0;
    issueScheduled_ = false;
    nextIssueAllowed_ = 0;
    nextReqId_ = 1;
    issueLimit_ = ~std::uint64_t{0};
    issuedCtl_ = 0;
    pulledCtl_ = 0;
    completedCtl_ = 0;
    stalled_ = false;
    stalledOp_ = WorkloadOp{};
    milestone_ = 0;
    milestoneCounter_ = nullptr;
    stats_ = SequencerStats{};
}

void
Sequencer::start()
{
    wakeIssuer(ctx_.now() + 1);
}

void
Sequencer::wakeIssuer(Tick when)
{
    if (issueScheduled_)
        return;
    issueScheduled_ = true;
    ctx_.eq->schedule(when, [this]() {
        issueScheduled_ = false;
        tryIssue();
    });
}

void
Sequencer::tryIssue()
{
    while (outstanding_ < params_.maxOutstanding &&
           issuedCtl_ < opBudget_ && issuedCtl_ < issueLimit_) {
        // Think time paces issues: non-memory work between ops.
        if (ctx_.now() < nextIssueAllowed_) {
            wakeIssuer(nextIssueAllowed_);
            return;
        }

        WorkloadOp wop;
        if (stalled_) {
            wop = stalledOp_;
            stalled_ = false;
        } else {
            wop = workload_->next();
            ++pulledCtl_;
        }

        const Addr ba = ctx_.blockAlign(wop.addr);
        if (busyBlocks_.count(ba)) {
            // Same-block conflict: hold this op until the in-flight
            // one completes (the protocols rely on one outstanding
            // operation per block per processor).
            stalled_ = true;
            stalledOp_ = wop;
            return;   // a completion will wake us
        }

        ++issuedCtl_;
        ++stats_.opsIssued;
        if (wop.endsTransaction)
            ++stats_.transactions;
        const Tick think = std::max<Tick>(
            1, rng_.geometric(
                   1.0 / static_cast<double>(params_.thinkMean)));
        nextIssueAllowed_ = ctx_.now() + think;

        // L1 filter: loads that hit complete locally at L1 latency.
        if (params_.l1Enabled && wop.op == MemOp::load) {
            if (l1_.touch(ba)) {
                ++stats_.l1Hits;
                ++outstanding_;
                busyBlocks_.insert(ba);
                ctx_.eq->scheduleIn(params_.l1.latency, [this, ba]() {
                    busyBlocks_.erase(ba);
                    --outstanding_;
                    noteCompleted();
                    stats_.opLatency.add(
                        static_cast<double>(params_.l1.latency));
                    wakeIssuer(ctx_.now() + 1);
                });
                continue;
            }
        }

        // Stores write through; load misses go to the L2 controller.
        ++stats_.l2Accesses;
        ++outstanding_;
        busyBlocks_.insert(ba);
        ProcRequest req;
        req.op = wop.op;
        req.addr = wop.addr;
        req.reqId = nextReqId_++;
        if (wop.op == MemOp::store) {
            // The modeled store value: unique per (node, request).
            req.storeValue =
                (std::uint64_t{id_} << 48) ^ req.reqId;
        }
        if (issueObserver_)
            issueObserver_(id_, req);
        cache_->request(req);
    }
}

void
Sequencer::onComplete(const ProcResponse &resp)
{
    const Addr ba = ctx_.blockAlign(resp.addr);
    assert(busyBlocks_.count(ba));
    busyBlocks_.erase(ba);
    --outstanding_;
    noteCompleted();
    stats_.opLatency.add(
        static_cast<double>(resp.completedAt - resp.issuedAt));
    if (observer_)
        observer_(id_, resp);

    if (params_.l1Enabled) {
        // Fill/refresh the L1 copy (inclusive with the L2).
        if (resp.op == MemOp::load) {
            L1Line *line = l1_.find(ba);
            if (!line) {
                CacheArray<L1Line>::Victim victim;
                line = l1_.allocate(ba, &victim);
                // L1 victims need no action: the L2 is inclusive.
            }
            line->data = resp.value;
        } else if (L1Line *line = l1_.find(ba)) {
            line->data = resp.value;
        }
    }

    wakeIssuer(ctx_.now() + 1);
}

void
Sequencer::onLineRemoved(Addr addr)
{
    if (!params_.l1Enabled)
        return;
    if (l1_.find(addr))
        l1_.invalidate(addr);
}

void
Sequencer::fastForward(std::uint64_t n, FunctionalEnv &env)
{
    assert(outstanding_ == 0 && busyBlocks_.empty() &&
           "fast-forward requires a drained system");
    opBudget_ += n;
    for (std::uint64_t i = 0; i < n; ++i) {
        WorkloadOp wop;
        if (stalled_) {
            wop = stalledOp_;
            stalled_ = false;
        } else {
            wop = workload_->next();
            ++pulledCtl_;
        }
        ++issuedCtl_;

        const Addr ba = ctx_.blockAlign(wop.addr);
        // The L1 filter applies functionally too: a load hit never
        // reaches the protocol in detailed mode, so it must not warm
        // protocol state here either (and it consumes no request id).
        if (params_.l1Enabled && wop.op == MemOp::load &&
            l1_.touch(ba)) {
            ++completedCtl_;
            continue;
        }

        ProcRequest req;
        req.op = wop.op;
        req.addr = wop.addr;
        req.reqId = nextReqId_++;
        if (wop.op == MemOp::store)
            req.storeValue = (std::uint64_t{id_} << 48) ^ req.reqId;
        const std::uint64_t v = cache_->applyFunctional(req, env);

        if (params_.l1Enabled) {
            // Mirror onComplete: loads fill, stores refresh in place.
            // A load only reaches here when the touch() above missed,
            // and nothing below it inserts into this L1 (functional
            // evictions only remove), so the fill needs no re-probe.
            if (wop.op == MemOp::load) {
                CacheArray<L1Line>::Victim victim;
                l1_.allocate(ba, &victim)->data = v;
            } else if (L1Line *line = l1_.find(ba)) {
                line->data = v;
            }
        }
        ++completedCtl_;
    }
}

void
Sequencer::adoptWarmProgress(std::uint64_t warm_ops)
{
    assert(issuedCtl_ == 0 && completedCtl_ == 0 && pulledCtl_ == 0 &&
           "warm progress must be adopted by a freshly reset sequencer");
    opBudget_ += warm_ops;
    pulledCtl_ = warm_ops;
    issuedCtl_ = warm_ops;
    completedCtl_ = warm_ops;
    workload_->skip(warm_ops);
}

void
Sequencer::encodeWarmState(WireWriter &w) const
{
    if (outstanding_ != 0 || stalled_ || !busyBlocks_.empty())
        throw WireError("sequencer has operations in flight");
    w.varint(nextReqId_);
    w.varint(l1_.useCounter());
    w.varint(l1_.validCount());
    l1_.forEachValidIndexed(
        [&](std::size_t way, std::uint64_t stamp, const L1Line &line) {
            w.varint(way);
            w.varint(stamp);
            w.varint(line.addr);
            w.varint(line.data);
        });
    putStructEnd(w);
}

void
Sequencer::decodeWarmState(WireReader &r)
{
    nextReqId_ = r.varint("sequencer nextReqId");
    if (nextReqId_ == 0)
        throw WireError("sequencer nextReqId must be nonzero");
    l1_.setUseCounter(r.varint("l1 use counter"));
    const std::uint64_t count = r.varint("l1 line count");
    if (count > l1_.wayCount()) {
        throw WireError("l1 line count " + std::to_string(count) +
                        " exceeds the array's " +
                        std::to_string(l1_.wayCount()) + " ways");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t way = r.varint("l1 way index");
        const std::uint64_t stamp = r.varint("l1 lru stamp");
        const Addr addr = r.varint("l1 line address");
        const std::uint64_t data = r.varint("l1 line data");
        if (way >= l1_.wayCount())
            throw WireError("l1 way index out of range");
        if (l1_.wayValid(way))
            throw WireError("duplicate l1 way in snapshot");
        if (l1_.blockAlign(addr) != addr)
            throw WireError("l1 line address not block-aligned");
        if (!l1_.wayMatchesSet(way, addr))
            throw WireError("l1 line mapped to the wrong set");
        if (l1_.contains(addr))
            throw WireError("duplicate l1 block in snapshot");
        if (stamp > l1_.useCounter())
            throw WireError("l1 lru stamp exceeds the use counter");
        l1_.restoreWay(static_cast<std::size_t>(way), addr, stamp)
            ->data = data;
    }
    checkStructEnd(r, "sequencer warm state");
}

} // namespace tokensim
