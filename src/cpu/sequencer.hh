/**
 * @file
 * The processor timing model.
 *
 * The paper evaluates with TFsim: dynamically-scheduled SPARC cores
 * generating multiple outstanding coherence requests. This repository
 * substitutes a sequencer that preserves the properties the evaluation
 * depends on (DESIGN.md §1): a stream of memory operations with
 * configurable memory-level parallelism (several outstanding misses),
 * think time standing in for non-memory instructions, an L1 that
 * filters hits at 2 ns, and cycles-per-transaction accounting.
 *
 * The L1 is kept inclusive with the L2 through the cache controller's
 * line-removed callback; stores write through to the L2 (the coherence
 * point), so protocol permission checks always happen where the
 * protocol state lives.
 */

#ifndef TOKENSIM_CPU_SEQUENCER_HH
#define TOKENSIM_CPU_SEQUENCER_HH

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "proto/controller.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace tokensim {

/** Sequencer tuning parameters. */
struct SequencerParams
{
    /** Maximum overlapping memory operations (MLP window). */
    int maxOutstanding = 4;

    /**
     * Mean think time between operation issues, in ticks. This also
     * stands in for the L1-resident instruction stream the simulator
     * does not model individually; the default is calibrated so a
     * 16-processor commercial run offers a realistic per-processor
     * L2-miss spacing (~100-150 ns) rather than saturating the
     * interconnect (see DESIGN.md).
     */
    Tick thinkMean = nsToTicks(10);

    /** L1 data cache (Table 1: 128 kB, 4-way, 2 ns). */
    CacheParams l1{128 * 1024, 4, 64, nsToTicks(2)};

    /** Disable the L1 entirely (the random tester does this so every
     *  access exercises the protocol). */
    bool l1Enabled = true;
};

/** Per-sequencer statistics. */
struct SequencerStats
{
    std::uint64_t opsIssued = 0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t transactions = 0;
    RunningStat opLatency;   ///< ticks, all operations
};

/**
 * One processor: pulls operations from its workload, issues them
 * against the cache controller with bounded overlap, and retires a
 * fixed budget.
 */
class Sequencer
{
  public:
    /**
     * @param ctx shared environment.
     * @param id this node.
     * @param cache the node's L2 coherence controller.
     * @param workload the operation stream (ownership taken).
     * @param params timing parameters.
     * @param op_budget operations to run before stopping.
     * @param seed think-time RNG seed.
     */
    Sequencer(ProtoContext &ctx, NodeId id, CacheController *cache,
              std::unique_ptr<Workload> workload,
              const SequencerParams &params, std::uint64_t op_budget,
              std::uint64_t seed);

    /** Begin issuing (schedules the first issue event). */
    void start();

    /**
     * Reinitialize to exactly match a freshly constructed sequencer
     * with @p params, @p workload, @p op_budget, and RNG seed
     * @p seed, keeping the L1 array storage (the L1 geometry in
     * @p params must match construction; timing knobs may differ).
     * The controller callbacks installed at construction stay valid
     * (reusable-System path).
     */
    void reset(const SequencerParams &params,
               std::unique_ptr<Workload> workload,
               std::uint64_t op_budget, std::uint64_t seed);

    /** All budgeted operations have completed. */
    bool done() const { return completedCtl_ >= opBudget_; }

    /**
     * Run @p n operations of the workload functionally: architectural
     * state (L1/L2 contents, protocol warm state via
     * CacheController::applyFunctional) advances exactly as the
     * detailed path would leave it at quiescence, but no events,
     * messages, timers, RNG draws, or statistics happen. The op budget
     * grows by @p n (functional ops ride on top of the detailed
     * budget). Requires a drained system: no outstanding operations.
     */
    void fastForward(std::uint64_t n, FunctionalEnv &env);

    /**
     * Cap on issued operations for the current detailed phase; issuing
     * pauses (without ending the run) once @p at ops have been issued
     * since construction/reset. Raise it and kick() to resume. The
     * default (no cap) leaves the classic single-phase path untouched.
     */
    void setIssueLimit(std::uint64_t at) { issueLimit_ = at; }

    /** Re-arm the issue loop after raising the issue limit. */
    void kick() { wakeIssuer(ctx_.now() + 1); }

    /**
     * Adopt the progress a warm-state snapshot recorded: account
     * @p warm_ops operations as pulled/issued/completed, grow the
     * budget to match, and skip the workload past the ops the saved
     * fast-forward consumed. Must be called on a freshly reset
     * sequencer, after decodeWarmState().
     */
    void adoptWarmProgress(std::uint64_t warm_ops);

    /** Serialize warm state (request-id counter, L1 contents with
     *  exact LRU stamps). Requires a pristine fast-forward-only
     *  sequencer (nothing in flight). @throws WireError otherwise. */
    void encodeWarmState(WireWriter &w) const;

    /** Inverse of encodeWarmState() into a freshly reset sequencer.
     *  @throws WireError on malformed input. */
    void decodeWarmState(WireReader &r);

    /** Operations completed since construction (warmup included). */
    std::uint64_t completedOps() const { return completedCtl_; }

    /**
     * Operations pulled from the workload so far. A completed run
     * pulls exactly op_budget ops — never more (a same-block-stalled
     * op is buffered, not re-pulled) — independent of protocol or
     * timing. Trace recording and replay lean on this contract: a
     * recorded trace holds op_budget ops per node and replays against
     * any protocol with the same budget (tests/test_trace.cc pins it).
     */
    std::uint64_t opsPulled() const { return pulledCtl_; }

    /**
     * Arm a completion milestone: when the completed-op count reaches
     * @p at, increment @p counter once. If the count is already
     * there, the increment happens immediately. The System uses this
     * so its run loop can poll one counter instead of querying every
     * sequencer after every event.
     */
    void
    setMilestone(std::uint64_t at, std::uint64_t *counter)
    {
        milestone_ = at;
        milestoneCounter_ = counter;
        if (counter && completedCtl_ >= at)
            ++*counter;
    }

    /** Zero the reported statistics (end-of-warmup measurement
     *  boundary); control state (budget progress) is unaffected. */
    void resetStats() { stats_ = SequencerStats{}; }

    const SequencerStats &stats() const { return stats_; }
    NodeId nodeId() const { return id_; }
    Workload &workload() { return *workload_; }

    /** Observer invoked on every completion that reached the L2
     *  controller (the random tester checks values through this). */
    using ObserverFn = std::function<void(NodeId,
                                          const ProcResponse &)>;
    void setObserver(ObserverFn fn) { observer_ = std::move(fn); }

    /** Observer invoked on every issue (issue tick, op). */
    using IssueObserverFn = std::function<void(NodeId,
                                               const ProcRequest &)>;
    void setIssueObserver(IssueObserverFn fn)
    {
        issueObserver_ = std::move(fn);
    }

  private:
    struct L1Line : CacheLineBase
    {
        std::uint64_t data = 0;
    };

    /** Bump counters for one completed operation. */
    void
    noteCompleted()
    {
        ++completedCtl_;
        ++stats_.opsCompleted;
        if (milestoneCounter_ && completedCtl_ == milestone_)
            ++*milestoneCounter_;
    }

    /** Issue loop: issue ops while slots and budget allow. */
    void tryIssue();

    /** Completion callback from the cache controller. */
    void onComplete(const ProcResponse &resp);

    /** Inclusion callback: the L2 dropped a block. */
    void onLineRemoved(Addr addr);

    ProtoContext &ctx_;
    NodeId id_;
    CacheController *cache_;
    std::unique_ptr<Workload> workload_;
    SequencerParams params_;
    std::uint64_t opBudget_;
    Rng rng_;
    CacheArray<L1Line> l1_;

    /** Schedule a tryIssue event (at most one pending at a time). */
    void wakeIssuer(Tick when);

    /** Blocks with an operation in flight (same-block serialization). */
    BlockSet busyBlocks_;
    int outstanding_ = 0;
    bool issueScheduled_ = false;
    Tick nextIssueAllowed_ = 0;
    std::uint64_t nextReqId_ = 1;
    std::uint64_t issueLimit_ = ~std::uint64_t{0};
    std::uint64_t issuedCtl_ = 0;
    std::uint64_t pulledCtl_ = 0;
    std::uint64_t completedCtl_ = 0;
    std::uint64_t milestone_ = 0;
    std::uint64_t *milestoneCounter_ = nullptr;

    /** A deferred op waiting for its block to free up. */
    bool stalled_ = false;
    WorkloadOp stalledOp_;

    ObserverFn observer_;
    IssueObserverFn issueObserver_;
    SequencerStats stats_;
};

} // namespace tokensim

#endif // TOKENSIM_CPU_SEQUENCER_HH
