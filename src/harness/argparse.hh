/**
 * @file
 * Strict numeric CLI-argument parsing.
 *
 * std::stol/std::stoull accept trailing garbage ("8x" parses as 8),
 * silently wrap negatives through unsigned conversions ("-1" becomes
 * 2^64-1), and throw bare std::invalid_argument with no mention of
 * which option was malformed. Every numeric option of the sweep
 * tooling parses through these helpers instead: the full string must
 * be consumed, the value must fit the target type and the caller's
 * range, and a violation throws ArgError naming the option, the
 * offending text, and the accepted range — turned into a clean
 * usage-error exit by the tool's top-level handler.
 */

#ifndef TOKENSIM_HARNESS_ARGPARSE_HH
#define TOKENSIM_HARNESS_ARGPARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace tokensim {

/** A malformed or out-of-range command-line value. */
class ArgError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parse @p text as an unsigned integer in [@p min, @p max].
 * @p what names the option in error messages ("--seeds").
 * @throws ArgError on empty input, non-digits, trailing garbage,
 *         a leading '-', or a value outside the range.
 */
inline std::uint64_t
parseU64(const std::string &what, const std::string &text,
         std::uint64_t min = 0,
         std::uint64_t max = std::numeric_limits<std::uint64_t>::max())
{
    const std::string range = "[" + std::to_string(min) + ", " +
        std::to_string(max) + "]";
    if (text.empty() || text[0] < '0' || text[0] > '9') {
        throw ArgError(what + " expects an unsigned integer in " +
                       range + ", got '" + text + "'");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size()) {
        throw ArgError(what + " expects an unsigned integer in " +
                       range + ", got '" + text + "'");
    }
    if (v < min || v > max) {
        throw ArgError(what + " must be in " + range + ", got '" +
                       text + "'");
    }
    return v;
}

/**
 * Parse @p text as a signed integer in [@p min, @p max].
 * @throws ArgError like parseU64 (a leading '-' is accepted here).
 */
inline std::int64_t
parseI64(const std::string &what, const std::string &text,
         std::int64_t min = std::numeric_limits<std::int64_t>::min(),
         std::int64_t max = std::numeric_limits<std::int64_t>::max())
{
    const std::string range = "[" + std::to_string(min) + ", " +
        std::to_string(max) + "]";
    const bool has_digit = !text.empty() &&
        ((text[0] >= '0' && text[0] <= '9') ||
         (text[0] == '-' && text.size() > 1 && text[1] >= '0' &&
          text[1] <= '9'));
    if (!has_digit) {
        throw ArgError(what + " expects an integer in " + range +
                       ", got '" + text + "'");
    }
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size()) {
        throw ArgError(what + " expects an integer in " + range +
                       ", got '" + text + "'");
    }
    if (v < min || v > max) {
        throw ArgError(what + " must be in " + range + ", got '" +
                       text + "'");
    }
    return v;
}

/** parseI64 narrowed to int (the common option width). */
inline int
parseInt(const std::string &what, const std::string &text,
         int min = std::numeric_limits<int>::min(),
         int max = std::numeric_limits<int>::max())
{
    return static_cast<int>(parseI64(what, text, min, max));
}

} // namespace tokensim

#endif // TOKENSIM_HARNESS_ARGPARSE_HH
