#include "harness/dist_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/wire.hh"
#include "sim/stats.hh"

namespace tokensim {

namespace {

int
defaultWorkers()
{
    if (const char *s = std::getenv("TOKENSIM_WORKERS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/** One unit of distributed work: seed @p seed of spec @p spec. */
struct Shard
{
    std::size_t spec;
    int seed;
};

/**
 * Parent-side state of one worker: a forked/exec'd subprocess on a
 * pipe pair, or a remote peer on a connected socket (in == out,
 * pid == -1 — not ours to signal or reap).
 */
struct WorkerProc
{
    pid_t pid = -1;          ///< -1 for TCP peers (no child to reap)
    int in = -1;             ///< parent writes job frames here
    int out = -1;            ///< parent reads replies (== in on sockets)
    std::string rbuf;        ///< partially received reply bytes
    std::size_t rpos = 0;
    bool alive = false;
    bool tcp = false;        ///< connected socket, not a pipe pair
    bool admitted = false;   ///< may be assigned shards (TCP: hello ok)
    bool helloSeen = false;
    std::string identity;    ///< from the hello frame (e.g. "host:pid")
    long shard = -1;         ///< outstanding shard index, -1 if idle
    int slot = 0;            ///< stable pool index (survives respawn)
    long long assignMs = 0;  ///< when the outstanding shard was sent
    long long joinMs = 0;    ///< TCP: when it connected (hello deadline)
};

/** Monotonic milliseconds, for shard deadlines. */
long long
monoMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Slurp an fd from its current offset to EOF. */
std::string
readAll(int fd)
{
    std::string data;
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            data.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return data;
    }
}

/**
 * A dead worker's write end raises SIGPIPE in the parent; we want the
 * EPIPE errno (handled as "worker died, reassign") instead of process
 * death. Scoped so library users' dispositions are restored.
 */
struct SigpipeIgnore
{
    struct sigaction old;

    SigpipeIgnore()
    {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = SIG_IGN;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGPIPE, &sa, &old);
    }

    ~SigpipeIgnore() { sigaction(SIGPIPE, &old, nullptr); }
};

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Nonblocking socket with a full send buffer: wait
                // for drain, bounded so a wedged peer that never
                // reads cannot wedge the sweep.
                struct pollfd p;
                p.fd = fd;
                p.events = POLLOUT;
                p.revents = 0;
                if (::poll(&p, 1, 60000) > 0)
                    continue;
                return false;
            }
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
setNonblock(int fd)
{
    const int fl = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

/** Split "HOST:PORT" (or bare "PORT") at the last colon. */
void
splitEndpoint(const std::string &endpoint, std::string &host,
              std::string &port)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
        host.clear();
        port = endpoint;
    } else {
        host = endpoint.substr(0, colon);
        port = endpoint.substr(colon + 1);
    }
}

/**
 * Fork (and optionally exec) one worker. @p parent_fds lists every
 * parent-side pipe fd currently open: the child must close them all,
 * or a sibling's death would never read as EOF in the parent (the
 * child's copy of the write end keeps the pipe alive).
 */
WorkerProc
spawnWorker(const std::vector<std::string> &worker_argv,
            const DistWorkerFault &fault, std::vector<int> &parent_fds)
{
    int job[2];
    int res[2];
    if (::pipe(job) != 0)
        throw std::runtime_error("DistRunner: pipe() failed");
    if (::pipe(res) != 0) {
        ::close(job[0]);
        ::close(job[1]);
        throw std::runtime_error("DistRunner: pipe() failed");
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(job[0]);
        ::close(job[1]);
        ::close(res[0]);
        ::close(res[1]);
        throw std::runtime_error("DistRunner: fork() failed");
    }

    if (pid == 0) {
        // Child. Only _exit() from here: no atexit handlers, no
        // flushing of stdio buffers inherited mid-write.
        ::close(job[1]);
        ::close(res[0]);
        for (int fd : parent_fds)
            ::close(fd);
        if (!worker_argv.empty()) {
            ::dup2(job[0], 0);
            ::dup2(res[1], 1);
            if (job[0] > 2)
                ::close(job[0]);
            if (res[1] > 2)
                ::close(res[1]);
            std::vector<char *> argv;
            argv.reserve(worker_argv.size() + 1);
            for (const std::string &a : worker_argv)
                argv.push_back(const_cast<char *>(a.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            _exit(127);
        }
        _exit(runDistWorker(job[0], res[1], fault));
    }

    ::close(job[0]);
    ::close(res[1]);
    // Replies are drained opportunistically from a poll loop.
    const int fl = ::fcntl(res[0], F_GETFL, 0);
    ::fcntl(res[0], F_SETFL, fl | O_NONBLOCK);
    parent_fds.push_back(job[1]);
    parent_fds.push_back(res[0]);

    WorkerProc w;
    w.pid = pid;
    w.in = job[1];
    w.out = res[0];
    w.alive = true;
    w.admitted = true;   // our own spawn: trusted before its hello
    return w;
}

void
closeAndReap(WorkerProc &w, std::vector<int> &parent_fds)
{
    if (!w.alive)
        return;
    w.alive = false;
    const int in = w.in;
    const int out = w.out;
    w.in = w.out = -1;
    ::close(in);
    if (out != in)
        ::close(out);   // a socket is one fd, closed exactly once
    for (int fd : {in, out}) {
        parent_fds.erase(
            std::remove(parent_fds.begin(), parent_fds.end(), fd),
            parent_fds.end());
    }
    if (w.pid > 0) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
    }
}

} // namespace

DistRunner::DistRunner(DistRunnerOptions opts)
    : opts_(std::move(opts)),
      workers_(opts_.workers >= 1
                   ? opts_.workers
                   : (!opts_.listen.empty() || !opts_.dial.empty())
                         ? 0   // remote fleet: no implicit local pool
                         : defaultWorkers())
{}

std::vector<ExperimentResult>
DistRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    for (const ExperimentSpec &s : specs) {
        if (s.cfg.workloadFactory) {
            throw std::invalid_argument(
                "DistRunner: spec '" + s.label +
                "' has a custom workloadFactory, which cannot be "
                "shipped to a worker process (use a WorkloadSpec "
                "preset or trace)");
        }
        if (!s.cfg.recordTrace.empty()) {
            throw std::invalid_argument(
                "DistRunner: spec '" + s.label +
                "' sets recordTrace; worker processes would race on "
                "the output file (record serially instead)");
        }
    }

    // Flatten the matrix into shards; raw results land in a fixed
    // (spec, seed)-indexed grid so the merge ignores completion order
    // — the same grid discipline as ParallelRunner.
    std::vector<Shard> shards;
    std::vector<std::vector<System::Results>> raw(specs.size());
    std::vector<ExperimentResult> out(specs.size());
    std::vector<std::size_t> remainingSeeds(specs.size());
    std::vector<std::size_t> shardBase(specs.size(), 0);
    std::vector<char> specErrored(specs.size(), 0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const int seeds = std::max(specs[i].seeds, 0);
        shardBase[i] = shards.size();
        raw[i].resize(static_cast<std::size_t>(seeds));
        remainingSeeds[i] = static_cast<std::size_t>(seeds);
        for (int s = 0; s < seeds; ++s)
            shards.push_back(Shard{i, s});
        if (seeds == 0)
            out[i] = aggregateResults(raw[i], specs[i].label);
    }
    if (shards.empty())
        return out;

    const auto emit = [&](const std::string &line) {
        if (opts_.progress)
            opts_.progress(line);
    };

    SigpipeIgnore sigpipe_guard;
    std::vector<int> parentFds;
    // unique_ptr so the pool can grow (TCP peers join mid-sweep)
    // without invalidating WorkerProc addresses held across the loop.
    std::vector<std::unique_ptr<WorkerProc>> pool;

    std::deque<std::size_t> pending;
    std::vector<int> retries(shards.size(), 0);
    std::size_t resolved = 0;
    std::exception_ptr firstError;

    // Incremental fold: a shard's raw results drop into the grid the
    // moment its reply arrives (or is restored from the checkpoint),
    // and a design point aggregates (and streams its partial line) as
    // soon as its last seed lands — the aggregate only ever reads the
    // grid in seed order, so computing it early is bit-identical to
    // computing it at the end.
    const auto resolveShard = [&](std::size_t sh, const char *how) {
        ++resolved;
        const std::size_t spec = shards[sh].spec;
        emit(strformat("shard %zu/%zu %s (spec %zu \"%s\" seed %d)",
                       resolved, shards.size(), how, spec,
                       specs[spec].label.c_str(), shards[sh].seed));
        if (--remainingSeeds[spec] == 0 && !specErrored[spec]) {
            out[spec] = aggregateResults(raw[spec], specs[spec].label);
            emit(strformat("spec %zu \"%s\" complete: %s", spec,
                           specs[spec].label.c_str(),
                           resultDigest(out[spec]).c_str()));
        }
    };

    // ----- Checkpoint: restore completed shards, open for append ---
    int ckptFd = -1;
    struct FdGuard
    {
        int &fd;
        ~FdGuard()
        {
            if (fd >= 0)
                ::close(fd);
        }
    } ckptGuard{ckptFd};

    std::vector<char> restored(shards.size(), 0);
    if (!opts_.checkpointPath.empty()) {
        const std::string &path = opts_.checkpointPath;
        const std::uint64_t fp = sweepFingerprint(specs);
        ckptFd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
        if (ckptFd >= 0) {
            // Resume. Header first (bad magic/version is fatal, and a
            // foreign sweep's fingerprint must never merge), then
            // records until the first torn or corrupt one — an
            // append-only writer can only damage the tail, so
            // everything before it is trusted and everything from it
            // on is dropped and re-run.
            const std::string data = readAll(ckptFd);
            std::size_t pos = 0;
            const CheckpointHeader hdr =
                decodeCheckpointHeader(data, pos);
            if (hdr.fingerprint != fp) {
                throw CheckpointMismatch(strformat(
                    "%s was recorded for a different sweep "
                    "(fingerprint %016llx, this sweep is %016llx): "
                    "its specs, seed counts, or wire format differ",
                    path.c_str(),
                    static_cast<unsigned long long>(hdr.fingerprint),
                    static_cast<unsigned long long>(fp)));
            }
            std::size_t validEnd = pos;
            std::size_t nrestored = 0;
            CheckpointRecord rec;
            try {
                while (tryExtractCheckpointRecord(data, pos, rec)) {
                    if (rec.spec >= specs.size() ||
                        rec.seed >= raw[rec.spec].size()) {
                        throw WireError(
                            "checkpoint shard key out of range");
                    }
                    validEnd = pos;
                    const std::size_t sh =
                        shardBase[rec.spec] +
                        static_cast<std::size_t>(rec.seed);
                    if (!restored[sh]) {
                        raw[rec.spec][rec.seed] =
                            std::move(rec.results);
                        restored[sh] = 1;
                        ++nrestored;
                    }
                }
            } catch (const WireError &) {
                // A complete-but-corrupt trailing record gets the
                // same treatment as an incomplete one: torn tail.
            }
            const std::size_t dropped = data.size() - validEnd;
            if (dropped) {
                // Truncate the torn tail on disk too — records
                // appended after it would be unreachable to the next
                // resume.
                (void)::ftruncate(ckptFd,
                                  static_cast<off_t>(validEnd));
            }
            ::lseek(ckptFd, static_cast<off_t>(validEnd), SEEK_SET);
            std::string tail;
            if (dropped) {
                tail = strformat(" (dropped a %zu-byte torn tail)",
                                 dropped);
            }
            emit(strformat("checkpoint: restored %zu/%zu shards "
                           "from %s%s",
                           nrestored, shards.size(), path.c_str(),
                           tail.c_str()));
        } else {
            // Fresh checkpoint: the header appears atomically via
            // write + fsync + rename, so a run killed here never
            // leaves a headerless file behind.
            const std::string tmp = path + ".tmp";
            ckptFd = ::open(tmp.c_str(),
                            O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                            0644);
            if (ckptFd < 0) {
                throw std::runtime_error(
                    "DistRunner: cannot create checkpoint " + tmp +
                    ": " + std::strerror(errno));
            }
            if (!writeAll(ckptFd,
                          encodeCheckpointHeader(fp, shards.size())) ||
                ::fsync(ckptFd) != 0 ||
                ::rename(tmp.c_str(), path.c_str()) != 0) {
                throw std::runtime_error(
                    "DistRunner: cannot initialize checkpoint " +
                    path + ": " + std::strerror(errno));
            }
            emit(strformat("checkpoint: recording %zu shards to %s",
                           shards.size(), path.c_str()));
        }
        // Forked children must close the checkpoint fd like any other
        // parent-side fd (exec'd ones drop it via O_CLOEXEC).
        parentFds.push_back(ckptFd);
    }

    const auto ckptAppend = [&](std::size_t sh,
                                const System::Results &res) {
        if (ckptFd < 0)
            return;
        const Shard &s = shards[sh];
        if (!writeAll(ckptFd,
                      encodeCheckpointRecord(
                          s.spec,
                          static_cast<std::uint64_t>(s.seed), res))) {
            // A full disk must not kill a sweep that would otherwise
            // finish: drop checkpointing, keep computing.
            emit(strformat("checkpoint: write to %s failed (%s); "
                           "further shards will not be checkpointed",
                           opts_.checkpointPath.c_str(),
                           std::strerror(errno)));
            parentFds.erase(std::remove(parentFds.begin(),
                                        parentFds.end(), ckptFd),
                            parentFds.end());
            ::close(ckptFd);
            ckptFd = -1;
        }
    };

    // Restored shards resolve immediately, in shard order (so the
    // emitted lines and partial aggregates are deterministic); the
    // rest form the work queue.
    for (std::size_t k = 0; k < shards.size(); ++k) {
        if (restored[k])
            resolveShard(k, "restored");
        else
            pending.push_back(k);
    }
    if (pending.empty())
        return out;   // fully restored: nothing to spawn

    // ----- TCP listener: up (and announced) before anything is
    // spawned, so onListen() may fork/launch the very fleet that will
    // connect — and those processes never inherit a local pipe
    // worker's parent-side fds.
    int listenFd = -1;
    FdGuard listenGuard{listenFd};
    if (!opts_.listen.empty()) {
        int port = 0;
        listenFd = tcpListen(opts_.listen, port);
        setNonblock(listenFd);
        parentFds.push_back(listenFd);
        emit(strformat("tcp listening on port %d", port));
        if (opts_.onListen)
            opts_.onListen(port);
    }

    const std::size_t nworkers = std::min<std::size_t>(
        static_cast<std::size_t>(workers_), pending.size());
    const int respawnBudget =
        opts_.maxWorkerRespawns >= 0
            ? opts_.maxWorkerRespawns
            : 2 * static_cast<int>(nworkers);
    int respawnsUsed = 0;
    int workerDeaths = 0;
    std::vector<int> spawnGen(nworkers, 0);
    std::vector<long> maxObservedMs(specs.size(), -1);
    std::unique_ptr<System> parentArena;   // in-process degradation

    // Fault injection (tests): applies only to forked workers whose
    // (slot, spawn generation) the fault targets.
    const auto faultFor = [&](int slot, int gen) -> DistWorkerFault {
        if (!opts_.workerArgv.empty())
            return DistWorkerFault{};   // exec'd workers start clean
        const DistWorkerFault &f = opts_.workerFault;
        if ((f.worker >= 0 && f.worker != slot) ||
            (f.spawnGeneration >= 0 && f.spawnGeneration != gen))
            return DistWorkerFault{};
        return f;
    };

    // A failed shard goes back to the FRONT of the queue: it is the
    // sweep's oldest outstanding work and downstream consumers wait
    // on whole design points, not individual seeds.
    const auto failShard = [&](long sh) {
        if (sh < 0)
            return;
        if (++retries[sh] > opts_.maxShardRetries) {
            // The same shard keeps taking workers down: a shard
            // poison, not worker flakiness. Surface the first
            // recorded error if any shard reported one.
            if (firstError)
                std::rethrow_exception(firstError);
            const Shard &s = shards[static_cast<std::size_t>(sh)];
            throw std::runtime_error(strformat(
                "DistRunner: shard (spec \"%s\", seed %d) failed %d "
                "times (workers keep dying on it); giving up",
                specs[s.spec].label.c_str(), s.seed, retries[sh]));
        }
        pending.push_front(static_cast<std::size_t>(sh));
    };

    const auto workerDied = [&](WorkerProc &w) {
        if (!w.alive)
            return;
        const long sh = w.shard;
        const int slot = w.slot;
        const bool tcp = w.tcp;
        const std::string identity = w.identity;
        w.shard = -1;
        closeAndReap(w, parentFds);
        ++workerDeaths;
        failShard(sh);
        if (tcp) {
            // A remote worker is not ours to respawn: its supervisor
            // (or operator) relaunches it and it rejoins through the
            // listener. Its shard is already requeued.
            emit(strformat(
                "tcp worker \"%s\" (slot %d) disconnected (death "
                "%d)%s",
                identity.c_str(), slot, workerDeaths,
                sh >= 0 ? "; shard requeued" : ""));
            return;
        }
        // Replace the dead worker while the churn budget lasts: a
        // sweep should survive flaky workers without shrinking its
        // parallelism (and tests can fault the replacement too, via
        // DistWorkerFault::spawnGeneration).
        if (resolved < shards.size() &&
            respawnsUsed < respawnBudget) {
            ++respawnsUsed;
            const int gen = ++spawnGen[slot];
            *pool[slot] = spawnWorker(opts_.workerArgv,
                                      faultFor(slot, gen), parentFds);
            pool[slot]->slot = slot;
            emit(strformat("worker %d died (death %d); respawned "
                           "(%d/%d respawns used)",
                           slot, workerDeaths, respawnsUsed,
                           respawnBudget));
        } else if (resolved < shards.size()) {
            emit(strformat(
                "worker %d died (death %d); respawn budget spent",
                slot, workerDeaths));
        }
    };

    // Admit-or-assign gate: a TCP peer gets no shards until its hello
    // validates (a stranger must never hold work).
    const auto assignIdle = [&]() {
        for (auto &wp : pool) {
            WorkerProc &w = *wp;
            if (!w.alive || !w.admitted || w.shard >= 0 ||
                pending.empty())
                continue;
            const std::size_t sh = pending.front();
            pending.pop_front();
            const Shard &s = shards[sh];
            const SystemConfig &cfg = specs[s.spec].cfg;
            std::string job;
            appendFrame(job, FrameType::job,
                        encodeJobPayload(
                            sh, cfg,
                            cfg.seed +
                                static_cast<std::uint64_t>(s.seed)));
            w.shard = static_cast<long>(sh);
            w.assignMs = monoMs();
            if (!writeAll(w.in, job))
                workerDied(w);
        }
    };

    /**
     * The live deadline for a shard of @p spec: fixed when
     * configured, derived from the slowest completed shard of the
     * SAME design point in auto mode (no estimate until that spec's
     * first completion), -1 when detection is off. Per-spec because
     * shard cost is a property of the design point — at kilonode
     * geometries a broadcast protocol runs 100x longer than a
     * directory one in the same sweep, and a global estimate seeded
     * by the cheap spec would kill every healthy shard of the
     * expensive one. Seeds of one spec are near-identical in cost,
     * so 10x its own slowest shard stays a safe hang bound.
     */
    const auto currentDeadlineMs = [&](std::size_t spec) -> long {
        if (opts_.shardTimeoutMs > 0)
            return opts_.shardTimeoutMs;
        if (opts_.shardTimeoutMs < 0 || maxObservedMs[spec] < 0)
            return -1;
        return std::max<long>(10000, 10 * maxObservedMs[spec]);
    };

    /** currentDeadlineMs for the shard @p w is running, -1 if idle. */
    const auto workerDeadlineMs = [&](const WorkerProc &w) -> long {
        if (w.shard < 0)
            return -1;
        return currentDeadlineMs(
            shards[static_cast<std::size_t>(w.shard)].spec);
    };

    /** Decode every complete frame buffered for @p w. Throws
     *  WireError on a malformed or out-of-protocol reply. */
    const auto processBuffer = [&](WorkerProc &w) {
        Frame f;
        while (w.alive && tryExtractFrame(w.rbuf, w.rpos, f)) {
            switch (f.type) {
              case FrameType::hello: {
                const HelloFrame hf = decodeHelloPayload(f.payload);
                w.helloSeen = true;
                w.identity = hf.identity;
                if (w.tcp && !w.admitted) {
                    w.admitted = true;
                    emit(strformat("tcp worker joined: \"%s\" "
                                   "(slot %d)",
                                   w.identity.c_str(), w.slot));
                }
                break;
              }
              case FrameType::result: {
                if (!w.helloSeen || w.shard < 0)
                    throw WireError("unexpected result frame");
                const ResultFrame rf = decodeResultPayload(f.payload);
                if (rf.jobId !=
                    static_cast<std::uint64_t>(w.shard))
                    throw WireError("result frame for wrong job");
                const std::size_t sh =
                    static_cast<std::size_t>(w.shard);
                const Shard &s = shards[sh];
                raw[s.spec][static_cast<std::size_t>(s.seed)] =
                    rf.results;
                w.shard = -1;
                maxObservedMs[s.spec] = std::max<long>(
                    maxObservedMs[s.spec],
                    static_cast<long>(monoMs() - w.assignMs));
                ckptAppend(sh, rf.results);
                resolveShard(sh, "done");
                break;
              }
              case FrameType::error: {
                // The shard itself threw (e.g. an invalid config) —
                // a deterministic failure every worker would repeat,
                // so record it instead of reassigning, mirroring
                // ParallelRunner's first-exception semantics.
                if (!w.helloSeen || w.shard < 0)
                    throw WireError("unexpected error frame");
                const ErrorFrame ef = decodeErrorPayload(f.payload);
                if (ef.jobId !=
                    static_cast<std::uint64_t>(w.shard))
                    throw WireError("error frame for wrong job");
                const std::size_t sh =
                    static_cast<std::size_t>(w.shard);
                const Shard &s = shards[sh];
                specErrored[s.spec] = 1;
                if (!firstError) {
                    firstError = std::make_exception_ptr(
                        std::runtime_error(
                            "DistRunner: shard (spec \"" +
                            specs[s.spec].label + "\", seed " +
                            std::to_string(s.seed) +
                            ") failed in worker: " + ef.message));
                }
                w.shard = -1;
                resolveShard(sh, "errored");
                break;
              }
              default:
                throw WireError("unexpected frame type from worker");
            }
        }
        if (w.rpos) {
            w.rbuf.erase(0, w.rpos);
            w.rpos = 0;
        }
    };

    const auto serviceWorker = [&](WorkerProc &w) {
        bool eof = false;
        for (;;) {
            char chunk[1 << 16];
            const ssize_t n = ::read(w.out, chunk, sizeof(chunk));
            if (n > 0) {
                w.rbuf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            eof = true;
            break;
        }
        try {
            processBuffer(w);
        } catch (const WireError &e) {
            if (w.pid > 0)
                ::kill(w.pid, SIGKILL);
            if (!w.helloSeen) {
                if (w.tcp) {
                    // A stranger on the port: garbage, a wrong
                    // protocol, or a version-skewed worker, before
                    // any hello validated. On a network listener
                    // that must not kill the sweep — drop the
                    // connection (it holds no shard) and keep going.
                    emit(strformat(
                        "tcp peer (slot %d) rejected before hello: "
                        "%s",
                        w.slot, e.what()));
                    closeAndReap(w, parentFds);
                    return;
                }
                // Out of protocol before a valid hello: not a flaky
                // worker but a wrong or version-skewed binary, which
                // every reassignment would hit identically — reject
                // the run with the actionable message (e.g. "version
                // mismatch") instead of burning the retry budget.
                closeAndReap(w, parentFds);
                throw std::runtime_error(
                    std::string(
                        "DistRunner: worker handshake failed: ") +
                    e.what());
            }
            // Malformed reply after a good handshake: the worker is
            // corrupt, not slow. Its shard reassigns to a healthy
            // worker.
            workerDied(w);
            return;
        }
        if (eof)
            workerDied(w);
    };

    // A freshly connected socket enters the pool un-admitted: it is
    // polled (for its hello) but assigned nothing until the hello
    // validates or the hello deadline drops it.
    const auto addTcpPeer = [&](int fd, const std::string &how) {
        setNonblock(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        parentFds.push_back(fd);
        auto w = std::make_unique<WorkerProc>();
        w->in = w->out = fd;
        w->alive = true;
        w->tcp = true;
        w->slot = static_cast<int>(pool.size());
        w->joinMs = monoMs();
        emit(strformat("tcp peer %s (slot %d); awaiting hello",
                       how.c_str(), w->slot));
        pool.push_back(std::move(w));
    };

    // When the pool is empty but a listener is open, how long we have
    // been waiting for a (re)join before degrading in-process.
    long long emptySinceMs = -1;

    try {
        // Local slots 0..nworkers-1 are fixed and respawn IN PLACE;
        // TCP peers append after them (the unique_ptr pool keeps
        // every WorkerProc address stable across growth).
        for (std::size_t k = 0; k < nworkers; ++k) {
            pool.push_back(std::make_unique<WorkerProc>(spawnWorker(
                opts_.workerArgv,
                faultFor(static_cast<int>(k), 0), parentFds)));
            pool.back()->slot = static_cast<int>(k);
        }

        // Dial listening workers after the local spawns (children
        // spawned later close the sockets via parentFds). A dead
        // endpoint is skipped, never fatal: the sweep runs on
        // whoever answered.
        for (const std::string &ep : opts_.dial) {
            try {
                addTcpPeer(tcpConnect(ep), "dialed " + ep);
            } catch (const std::exception &e) {
                emit(strformat("tcp dial %s failed: %s (skipping)",
                               ep.c_str(), e.what()));
            }
        }

        while (resolved < shards.size()) {
            assignIdle();

            std::size_t aliveWorkers = 0;
            for (const auto &wp : pool) {
                if (wp->alive)
                    ++aliveWorkers;
            }
            bool degrade = false;
            if (aliveWorkers > 0) {
                emptySinceMs = -1;
            } else {
                const long long now = monoMs();
                if (emptySinceMs < 0)
                    emptySinceMs = now;
                // An open listener buys the empty pool a join window
                // (a rejoining fleet beats running the tail serially)
                // — but only a window, so an abandoned sweep still
                // completes on its own.
                degrade = listenFd < 0 ||
                          (opts_.joinTimeoutMs >= 0 &&
                           now - emptySinceMs >= opts_.joinTimeoutMs);
                if (degrade && listenFd >= 0) {
                    emit(strformat(
                        "tcp listener idle %lld ms with no workers; "
                        "degrading",
                        static_cast<long long>(now - emptySinceMs)));
                }
            }
            if (degrade) {
                // Respawn budget spent and the pool is gone, but the
                // sweep is not: degrade to in-process execution. The
                // results are identical by construction — a shard's
                // outcome depends only on (spec, seed).
                emit(strformat(
                    "worker pool exhausted after %d deaths; running "
                    "%zu remaining shards in-process",
                    workerDeaths, pending.size()));
                while (!pending.empty()) {
                    const std::size_t sh = pending.front();
                    pending.pop_front();
                    const Shard &s = shards[sh];
                    const SystemConfig &cfg = specs[s.spec].cfg;
                    try {
                        const System::Results res = runOnceReusing(
                            parentArena, cfg,
                            cfg.seed +
                                static_cast<std::uint64_t>(s.seed));
                        raw[s.spec]
                           [static_cast<std::size_t>(s.seed)] = res;
                        ckptAppend(sh, res);
                    } catch (const std::exception &e) {
                        specErrored[s.spec] = 1;
                        if (!firstError) {
                            firstError = std::make_exception_ptr(
                                std::runtime_error(strformat(
                                    "DistRunner: shard (spec \"%s\", "
                                    "seed %d) failed in-process: %s",
                                    specs[s.spec].label.c_str(),
                                    s.seed, e.what())));
                        }
                    }
                    resolveShard(sh, "done");
                }
                break;
            }

            std::vector<struct pollfd> fds;
            std::vector<WorkerProc *> who;
            for (auto &wp : pool) {
                WorkerProc &w = *wp;
                if (!w.alive)
                    continue;
                struct pollfd p;
                p.fd = w.out;
                p.events = POLLIN;
                p.revents = 0;
                fds.push_back(p);
                who.push_back(&w);
            }
            int listenPollIdx = -1;
            if (listenFd >= 0) {
                listenPollIdx = static_cast<int>(fds.size());
                struct pollfd p;
                p.fd = listenFd;
                p.events = POLLIN;
                p.revents = 0;
                fds.push_back(p);
                who.push_back(nullptr);
            }

            // Poll no longer than the nearest deadline: a hung
            // shard, a pending peer's hello window, or the empty
            // pool's join window.
            int timeoutMs = -1;
            {
                const long long now = monoMs();
                long long nearest = LLONG_MAX;
                for (const WorkerProc *w : who) {
                    if (!w)
                        continue;
                    const long deadline = workerDeadlineMs(*w);
                    if (deadline > 0) {
                        nearest = std::min(
                            nearest, w->assignMs + deadline - now);
                    }
                    if (w->tcp && !w->admitted &&
                        opts_.helloTimeoutMs > 0) {
                        nearest = std::min(
                            nearest,
                            w->joinMs + opts_.helloTimeoutMs - now);
                    }
                }
                if (aliveWorkers == 0 && listenFd >= 0 &&
                    opts_.joinTimeoutMs >= 0) {
                    nearest = std::min(
                        nearest,
                        emptySinceMs + opts_.joinTimeoutMs - now);
                }
                if (nearest != LLONG_MAX) {
                    timeoutMs = static_cast<int>(std::min<long long>(
                        std::max<long long>(nearest, 0), INT_MAX));
                }
            }

            const int rc =
                ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timeoutMs);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                throw std::runtime_error(
                    std::string("DistRunner: poll(): ") +
                    std::strerror(errno));
            }
            // Admit connections first, then drain replies: a peer
            // that connected and hello'd inside one poll round is
            // assignable by the next assignIdle().
            if (listenPollIdx >= 0 && fds[listenPollIdx].revents) {
                for (;;) {
                    const int cfd = ::accept4(listenFd, nullptr,
                                              nullptr, SOCK_CLOEXEC);
                    if (cfd < 0)
                        break;
                    addTcpPeer(cfd, "connected");
                }
            }
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (fds[i].revents && who[i])
                    serviceWorker(*who[i]);
            }

            // Drop pending peers that never presented a valid hello:
            // strangers (or half-open connections) must not occupy
            // the pool past their window. They hold no shard.
            if (opts_.helloTimeoutMs > 0) {
                const long long now = monoMs();
                for (auto &wp : pool) {
                    WorkerProc &w = *wp;
                    if (!w.alive || !w.tcp || w.admitted ||
                        now - w.joinMs < opts_.helloTimeoutMs)
                        continue;
                    emit(strformat(
                        "tcp peer (slot %d) silent for %lld ms "
                        "before hello; dropping",
                        w.slot,
                        static_cast<long long>(now - w.joinMs)));
                    closeAndReap(w, parentFds);
                }
            }

            // Reap hung workers: alive, a shard outstanding, and
            // silent past the deadline. SIGKILL (pipe) or a socket
            // close (TCP) converts "hung" into the crash path —
            // reassign + respawn within budget.
            {
                const long long now = monoMs();
                for (auto &wp : pool) {
                    WorkerProc &w = *wp;
                    if (!w.alive || w.shard < 0)
                        continue;
                    const long deadline = workerDeadlineMs(w);
                    if (deadline <= 0 ||
                        now - w.assignMs < deadline)
                        continue;
                    const Shard &s =
                        shards[static_cast<std::size_t>(w.shard)];
                    emit(strformat(
                        "worker %d hung on shard (spec \"%s\" seed "
                        "%d) for %lld ms (deadline %ld ms); killing",
                        w.slot, specs[s.spec].label.c_str(), s.seed,
                        static_cast<long long>(now - w.assignMs),
                        deadline));
                    if (w.pid > 0)
                        ::kill(w.pid, SIGKILL);
                    workerDied(w);
                }
            }
        }

        // Clean shutdown: EOF on each worker's job pipe (or socket)
        // makes its serve loop return 0.
        for (auto &wp : pool)
            closeAndReap(*wp, parentFds);
    } catch (...) {
        for (auto &wp : pool) {
            if (wp->alive && wp->pid > 0)
                ::kill(wp->pid, SIGKILL);
            closeAndReap(*wp, parentFds);
        }
        throw;
    }

    if (firstError)
        std::rethrow_exception(firstError);
    return out;
}

ExperimentResult
DistRunner::run(const ExperimentSpec &spec) const
{
    return run(std::vector<ExperimentSpec>{spec}).front();
}

std::vector<ExperimentResult>
runExperimentsDist(const std::vector<ExperimentSpec> &specs,
                   int workers)
{
    DistRunnerOptions opts;
    opts.workers = workers;
    return DistRunner(std::move(opts)).run(specs);
}

// ---------------------------------------------------------------------
// TCP endpoints
// ---------------------------------------------------------------------

int
tcpListen(const std::string &endpoint, int &bound_port)
{
    std::string host;
    std::string port;
    splitEndpoint(endpoint, host, port);
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    const int gai =
        ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                      port.c_str(), &hints, &res);
    if (gai != 0) {
        throw std::runtime_error("tcpListen: cannot resolve " +
                                 endpoint + ": " +
                                 ::gai_strerror(gai));
    }
    int fd = -1;
    std::string err = "no usable addresses";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0) {
            err = std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0) {
            break;
        }
        err = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw std::runtime_error("tcpListen: cannot listen on " +
                                 endpoint + ": " + err);
    }
    struct sockaddr_storage ss;
    socklen_t sl = sizeof(ss);
    bound_port = 0;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&ss),
                      &sl) == 0) {
        if (ss.ss_family == AF_INET) {
            bound_port = ntohs(
                reinterpret_cast<struct sockaddr_in *>(&ss)
                    ->sin_port);
        } else if (ss.ss_family == AF_INET6) {
            bound_port = ntohs(
                reinterpret_cast<struct sockaddr_in6 *>(&ss)
                    ->sin6_port);
        }
    }
    return fd;
}

int
tcpConnect(const std::string &endpoint, long retry_ms)
{
    std::string host;
    std::string port;
    splitEndpoint(endpoint, host, port);
    if (host.empty())
        host = "127.0.0.1";
    const long long giveUp = monoMs() + retry_ms;
    std::string err = "unknown error";
    for (;;) {
        struct addrinfo hints;
        std::memset(&hints, 0, sizeof(hints));
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        struct addrinfo *res = nullptr;
        const int gai = ::getaddrinfo(host.c_str(), port.c_str(),
                                      &hints, &res);
        if (gai != 0) {
            err = ::gai_strerror(gai);
        } else {
            for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
                const int fd =
                    ::socket(ai->ai_family,
                             ai->ai_socktype | SOCK_CLOEXEC,
                             ai->ai_protocol);
                if (fd < 0) {
                    err = std::strerror(errno);
                    continue;
                }
                if (::connect(fd, ai->ai_addr, ai->ai_addrlen) ==
                    0) {
                    ::freeaddrinfo(res);
                    const int one = 1;
                    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                                 sizeof(one));
                    return fd;
                }
                err = std::strerror(errno);
                ::close(fd);
            }
            ::freeaddrinfo(res);
        }
        // The retry window exists so a fleet can be launched before
        // (or while) the sweep that will accept it comes up.
        if (monoMs() >= giveUp)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    throw std::runtime_error("tcpConnect: cannot connect to " +
                             endpoint + ": " + err);
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

int
runDistWorker(int in_fd, int out_fd, const DistWorkerFault &fault,
              const std::string &identity)
{
    std::string hello;
    appendFrame(hello, FrameType::hello, encodeHelloPayload(identity));
    if (!writeAll(out_fd, hello))
        return 2;

    // Reusable System arena, exactly like a ParallelRunner worker:
    // consecutive shards whose configs share a structural shape reset
    // in place. Reset is bit-identical to fresh construction, so the
    // reuse policy cannot leak into results.
    std::unique_ptr<System> arena;
    std::string buf;
    std::size_t pos = 0;
    int served = 0;

    for (;;) {
        Frame f;
        bool have = false;
        try {
            have = tryExtractFrame(buf, pos, f);
        } catch (const WireError &) {
            return 2;   // corrupt input stream: parent-side bug
        }
        if (!have) {
            if (pos) {
                buf.erase(0, pos);
                pos = 0;
            }
            char chunk[1 << 16];
            const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
            if (n == 0)
                return 0;   // EOF: sweep complete, clean shutdown
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return 2;
            }
            buf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }

        if (f.type != FrameType::job)
            return 2;
        std::string reply;
        std::uint64_t job_id = 0;
        try {
            const JobFrame job = decodeJobPayload(f.payload);
            job_id = job.jobId;
            const System::Results res =
                runOnceReusing(arena, job.cfg, job.seed);
            appendFrame(reply, FrameType::result,
                        encodeResultPayload(job.jobId, res));
        } catch (const WireError &) {
            return 2;   // malformed job frame
        } catch (const std::exception &e) {
            appendFrame(reply, FrameType::error,
                        encodeErrorPayload(job_id, e.what()));
        } catch (...) {
            appendFrame(reply, FrameType::error,
                        encodeErrorPayload(job_id, "unknown error"));
        }

        if (fault.crashAfterShards >= 0 &&
            served == fault.crashAfterShards) {
            ::raise(SIGKILL);
        }
        if (fault.truncateAfterShards >= 0 &&
            served == fault.truncateAfterShards) {
            writeAll(out_fd, reply.substr(0, reply.size() / 2));
            return 3;
        }
        if (fault.hangAfterShards >= 0 &&
            served == fault.hangAfterShards) {
            // Alive but silent: the shape only a deadline can catch.
            for (;;)
                ::pause();
        }
        if (fault.partialFrameAfterShards >= 0 &&
            served == fault.partialFrameAfterShards) {
            writeAll(out_fd, reply.substr(0, reply.size() / 2));
            for (;;)
                ::pause();
        }
        if (fault.garbageAfterShards >= 0 &&
            served == fault.garbageAfterShards) {
            // 0xee is not a frame type: the parent's decoder throws.
            writeAll(out_fd, std::string(64, '\xee'));
            return 3;
        }
        if (fault.disconnectAfterShards >= 0 &&
            served == fault.disconnectAfterShards) {
            // Half a result frame, then a hard close. SO_LINGER 0
            // turns the close into a RST on a socket — the rudest
            // disconnect a remote worker can produce; on a pipe the
            // setsockopt is a no-op and this degrades to truncate.
            writeAll(out_fd, reply.substr(0, reply.size() / 2));
            struct linger lg;
            lg.l_onoff = 1;
            lg.l_linger = 0;
            ::setsockopt(out_fd, SOL_SOCKET, SO_LINGER, &lg,
                         sizeof(lg));
            ::close(out_fd);
            return 3;
        }
        if (!writeAll(out_fd, reply))
            return 2;
        ++served;
    }
}

} // namespace tokensim
