/**
 * @file
 * Multi-process experiment runner.
 *
 * Where ParallelRunner shards a sweep across threads, DistRunner
 * shards the same (spec, seed) grid across worker *subprocesses*:
 * each worker is fed one shard at a time over a pipe (job frames in
 * the harness/wire.hh format), runs it in a private System, and
 * streams the raw System::Results back. The parent folds raw results
 * into the fixed (spec, seed) grid incrementally as shards complete —
 * emitting streaming progress / partial-aggregate lines through an
 * optional callback — but the merge itself always happens in (spec,
 * seed) order, so the output is bit-identical to a serial
 * runExperiment() loop and to ParallelRunner at any worker count.
 *
 * Fault tolerance: a worker that dies mid-shard (crash, kill, EOF
 * with a job outstanding) or returns a malformed reply is discarded
 * and its shard is reassigned to a healthy worker. Because a shard's
 * result depends only on (spec, seed) — never on which process ran it
 * or how many times it was attempted — reassignment cannot perturb
 * the final digests. This is the process-level restatement of the
 * paper's thesis: the performance substrate (how work is scheduled,
 * even across failures) is decoupled from correctness (the results).
 *
 * Workers default to forked children running the worker loop
 * in-process (works from any binary: tests, benches). Setting
 * workerArgv instead execs an external worker — `sweep_tool worker`
 * speaks exactly this protocol on stdin/stdout, which is the seam a
 * multi-host dispatcher plugs into (ship job frames over any byte
 * stream, not just a local pipe).
 */

#ifndef TOKENSIM_HARNESS_DIST_RUNNER_HH
#define TOKENSIM_HARNESS_DIST_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace tokensim {

/**
 * Test-only fault injection, applied inside a worker's serve loop.
 * The crash-recovery suite uses these to prove reassignment leaves
 * digests untouched.
 */
struct DistWorkerFault
{
    /**
     * After computing shard number N (0-based, counting jobs this
     * worker served), SIGKILL the worker instead of replying — the
     * parent sees EOF with a job outstanding. -1 disables.
     */
    int crashAfterShards = -1;

    /**
     * After computing shard number N, write only the first half of
     * the result frame and exit — the parent sees a truncated reply.
     * -1 disables.
     */
    int truncateAfterShards = -1;
};

/** Tuning knobs for the DistRunner. */
struct DistRunnerOptions
{
    /**
     * Worker process count. 0 picks the TOKENSIM_WORKERS environment
     * variable if set, else std::thread::hardware_concurrency().
     */
    int workers = 0;

    /**
     * How many times one shard may be reassigned after worker
     * failures before the run gives up. Bounds the pathological case
     * where the shard itself crashes every worker it lands on.
     */
    int maxShardRetries = 2;

    /**
     * Exec this argv as each worker (it must speak the worker
     * protocol on stdin/stdout, e.g. {"/path/to/sweep_tool",
     * "worker"}). Empty: fork-only children run the in-process
     * worker loop — no external binary needed.
     */
    std::vector<std::string> workerArgv;

    /**
     * Streaming observer: called once per completed shard and once
     * per completed design point (with its partial-aggregate digest
     * line), as completions arrive — i.e. out of spec order. Null
     * disables. Must not throw.
     */
    std::function<void(const std::string &line)> progress;

    /** Fault injection for worker 0 (tests only). */
    DistWorkerFault workerFault;
};

/** Shards experiment configurations across worker subprocesses. */
class DistRunner
{
  public:
    explicit DistRunner(DistRunnerOptions opts = {});

    /** Resolved worker count (>= 1). */
    int workers() const { return workers_; }

    /**
     * Run every spec and return aggregated results in spec order,
     * bit-identical to the serial loop (see file comment).
     *
     * @throws std::invalid_argument for specs a subprocess cannot
     *         run: a custom workloadFactory (not serializable) or a
     *         recordTrace path (workers would race on the file).
     * @throws std::runtime_error when a shard fails deterministically
     *         (the worker reports the shard's exception), when a
     *         shard exhausts its retry budget, or when every worker
     *         has died with work remaining.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** Convenience: run one spec (its seeds still shard). */
    ExperimentResult run(const ExperimentSpec &spec) const;

  private:
    DistRunnerOptions opts_;
    int workers_;
};

/** One-shot helper, mirroring runExperimentsParallel(). */
std::vector<ExperimentResult>
runExperimentsDist(const std::vector<ExperimentSpec> &specs,
                   int workers = 0);

/**
 * The worker side of the protocol: send hello, then serve job frames
 * from @p in_fd — one System run per job, reusing the System across
 * jobs exactly like a ParallelRunner worker arena — replying on
 * @p out_fd until EOF. Returns the process exit code (0 on a clean
 * EOF shutdown). Runs in forked DistRunner children and under
 * `sweep_tool worker` (fds 0/1).
 */
int runDistWorker(int in_fd, int out_fd,
                  const DistWorkerFault &fault = {});

} // namespace tokensim

#endif // TOKENSIM_HARNESS_DIST_RUNNER_HH
