/**
 * @file
 * Multi-process experiment runner.
 *
 * Where ParallelRunner shards a sweep across threads, DistRunner
 * shards the same (spec, seed) grid across worker *subprocesses*:
 * each worker is fed one shard at a time over a pipe (job frames in
 * the harness/wire.hh format), runs it in a private System, and
 * streams the raw System::Results back. The parent folds raw results
 * into the fixed (spec, seed) grid incrementally as shards complete —
 * emitting streaming progress / partial-aggregate lines through an
 * optional callback — but the merge itself always happens in (spec,
 * seed) order, so the output is bit-identical to a serial
 * runExperiment() loop and to ParallelRunner at any worker count.
 *
 * Fault tolerance: a worker that dies mid-shard (crash, kill, EOF
 * with a job outstanding), returns a malformed reply, or goes silent
 * past its per-shard deadline (SIGKILLed as hung) is discarded, its
 * shard is reassigned to a healthy worker, and — within a churn
 * budget — a replacement worker is spawned into its slot. When the
 * budget is spent and the pool empties with work remaining, the
 * parent degrades gracefully: it runs the remaining shards in-process
 * rather than failing the sweep. Because a shard's result depends
 * only on (spec, seed) — never on which process ran it or how many
 * times it was attempted — none of this can perturb the final
 * digests. This is the process-level restatement of the paper's
 * thesis: the performance substrate (how work is scheduled, even
 * across failures) is decoupled from correctness (the results).
 *
 * Crash safety: with DistRunnerOptions::checkpointPath set, every
 * completed shard is appended to an on-disk checkpoint (CRC-framed
 * records behind an atomically-created header — see wire.hh), and a
 * rerun of the same sweep against the same path restores completed
 * shards instead of recomputing them. The only unsurvivable loss is
 * the checkpoint file itself.
 *
 * Workers default to forked children running the worker loop
 * in-process (works from any binary: tests, benches). Setting
 * workerArgv instead execs an external worker — `sweep_tool worker`
 * speaks exactly this protocol on stdin/stdout, which is the seam a
 * multi-host dispatcher plugs into (ship job frames over any byte
 * stream, not just a local pipe).
 *
 * Cross-host TCP transport: the same frame conversation runs over
 * connected sockets. The parent can open a listener (`listen`) that
 * admits any peer presenting a valid hello — `sweep_tool worker
 * --connect HOST:PORT` dials it — and can itself dial listening
 * workers (`dial`, fed by `sweep_tool run --hosts`). Membership is
 * elastic: workers may join at any point of the sweep and are handed
 * shards immediately; a worker that disconnects (cleanly, mid-frame,
 * or by vanishing) has its shard reassigned exactly like a pipe
 * worker's crash. A connected stranger — silent, garbage-speaking, or
 * version-skewed before its hello — is dropped without touching the
 * sweep. Local pipe workers and remote TCP workers mix freely in one
 * pool behind one frame-I/O poll loop, and the per-shard deadline,
 * retry budget, and checkpoint cover the whole fleet.
 */

#ifndef TOKENSIM_HARNESS_DIST_RUNNER_HH
#define TOKENSIM_HARNESS_DIST_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace tokensim {

/**
 * Test-only fault injection, applied inside a worker's serve loop.
 * The crash-recovery suite uses these to prove that every failure
 * shape — crash, truncated reply, hang, partial frame, garbage — is
 * recovered from with digests untouched.
 *
 * Targeting: `worker` picks the pool slot the fault applies to and
 * `spawnGeneration` which process spawned into that slot (0 = the
 * initial worker, n = the nth respawn after a death); -1 in either
 * field means "every". Faults only apply to forked workers — an
 * exec'd worker starts clean.
 *
 * Each trigger fires after computing shard number N (0-based,
 * counting jobs this worker served); -1 disables it.
 */
struct DistWorkerFault
{
    /** Target pool slot (-1: every slot). */
    int worker = 0;

    /** Target spawn into the slot (-1: every spawn, incl. respawns). */
    int spawnGeneration = 0;

    /**
     * SIGKILL instead of replying — the parent sees EOF with a job
     * outstanding.
     */
    int crashAfterShards = -1;

    /**
     * Write only the first half of the result frame and exit — the
     * parent sees a truncated reply then EOF (exit mid-frame).
     */
    int truncateAfterShards = -1;

    /**
     * Write nothing and block forever — alive but silent, the hung
     * worker the per-shard deadline exists to catch.
     */
    int hangAfterShards = -1;

    /**
     * Write the first half of the result frame, then block forever —
     * a partial frame the parent can only escape via the deadline.
     */
    int partialFrameAfterShards = -1;

    /**
     * Write garbage bytes (an invalid frame type) instead of the
     * reply, then exit — the malformed-reply path.
     */
    int garbageAfterShards = -1;

    /**
     * Write the first half of the result frame, then hard-close the
     * output descriptor (on a socket: SO_LINGER 0, so the peer sees a
     * RST, not a tidy FIN) — the network twin of truncateAfterShards:
     * a worker disconnecting mid-result-frame.
     */
    int disconnectAfterShards = -1;
};

/** Tuning knobs for the DistRunner. */
struct DistRunnerOptions
{
    /**
     * Local worker process count. 0 picks the TOKENSIM_WORKERS
     * environment variable if set, else
     * std::thread::hardware_concurrency() — unless a TCP endpoint
     * (listen/dial) is configured, in which case 0 means zero local
     * workers (the fleet is remote).
     */
    int workers = 0;

    /**
     * How many times one shard may be reassigned after worker
     * failures before the run gives up (surfacing the first recorded
     * error, if any). Bounds the pathological case where the shard
     * itself crashes every worker it lands on.
     */
    int maxShardRetries = 2;

    /**
     * Per-shard deadline in milliseconds: a worker still silent on
     * one shard past this is presumed hung, SIGKILLed, and its shard
     * reassigned exactly like a crash. 0 (default) derives the
     * deadline from observed shard times — 10x the slowest completed
     * shard of the same design point, floored at 10 s, unbounded
     * until that design point's first completion (per-spec, because
     * shard cost varies ~100x across specs in one sweep at kilonode
     * geometries) — so it needs no tuning yet still unsticks a sweep
     * whose tail worker wedges. < 0 disables detection entirely.
     */
    long shardTimeoutMs = 0;

    /**
     * Worker-churn budget: how many replacement workers may be
     * spawned after deaths (crash / malformed reply / hang) before
     * the runner stops replacing them. When the pool then empties
     * with shards remaining, the parent runs them in-process instead
     * of failing the sweep. -1 (default) resolves to 2x the worker
     * count.
     */
    int maxWorkerRespawns = -1;

    /**
     * Crash-safe checkpoint file (empty disables): completed shards
     * append here as CRC-framed records, and a rerun of the same
     * sweep against an existing file restores them instead of
     * recomputing (a torn trailing record from a killed writer is
     * dropped and re-run). Resuming against a file recorded for a
     * different sweep throws CheckpointMismatch.
     */
    std::string checkpointPath;

    /**
     * Exec this argv as each worker (it must speak the worker
     * protocol on stdin/stdout, e.g. {"/path/to/sweep_tool",
     * "worker"}). Empty: fork-only children run the in-process
     * worker loop — no external binary needed.
     */
    std::vector<std::string> workerArgv;

    /**
     * TCP listener address "HOST:PORT" (port 0 binds an ephemeral
     * port); empty disables. Any peer that connects and presents a
     * valid hello joins the worker pool — before the sweep starts or
     * at any point during it (elastic membership).
     */
    std::string listen;

    /**
     * Invoked once with the bound port as soon as the listener is up
     * — before any worker is spawned or dialed, so the callback may
     * launch the fleet that will connect. Must not throw.
     */
    std::function<void(int port)> onListen;

    /**
     * "HOST:PORT" endpoints of listening workers (`sweep_tool worker
     * --listen`) the parent dials at startup. An endpoint that cannot
     * be reached is reported and skipped, never fatal — the sweep
     * runs on whoever answered (and whoever later connects).
     */
    std::vector<std::string> dial;

    /**
     * How long a connected TCP peer may take to present a valid
     * hello before it is dropped as a stranger. A pipe worker is our
     * own spawn and is exempt.
     */
    long helloTimeoutMs = 10000;

    /**
     * How long the runner waits for a TCP worker to (re)join when no
     * workers remain but a listener is open, before degrading to
     * in-process execution. < 0 waits forever (only sensible when
     * something supervises the fleet).
     */
    long joinTimeoutMs = 30000;

    /**
     * Streaming observer: called once per completed shard and once
     * per completed design point (with its partial-aggregate digest
     * line), as completions arrive — i.e. out of spec order. Null
     * disables. Must not throw.
     */
    std::function<void(const std::string &line)> progress;

    /** Fault injection (tests only); see DistWorkerFault targeting. */
    DistWorkerFault workerFault;
};

/** Shards experiment configurations across worker subprocesses. */
class DistRunner
{
  public:
    explicit DistRunner(DistRunnerOptions opts = {});

    /**
     * Resolved local worker count (>= 1; may be 0 when a TCP
     * endpoint is configured and the fleet is remote).
     */
    int workers() const { return workers_; }

    /**
     * Run every spec and return aggregated results in spec order,
     * bit-identical to the serial loop (see file comment).
     *
     * @throws std::invalid_argument for specs a subprocess cannot
     *         run: a custom workloadFactory (not serializable) or a
     *         recordTrace path (workers would race on the file).
     * @throws CheckpointMismatch / CheckpointError when checkpointPath
     *         names a file recorded for a different sweep, or one too
     *         corrupt to use (a torn tail is NOT that — it is dropped
     *         and re-run).
     * @throws std::runtime_error when a shard fails deterministically
     *         (the worker reports the shard's exception) or exhausts
     *         its retry budget. A dying worker pool is no longer
     *         fatal: remaining shards degrade to in-process runs.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** Convenience: run one spec (its seeds still shard). */
    ExperimentResult run(const ExperimentSpec &spec) const;

  private:
    DistRunnerOptions opts_;
    int workers_;
};

/** One-shot helper, mirroring runExperimentsParallel(). */
std::vector<ExperimentResult>
runExperimentsDist(const std::vector<ExperimentSpec> &specs,
                   int workers = 0);

/**
 * The worker side of the protocol: send hello (carrying @p identity,
 * e.g. "host:pid"), then serve job frames from @p in_fd — one System
 * run per job, reusing the System across jobs exactly like a
 * ParallelRunner worker arena — replying on @p out_fd until EOF.
 * Returns the process exit code (0 on a clean EOF shutdown). Runs in
 * forked DistRunner children, under `sweep_tool worker` (fds 0/1),
 * and over a connected socket (pass the same fd twice).
 */
int runDistWorker(int in_fd, int out_fd,
                  const DistWorkerFault &fault = {},
                  const std::string &identity = {});

// ---------------------------------------------------------------------
// TCP endpoints. Thin, throwing wrappers over the sockets API so the
// worker CLI and the tests speak the transport through one door.
// ---------------------------------------------------------------------

/**
 * Bind and listen on "HOST:PORT" ("PORT" alone binds every
 * interface; port 0 picks an ephemeral port, reported via
 * @p bound_port). Returns the listening fd (blocking; callers set
 * O_NONBLOCK if they poll it).
 * @throws std::runtime_error naming the endpoint on any failure.
 */
int tcpListen(const std::string &endpoint, int &bound_port);

/**
 * Resolve and connect to "HOST:PORT". Retries (connection refused /
 * not yet resolvable) until @p retry_ms elapses — 0 tries once — so
 * a worker can be launched before the sweep that will accept it.
 * Returns a connected blocking fd.
 * @throws std::runtime_error naming the endpoint on failure.
 */
int tcpConnect(const std::string &endpoint, long retry_ms = 0);

} // namespace tokensim

#endif // TOKENSIM_HARNESS_DIST_RUNNER_HH
