#include "harness/experiment.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace tokensim {

namespace {

/** IEEE-754 bit pattern of @p v (digests must be bit-exact). */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

void
appendField(std::string &out, const char *key, std::uint64_t value,
            bool hex)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  hex ? "%s=%016" PRIx64 " " : "%s=%" PRIu64 " ", key,
                  value);
    out += buf;
}

} // namespace

std::string
resultDigest(const ExperimentResult &r)
{
    std::string out;
    appendField(out, "ops", r.ops, false);
    appendField(out, "misses", r.misses, false);
    appendField(out, "cpt", doubleBits(r.cyclesPerTransaction), true);
    appendField(out, "cptSd",
                doubleBits(r.cyclesPerTransactionStddev), true);
    appendField(out, "bpm", doubleBits(r.bytesPerMiss), true);
    for (std::size_t c = 0; c < numMsgClasses; ++c) {
        const std::string key = "bpm" + std::to_string(c);
        appendField(out, key.c_str(),
                    doubleBits(r.bytesPerMissByClass[c]), true);
    }
    appendField(out, "missRate", doubleBits(r.missRate), true);
    appendField(out, "c2c", doubleBits(r.cacheToCacheFrac), true);
    appendField(out, "lat", doubleBits(r.avgMissLatencyNs), true);
    appendField(out, "pNot", doubleBits(r.pctNotReissued), true);
    appendField(out, "pOnce", doubleBits(r.pctReissuedOnce), true);
    appendField(out, "pMore", doubleBits(r.pctReissuedMore), true);
    appendField(out, "pPers", doubleBits(r.pctPersistent), true);
    out.pop_back();   // trailing space
    return out;
}

bool
identicalResults(const ExperimentResult &a, const ExperimentResult &b)
{
    if (a.ops != b.ops || a.misses != b.misses)
        return false;
    if (a.cyclesPerTransaction != b.cyclesPerTransaction ||
        a.cyclesPerTransactionStddev != b.cyclesPerTransactionStddev ||
        a.bytesPerMiss != b.bytesPerMiss ||
        a.missRate != b.missRate ||
        a.cacheToCacheFrac != b.cacheToCacheFrac ||
        a.avgMissLatencyNs != b.avgMissLatencyNs ||
        a.pctNotReissued != b.pctNotReissued ||
        a.pctReissuedOnce != b.pctReissuedOnce ||
        a.pctReissuedMore != b.pctReissuedMore ||
        a.pctPersistent != b.pctPersistent ||
        a.eventsPerOp != b.eventsPerOp)
        return false;
    for (std::size_t c = 0; c < numMsgClasses; ++c)
        if (a.bytesPerMissByClass[c] != b.bytesPerMissByClass[c])
            return false;
    return true;
}

System::Results
runOnce(SystemConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    System sys(cfg);
    sys.run();
    return sys.results();
}

System::Results
runOnceReusing(std::unique_ptr<System> &sys, SystemConfig cfg,
               std::uint64_t seed, bool trust_factory)
{
    cfg.seed = seed;
    try {
        if (!sys || !sys->reset(cfg, trust_factory))
            sys = std::make_unique<System>(cfg);
        sys->run();
        return sys->results();
    } catch (...) {
        // A System that threw mid-construction or mid-run is not in a
        // reusable state.
        sys.reset();
        throw;
    }
}

ExperimentResult
aggregateResults(const std::vector<System::Results> &runs,
                 const std::string &label)
{
    ExperimentResult out;
    out.label = label;

    RunningStat cpt;
    std::uint64_t total_misses = 0;
    std::uint64_t total_c2c = 0;
    std::uint64_t total_l2_accesses = 0;
    std::uint64_t byte_links[numMsgClasses] = {};
    std::uint64_t total_byte_links = 0;
    std::uint64_t not_reissued = 0, once = 0, more = 0, persistent = 0;
    std::uint64_t events_dispatched = 0;
    RunningStat miss_lat;

    for (const System::Results &r : runs) {
        cpt.add(r.cyclesPerTransaction());
        total_misses += r.misses;
        total_c2c += r.cacheToCache;
        total_l2_accesses += r.l2Accesses;
        for (std::size_t c = 0; c < numMsgClasses; ++c) {
            byte_links[c] += r.traffic.byClass[c].byteLinks;
            total_byte_links += r.traffic.byClass[c].byteLinks;
        }
        not_reissued += r.missesNotReissued;
        once += r.missesReissuedOnce;
        more += r.missesReissuedMore;
        persistent += r.missesPersistent;
        out.ops += r.ops;
        events_dispatched += r.eventsDispatched;
        if (r.avgMissLatencyTicks > 0)
            miss_lat.add(r.avgMissLatencyTicks);
    }

    out.cyclesPerTransaction = cpt.mean();
    out.cyclesPerTransactionStddev = cpt.stddev();
    out.misses = total_misses;
    if (total_misses) {
        out.bytesPerMiss = static_cast<double>(total_byte_links) /
            static_cast<double>(total_misses);
        for (std::size_t c = 0; c < numMsgClasses; ++c) {
            out.bytesPerMissByClass[c] =
                static_cast<double>(byte_links[c]) /
                static_cast<double>(total_misses);
        }
        out.cacheToCacheFrac = static_cast<double>(total_c2c) /
            static_cast<double>(total_misses);

        const double denom = static_cast<double>(total_misses);
        out.pctNotReissued = 100.0 * static_cast<double>(not_reissued) / denom;
        out.pctReissuedOnce = 100.0 * static_cast<double>(once) / denom;
        out.pctReissuedMore = 100.0 * static_cast<double>(more) / denom;
        out.pctPersistent = 100.0 * static_cast<double>(persistent) / denom;
    }
    if (total_l2_accesses) {
        out.missRate = static_cast<double>(total_misses) /
            static_cast<double>(total_l2_accesses);
    }
    out.avgMissLatencyNs = ticksToNsF(
        static_cast<Tick>(miss_lat.mean()));
    if (out.ops) {
        out.eventsPerOp = static_cast<double>(events_dispatched) /
            static_cast<double>(out.ops);
    }
    return out;
}

ExperimentResult
runExperiment(SystemConfig cfg, int seeds, const std::string &label)
{
    std::vector<System::Results> runs;
    runs.reserve(static_cast<std::size_t>(seeds));
    const std::uint64_t base_seed = cfg.seed;
    for (int s = 0; s < seeds; ++s)
        runs.push_back(runOnce(cfg, base_seed +
                                        static_cast<std::uint64_t>(s)));
    return aggregateResults(runs, label);
}

} // namespace tokensim
