#include "harness/experiment.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace tokensim {

namespace {

/** IEEE-754 bit pattern of @p v (digests must be bit-exact). */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

void
appendField(std::string &out, const char *key, std::uint64_t value,
            bool hex)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  hex ? "%s=%016" PRIx64 " " : "%s=%" PRIu64 " ", key,
                  value);
    out += buf;
}

} // namespace

std::string
resultDigest(const ExperimentResult &r)
{
    std::string out;
    appendField(out, "ops", r.ops, false);
    appendField(out, "misses", r.misses, false);
    appendField(out, "cpt", doubleBits(r.cyclesPerTransaction), true);
    appendField(out, "cptSd",
                doubleBits(r.cyclesPerTransactionStddev), true);
    appendField(out, "bpm", doubleBits(r.bytesPerMiss), true);
    for (std::size_t c = 0; c < numMsgClasses; ++c) {
        const std::string key = "bpm" + std::to_string(c);
        appendField(out, key.c_str(),
                    doubleBits(r.bytesPerMissByClass[c]), true);
    }
    appendField(out, "missRate", doubleBits(r.missRate), true);
    appendField(out, "c2c", doubleBits(r.cacheToCacheFrac), true);
    appendField(out, "lat", doubleBits(r.avgMissLatencyNs), true);
    appendField(out, "pNot", doubleBits(r.pctNotReissued), true);
    appendField(out, "pOnce", doubleBits(r.pctReissuedOnce), true);
    appendField(out, "pMore", doubleBits(r.pctReissuedMore), true);
    appendField(out, "pPers", doubleBits(r.pctPersistent), true);
    out.pop_back();   // trailing space
    return out;
}

bool
identicalResults(const ExperimentResult &a, const ExperimentResult &b)
{
    // The registries cover every metric (diagnostic ones included)
    // with bit-exact payload comparison; the derived-field checks
    // below would be implied, but stay as a cheap cross-check that
    // derivation itself is deterministic.
    if (a.metrics != b.metrics)
        return false;
    if (a.ops != b.ops || a.misses != b.misses)
        return false;
    if (a.cyclesPerTransaction != b.cyclesPerTransaction ||
        a.cyclesPerTransactionStddev != b.cyclesPerTransactionStddev ||
        a.bytesPerMiss != b.bytesPerMiss ||
        a.missRate != b.missRate ||
        a.cacheToCacheFrac != b.cacheToCacheFrac ||
        a.avgMissLatencyNs != b.avgMissLatencyNs ||
        a.pctNotReissued != b.pctNotReissued ||
        a.pctReissuedOnce != b.pctReissuedOnce ||
        a.pctReissuedMore != b.pctReissuedMore ||
        a.pctPersistent != b.pctPersistent ||
        a.eventsPerOp != b.eventsPerOp)
        return false;
    for (std::size_t c = 0; c < numMsgClasses; ++c)
        if (a.bytesPerMissByClass[c] != b.bytesPerMissByClass[c])
            return false;
    return true;
}

System::Results
runOnce(SystemConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    System sys(cfg);
    sys.run();
    return sys.results();
}

System::Results
runOnceReusing(std::unique_ptr<System> &sys, SystemConfig cfg,
               std::uint64_t seed, bool trust_factory)
{
    cfg.seed = seed;
    try {
        if (!sys || !sys->reset(cfg, trust_factory))
            sys = std::make_unique<System>(cfg);
        sys->run();
        return sys->results();
    } catch (...) {
        // A System that threw mid-construction or mid-run is not in a
        // reusable state.
        sys.reset();
        throw;
    }
}

ExperimentResult
aggregateResults(const std::vector<System::Results> &runs,
                 const std::string &label)
{
    ExperimentResult out;
    out.label = label;

    // One generic merge replaces the old per-field accumulation: each
    // metric folds in by its kind's rule (counters sum, stats
    // Welford-combine, histograms add bucket-wise). Seed order is
    // fixed by the caller, so the merged registry — and everything
    // derived from it — is independent of execution order.
    for (const System::Results &r : runs)
        out.metrics.merge(r.metrics);
    const MetricRegistry &m = out.metrics;

    // cpt_ns holds one sample per run; combining single-sample stats
    // is bit-identical to the sequential add() loop this replaced
    // (RunningStat::combine's documented guarantee), so the pinned
    // cpt/cptSd digest fields are unchanged.
    const RunningStat cpt = m.statValue("cpt_ns");
    out.cyclesPerTransaction = cpt.mean();
    out.cyclesPerTransactionStddev = cpt.stddev();

    out.ops = m.counterValue("ops");
    const std::uint64_t total_misses = m.counterValue("misses");
    out.misses = total_misses;

    std::uint64_t total_byte_links = 0;
    for (std::size_t c = 0; c < numMsgClasses; ++c) {
        total_byte_links += m.counterValue(
            std::string("link_bytes_") +
            msgClassName(static_cast<MsgClass>(c)));
    }

    if (total_misses) {
        const double denom = static_cast<double>(total_misses);
        out.bytesPerMiss =
            static_cast<double>(total_byte_links) / denom;
        for (std::size_t c = 0; c < numMsgClasses; ++c) {
            out.bytesPerMissByClass[c] =
                static_cast<double>(m.counterValue(
                    std::string("link_bytes_") +
                    msgClassName(static_cast<MsgClass>(c)))) /
                denom;
        }
        out.cacheToCacheFrac =
            static_cast<double>(m.counterValue("cache_to_cache")) /
            denom;

        out.pctNotReissued = 100.0 *
            static_cast<double>(m.counterValue("miss_reissue_none")) /
            denom;
        out.pctReissuedOnce = 100.0 *
            static_cast<double>(m.counterValue("miss_reissue_once")) /
            denom;
        out.pctReissuedMore = 100.0 *
            static_cast<double>(m.counterValue("miss_reissue_more")) /
            denom;
        out.pctPersistent = 100.0 *
            static_cast<double>(m.counterValue("miss_persistent")) /
            denom;
    }
    const std::uint64_t total_l2_accesses =
        m.counterValue("l2_accesses");
    if (total_l2_accesses) {
        out.missRate = static_cast<double>(total_misses) /
            static_cast<double>(total_l2_accesses);
    }

    // The merged miss-latency stat pools every miss of every run, so
    // the cross-seed mean is weighted by miss count (a seed with more
    // misses counts proportionally more; it used to be an unweighted
    // mean of per-seed means). The mean is fractional ticks and must
    // stay fractional through the ns conversion — casting it to Tick
    // first quantized the reported latency to 0.1 ns steps.
    out.avgMissLatencyNs =
        ticksToNsF(m.statValue("miss_latency_ticks").mean());

    if (out.ops) {
        out.eventsPerOp =
            static_cast<double>(m.counterValue("events_dispatched")) /
            static_cast<double>(out.ops);
    }
    return out;
}

ExperimentResult
runExperiment(SystemConfig cfg, int seeds, const std::string &label)
{
    std::vector<System::Results> runs;
    runs.reserve(static_cast<std::size_t>(seeds));
    const std::uint64_t base_seed = cfg.seed;
    for (int s = 0; s < seeds; ++s)
        runs.push_back(runOnce(cfg, base_seed +
                                        static_cast<std::uint64_t>(s)));
    return aggregateResults(runs, label);
}

} // namespace tokensim
