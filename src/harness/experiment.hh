/**
 * @file
 * Experiment runner: executes a SystemConfig across multiple seeds
 * (the paper perturbs each design point and reports error bars) and
 * aggregates the metrics the figures use.
 */

#ifndef TOKENSIM_HARNESS_EXPERIMENT_HH
#define TOKENSIM_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "harness/system.hh"

namespace tokensim {

/**
 * Aggregated metrics for one design point. The registry holds every
 * metric of every run, merged by each metric's rule (sum /
 * Welford-combine / bucket-add); the named fields below are the
 * figure-ready aggregates derived from it, kept as plain doubles so
 * resultDigest() stays pinned to a fixed field set and order.
 */
struct ExperimentResult
{
    std::string label;

    /** Union of the per-run registries, merged in seed order. */
    MetricRegistry metrics;

    double cyclesPerTransaction = 0;
    double cyclesPerTransactionStddev = 0;
    double bytesPerMiss = 0;
    double bytesPerMissByClass[numMsgClasses] = {};

    std::uint64_t ops = 0;
    std::uint64_t misses = 0;
    double missRate = 0;            ///< misses / L2 accesses
    double cacheToCacheFrac = 0;    ///< of completed misses
    double avgMissLatencyNs = 0;

    // Token Coherence reissue percentages (Table 2).
    double pctNotReissued = 0;
    double pctReissuedOnce = 0;
    double pctReissuedMore = 0;
    double pctPersistent = 0;

    /**
     * Dispatched simulation events per completed operation, summed
     * over the aggregated runs. A diagnostic of simulator cost (the
     * per-miss event storm the timer wheel and cut-through routing
     * collapse), NOT of simulated behavior — deliberately excluded
     * from resultDigest() so kernel bookkeeping changes never churn
     * golden digests; identicalResults() still covers it.
     */
    double eventsPerOp = 0;
};

/**
 * Exact (bit-identical) equality of every statistic, label excluded.
 * The determinism gates (tests/test_parallel_runner.cc and the
 * runner-matrix benchmark) use this; keeping it next to the struct
 * means a new field extends every gate in one place.
 */
bool identicalResults(const ExperimentResult &a,
                      const ExperimentResult &b);

/**
 * One-line, bit-exact textual digest of every statistic (label
 * excluded): integers in decimal, doubles as raw IEEE-754 bit
 * patterns in hex. Comparison is strictly bitwise — stricter than
 * identicalResults() for -0.0 vs +0.0 and, unlike operator!=, stable
 * for NaN — which is what a stored regression oracle needs: the
 * golden-trace suite commits digests next to its traces and
 * trace_tool prints them for ad-hoc comparison.
 */
std::string resultDigest(const ExperimentResult &r);

/**
 * One design point for a runner: a configuration, how many seeds to
 * perturb it with, and a display label. Seed s of the spec runs with
 * cfg.seed + s, so results depend only on the spec — never on which
 * worker thread executes it.
 */
struct ExperimentSpec
{
    SystemConfig cfg;
    int seeds = 3;
    std::string label;
};

/**
 * Build and run one System with @p cfg.seed replaced by @p seed and
 * return its raw results. This is the unit of work both the serial
 * runner and the ParallelRunner shard over.
 */
System::Results runOnce(SystemConfig cfg, std::uint64_t seed);

/**
 * Like runOnce(), but reuse @p sys when possible: if it exists and
 * System::reset() accepts the config shape, the run reinitializes it
 * in place (no per-shard allocation churn); otherwise a fresh System
 * is constructed into @p sys. Either way @p sys holds the ran System
 * afterwards — except on error, where it is dropped (a half-run
 * System must not be reused) and the exception propagates.
 * @p trust_factory is forwarded to System::reset() — pass true only
 * when @p cfg is the very config object @p sys last ran.
 */
System::Results runOnceReusing(std::unique_ptr<System> &sys,
                               SystemConfig cfg, std::uint64_t seed,
                               bool trust_factory = false);

/**
 * Fold per-seed raw results into the aggregated metrics the figures
 * use. Deterministic: depends only on @p runs order, which callers fix
 * to seed order regardless of execution order.
 */
ExperimentResult aggregateResults(const std::vector<System::Results> &runs,
                                  const std::string &label);

/**
 * Run @p cfg once per seed in [cfg.seed, cfg.seed + seeds) and
 * average. Traffic and miss statistics are summed before normalizing;
 * runtime variability feeds the stddev (the paper's error bars).
 */
ExperimentResult runExperiment(SystemConfig cfg, int seeds = 3,
                               const std::string &label = "");

} // namespace tokensim

#endif // TOKENSIM_HARNESS_EXPERIMENT_HH
