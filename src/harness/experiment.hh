/**
 * @file
 * Experiment runner: executes a SystemConfig across multiple seeds
 * (the paper perturbs each design point and reports error bars) and
 * aggregates the metrics the figures use.
 */

#ifndef TOKENSIM_HARNESS_EXPERIMENT_HH
#define TOKENSIM_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "harness/system.hh"

namespace tokensim {

/** Aggregated metrics for one design point. */
struct ExperimentResult
{
    std::string label;

    double cyclesPerTransaction = 0;
    double cyclesPerTransactionStddev = 0;
    double bytesPerMiss = 0;
    double bytesPerMissByClass[numMsgClasses] = {};

    std::uint64_t ops = 0;
    std::uint64_t misses = 0;
    double missRate = 0;            ///< misses / L2 accesses
    double cacheToCacheFrac = 0;    ///< of completed misses
    double avgMissLatencyNs = 0;

    // Token Coherence reissue percentages (Table 2).
    double pctNotReissued = 0;
    double pctReissuedOnce = 0;
    double pctReissuedMore = 0;
    double pctPersistent = 0;
};

/**
 * Run @p cfg once per seed in [cfg.seed, cfg.seed + seeds) and
 * average. Traffic and miss statistics are summed before normalizing;
 * runtime variability feeds the stddev (the paper's error bars).
 */
ExperimentResult runExperiment(SystemConfig cfg, int seeds = 3,
                               const std::string &label = "");

} // namespace tokensim

#endif // TOKENSIM_HARNESS_EXPERIMENT_HH
