#include "harness/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace tokensim {

namespace {

int
defaultThreads()
{
    if (const char *s = std::getenv("TOKENSIM_THREADS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/** One unit of parallel work: seed @p seed of spec @p spec. */
struct Shard
{
    std::size_t spec;
    int seed;
};

/**
 * Per-worker reusable System arena. Consecutive shards a worker pulls
 * reuse one System via System::reset() whenever the config shape
 * matches (always true for seeds of the same spec, and common across
 * the specs of one sweep), so the dominant per-shard cost — building
 * caches, queues, and network state — is paid once per worker, not
 * once per shard. Results stay bit-identical to fresh construction;
 * the determinism tests enforce it.
 */
struct WorkerArena
{
    std::unique_ptr<System> sys;
    std::size_t lastSpec = ~std::size_t{0};
};

} // namespace

ParallelRunner::ParallelRunner(ParallelRunnerOptions opts)
    : threads_(opts.threads >= 1 ? opts.threads : defaultThreads())
{}

std::vector<ExperimentResult>
ParallelRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    // Flatten the matrix into shards; raw results land in a fixed
    // (spec, seed)-indexed grid so the merge ignores execution order.
    std::vector<Shard> shards;
    std::vector<std::vector<System::Results>> raw(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // seeds <= 0 runs nothing, exactly like the serial loop.
        const int seeds = std::max(specs[i].seeds, 0);
        raw[i].resize(static_cast<std::size_t>(seeds));
        for (int s = 0; s < seeds; ++s)
            shards.push_back(Shard{i, s});
    }

    const auto work = [&](WorkerArena &arena, const Shard &sh) {
        const ExperimentSpec &spec = specs[sh.spec];
        // Within one spec the config object is literally the same, so
        // its (incomparable) workloadFactory is trivially unchanged.
        const bool same_spec = arena.lastSpec == sh.spec;
        arena.lastSpec = sh.spec;
        raw[sh.spec][static_cast<std::size_t>(sh.seed)] =
            runOnceReusing(
                arena.sys, spec.cfg,
                spec.cfg.seed + static_cast<std::uint64_t>(sh.seed),
                same_spec);
    };

    const std::size_t nworkers = std::min<std::size_t>(
        static_cast<std::size_t>(threads_), shards.size());
    if (nworkers <= 1) {
        WorkerArena arena;
        for (const Shard &sh : shards)
            work(arena, sh);
    } else {
        std::atomic<std::size_t> cursor{0};
        std::exception_ptr firstError;
        std::mutex errorLock;
        const auto worker = [&]() {
            WorkerArena arena;
            for (;;) {
                const std::size_t k =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (k >= shards.size())
                    return;
                try {
                    work(arena, shards[k]);
                } catch (...) {
                    std::lock_guard<std::mutex> g(errorLock);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(nworkers);
        for (std::size_t t = 0; t < nworkers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    std::vector<ExperimentResult> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        out.push_back(aggregateResults(raw[i], specs[i].label));
    return out;
}

ExperimentResult
ParallelRunner::run(const ExperimentSpec &spec) const
{
    return run(std::vector<ExperimentSpec>{spec}).front();
}

std::vector<ExperimentResult>
runExperimentsParallel(const std::vector<ExperimentSpec> &specs,
                       int threads)
{
    return ParallelRunner(ParallelRunnerOptions{threads}).run(specs);
}

} // namespace tokensim
