/**
 * @file
 * Multi-threaded experiment runner.
 *
 * A paper-figure sweep is a matrix of independent design points
 * (protocol x topology x processor count x token count), each run
 * across several seeds. Every (spec, seed) pair — a *shard* — builds
 * its own System with its own EventQueue and RNG streams, so shards
 * share no mutable state and can execute on any worker thread.
 *
 * Determinism: shard s of spec i always runs with seed
 * specs[i].cfg.seed + s, and the merge step folds raw results in
 * (spec, seed) order. The output is therefore bit-identical to a
 * serial runExperiment() loop over the same specs, regardless of
 * thread count or scheduling order. This is the harness-level echo of
 * the paper's thesis: correctness (the result) is decoupled from the
 * performance policy (how shards are scheduled).
 *
 * Each worker keeps one reusable System arena: consecutive shards
 * whose configs share a structural shape re-initialize it in place
 * (System::reset) instead of rebuilding caches, queues, and network
 * state per shard — reset is bit-identical to fresh construction
 * (tests/test_parallel_runner.cc enforces both properties).
 */

#ifndef TOKENSIM_HARNESS_PARALLEL_RUNNER_HH
#define TOKENSIM_HARNESS_PARALLEL_RUNNER_HH

#include <vector>

#include "harness/experiment.hh"

namespace tokensim {

/** Tuning knobs for the ParallelRunner. */
struct ParallelRunnerOptions
{
    /**
     * Worker thread count. 0 picks the TOKENSIM_THREADS environment
     * variable if set, else std::thread::hardware_concurrency().
     * 1 runs everything on the calling thread (no threads spawned).
     */
    int threads = 0;
};

/** Shards experiment configurations across worker threads. */
class ParallelRunner
{
  public:
    explicit ParallelRunner(ParallelRunnerOptions opts = {});

    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Run every spec and return aggregated results in spec order.
     * Shards execute in parallel; the merge is deterministic (see
     * file comment). The first exception thrown by any shard is
     * rethrown on the calling thread after all workers join.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** Convenience: run one spec (its seeds still parallelize). */
    ExperimentResult run(const ExperimentSpec &spec) const;

  private:
    int threads_;
};

/** One-shot helper: ParallelRunner({threads}).run(specs). */
std::vector<ExperimentResult>
runExperimentsParallel(const std::vector<ExperimentSpec> &specs,
                       int threads = 0);

} // namespace tokensim

#endif // TOKENSIM_HARNESS_PARALLEL_RUNNER_HH
