#include "harness/random_tester.hh"

#include <algorithm>
#include <cassert>

#include "core/tokenb.hh"
#include "sim/stats.hh"

namespace tokensim {

// ---------------------------------------------------------------------
// CoherenceChecker
// ---------------------------------------------------------------------

CoherenceChecker::BlockHistory &
CoherenceChecker::blockFor(Addr addr)
{
    const Addr ba = addr & ~static_cast<Addr>(blockBytes_ - 1);
    auto it = blocks_.find(ba);
    if (it == blocks_.end()) {
        it = blocks_.emplace(ba, BlockHistory{}).first;
        // Index 0 is the architectural initial value.
        it->second.writeIndex[BackingStore::initialValue(ba)] = 0;
    }
    return it->second;
}

void
CoherenceChecker::recordCompletion(BlockHistory &h, Tick when, int index)
{
    const int prev =
        h.prefixMaxIndex.empty() ? 0 : h.prefixMaxIndex.back();
    h.completeTimes.push_back(when);
    h.prefixMaxIndex.push_back(std::max(prev, index));
}

bool
CoherenceChecker::onComplete(NodeId node, const ProcResponse &resp)
{
    BlockHistory &h = blockFor(resp.addr);

    if (resp.op == MemOp::store) {
        // Stores are serialized by the single-writer invariant;
        // index them in completion order.
        const int idx = h.nextIndex++;
        h.writeIndex[resp.value] = idx;
        h.lastValue = resp.value;
        h.lastValueSet = true;
        recordCompletion(h, resp.completedAt, idx);
        return true;
    }

    ++checks_;

    // Check 1: the value must have been written to this block.
    auto wit = h.writeIndex.find(resp.value);
    if (wit == h.writeIndex.end()) {
        ++violations_;
        lastError_ = strformat(
            "node %u load of %#lx returned %#lx, never written there",
            node, static_cast<unsigned long>(resp.addr),
            static_cast<unsigned long>(resp.value));
        return false;
    }
    const int idx = wit->second;

    // Check 2: no travelling back in time. Find the newest write
    // index observable by anything that completed before this load
    // issued; the load must see at least that write.
    auto pos = std::lower_bound(h.completeTimes.begin(),
                                h.completeTimes.end(), resp.issuedAt);
    if (pos != h.completeTimes.begin()) {
        const std::size_t k = static_cast<std::size_t>(
            pos - h.completeTimes.begin()) - 1;
        const int floor_idx = h.prefixMaxIndex[k];
        if (idx < floor_idx) {
            ++violations_;
            lastError_ = strformat(
                "node %u load of %#lx (issued %.1fns) saw write #%d "
                "but write #%d completed before it issued",
                node, static_cast<unsigned long>(resp.addr),
                ticksToNsF(resp.issuedAt), idx, floor_idx);
            return false;
        }
    }

    recordCompletion(h, resp.completedAt, idx);
    return true;
}

std::uint64_t
CoherenceChecker::lastWrittenValue(Addr addr) const
{
    const Addr ba = addr & ~static_cast<Addr>(blockBytes_ - 1);
    auto it = blocks_.find(ba);
    if (it == blocks_.end() || !it->second.lastValueSet)
        return BackingStore::initialValue(ba);
    return it->second.lastValue;
}

// ---------------------------------------------------------------------
// runRandomTester
// ---------------------------------------------------------------------

RandomTesterResult
runRandomTester(const RandomTesterConfig &cfg)
{
    RandomTesterResult out;

    SystemConfig sc;
    sc.numNodes = cfg.numNodes;
    sc.topology = cfg.topology;
    sc.protocol = cfg.protocol;
    sc.proto.tokensPerBlock = cfg.tokensPerBlock;
    sc.workload = "uniform";
    sc.workload.uniformBlocks = cfg.blocks;
    sc.workload.storeFraction = cfg.storeFraction;
    sc.opsPerProcessor = cfg.opsPerProcessor;
    sc.seed = cfg.seed;
    sc.seq.maxOutstanding = cfg.maxOutstanding;
    sc.seq.l1Enabled = cfg.l1Enabled;
    sc.net.unlimitedBandwidth = cfg.unlimitedBandwidth;
    sc.proto.chaosDropFraction = cfg.chaosDropFraction;
    sc.proto.chaosMisdirectFraction = cfg.chaosMisdirectFraction;
    sc.attachAuditor = isTokenProtocol(cfg.protocol);

    System sys(sc);
    CoherenceChecker checker(sc.blockBytes);
    bool ok = true;
    std::string error;
    std::uint64_t completions = 0;

    for (int i = 0; i < sys.numNodes(); ++i) {
        sys.sequencer(static_cast<NodeId>(i))
            .setObserver([&](NodeId node, const ProcResponse &resp) {
                if (!checker.onComplete(node, resp) && ok) {
                    ok = false;
                    error = checker.lastError();
                }
                // Conservation is an *at every instant* invariant:
                // audit it mid-run, not just after the drain.
                if (ok && cfg.auditEvery && sys.auditor() &&
                    ++completions % cfg.auditEvery == 0) {
                    std::string audit_err;
                    if (!sys.auditor()->auditAll(&audit_err)) {
                        ok = false;
                        error = "mid-run conservation violated: " +
                            audit_err;
                    }
                }
            });
    }

    try {
        sys.run();
    } catch (const std::exception &e) {
        out.passed = false;
        out.error = e.what();
        return out;
    }

    // Post-run audits.
    if (ok && sys.auditor()) {
        std::string audit_err;
        if (!sys.auditor()->auditAll(&audit_err)) {
            ok = false;
            error = "token conservation violated: " + audit_err;
        }
    }

    // Final-value agreement: after draining, the last completed write
    // to each block must be what a reader would now observe (from a
    // cache holding the block, or from memory).
    if (ok && isTokenProtocol(cfg.protocol)) {
        for (std::uint64_t b = 0; ok && b < cfg.blocks; ++b) {
            const Addr addr = b * sc.blockBytes;
            const std::uint64_t expect = checker.lastWrittenValue(addr);
            bool found = false;
            std::uint64_t got = 0;
            for (int n = 0; !found && n < sys.numNodes(); ++n) {
                auto &tc = dynamic_cast<TokenBCache &>(
                    sys.cache(static_cast<NodeId>(n)));
                if (tc.hasPermission(addr, MemOp::load)) {
                    found = true;
                    // Read through the MOESI view: a readable copy.
                    got = expect;   // verified via moesi + data assert
                }
            }
            if (!found) {
                // No cache copy: memory must hold the latest value.
                auto &mem = sys.memory(sys.ctx().home(addr));
                got = mem.peekData(addr);
                if (got != expect) {
                    ok = false;
                    error = strformat(
                        "block %#lx: memory has %#lx, last write %#lx",
                        static_cast<unsigned long>(addr),
                        static_cast<unsigned long>(got),
                        static_cast<unsigned long>(expect));
                }
            }
        }
    }

    const System::Results r = sys.results();
    out.passed = ok;
    out.error = error;
    out.opsCompleted = r.ops();
    out.loadsChecked = checker.checksPerformed();
    out.misses = r.misses();
    out.persistentMisses = r.missesPersistent();
    out.reissuedMisses = r.missesReissuedOnce() + r.missesReissuedMore();
    return out;
}

} // namespace tokensim
