/**
 * @file
 * Coherence random tester (in the spirit of gem5's Ruby random
 * tester): drives a System with contended random loads and stores and
 * checks, on every load completion, that the value is coherent.
 *
 * Checked invariants:
 *  1. Every load returns a value that was actually written to that
 *     block (or the block's architectural initial value) — catches
 *     wrong-block fills and garbage data.
 *  2. Per-block sequential consistency: if a load ISSUES after another
 *     access to the same block COMPLETED, it must not observe an older
 *     write than that access did ("no travel back in time"). Writes
 *     are ordered by completion; overlapping accesses may legally see
 *     either side of a racing write.
 *  3. For token protocols, invariant #1' (token conservation) audits
 *     after the run drains, and final data agrees between the last
 *     write and the memory/cache image.
 */

#ifndef TOKENSIM_HARNESS_RANDOM_TESTER_HH
#define TOKENSIM_HARNESS_RANDOM_TESTER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/system.hh"

namespace tokensim {

/** Per-block write/read history checker. */
class CoherenceChecker
{
  public:
    explicit CoherenceChecker(std::uint32_t block_bytes)
        : blockBytes_(block_bytes)
    {}

    /** Feed one completed operation. @return false on a violation
     *  (details via lastError()). */
    bool onComplete(NodeId node, const ProcResponse &resp);

    /** Value the last completed write left in @p addr's block. */
    std::uint64_t lastWrittenValue(Addr addr) const;

    std::uint64_t checksPerformed() const { return checks_; }
    std::uint64_t violations() const { return violations_; }
    const std::string &lastError() const { return lastError_; }

  private:
    struct BlockHistory
    {
        /** write value -> index in completion order (0 = initial). */
        std::unordered_map<std::uint64_t, int> writeIndex;
        int nextIndex = 1;
        std::uint64_t lastValue = 0;
        bool lastValueSet = false;

        /** completion timeline: times and prefix-max write index
         *  observed, for the issued-after-completed check. */
        std::vector<Tick> completeTimes;
        std::vector<int> prefixMaxIndex;
    };

    BlockHistory &blockFor(Addr addr);
    void recordCompletion(BlockHistory &h, Tick when, int index);

    std::uint32_t blockBytes_;
    std::unordered_map<Addr, BlockHistory> blocks_;
    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    std::string lastError_;
};

/** Configuration of a random-tester campaign. */
struct RandomTesterConfig
{
    ProtocolKind protocol = ProtocolKind::tokenB;
    std::string topology = "torus";
    int numNodes = 8;
    std::uint64_t blocks = 8;           ///< tiny hot set => max contention
    double storeFraction = 0.5;
    std::uint64_t opsPerProcessor = 2000;
    std::uint64_t seed = 1;
    bool l1Enabled = true;
    int maxOutstanding = 2;
    bool unlimitedBandwidth = false;
    int tokensPerBlock = 0;             ///< 0 = numNodes

    /** Failure injection (token protocols): drop / misdirect
     *  transient requests with these probabilities. */
    double chaosDropFraction = 0.0;
    double chaosMisdirectFraction = 0.0;

    /** Audit token conservation every N completions (0 = only at
     *  the end). */
    std::uint64_t auditEvery = 512;
};

/** Outcome of a random-tester campaign. */
struct RandomTesterResult
{
    bool passed = false;
    std::string error;
    std::uint64_t opsCompleted = 0;
    std::uint64_t loadsChecked = 0;
    std::uint64_t misses = 0;
    std::uint64_t persistentMisses = 0;
    std::uint64_t reissuedMisses = 0;
};

/** Build, run, and check one random-tester campaign. */
RandomTesterResult runRandomTester(const RandomTesterConfig &cfg);

} // namespace tokensim

#endif // TOKENSIM_HARNESS_RANDOM_TESTER_HH
