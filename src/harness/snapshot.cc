#include "harness/snapshot.hh"

#include <cstring>

#include "harness/system.hh"
#include "harness/wire.hh"
#include "sim/bytes.hh"

namespace tokensim {

namespace {

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Header fields after the magic/version prefix. */
SnapshotHeader
readHeader(WireReader &r)
{
    char magic[8];
    r.raw(magic, sizeof magic, "snapshot magic");
    if (std::memcmp(magic, snapshotMagic, sizeof magic) != 0)
        throw SnapshotError("bad magic (not a warm-state snapshot)");
    const std::uint8_t version = r.u8("snapshot version");
    if (version != snapshotVersion) {
        throw SnapshotError(
            "version " + std::to_string(version) +
            " unsupported (this build reads version " +
            std::to_string(snapshotVersion) + ")");
    }
    SnapshotHeader hdr;
    hdr.fingerprint = r.varint("snapshot fingerprint");
    hdr.numNodes =
        static_cast<int>(r.varint("snapshot node count"));
    hdr.warmOps = r.varint("snapshot warm op count");
    hdr.protocol = r.u8("snapshot protocol kind");
    checkStructEnd(r, "snapshot header");
    return hdr;
}

} // namespace

std::uint64_t
snapshotShapeFingerprint(const SystemConfig &cfg)
{
    if (cfg.workloadFactory) {
        throw SnapshotError(
            "a custom workload factory has no fingerprintable "
            "identity; snapshots need a preset or trace workload");
    }
    // Hash over a canonical encoding of the bound fields. The
    // structural set matches System::reset()'s sameShape(); workload
    // spec and seed are added because the snapshot's progress is
    // meaningful only within these exact op streams.
    WireWriter w;
    w.varint(static_cast<std::uint64_t>(cfg.numNodes));
    w.str(cfg.topology);
    w.u8(static_cast<std::uint8_t>(cfg.protocol));
    w.varint(static_cast<std::uint64_t>(cfg.proto.tokensPerBlock));
    w.varint(static_cast<std::uint64_t>(cfg.proto.predictorEntries));
    w.varint(cfg.l2.sizeBytes);
    w.varint(cfg.l2.assoc);
    w.varint(cfg.l2.blockBytes);
    w.varint(cfg.seq.l1.sizeBytes);
    w.varint(cfg.seq.l1.assoc);
    w.varint(cfg.seq.l1.blockBytes);
    w.boolean(cfg.seq.l1Enabled);
    w.varint(cfg.blockBytes);
    w.boolean(cfg.attachAuditor);
    encodeWorkloadSpec(w, cfg.workload);
    // The tenant list defines the op streams just as the single-tenant
    // spec does: a snapshot saved under one tenant layout must not
    // restore under another.
    w.varint(cfg.tenants.size());
    for (const TenantSpec &t : cfg.tenants) {
        encodeWorkloadSpec(w, t.workload);
        w.varint(static_cast<std::uint64_t>(t.nodes));
    }
    w.varint(cfg.seed);
    return fnv1a(w.buffer());
}

SnapshotHeader
peekSnapshotHeader(const std::string &bytes)
{
    WireReader r(bytes);
    return readHeader(r);
}

std::string
saveWarmSnapshot(System &sys)
{
    const SystemConfig &cfg = sys.config();
    if (!cfg.recordTrace.empty()) {
        throw SnapshotError(
            "cannot snapshot a trace-recording system (the recorded "
            "trace would not replay the snapshotted run)");
    }
    if (sys.eq().curTick() != 0) {
        throw SnapshotError(
            "save requires a fast-forward-only system; this one has "
            "run detailed simulation");
    }
    const std::uint64_t fingerprint =
        snapshotShapeFingerprint(cfg);   // rejects custom factories
    const std::uint64_t warm_ops = sys.sequencer(0).completedOps();
    for (int i = 1; i < sys.numNodes(); ++i) {
        if (sys.sequencer(static_cast<NodeId>(i)).completedOps() !=
            warm_ops)
            throw SnapshotError("nodes disagree on warm op count");
    }

    WireWriter w;
    w.raw(snapshotMagic, sizeof snapshotMagic);
    w.u8(snapshotVersion);
    w.varint(fingerprint);
    w.varint(static_cast<std::uint64_t>(cfg.numNodes));
    w.varint(warm_ops);
    w.u8(static_cast<std::uint8_t>(cfg.protocol));
    putStructEnd(w);
    for (int i = 0; i < sys.numNodes(); ++i) {
        const auto id = static_cast<NodeId>(i);
        sys.sequencer(id).encodeWarmState(w);
        sys.cache(id).encodeWarmState(w);
        sys.memory(id).encodeWarmState(w);
    }
    putStructEnd(w);
    return w.take();
}

std::uint64_t
loadWarmSnapshot(System &sys, const std::string &bytes)
{
    const SystemConfig &cfg = sys.config();
    WireReader r(bytes);
    const SnapshotHeader hdr = readHeader(r);
    if (hdr.fingerprint != snapshotShapeFingerprint(cfg)) {
        throw SnapshotError(
            "shape mismatch: saved from a system with a different "
            "structure, workload, or seed than the one being "
            "restored (timing knobs alone never cause this)");
    }
    // The fingerprint already covers these; re-checking the plain
    // header fields catches a corrupt buffer whose hash happens to
    // collide before the per-node decoders trip over it.
    if (hdr.numNodes != cfg.numNodes)
        throw SnapshotError("node count disagrees with the config");
    if (hdr.protocol != static_cast<std::uint8_t>(cfg.protocol))
        throw SnapshotError("protocol disagrees with the config");
    if (sys.eq().curTick() != 0 ||
        sys.sequencer(0).completedOps() != 0) {
        throw SnapshotError(
            "restore requires a freshly built or reset system");
    }

    for (int i = 0; i < cfg.numNodes; ++i) {
        const auto id = static_cast<NodeId>(i);
        sys.sequencer(id).decodeWarmState(r);
        sys.cache(id).decodeWarmState(r);
        sys.memory(id).decodeWarmState(r);
    }
    checkStructEnd(r, "snapshot body");
    r.expectEnd("snapshot");

    for (int i = 0; i < cfg.numNodes; ++i)
        sys.sequencer(static_cast<NodeId>(i))
            .adoptWarmProgress(hdr.warmOps);
    return hdr.warmOps;
}

} // namespace tokensim
