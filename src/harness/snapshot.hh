/**
 * @file
 * Warm-state snapshots: serialize the architectural warm state of a
 * fast-forwarded System — L1/L2 contents with exact LRU state, token
 * counts, directory/owner records, written backing-store blocks — so
 * one (possibly expensive) functional warmup can seed every timing
 * config of a sweep that shares the same structural shape.
 *
 * The contract mirrors System::reset(): a snapshot binds to the
 * structure baked into the component graph (node count, topology,
 * protocol, cache geometry, token count, predictor size) plus the
 * operation streams (workload spec and seed) — because the saved
 * progress is "these exact per-node op streams, advanced warmOps ops
 * each". Timing knobs (network/DRAM latency, reissue policy,
 * controller latency, think time) are free: that axis is exactly what
 * a sweep varies, and reusing one warm snapshot across it is the
 * wall-clock win. The binding is enforced by a fingerprint in the
 * header; a mismatch is a typed SnapshotError, never a silent
 * misparse.
 *
 * Wire discipline is the repo standard (sim/bytes.hh): versioned,
 * bounds-checked, typed errors naming the field, struct-end sentinels,
 * fuzzable. Controller payloads are canonical (address-sorted,
 * semantically-default entries skipped), so equal warm state encodes
 * to equal bytes.
 *
 * Restoring a snapshot is bit-equivalent to performing the same
 * fast-forward in place: tests/test_sampling.cc pins
 * save+load+run == fastForward+run digests per protocol. That holds
 * because fast-forward draws nothing from any RNG and records no
 * statistics — the snapshot needs to carry only architectural state
 * plus the per-node request-id counters. Performance soft state
 * (destination predictors, soft-state directories, adaptation
 * windows, latency EWMAs) is deliberately cold in both paths; it
 * retrains within the first measurement windows, the same
 * approximation SMARTS makes for microarchitectural non-sampled
 * state.
 */

#ifndef TOKENSIM_HARNESS_SNAPSHOT_HH
#define TOKENSIM_HARNESS_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tokensim {

class System;
struct SystemConfig;

/**
 * A snapshot buffer that cannot be used with the System at hand: bad
 * magic or version, a shape-fingerprint mismatch, or a System in the
 * wrong lifecycle state (already run, recording a trace). Structural
 * corruption inside the payload throws WireError instead, like every
 * other codec in the tree.
 */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error("snapshot: " + what)
    {}
};

/** Snapshot file magic. */
constexpr char snapshotMagic[8] = {'T', 'O', 'K', 'S', 'N', 'A',
                                   'P', '1'};

/** Bumped on any change to the snapshot layout or any controller's
 *  warm-state encoding. */
constexpr std::uint8_t snapshotVersion = 1;

/**
 * FNV-1a fingerprint of everything a snapshot binds to (see file
 * comment): structural shape + workload spec + seed; timing knobs
 * excluded. @throws SnapshotError for a custom workloadFactory — a
 * std::function has no fingerprintable identity.
 */
std::uint64_t snapshotShapeFingerprint(const SystemConfig &cfg);

/** The validated fixed header of a snapshot buffer. */
struct SnapshotHeader
{
    std::uint64_t fingerprint = 0;
    std::uint64_t warmOps = 0;   ///< per-node ops the warmup consumed
    int numNodes = 0;
    std::uint8_t protocol = 0;   ///< ProtocolKind, informational
};

/**
 * Parse and validate the header (magic, version) without touching the
 * body. @throws SnapshotError on wrong magic/version, WireError on
 * truncation.
 */
SnapshotHeader peekSnapshotHeader(const std::string &bytes);

/**
 * Serialize @p sys's warm state. The System must be fast-forward-only
 * (built or reset, then System::fastForward — never run detailed):
 * that is what makes the state complete with nothing in flight.
 * @throws SnapshotError if the System has run detailed simulation,
 *         records a trace, or uses a custom workload factory;
 *         WireError if a controller is not quiescent.
 */
std::string saveWarmSnapshot(System &sys);

/**
 * Restore @p bytes into the freshly built (or reset) @p sys and adopt
 * the saved progress: sequencers account warmOps completed ops and
 * skip their workloads past them. System::run() calls this when
 * cfg.warmSnapshot is set.
 * @return the per-node warm op count adopted.
 * @throws SnapshotError on fingerprint/shape mismatch or a System
 *         that already ran; WireError on malformed payload bytes.
 */
std::uint64_t loadWarmSnapshot(System &sys, const std::string &bytes);

} // namespace tokensim

#endif // TOKENSIM_HARNESS_SNAPSHOT_HH
