#include "harness/system.hh"

#include <cassert>
#include <stdexcept>

#include "core/ext/tokena.hh"
#include "core/ext/tokend.hh"
#include "core/ext/tokenm.hh"
#include "core/tokenb.hh"
#include "harness/snapshot.hh"
#include "proto/directory/directory.hh"
#include "proto/hammer/hammer.hh"
#include "proto/snooping/snooping.hh"

namespace tokensim {

System::System(const SystemConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.numNodes < 1)
        throw std::invalid_argument("system needs at least one node");

    std::unique_ptr<Topology> topo(
        makeTopology(cfg_.topology, cfg_.numNodes));
    if (cfg_.protocol == ProtocolKind::snooping &&
        !topo->totallyOrdered()) {
        // Figure 4a's "not applicable": traditional snooping cannot
        // run on an interconnect that provides no total order.
        throw std::invalid_argument(
            "snooping requires a totally-ordered interconnect; " +
            topo->name() + " provides none");
    }
    net_ = std::make_unique<Network>(eq_, std::move(topo), cfg_.net);

    ctx_.eq = &eq_;
    ctx_.net = net_.get();
    ctx_.numNodes = cfg_.numNodes;
    ctx_.blockBytes = cfg_.blockBytes;
    ctx_.ctrlLatency = cfg_.ctrlLatency;
    ctx_.l2 = cfg_.l2;
    ctx_.dram = cfg_.dram;

    if (cfg_.attachAuditor && isTokenProtocol(cfg_.protocol)) {
        const int t = cfg_.proto.tokensPerBlock > 0
            ? cfg_.proto.tokensPerBlock : cfg_.numNodes;
        auditor_ = std::make_unique<TokenAuditor>(t, cfg_.blockBytes);
    }

    addrMap_.blockBytes = cfg_.blockBytes;
    configureWorkloads();

    // The seeder draw order below (one draw per node for controllers,
    // then a workload draw and a sequencer draw per node) is the seed
    // contract: reset() replays exactly the same sequence so a reused
    // System is bit-identical to a fresh one.
    Rng seeder(cfg_.seed);
    for (int i = 0; i < cfg_.numNodes; ++i) {
        const auto id = static_cast<NodeId>(i);
        buildControllers(id, seeder.next());
        nodes_.push_back(std::make_unique<Node>(
            ctx_, id, caches_[i].get(), memories_[i].get()));
        net_->attach(id, nodes_[i].get());
    }
    for (int i = 0; i < cfg_.numNodes; ++i) {
        const auto id = static_cast<NodeId>(i);
        const std::uint64_t wl_seed = seeder.next();
        const std::uint64_t seq_seed = seeder.next();
        sequencers_.push_back(std::make_unique<Sequencer>(
            ctx_, id, caches_[i].get(),
            makeWorkload(id, wl_seed), cfg_.seq,
            detailedOpBudget(), seq_seed));
    }
}

std::uint64_t
System::detailedOpBudget() const
{
    return cfg_.warmupOpsPerProcessor +
        (cfg_.sampling.enabled()
             ? cfg_.sampling.windows * cfg_.sampling.measureOps
             : cfg_.opsPerProcessor);
}

namespace {

/** Equal cache geometry; latency is a runtime knob (read via ctx). */
bool
sameCacheGeometry(const CacheParams &a, const CacheParams &b)
{
    return a.sizeBytes == b.sizeBytes && a.assoc == b.assoc &&
        a.blockBytes == b.blockBytes;
}

/**
 * True if @p b describes a system with the same structural shape as
 * @p a: only what is baked into the constructed component graph must
 * match — node count, topology, protocol (controller types), cache
 * geometry, token count (sized into the auditor and controllers),
 * and predictor table size. Every other knob (seed, op budgets,
 * workload selection, network/DRAM timing, reissue policy, maxTicks)
 * is runtime state that reset() reapplies.
 */
bool
sameShape(const SystemConfig &a, const SystemConfig &b,
          bool trust_factory)
{
    if (!trust_factory && (a.workloadFactory || b.workloadFactory))
        return false;   // std::function targets are not comparable
    if (static_cast<bool>(a.workloadFactory) !=
        static_cast<bool>(b.workloadFactory))
        return false;
    return a.numNodes == b.numNodes && a.topology == b.topology &&
        a.protocol == b.protocol &&
        a.proto.tokensPerBlock == b.proto.tokensPerBlock &&
        a.proto.predictorEntries == b.proto.predictorEntries &&
        sameCacheGeometry(a.l2, b.l2) &&
        sameCacheGeometry(a.seq.l1, b.seq.l1) &&
        a.blockBytes == b.blockBytes &&
        a.attachAuditor == b.attachAuditor;
}

} // namespace

bool
System::reset(const SystemConfig &cfg, bool trust_factory)
{
    if (!sameShape(cfg_, cfg, trust_factory))
        return false;
    cfg_ = cfg;

    // Refresh the runtime knobs the components read through the
    // shared context.
    ctx_.blockBytes = cfg_.blockBytes;
    ctx_.ctrlLatency = cfg_.ctrlLatency;
    ctx_.l2 = cfg_.l2;
    ctx_.dram = cfg_.dram;
    addrMap_.blockBytes = cfg_.blockBytes;

    eq_.reset();
    net_->reset(cfg_.net);
    if (auditor_)
        auditor_->reset();
    measureStart_ = 0;
    measureStartScheduled_ = 0;
    measureStartDispatched_ = 0;
    measureStartCancelled_ = 0;
    sampledValid_ = false;
    // The workload spec is a runtime knob: reset may switch
    // preset↔trace or trace↔trace. An invalid spec (unknown preset,
    // malformed trace) throws here, leaving the System unusable —
    // runOnceReusing drops such a System rather than reusing it.
    configureWorkloads();

    // Replay the constructor's exact seeding sequence.
    const ProtocolParams proto = effectiveProtoParams();
    Rng seeder(cfg_.seed);
    for (int i = 0; i < cfg_.numNodes; ++i) {
        const std::uint64_t ctrl_seed = seeder.next();
        caches_[static_cast<std::size_t>(i)]->resetState(proto,
                                                         ctrl_seed);
        memories_[static_cast<std::size_t>(i)]->resetState(proto);
    }
    for (int i = 0; i < cfg_.numNodes; ++i) {
        const auto id = static_cast<NodeId>(i);
        const std::uint64_t wl_seed = seeder.next();
        const std::uint64_t seq_seed = seeder.next();
        sequencers_[static_cast<std::size_t>(i)]->reset(
            cfg_.seq, makeWorkload(id, wl_seed),
            detailedOpBudget(), seq_seed);
    }
    return true;
}

System::~System() = default;

ProtocolParams
System::effectiveProtoParams() const
{
    ProtocolParams p = cfg_.proto;
    if (cfg_.protocol == ProtocolKind::tokenNull) {
        // The null performance protocol relies entirely on persistent
        // requests; pointless reissue timeouts are skipped.
        p.maxReissues = 0;
    }
    return p;
}

void
System::buildControllers(NodeId id, std::uint64_t seed)
{
    ProtocolParams p = effectiveProtoParams();
    TokenAuditor *aud = auditor_.get();

    switch (cfg_.protocol) {
      case ProtocolKind::snooping:
        caches_.push_back(std::make_unique<SnoopCache>(ctx_, id, p));
        memories_.push_back(std::make_unique<SnoopMemory>(ctx_, id, p));
        break;
      case ProtocolKind::directory:
        caches_.push_back(std::make_unique<DirCache>(ctx_, id, p));
        memories_.push_back(std::make_unique<DirMemory>(ctx_, id, p));
        break;
      case ProtocolKind::hammer:
        caches_.push_back(std::make_unique<HammerCache>(ctx_, id, p));
        memories_.push_back(
            std::make_unique<HammerMemory>(ctx_, id, p));
        break;
      case ProtocolKind::tokenB:
        caches_.push_back(
            std::make_unique<TokenBCache>(ctx_, id, p, aud, seed));
        memories_.push_back(
            std::make_unique<TokenBMemory>(ctx_, id, p, aud));
        break;
      case ProtocolKind::tokenD:
        caches_.push_back(
            std::make_unique<TokenDCache>(ctx_, id, p, aud, seed));
        memories_.push_back(
            std::make_unique<TokenDMemory>(ctx_, id, p, aud));
        break;
      case ProtocolKind::tokenM:
        caches_.push_back(
            std::make_unique<TokenMCache>(ctx_, id, p, aud, seed));
        memories_.push_back(
            std::make_unique<TokenBMemory>(ctx_, id, p, aud));
        break;
      case ProtocolKind::tokenA:
        // Adaptive issue policy over TokenD's soft-state home.
        caches_.push_back(
            std::make_unique<TokenACache>(ctx_, id, p, aud, seed));
        memories_.push_back(
            std::make_unique<TokenDMemory>(ctx_, id, p, aud));
        break;
      case ProtocolKind::tokenNull:
        caches_.push_back(
            std::make_unique<TokenNullCache>(ctx_, id, p, aud, seed));
        memories_.push_back(
            std::make_unique<TokenBMemory>(ctx_, id, p, aud));
        break;
    }

    if (aud) {
        aud->addHolder(
            dynamic_cast<const TokenHolder *>(caches_.back().get()));
        aud->addHolder(
            dynamic_cast<const TokenHolder *>(memories_.back().get()));
    }
}

namespace {

/**
 * Decorates a tenant's group-local workload with the tenant's address
 * offset (see kTenantAddrShift): the inner generator runs in its own
 * group-sized address space, and every emitted address is lifted into
 * the tenant's disjoint slice of the machine's space.
 */
class TenantOffsetWorkload : public Workload
{
  public:
    TenantOffsetWorkload(std::unique_ptr<Workload> inner, Addr offset)
        : inner_(std::move(inner)), offset_(offset)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op = inner_->next();
        op.addr += offset_;
        return op;
    }

    void
    skip(std::uint64_t n) override
    {
        // The offset is stateless; the inner generator skips natively.
        inner_->skip(n);
    }

    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<Workload> inner_;
    Addr offset_;
};

/** Joined display name of a tenant list ("ycsb+tpcc"). */
std::string
tenantListName(const std::vector<TenantSpec> &tenants)
{
    std::string out;
    for (const TenantSpec &t : tenants) {
        if (!out.empty())
            out += '+';
        out += t.workload.name();
    }
    return out;
}

} // namespace

void
System::configureWorkloads()
{
    tenantFactories_.clear();
    tenantStarts_.clear();
    if (!cfg_.tenants.empty()) {
        if (cfg_.workloadFactory) {
            throw std::invalid_argument(
                "tenants and workloadFactory are mutually exclusive");
        }
        int start = 0;
        for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
            const TenantSpec &t = cfg_.tenants[i];
            if (t.workload.isTrace()) {
                throw std::invalid_argument(
                    "tenant " + std::to_string(i) +
                    ": trace specs cannot be tenant workloads");
            }
            if (t.nodes < 1) {
                throw std::invalid_argument(
                    "tenant " + std::to_string(i) + " has " +
                    std::to_string(t.nodes) +
                    " nodes; every tenant needs at least one");
            }
            tenantStarts_.push_back(start);
            // Each tenant's factory sees its group size: the tenant's
            // sharing pattern (producer mapping, warehouse count,
            // shared-region bases) spans its own nodes.
            tenantFactories_.push_back(std::make_unique<WorkloadFactory>(
                t.workload, t.nodes, addrMap_));
            start += t.nodes;
        }
        if (start != cfg_.numNodes) {
            throw std::invalid_argument(
                "tenant node counts sum to " + std::to_string(start) +
                " but the system has " + std::to_string(cfg_.numNodes) +
                " nodes");
        }
        tenantStarts_.push_back(start);
        wlFactory_.reset();
    } else {
        // The custom std::function factory bypasses spec validation
        // (its spec may be the unused default).
        wlFactory_ = cfg_.workloadFactory
            ? nullptr
            : std::make_unique<WorkloadFactory>(cfg_.workload,
                                                cfg_.numNodes,
                                                addrMap_);
    }
    if (cfg_.recordTrace.empty()) {
        traceWriter_.reset();
        return;
    }
    TraceHeader hdr;
    hdr.numNodes = static_cast<std::uint32_t>(cfg_.numNodes);
    hdr.blockBytes = cfg_.blockBytes;
    hdr.seed = cfg_.seed;
    hdr.warmupOpsPerProcessor = cfg_.warmupOpsPerProcessor;
    hdr.provenance = !cfg_.tenants.empty()
        ? tenantListName(cfg_.tenants)
        : (cfg_.workloadFactory ? "custom-factory"
                                : cfg_.workload.name());
    traceWriter_ = std::make_unique<TraceWriter>(std::move(hdr));
}

std::unique_ptr<Workload>
System::makeWorkload(NodeId node, std::uint64_t seed)
{
    std::unique_ptr<Workload> wl;
    if (!tenantFactories_.empty()) {
        // Find the node's tenant group (starts are sorted; the list
        // is short).
        std::size_t t = 0;
        while (static_cast<int>(node) >= tenantStarts_[t + 1])
            ++t;
        const NodeId local =
            static_cast<NodeId>(static_cast<int>(node) -
                                tenantStarts_[t]);
        wl = std::make_unique<TenantOffsetWorkload>(
            tenantFactories_[t]->make(local, seed),
            Addr{t} << kTenantAddrShift);
    } else if (cfg_.workloadFactory) {
        wl = cfg_.workloadFactory(node, cfg_.numNodes, seed);
    } else {
        wl = wlFactory_->make(node, seed);
    }
    if (traceWriter_) {
        wl = std::make_unique<RecordingWorkload>(
            std::move(wl), traceWriter_.get(), node);
    }
    return wl;
}

bool
System::allDone() const
{
    for (const auto &s : sequencers_) {
        if (!s->done())
            return false;
    }
    return true;
}

void
System::resetStats()
{
    net_->clearTraffic();
    for (auto &c : caches_)
        c->stats() = CacheCtrlStats{};
    for (auto &s : sequencers_)
        s->resetStats();
    measureStart_ = eq_.curTick();
    measureStartScheduled_ = eq_.scheduled();
    measureStartDispatched_ = eq_.dispatched();
    measureStartCancelled_ = eq_.cancelled();
}

namespace {

/**
 * The run loops' stop predicates poll one milestone counter that
 * sequencers bump on the relevant completion, instead of asking
 * every sequencer after every event (that scan was a measurable
 * fraction of total simulation time on wide systems). The guard
 * disarms the milestones on every exit path — the counters live
 * on the run loop's frame, and a throwing handler must not leave
 * dangling pointers behind in the sequencers.
 */
struct MilestoneGuard
{
    std::vector<std::unique_ptr<Sequencer>> &seqs;
    ~MilestoneGuard()
    {
        for (auto &s : seqs)
            s->setMilestone(0, nullptr);
    }
};

} // namespace

void
System::fastForward(std::uint64_t ops_per_node)
{
    // A functional step under in-flight messages would race them:
    // settle everything first. (Already drained when the sampled loop
    // calls this at a window edge.)
    if (!eq_.run(cfg_.maxTicks)) {
        throw std::runtime_error(
            "simulation failed to drain before fast-forward");
    }
    FunctionalEnv env;
    env.caches.reserve(caches_.size());
    env.memories.reserve(memories_.size());
    for (auto &c : caches_)
        env.caches.push_back(c.get());
    for (auto &m : memories_)
        env.memories.push_back(m.get());
    // Round-robin in small bursts: a node's workload tables and cache
    // arrays stay hot for the burst (per-op alternation thrashes them
    // across nodes), while the <=32-op skew between nodes stays
    // negligible against any useful fast-forward span. The schedule
    // is fixed, so every runner sees the same interleaving.
    constexpr std::uint64_t burst = 32;
    for (std::uint64_t k = 0; k < ops_per_node; k += burst) {
        const std::uint64_t n = std::min(burst, ops_per_node - k);
        for (auto &s : sequencers_)
            s->fastForward(n, env);
    }
}

void
System::run()
{
    const bool sampled = cfg_.sampling.enabled();
    if (!cfg_.recordTrace.empty() && (sampled || cfg_.warmSnapshot)) {
        // Fast-forward pulls ops the detailed engine never sees, and
        // a snapshot-warmed run never pulls its warmup ops at all —
        // either way the recorded trace would not replay the run that
        // produced it.
        throw std::runtime_error(
            "recordTrace requires a fully detailed run "
            "(no sampling, no warm snapshot)");
    }
    sampledValid_ = false;

    if (cfg_.warmSnapshot)
        loadWarmSnapshot(*this, *cfg_.warmSnapshot);
    // Warm progress — from the snapshot just loaded or from a direct
    // fastForward() call before run() — shifts every op-count edge.
    const std::uint64_t base = sequencers_[0]->completedOps();

    if (sampled) {
        runSampled(base);
        return;
    }

    for (auto &s : sequencers_)
        s->start();

    const auto n = static_cast<std::uint64_t>(sequencers_.size());
    MilestoneGuard guard{sequencers_};

    if (cfg_.warmupOpsPerProcessor > 0) {
        std::uint64_t warmCount = 0;
        for (auto &s : sequencers_)
            s->setMilestone(base + cfg_.warmupOpsPerProcessor,
                            &warmCount);
        const bool warmed = eq_.runUntil(
            [&warmCount, n]() { return warmCount >= n; },
            cfg_.maxTicks);
        if (!warmed) {
            throw std::runtime_error(
                "simulation exceeded maxTicks during warmup");
        }
        resetStats();
    }

    std::uint64_t doneCount = 0;
    for (auto &s : sequencers_) {
        s->setMilestone(
            base + cfg_.warmupOpsPerProcessor + cfg_.opsPerProcessor,
            &doneCount);
    }
    const bool finished = eq_.runUntil(
        [&doneCount, n]() { return doneCount >= n; }, cfg_.maxTicks);
    for (auto &s : sequencers_)
        s->setMilestone(0, nullptr);
    if (!finished) {
        throw std::runtime_error(
            "simulation exceeded maxTicks before completing - "
            "possible protocol deadlock or starvation");
    }
    // Drain all in-flight protocol activity (evictions, persistent
    // deactivation handshakes, late token redirects).
    if (!eq_.run(cfg_.maxTicks)) {
        throw std::runtime_error(
            "simulation failed to drain before maxTicks");
    }

    // Flush the recorded trace once the run is complete — every
    // sequencer has pulled exactly its budget, so the trace holds the
    // full (warmup + measured) operation streams.
    if (traceWriter_)
        traceWriter_->writeFile(cfg_.recordTrace);
}

void
System::runSampled(std::uint64_t base)
{
    const SamplingSpec &sp = cfg_.sampling;
    const auto n = static_cast<std::uint64_t>(sequencers_.size());
    MilestoneGuard guard{sequencers_};

    // Sequencers pause at each phase edge instead of free-running to
    // their budgets, so every fast-forward span starts from a fully
    // drained, op-exact boundary.
    std::uint64_t edge = base + cfg_.warmupOpsPerProcessor;
    for (auto &s : sequencers_) {
        s->setIssueLimit(edge);
        s->start();
    }
    if (cfg_.warmupOpsPerProcessor > 0) {
        std::uint64_t warmCount = 0;
        for (auto &s : sequencers_)
            s->setMilestone(edge, &warmCount);
        const bool warmed = eq_.runUntil(
            [&warmCount, n]() { return warmCount >= n; },
            cfg_.maxTicks);
        if (!warmed) {
            throw std::runtime_error(
                "simulation exceeded maxTicks during warmup");
        }
        for (auto &s : sequencers_)
            s->setMilestone(0, nullptr);
        if (!eq_.run(cfg_.maxTicks)) {
            throw std::runtime_error(
                "simulation failed to drain after warmup");
        }
    }

    Results pooled;
    for (std::uint64_t w = 0; w < sp.windows; ++w) {
        fastForward(sp.ffOps);
        edge += sp.ffOps + sp.measureOps;
        resetStats();
        std::uint64_t winCount = 0;
        for (auto &s : sequencers_) {
            s->setMilestone(edge, &winCount);
            s->setIssueLimit(edge);
            s->kick();
        }
        const bool finished = eq_.runUntil(
            [&winCount, n]() { return winCount >= n; }, cfg_.maxTicks);
        for (auto &s : sequencers_)
            s->setMilestone(0, nullptr);
        if (!finished) {
            throw std::runtime_error(
                "simulation exceeded maxTicks in a sampled window - "
                "possible protocol deadlock or starvation");
        }
        if (!eq_.run(cfg_.maxTicks)) {
            throw std::runtime_error(
                "simulation failed to drain a sampled window");
        }
        // Each window is one sample: counters sum, RunningStats
        // Welford-combine. cpt_ns enters per window as a one-sample
        // stat, so the pooled stat's stderr is the across-window
        // standard error SMARTS reports.
        pooled.metrics.merge(collectResults().metrics);
    }
    sampledResults_ = std::move(pooled);
    sampledValid_ = true;
}

/**
 * The full metric catalog of a run, registered in one fixed order so
 * registry equality is meaningful across runners. Pinned metrics feed
 * the aggregates resultDigest() prints; the rest are diagnostic (still
 * deterministic, still compared by the differential gates, but free to
 * evolve without golden-digest churn). New metrics are one
 * registration here — the wire codec, merge, and determinism gates
 * pick them up generically.
 */
System::Results
System::results() const
{
    return sampledValid_ ? sampledResults_ : collectResults();
}

System::Results
System::collectResults() const
{
    std::uint64_t ops = 0, transactions = 0, l1_hits = 0;
    std::uint64_t l2_accesses = 0, l2_hits = 0, misses = 0, c2c = 0;
    std::uint64_t not_reissued = 0, once = 0, more = 0, persistent = 0;
    RunningStat miss_lat;
    LogHistogram miss_hist;
    for (int i = 0; i < cfg_.numNodes; ++i) {
        const SequencerStats &ss = sequencers_[i]->stats();
        ops += ss.opsCompleted;
        transactions += ss.transactions;
        l1_hits += ss.l1Hits;
        l2_accesses += ss.l2Accesses;

        const CacheCtrlStats &cs = caches_[i]->stats();
        l2_hits += cs.hits;
        misses += cs.missesCompleted;
        c2c += cs.cacheToCache;
        not_reissued += cs.missesNotReissued;
        once += cs.missesReissuedOnce;
        more += cs.missesReissuedMore;
        persistent += cs.missesPersistent;
        // Pool the per-controller stats so every miss weighs equally.
        // (Until PR 6 this averaged the per-node means, giving a
        // lightly-loaded node the same weight as a saturated one.)
        miss_lat.combine(cs.missLatency);
        miss_hist.merge(cs.missLatencyHist);
    }
    const Tick runtime = eq_.curTick() - measureStart_;

    // Cycles-per-transaction enters the registry as a single-sample
    // stat: merging runs then Welford-combines these one-sample stats,
    // which RunningStat::combine guarantees is bit-identical to the
    // sequential add() loop the aggregation historically used — that
    // keeps the digest-pinned cpt/cptSd fields stable.
    RunningStat cpt;
    cpt.add(transactions ? ticksToNsF(runtime) /
                static_cast<double>(transactions)
                         : 0.0);

    Results r;
    MetricRegistry &m = r.metrics;
    m.addCounter("ops", metricPinned, ops);
    m.addCounter("transactions", metricDiagnostic, transactions);
    m.addCounter("runtime_ticks", metricDiagnostic, runtime);
    m.addCounter("l1_hits", metricDiagnostic, l1_hits);
    m.addCounter("l2_accesses", metricPinned, l2_accesses);
    m.addCounter("l2_hits", metricDiagnostic, l2_hits);
    m.addCounter("misses", metricPinned, misses);
    m.addCounter("cache_to_cache", metricPinned, c2c);

    // Token Coherence reissue buckets (Table 2).
    m.addCounter("miss_reissue_none", metricPinned, not_reissued);
    m.addCounter("miss_reissue_once", metricPinned, once);
    m.addCounter("miss_reissue_more", metricPinned, more);
    m.addCounter("miss_persistent", metricPinned, persistent);

    m.addStat("miss_latency_ticks", metricPinned, miss_lat);
    m.addHistogram("miss_latency_hist", metricDiagnostic, miss_hist);
    m.addStat("cpt_ns", metricPinned, cpt);

    // Interconnect traffic, flattened per message class; the per-type
    // counters are sparse (most of the 24 types are zero under any one
    // protocol), so zero counts are skipped and merge unions the rest.
    const TrafficStats &t = net_->traffic();
    for (std::size_t c = 0; c < numMsgClasses; ++c) {
        m.addCounter(std::string("link_bytes_") +
                         msgClassName(static_cast<MsgClass>(c)),
                     metricPinned, t.byClass[c].byteLinks);
    }
    for (std::size_t c = 0; c < numMsgClasses; ++c) {
        m.addCounter(std::string("msgs_") +
                         msgClassName(static_cast<MsgClass>(c)),
                     metricDiagnostic, t.byClass[c].messages);
    }
    for (std::size_t i = 0; i < numMsgTypes; ++i) {
        if (t.messagesByType[i]) {
            m.addCounter(std::string("msgs_type_") +
                             msgTypeName(static_cast<MsgType>(i)),
                         metricDiagnostic, t.messagesByType[i]);
        }
    }
    m.addCounter("net_deliveries", metricDiagnostic, t.deliveries);
    m.addStat("net_latency_ticks", metricDiagnostic, t.latency);

    m.addCounter("events_scheduled", metricDiagnostic,
                 eq_.scheduled() - measureStartScheduled_);
    m.addCounter("events_dispatched", metricDiagnostic,
                 eq_.dispatched() - measureStartDispatched_);
    m.addCounter("timers_cancelled", metricDiagnostic,
                 eq_.cancelled() - measureStartCancelled_);

    // Per-tenant breakdowns (multi-tenant mode only): diagnostic so
    // tenant sweeps can read interference without perturbing the
    // digest-pinned aggregate catalog above. Appended last — the
    // catalog stays a fixed-order prefix.
    for (std::size_t t = 0; t + 1 < tenantStarts_.size(); ++t) {
        std::uint64_t t_ops = 0;
        RunningStat t_lat;
        for (int i = tenantStarts_[t]; i < tenantStarts_[t + 1]; ++i) {
            t_ops += sequencers_[i]->stats().opsCompleted;
            t_lat.combine(caches_[i]->stats().missLatency);
        }
        const std::string prefix = "tenant" + std::to_string(t) + "_";
        m.addCounter(prefix + "ops", metricDiagnostic, t_ops);
        m.addStat(prefix + "miss_latency_ticks", metricDiagnostic,
                  t_lat);
    }
    return r;
}

} // namespace tokensim
