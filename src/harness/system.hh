/**
 * @file
 * System builder: wires an entire simulated multiprocessor — event
 * queue, network, per-node cache/memory controllers for the chosen
 * protocol, sequencers, and workloads — from one SystemConfig.
 *
 * This is the library's top-level entry point: examples, tests, and
 * benches construct a System, run it, and read the aggregated results.
 */

#ifndef TOKENSIM_HARNESS_SYSTEM_HH
#define TOKENSIM_HARNESS_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/substrate.hh"
#include "cpu/sequencer.hh"
#include "net/network.hh"
#include "proto/controller.hh"
#include "proto/context.hh"
#include "proto/types.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "workload/commercial.hh"
#include "workload/factory.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace tokensim {

/**
 * SMARTS-style systematic sampling (Wunderlich et al., ISCA 2003):
 * alternate cheap functional fast-forward spans with short detailed
 * measurement windows. Each window contributes one sample of every
 * pinned metric; System::results() pools the windows so sampled means
 * carry standard errors. With @c windows windows, every processor
 * executes warmup + windows * (ffOps + measureOps) operations total,
 * of which only warmup + windows * measureOps run on the detailed
 * engine — the fast-forwarded ops update architectural warm state
 * (cache tags/LRU, token counts, directory entries, backing store)
 * at far above the detailed op rate, with no events, messages, or
 * RNG draws.
 */
struct SamplingSpec
{
    std::uint64_t ffOps = 0;       ///< functional ops per span
    std::uint64_t measureOps = 0;  ///< detailed ops per window
    std::uint64_t windows = 0;     ///< number of measurement windows

    bool enabled() const { return windows > 0 && measureOps > 0; }
};

/**
 * One tenant of a multi-tenant system: a workload co-scheduled on a
 * contiguous group of nodes of the shared machine. Tenants model
 * independent applications consolidated on one interconnect — each
 * group runs its own generator family over its own (offset-disjoint)
 * address space, while every memory access still contends for the
 * shared network, directories, and memory controllers, so per-tenant
 * metrics expose cross-tenant interference.
 */
struct TenantSpec
{
    /** The group's operation source (trace specs are rejected —
     *  recorded traces bake in a whole machine's node count). */
    WorkloadSpec workload;

    /** Nodes in this group; groups are assigned contiguously in
     *  declaration order and must sum to SystemConfig::numNodes. */
    int nodes = 0;

    friend bool
    operator==(const TenantSpec &a, const TenantSpec &b)
    {
        return a.workload == b.workload && a.nodes == b.nodes;
    }
    friend bool
    operator!=(const TenantSpec &a, const TenantSpec &b)
    {
        return !(a == b);
    }
};

/**
 * Tenant i's addresses are offset by i << kTenantAddrShift, far above
 * any address a single group's generators emit (private regions top
 * out near 2^34 at 1024 nodes; table regions are smaller), so tenant
 * address spaces are disjoint while the block-interleaved home mapping
 * still spreads every tenant's homes across the whole machine.
 */
constexpr int kTenantAddrShift = 44;

/** Everything needed to build one simulated system (Table 1 defaults). */
struct SystemConfig
{
    int numNodes = 16;

    /** "tree" (totally ordered) or "torus" (unordered). */
    std::string topology = "torus";

    ProtocolKind protocol = ProtocolKind::tokenB;
    ProtocolParams proto;

    NetworkParams net;
    SequencerParams seq;

    /** L2 geometry (Table 1: 4 MB, 4-way, 64 B, 6 ns). */
    CacheParams l2{4 * 1024 * 1024, 4, 64, nsToTicks(6)};

    /** DRAM (Table 1: 80 ns). */
    DramParams dram{};

    /** Controller processing latency (Table 1: 6 ns). */
    Tick ctrlLatency = nsToTicks(6);

    std::uint32_t blockBytes = 64;

    /**
     * The operation source: a synthetic preset name ("oltp",
     * "apache", "specjbb", "producer-consumer", "lock-ping",
     * "uniform", "hot", "private", "ycsb", "tpcc") with its
     * per-preset knobs, or a
     * recorded trace to replay (WorkloadSpec::trace(path)). A plain
     * string assigns the preset. Ignored when workloadFactory is set.
     */
    WorkloadSpec workload;

    /** Custom per-node workload factory (overrides `workload`). */
    std::function<std::unique_ptr<Workload>(NodeId, int,
                                            std::uint64_t seed)>
        workloadFactory;

    /**
     * Multi-tenant mode: when non-empty, these workloads are
     * co-scheduled on contiguous disjoint node groups (in declaration
     * order; node counts must sum to numNodes) and `workload` is
     * ignored. Each group's generators see their group-local node ids
     * and group size — a tenant's sharing pattern spans its own nodes
     * — and its addresses are offset per kTenantAddrShift. A runtime
     * knob like `workload`: System::reset switches tenant lists
     * freely, and results() gains per-tenant diagnostic metrics
     * (tenant<i>_ops, tenant<i>_miss_latency_ticks). Incompatible
     * with workloadFactory; trace specs are rejected inside tenants.
     */
    std::vector<TenantSpec> tenants;

    /**
     * When non-empty, record every operation the sequencers pull
     * (warmup included) and write the trace here as run() completes —
     * replayable later via WorkloadSpec::trace(). Meant for one
     * System at a time (parallel shards would race on the file).
     */
    std::string recordTrace;

    /** Operations each processor executes (measured window). Ignored
     *  when `sampling` is enabled — the sampled budget is
     *  sampling.windows * sampling.measureOps detailed ops plus
     *  sampling.windows * sampling.ffOps functional ops. */
    std::uint64_t opsPerProcessor = 20000;

    /** When enabled, run() alternates fast-forward spans with
     *  detailed measurement windows instead of one detailed run. */
    SamplingSpec sampling;

    /**
     * Warm-state snapshot bytes (harness/snapshot.hh) to restore
     * before running. The snapshot must have been saved from a config
     * with the same shape fingerprint (structure + workload + seed;
     * timing knobs are free). Shared so a sweep's many configs carry
     * one copy in-process; the wire codec ships the bytes to
     * DistRunner workers. Incompatible with recordTrace.
     */
    std::shared_ptr<const std::string> warmSnapshot;

    /**
     * Operations each processor executes before statistics are
     * zeroed (the paper warms caches from checkpoints; this is the
     * simulator's equivalent).
     */
    std::uint64_t warmupOpsPerProcessor = 0;

    std::uint64_t seed = 1;

    /** Attach the token-conservation auditor (token protocols). */
    bool attachAuditor = false;

    /** Abort if simulated time passes this bound (deadlock guard). */
    Tick maxTicks = nsToTicks(2'000'000'000ULL);   // 2 s simulated
};

/**
 * One node's delivery endpoint: dispatches network messages to the
 * node's cache controller and — for the blocks homed here — its
 * memory controller.
 */
class Node : public NetworkEndpoint
{
  public:
    Node(ProtoContext &ctx, NodeId id, CacheController *cache,
         MemoryController *memory)
        : ctx_(ctx), id_(id), cache_(cache), memory_(memory)
    {}

    void
    deliver(const Message &msg) override
    {
        if (msg.isBroadcast) {
            // Broadcasts snoop the cache controller; the home memory
            // observes them too.
            cache_->handleMessage(msg);
            if (ctx_.home(msg.addr) == id_)
                memory_->handleMessage(msg);
            return;
        }
        switch (msg.dstUnit) {
          case Unit::cache:
            cache_->handleMessage(msg);
            break;
          case Unit::memory:
          case Unit::arbiter:
            memory_->handleMessage(msg);
            break;
        }
    }

  private:
    ProtoContext &ctx_;
    NodeId id_;
    CacheController *cache_;
    MemoryController *memory_;
};

/** A fully wired simulated multiprocessor. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run to completion: all sequencers retire their budget, then the
     * system drains (all in-flight protocol activity settles).
     * @throws std::runtime_error if maxTicks passes first.
     */
    void run();

    /**
     * Reinitialize this System in place for @p cfg — bit-identically
     * equivalent to destroying it and constructing System(cfg), but
     * reusing every large allocation (cache arrays, event-queue
     * buckets, network pools, cached topology trees). This is the
     * reusable-System path the ParallelRunner drives per worker:
     * per-shard construction cost drops to a state wipe.
     *
     * Only possible when @p cfg has the same structural shape as the
     * config this System was built with (same node count, topology,
     * protocol and its parameters, cache/network/DRAM geometry);
     * runtime knobs (seed, op counts, workload preset) may differ
     * freely. @p trust_factory says the caller guarantees
     * cfg.workloadFactory is the same factory this System already
     * uses (std::function is not comparable); the runner passes true
     * when reusing within one spec.
     *
     * @return true if the System was reset and is ready to run();
     *         false if the shape differs (construct a fresh System).
     */
    bool reset(const SystemConfig &cfg, bool trust_factory = false);

    /** Run at most until @p tick (for incremental test control). */
    void runUntilTick(Tick tick) { eq_.run(tick); }

    /**
     * Advance every processor @p ops_per_node operations functionally
     * (round-robin, one op per node per turn): architectural warm
     * state updates in place through the protocol's applyFunctional
     * hook, with no events, messages, timers, RNG draws, or
     * statistics. The event queue is drained first; requires all
     * sequencers idle at an issue limit (or not yet started).
     * run() calls this between measurement windows when
     * cfg.sampling is enabled; tests and snapshot producers call it
     * directly.
     */
    void fastForward(std::uint64_t ops_per_node);

    EventQueue &eq() { return eq_; }
    Network &net() { return *net_; }
    ProtoContext &ctx() { return ctx_; }
    const SystemConfig &config() const { return cfg_; }

    CacheController &cache(NodeId id) { return *caches_[id]; }
    MemoryController &memory(NodeId id) { return *memories_[id]; }
    Sequencer &sequencer(NodeId id) { return *sequencers_[id]; }
    int numNodes() const { return cfg_.numNodes; }

    /** The conservation auditor, if attachAuditor was set. */
    TokenAuditor *auditor() { return auditor_.get(); }

    /** All sequencers retired their budgets. */
    bool allDone() const;

    /** Zero all reported statistics (measurement boundary). */
    void resetStats();

    /**
     * Aggregated results of a completed run: a named-metric registry
     * ("results v2") plus typed accessors for the common metrics.
     *
     * The registry is the single source of truth — the wire format
     * ships it generically, aggregateResults / ParallelRunner /
     * DistRunner merge it generically, and the determinism gates
     * compare it wholesale. System::results() registers every metric
     * in one fixed order (see its definition for the full catalog),
     * so registry equality is meaningful across runners.
     *
     * An accessor over an absent metric reports zero/empty, so a
     * default-constructed Results behaves exactly like the old
     * zero-initialized struct.
     */
    struct Results
    {
        MetricRegistry metrics;

        std::uint64_t ops() const { return metrics.counterValue("ops"); }
        std::uint64_t
        transactions() const
        {
            return metrics.counterValue("transactions");
        }
        Tick
        runtimeTicks() const
        {
            return metrics.counterValue("runtime_ticks");
        }
        std::uint64_t
        l1Hits() const
        {
            return metrics.counterValue("l1_hits");
        }
        std::uint64_t
        l2Accesses() const
        {
            return metrics.counterValue("l2_accesses");
        }
        std::uint64_t
        l2Hits() const
        {
            return metrics.counterValue("l2_hits");
        }
        std::uint64_t
        misses() const
        {
            return metrics.counterValue("misses");
        }
        std::uint64_t
        cacheToCache() const
        {
            return metrics.counterValue("cache_to_cache");
        }

        // Token Coherence reissue buckets (Table 2).
        std::uint64_t
        missesNotReissued() const
        {
            return metrics.counterValue("miss_reissue_none");
        }
        std::uint64_t
        missesReissuedOnce() const
        {
            return metrics.counterValue("miss_reissue_once");
        }
        std::uint64_t
        missesReissuedMore() const
        {
            return metrics.counterValue("miss_reissue_more");
        }
        std::uint64_t
        missesPersistent() const
        {
            return metrics.counterValue("miss_persistent");
        }

        // Event-kernel counters over the measured window (diagnostic:
        // simulator cost, not simulated behavior — kept out of
        // resultDigest() so golden digests don't churn with kernel
        // bookkeeping changes).
        std::uint64_t
        eventsScheduled() const
        {
            return metrics.counterValue("events_scheduled");
        }
        std::uint64_t
        eventsDispatched() const
        {
            return metrics.counterValue("events_dispatched");
        }
        std::uint64_t
        timersCancelled() const
        {
            return metrics.counterValue("timers_cancelled");
        }

        /** Miss-latency stat pooled over every miss on every node. */
        RunningStat
        missLatency() const
        {
            return metrics.statValue("miss_latency_ticks");
        }
        double
        avgMissLatencyTicks() const
        {
            return missLatency().mean();
        }

        // Interconnect traffic, flattened from the Network's
        // TrafficStats into per-class counters (the Network itself
        // still exposes the raw struct via Network::traffic()).
        std::uint64_t
        linkBytesOf(MsgClass c) const
        {
            return metrics.counterValue(std::string("link_bytes_") +
                                        msgClassName(c));
        }
        std::uint64_t
        messagesOf(MsgClass c) const
        {
            return metrics.counterValue(std::string("msgs_") +
                                        msgClassName(c));
        }
        std::uint64_t
        totalLinkBytes() const
        {
            std::uint64_t t = 0;
            for (std::size_t c = 0; c < numMsgClasses; ++c)
                t += linkBytesOf(static_cast<MsgClass>(c));
            return t;
        }

        /** Dispatched simulation events per completed operation. */
        double
        eventsPerOp() const
        {
            return ops() ? static_cast<double>(eventsDispatched()) /
                       static_cast<double>(ops())
                         : 0.0;
        }

        /** Cycles (1 GHz => ns) per transaction. */
        double
        cyclesPerTransaction() const
        {
            return transactions()
                ? ticksToNsF(runtimeTicks()) /
                      static_cast<double>(transactions())
                : 0.0;
        }

        /** Interconnect bytes (x links crossed) per L2 miss. */
        double
        bytesPerMiss() const
        {
            return misses()
                ? static_cast<double>(totalLinkBytes()) /
                      static_cast<double>(misses())
                : 0.0;
        }

        double
        bytesPerMissOf(MsgClass c) const
        {
            return misses()
                ? static_cast<double>(linkBytesOf(c)) /
                      static_cast<double>(misses())
                : 0.0;
        }
    };

    Results results() const;

  private:
    std::unique_ptr<Workload> makeWorkload(NodeId node,
                                           std::uint64_t seed);
    void buildControllers(NodeId id, std::uint64_t seed);

    /** Detailed-engine op budget per processor (warmup included);
     *  fast-forwarded ops ride on top of this at run time. */
    std::uint64_t detailedOpBudget() const;

    /** The sampled run loop (cfg_.sampling enabled): windows of
     *  fastForward + detailed measurement, pooled into
     *  sampledResults_. @p base is the per-node op count already
     *  completed when run() started (warm-snapshot progress). */
    void runSampled(std::uint64_t base);

    /** Collect the current window/run counters (never the pooled
     *  sampled results). */
    Results collectResults() const;

    /** (Re)build the workload factory and trace recorder for cfg_. */
    void configureWorkloads();

    /** cfg_.proto with protocol-specific fixups applied (tokenNull
     *  disables reissue timers); what controllers are built/reset
     *  with. */
    ProtocolParams effectiveProtoParams() const;

    SystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<Network> net_;
    ProtoContext ctx_;
    std::unique_ptr<TokenAuditor> auditor_;
    AddressMap addrMap_;
    std::unique_ptr<WorkloadFactory> wlFactory_;
    /** Per-tenant factories (multi-tenant mode; else empty). */
    std::vector<std::unique_ptr<WorkloadFactory>> tenantFactories_;
    /** Tenant group start nodes (tenantStarts_[i] = first node of
     *  tenant i; one extra trailing entry = numNodes). */
    std::vector<int> tenantStarts_;
    std::unique_ptr<TraceWriter> traceWriter_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<MemoryController>> memories_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<Sequencer>> sequencers_;
    Tick measureStart_ = 0;
    /** Event-counter snapshots at the measurement boundary. */
    std::uint64_t measureStartScheduled_ = 0;
    std::uint64_t measureStartDispatched_ = 0;
    std::uint64_t measureStartCancelled_ = 0;
    /** Pooled per-window results of a completed sampled run; valid
     *  only when sampledValid_ (results() then returns these). */
    Results sampledResults_;
    bool sampledValid_ = false;
};

} // namespace tokensim

#endif // TOKENSIM_HARNESS_SYSTEM_HH
