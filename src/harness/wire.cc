#include "harness/wire.hh"

#include <cstring>
#include <memory>

namespace tokensim {

// WireWriter / WireReader / struct-end sentinel moved to sim/bytes.cc.

// ---------------------------------------------------------------------
// Struct encodings
// ---------------------------------------------------------------------

// Layout-skew sentinel: adding a field to WorkloadSpec changes its
// size, which fails this assert until the new field is added to
// encodeWorkloadSpec/decodeWorkloadSpec, operator==, and wireVersion
// is bumped. Guarded to the one ABI the sentinel value was computed
// for — other ABIs still have the operator== doc contract and the
// exhaustive wire round-trip tests.
#if defined(__x86_64__) && defined(__GLIBCXX__)
static_assert(sizeof(WorkloadSpec) == 168,
              "WorkloadSpec layout changed: update encodeWorkloadSpec/"
              "decodeWorkloadSpec, WorkloadSpec::operator==, bump "
              "wireVersion, then refresh this sentinel");
#endif

void
encodeWorkloadSpec(WireWriter &w, const WorkloadSpec &spec)
{
    w.str(spec.preset);
    w.str(spec.tracePath);
    w.varint(spec.uniformBlocks);
    w.f64(spec.storeFraction);
    w.varint(spec.prodConsBlocks);
    w.varint(spec.lockBlocks);
    w.svarint(spec.sectionOps);
    w.varint(spec.ycsbRecords);
    w.f64(spec.ycsbTheta);
    w.f64(spec.ycsbReadFraction);
    w.f64(spec.ycsbUpdateFraction);
    w.svarint(spec.ycsbScanLen);
    w.varint(spec.tpccWarehouses);
    w.f64(spec.tpccHomeFraction);
    w.svarint(spec.tpccOpsPerTxn);
    w.svarint(spec.tpccThinkOps);
    putStructEnd(w);
}

WorkloadSpec
decodeWorkloadSpec(WireReader &r)
{
    WorkloadSpec spec;
    spec.preset = r.str("workload preset");
    spec.tracePath = r.str("workload trace path");
    spec.uniformBlocks = r.varint("workload uniformBlocks");
    spec.storeFraction = r.f64("workload storeFraction");
    spec.prodConsBlocks = r.varint("workload prodConsBlocks");
    spec.lockBlocks = r.varint("workload lockBlocks");
    spec.sectionOps = static_cast<int>(r.svarint("workload sectionOps"));
    spec.ycsbRecords = r.varint("workload ycsbRecords");
    spec.ycsbTheta = r.f64("workload ycsbTheta");
    spec.ycsbReadFraction = r.f64("workload ycsbReadFraction");
    spec.ycsbUpdateFraction = r.f64("workload ycsbUpdateFraction");
    spec.ycsbScanLen =
        static_cast<int>(r.svarint("workload ycsbScanLen"));
    spec.tpccWarehouses = r.varint("workload tpccWarehouses");
    spec.tpccHomeFraction = r.f64("workload tpccHomeFraction");
    spec.tpccOpsPerTxn =
        static_cast<int>(r.svarint("workload tpccOpsPerTxn"));
    spec.tpccThinkOps =
        static_cast<int>(r.svarint("workload tpccThinkOps"));
    checkStructEnd(r, "workload spec");
    return spec;
}

namespace {

void
encodeCacheParams(WireWriter &w, const CacheParams &c)
{
    w.varint(c.sizeBytes);
    w.varint(c.assoc);
    w.varint(c.blockBytes);
    w.varint(c.latency);
}

CacheParams
decodeCacheParams(WireReader &r, const char *what)
{
    CacheParams c;
    c.sizeBytes = r.varint(what);
    c.assoc = static_cast<std::uint32_t>(r.varint(what));
    c.blockBytes = static_cast<std::uint32_t>(r.varint(what));
    c.latency = r.varint(what);
    return c;
}

} // namespace

void
encodeSystemConfig(WireWriter &w, const SystemConfig &cfg)
{
    if (cfg.workloadFactory) {
        throw WireError("cannot serialize a SystemConfig with a "
                        "custom workloadFactory (a std::function "
                        "does not cross a process boundary)");
    }

    w.svarint(cfg.numNodes);
    w.str(cfg.topology);
    w.u8(static_cast<std::uint8_t>(cfg.protocol));

    const ProtocolParams &p = cfg.proto;
    w.boolean(p.migratoryOpt);
    w.svarint(p.tokensPerBlock);
    w.svarint(p.maxReissues);
    w.f64(p.reissueLatencyMultiple);
    w.f64(p.reissueJitter);
    w.varint(p.initialAvgMissLatency);
    w.varint(p.maxReissueTimeout);
    w.boolean(p.reissueEnabled);
    w.f64(p.chaosDropFraction);
    w.f64(p.chaosMisdirectFraction);
    w.boolean(p.perfectDirectory);
    w.varint(p.predictorEntries);
    w.f64(p.adaptiveThreshold);
    w.varint(p.adaptiveWindow);

    const NetworkParams &n = cfg.net;
    w.varint(n.linkLatency);
    w.f64(n.bytesPerNs);
    w.boolean(n.unlimitedBandwidth);
    w.varint(n.ctrlBytes);
    w.varint(n.dataBytes);
    w.varint(n.localDelay);

    const SequencerParams &s = cfg.seq;
    w.svarint(s.maxOutstanding);
    w.varint(s.thinkMean);
    encodeCacheParams(w, s.l1);
    w.boolean(s.l1Enabled);

    encodeCacheParams(w, cfg.l2);
    w.varint(cfg.dram.latency);
    w.varint(cfg.dram.minGap);
    w.varint(cfg.ctrlLatency);
    w.varint(cfg.blockBytes);

    encodeWorkloadSpec(w, cfg.workload);
    w.str(cfg.recordTrace);
    w.varint(cfg.opsPerProcessor);
    w.varint(cfg.warmupOpsPerProcessor);
    w.varint(cfg.seed);
    w.boolean(cfg.attachAuditor);
    w.varint(cfg.maxTicks);

    w.varint(cfg.sampling.ffOps);
    w.varint(cfg.sampling.measureOps);
    w.varint(cfg.sampling.windows);
    // A snapshot rides along as an opaque blob; shards validate its
    // shape fingerprint themselves when they load it.
    w.str(cfg.warmSnapshot ? *cfg.warmSnapshot : std::string());

    w.varint(cfg.tenants.size());
    for (const TenantSpec &t : cfg.tenants) {
        encodeWorkloadSpec(w, t.workload);
        w.svarint(t.nodes);
    }
    putStructEnd(w);
}

SystemConfig
decodeSystemConfig(WireReader &r)
{
    SystemConfig cfg;
    cfg.numNodes = static_cast<int>(r.svarint("numNodes"));
    cfg.topology = r.str("topology");
    const std::uint8_t proto_byte = r.u8("protocol");
    if (proto_byte > static_cast<std::uint8_t>(ProtocolKind::tokenNull)) {
        throw WireError("protocol byte " + std::to_string(proto_byte) +
                        " out of range");
    }
    cfg.protocol = static_cast<ProtocolKind>(proto_byte);

    ProtocolParams &p = cfg.proto;
    p.migratoryOpt = r.boolean("migratoryOpt");
    p.tokensPerBlock = static_cast<int>(r.svarint("tokensPerBlock"));
    p.maxReissues = static_cast<int>(r.svarint("maxReissues"));
    p.reissueLatencyMultiple = r.f64("reissueLatencyMultiple");
    p.reissueJitter = r.f64("reissueJitter");
    p.initialAvgMissLatency = r.varint("initialAvgMissLatency");
    p.maxReissueTimeout = r.varint("maxReissueTimeout");
    p.reissueEnabled = r.boolean("reissueEnabled");
    p.chaosDropFraction = r.f64("chaosDropFraction");
    p.chaosMisdirectFraction = r.f64("chaosMisdirectFraction");
    p.perfectDirectory = r.boolean("perfectDirectory");
    p.predictorEntries =
        static_cast<std::uint32_t>(r.varint("predictorEntries"));
    p.adaptiveThreshold = r.f64("adaptiveThreshold");
    p.adaptiveWindow = r.varint("adaptiveWindow");

    NetworkParams &n = cfg.net;
    n.linkLatency = r.varint("linkLatency");
    n.bytesPerNs = r.f64("bytesPerNs");
    n.unlimitedBandwidth = r.boolean("unlimitedBandwidth");
    n.ctrlBytes = static_cast<std::uint32_t>(r.varint("ctrlBytes"));
    n.dataBytes = static_cast<std::uint32_t>(r.varint("dataBytes"));
    n.localDelay = r.varint("localDelay");

    SequencerParams &s = cfg.seq;
    s.maxOutstanding = static_cast<int>(r.svarint("maxOutstanding"));
    s.thinkMean = r.varint("thinkMean");
    s.l1 = decodeCacheParams(r, "l1 geometry");
    s.l1Enabled = r.boolean("l1Enabled");

    cfg.l2 = decodeCacheParams(r, "l2 geometry");
    cfg.dram.latency = r.varint("dram latency");
    cfg.dram.minGap = r.varint("dram minGap");
    cfg.ctrlLatency = r.varint("ctrlLatency");
    cfg.blockBytes = static_cast<std::uint32_t>(r.varint("blockBytes"));

    cfg.workload = decodeWorkloadSpec(r);
    cfg.recordTrace = r.str("recordTrace");
    cfg.opsPerProcessor = r.varint("opsPerProcessor");
    cfg.warmupOpsPerProcessor = r.varint("warmupOpsPerProcessor");
    cfg.seed = r.varint("seed");
    cfg.attachAuditor = r.boolean("attachAuditor");
    cfg.maxTicks = r.varint("maxTicks");

    cfg.sampling.ffOps = r.varint("sampling ffOps");
    cfg.sampling.measureOps = r.varint("sampling measureOps");
    cfg.sampling.windows = r.varint("sampling windows");
    std::string snap = r.str("warm snapshot");
    if (!snap.empty()) {
        cfg.warmSnapshot =
            std::make_shared<const std::string>(std::move(snap));
    }

    const std::uint64_t num_tenants = r.varint("tenant count");
    if (num_tenants > maxWireTenants) {
        throw WireError("tenant count " + std::to_string(num_tenants) +
                        " exceeds limit " +
                        std::to_string(maxWireTenants));
    }
    cfg.tenants.reserve(num_tenants);
    for (std::uint64_t i = 0; i < num_tenants; ++i) {
        TenantSpec t;
        t.workload = decodeWorkloadSpec(r);
        t.nodes = static_cast<int>(r.svarint("tenant nodes"));
        cfg.tenants.push_back(std::move(t));
    }
    checkStructEnd(r, "system config");
    return cfg;
}

void
encodeExperimentSpec(WireWriter &w, const ExperimentSpec &spec)
{
    encodeSystemConfig(w, spec.cfg);
    w.svarint(spec.seeds);
    w.str(spec.label);
    putStructEnd(w);
}

ExperimentSpec
decodeExperimentSpec(WireReader &r)
{
    ExperimentSpec spec;
    spec.cfg = decodeSystemConfig(r);
    spec.seeds = static_cast<int>(r.svarint("spec seeds"));
    spec.label = r.str("spec label");
    checkStructEnd(r, "experiment spec");
    return spec;
}

void
encodeMetrics(WireWriter &w, const MetricRegistry &metrics)
{
    w.varint(metrics.size());
    for (const Metric &m : metrics.all()) {
        w.str(m.name);
        w.u8(static_cast<std::uint8_t>(m.kind));
        w.boolean(m.pinned);
        switch (m.kind) {
          case MetricKind::counter:
            w.varint(m.value);
            break;
          case MetricKind::stat: {
            const RunningStat::Snapshot s = m.stat.snapshot();
            w.varint(s.count);
            w.f64(s.mean);
            w.f64(s.m2);
            w.f64(s.min);
            w.f64(s.max);
            break;
          }
          case MetricKind::histogram:
            w.varint(m.hist.buckets().size());
            for (const auto &[bucket, count] : m.hist.buckets()) {
                w.varint(static_cast<std::uint64_t>(bucket));
                w.varint(count);
            }
            break;
        }
    }
    putStructEnd(w);
}

MetricRegistry
decodeMetrics(WireReader &r)
{
    MetricRegistry metrics;
    const std::uint64_t count = r.varint("metric count");
    if (count > maxWireMetrics) {
        throw WireError("metric count " + std::to_string(count) +
                        " exceeds the cap");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::string name = r.str("metric name");
        if (name.empty())
            throw WireError("empty metric name");
        if (metrics.find(name))
            throw WireError("duplicate metric name: " + name);
        const std::uint8_t kind_byte = r.u8("metric kind");
        if (kind_byte >
            static_cast<std::uint8_t>(MetricKind::histogram)) {
            throw WireError("metric kind byte " +
                            std::to_string(kind_byte) +
                            " out of range");
        }
        const bool pinned = r.boolean("metric pinned flag");
        switch (static_cast<MetricKind>(kind_byte)) {
          case MetricKind::counter:
            metrics.addCounter(name, pinned,
                               r.varint("counter value"));
            break;
          case MetricKind::stat: {
            RunningStat::Snapshot s;
            s.count = r.varint("stat count");
            s.mean = r.f64("stat mean");
            s.m2 = r.f64("stat m2");
            s.min = r.f64("stat min");
            s.max = r.f64("stat max");
            metrics.addStat(name, pinned,
                            RunningStat::fromSnapshot(s));
            break;
          }
          case MetricKind::histogram: {
            const std::uint64_t nbuckets =
                r.varint("histogram bucket count");
            if (nbuckets >
                static_cast<std::uint64_t>(LogHistogram::kMaxBucket) +
                    1) {
                throw WireError("histogram bucket count " +
                                std::to_string(nbuckets) +
                                " exceeds the bucket range");
            }
            LogHistogram h;
            std::int64_t prev = -1;
            for (std::uint64_t b = 0; b < nbuckets; ++b) {
                const std::uint64_t idx =
                    r.varint("histogram bucket index");
                if (idx > static_cast<std::uint64_t>(
                              LogHistogram::kMaxBucket) ||
                    static_cast<std::int64_t>(idx) <= prev) {
                    throw WireError(
                        "histogram bucket indices must be strictly "
                        "ascending and within range");
                }
                prev = static_cast<std::int64_t>(idx);
                const std::uint64_t n =
                    r.varint("histogram bucket value");
                if (n == 0) {
                    throw WireError(
                        "histogram holds an empty bucket (encoding "
                        "is not canonical)");
                }
                h.addCount(static_cast<std::int32_t>(idx), n);
            }
            metrics.addHistogram(name, pinned, h);
            break;
          }
        }
    }
    checkStructEnd(r, "metric registry");
    return metrics;
}

void
encodeResults(WireWriter &w, const System::Results &res)
{
    encodeMetrics(w, res.metrics);
}

System::Results
decodeResults(WireReader &r)
{
    System::Results res;
    res.metrics = decodeMetrics(r);
    return res;
}

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

void
appendFrame(std::string &out, FrameType type,
            const std::string &payload)
{
    if (payload.size() > maxFramePayload)
        throw WireError("frame payload too large to send");
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(type));
    w.varint(payload.size());
    out += w.buffer();
    out += payload;
}

bool
tryExtractFrame(const std::string &buf, std::size_t &pos, Frame &out)
{
    const std::size_t avail = buf.size() - pos;
    if (avail < 1)
        return false;
    const auto type_byte =
        static_cast<std::uint8_t>(static_cast<unsigned char>(buf[pos]));
    if (type_byte < static_cast<std::uint8_t>(FrameType::hello) ||
        type_byte > static_cast<std::uint8_t>(FrameType::error)) {
        throw WireError("unknown frame type " +
                        std::to_string(type_byte));
    }

    // Parse the length varint by hand: running out of buffer here
    // means "incomplete frame, wait for more bytes" — only a varint
    // that can never terminate validly is an error.
    std::uint64_t len = 0;
    int shift = 0;
    std::size_t at = pos + 1;
    for (;;) {
        if (at >= buf.size())
            return false;
        const auto b = static_cast<unsigned char>(buf[at++]);
        if (shift >= 63 && ((b & 0x7f) > 1 || (b & 0x80)))
            throw WireError("frame length varint overflows 64 bits");
        len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
    }
    if (len > maxFramePayload) {
        throw WireError("frame payload length " + std::to_string(len) +
                        " exceeds the cap");
    }
    if (buf.size() - at < len)
        return false;
    out.type = static_cast<FrameType>(type_byte);
    out.payload.assign(buf, at, static_cast<std::size_t>(len));
    pos = at + static_cast<std::size_t>(len);
    return true;
}

std::string
encodeHelloPayload(const std::string &identity)
{
    if (identity.size() > maxHelloIdentity) {
        throw WireError("hello identity " +
                        std::to_string(identity.size()) +
                        " bytes exceeds the cap");
    }
    WireWriter w;
    w.raw(wireMagic, sizeof(wireMagic));
    w.varint(wireVersion);
    w.str(identity);
    return w.take();
}

HelloFrame
decodeHelloPayload(const std::string &payload)
{
    WireReader r(payload);
    char magic[sizeof(wireMagic)];
    r.raw(magic, sizeof(magic), "hello magic");
    if (std::memcmp(magic, wireMagic, sizeof(wireMagic)) != 0)
        throw WireError("bad magic (not a tokensim sweep worker)");
    HelloFrame hf;
    hf.version = r.varint("hello version");
    // Version before identity: a skewed peer's identity encoding may
    // itself be unparseable, and "version mismatch" is the error the
    // operator can act on.
    if (hf.version != wireVersion) {
        throw WireError("version mismatch: worker speaks " +
                        std::to_string(hf.version) +
                        ", parent speaks " +
                        std::to_string(wireVersion));
    }
    hf.identity = r.str("hello identity");
    if (hf.identity.size() > maxHelloIdentity)
        throw WireError("hello identity exceeds the cap");
    r.expectEnd("hello");
    return hf;
}

void
checkHelloPayload(const std::string &payload)
{
    (void)decodeHelloPayload(payload);
}

std::string
encodeJobPayload(std::uint64_t job_id, const SystemConfig &cfg,
                 std::uint64_t seed)
{
    WireWriter w;
    w.varint(job_id);
    encodeSystemConfig(w, cfg);
    w.varint(seed);
    return w.take();
}

JobFrame
decodeJobPayload(const std::string &payload)
{
    WireReader r(payload);
    JobFrame job;
    job.jobId = r.varint("job id");
    job.cfg = decodeSystemConfig(r);
    job.seed = r.varint("job seed");
    r.expectEnd("job frame");
    return job;
}

std::string
encodeResultPayload(std::uint64_t job_id, const System::Results &res)
{
    WireWriter w;
    w.varint(job_id);
    encodeResults(w, res);
    return w.take();
}

ResultFrame
decodeResultPayload(const std::string &payload)
{
    WireReader r(payload);
    ResultFrame rf;
    rf.jobId = r.varint("result job id");
    rf.results = decodeResults(r);
    r.expectEnd("result frame");
    return rf;
}

std::string
encodeErrorPayload(std::uint64_t job_id, const std::string &message)
{
    WireWriter w;
    w.varint(job_id);
    w.str(message);
    return w.take();
}

ErrorFrame
decodeErrorPayload(const std::string &payload)
{
    WireReader r(payload);
    ErrorFrame ef;
    ef.jobId = r.varint("error job id");
    ef.message = r.str("error message");
    r.expectEnd("error frame");
    return ef;
}

// ---------------------------------------------------------------------
// Checkpoint layer
// ---------------------------------------------------------------------

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::uint32_t *table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint64_t
sweepFingerprint(const std::vector<ExperimentSpec> &specs)
{
    WireWriter w;
    w.varint(wireVersion);
    w.varint(specs.size());
    for (const ExperimentSpec &s : specs)
        encodeExperimentSpec(w, s);

    std::uint64_t h = 1469598103934665603ull;   // FNV-1a 64 offset
    for (const char c : w.buffer()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;                  // FNV-1a 64 prime
    }
    return h;
}

std::string
encodeCheckpointHeader(std::uint64_t fingerprint,
                       std::uint64_t total_shards)
{
    WireWriter w;
    w.raw(checkpointMagic, sizeof(checkpointMagic));
    w.varint(wireVersion);
    // Fixed 8 little-endian bytes: a fingerprint is an opaque bit
    // pattern, and a fixed width keeps it legible in a hex dump.
    for (int i = 0; i < 8; ++i)
        w.u8(static_cast<std::uint8_t>((fingerprint >> (8 * i)) &
                                       0xff));
    w.varint(total_shards);
    return w.take();
}

CheckpointHeader
decodeCheckpointHeader(const std::string &buf, std::size_t &pos)
{
    WireReader r(buf.data() + pos, buf.size() - pos);
    CheckpointHeader h;
    try {
        char magic[sizeof(checkpointMagic)];
        r.raw(magic, sizeof(magic), "checkpoint magic");
        if (std::memcmp(magic, checkpointMagic, sizeof(magic)) != 0) {
            throw CheckpointError(
                "not a tokensim sweep checkpoint (bad magic)");
        }
        const std::uint64_t ver = r.varint("checkpoint wire version");
        if (ver != wireVersion) {
            throw CheckpointError(
                "written by wire version " + std::to_string(ver) +
                ", this build speaks " + std::to_string(wireVersion) +
                " (delete the file to start over)");
        }
        std::uint64_t fp = 0;
        for (int i = 0; i < 8; ++i) {
            fp |= static_cast<std::uint64_t>(
                      r.u8("checkpoint fingerprint"))
                  << (8 * i);
        }
        h.fingerprint = fp;
        h.totalShards = r.varint("checkpoint shard count");
    } catch (const CheckpointError &) {
        throw;
    } catch (const WireError &e) {
        throw CheckpointError(std::string("corrupt header: ") +
                              e.what());
    }
    pos += r.consumed();
    return h;
}

std::string
encodeCheckpointRecord(std::uint64_t spec, std::uint64_t seed,
                       const System::Results &res)
{
    WireWriter p;
    p.varint(spec);
    p.varint(seed);
    encodeResults(p, res);
    const std::string &payload = p.buffer();
    if (payload.size() > maxFramePayload)
        throw WireError("checkpoint record too large to write");

    WireWriter w;
    w.varint(payload.size());
    w.raw(payload.data(), payload.size());
    const std::uint32_t c = crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i)
        w.u8(static_cast<std::uint8_t>((c >> (8 * i)) & 0xff));
    return w.take();
}

bool
tryExtractCheckpointRecord(const std::string &buf, std::size_t &pos,
                           CheckpointRecord &out)
{
    // Length varint by hand, exactly like tryExtractFrame: running
    // out of buffer mid-varint is an incomplete (torn) record, not an
    // error; only a varint that can never terminate validly throws.
    std::uint64_t len = 0;
    int shift = 0;
    std::size_t at = pos;
    for (;;) {
        if (at >= buf.size())
            return false;
        const auto b = static_cast<unsigned char>(buf[at++]);
        if (shift >= 63 && ((b & 0x7f) > 1 || (b & 0x80))) {
            throw WireError(
                "checkpoint record length varint overflows 64 bits");
        }
        len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
    }
    if (len > maxFramePayload) {
        throw WireError("checkpoint record length " +
                        std::to_string(len) + " exceeds the cap");
    }
    if (buf.size() - at < len + 4)
        return false;   // payload or CRC still incomplete: torn tail

    const char *payload = buf.data() + at;
    const auto plen = static_cast<std::size_t>(len);
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
        stored |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                      payload[plen + i]))
                  << (8 * i);
    }
    if (crc32(payload, plen) != stored)
        throw WireError("checkpoint record CRC mismatch");

    WireReader r(payload, plen);
    out.spec = r.varint("checkpoint record spec index");
    out.seed = r.varint("checkpoint record seed");
    out.results = decodeResults(r);
    r.expectEnd("checkpoint record");
    pos = at + plen + 4;
    return true;
}

} // namespace tokensim
