/**
 * @file
 * Sweep wire format: a compact versioned binary encoding for the
 * objects the process-sharded sweep runner ships between the parent
 * and its worker subprocesses — ExperimentSpec / SystemConfig /
 * WorkloadSpec going down, raw System::Results coming back — plus the
 * length-prefixed frame layer the pipe protocol is built from.
 *
 * Same discipline as workload/trace.hh: little-endian throughout,
 * ULEB128 varints for counters, zigzag varints for signed ints,
 * doubles as raw IEEE-754 bit patterns (results must merge
 * bit-identically to an in-process run, so no text round-trip), and a
 * bounds-checked reader where every malformed input class — short
 * buffer, oversized varint, out-of-range enum, non-0/1 bool, trailing
 * garbage — throws a typed WireError naming the field. The parser
 * never reads out of bounds.
 *
 * ## Frame layer
 *
 * A stream is a sequence of frames:
 *
 *   u8      frame type (FrameType; anything else is an error)
 *   varint  payload length (capped at maxFramePayload)
 *   ...     payload bytes
 *
 * The conversation (harness/dist_runner.cc): the worker opens with a
 * `hello` frame (8-byte magic "TOKSWEEP" + varint version + a short
 * identity string naming the worker, e.g. "host:pid") so the parent
 * can reject a mismatched binary before shipping work — and, on a TCP
 * transport, reject a stranger that connected to the sweep port; the
 * parent sends `job` frames (varint job id, SystemConfig, varint
 * seed); the worker answers each with a `result` frame (varint job
 * id, System::Results) or an `error` frame (varint job id, message
 * string) and exits cleanly at EOF on its input. The same byte
 * stream runs unchanged over a pipe pair or a connected socket —
 * the transport is DistRunner's business, not the format's.
 *
 * Versioning: bump wireVersion whenever any encoded struct gains,
 * loses, or reorders a field. Struct payloads end with an
 * end-of-struct sentinel byte so a parent/worker skew inside one
 * version (a stale binary) is caught as a typed error instead of a
 * silent misparse.
 *
 * ## Checkpoint layer
 *
 * The same encoding doubles as DistRunner's crash-safe on-disk
 * checkpoint (--checkpoint): a header naming the sweep (magic,
 * wireVersion, a fingerprint hashed over the encoded spec list) is
 * written once via write-then-atomic-rename, then one CRC-framed
 * record — (spec index, seed, raw System::Results) — is appended as
 * each shard completes. A process killed mid-append leaves at worst a
 * torn trailing record, which the loader detects (short frame or CRC
 * mismatch) and drops; everything before it is intact, so a resumed
 * sweep re-runs only the lost shards and, because a shard's result
 * depends only on (spec, seed), merges bit-identically to an
 * uninterrupted run.
 */

#ifndef TOKENSIM_HARNESS_WIRE_HH
#define TOKENSIM_HARNESS_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "harness/experiment.hh"
#include "sim/bytes.hh"

namespace tokensim {

// WireError / WireWriter / WireReader and the struct-end sentinel live
// in sim/bytes.hh (re-exported here) so proto/ and cpu/ warm-state
// codecs can use them without depending on the harness.

/** Bumped on any change to an encoded layout. */
// v2: System::Results became a named-metric registry; the per-field
//     Results encoding was replaced by the generic metric codec.
// v3: the hello payload gained a worker identity/host string (the
//     cross-host TCP transport needs to name who just connected).
// v4: SystemConfig gained the SMARTS sampling spec (ffOps,
//     measureOps, windows) and the warm-state snapshot payload.
// v5: WorkloadSpec gained the "ycsb"/"tpcc" transactional-preset
//     knobs; SystemConfig gained the multi-tenant group list
//     (per-tenant WorkloadSpec + node count).
constexpr std::uint32_t wireVersion = 5;

/** Stream magic carried by the hello frame. */
constexpr char wireMagic[8] = {'T', 'O', 'K', 'S', 'W', 'E', 'E', 'P'};

/** Hard cap on one frame's payload (a corrupt length must not OOM). */
constexpr std::uint64_t maxFramePayload = 1ull << 30;

/** Hard cap on a decoded tenant list (corrupt counts must not OOM). */
constexpr std::uint64_t maxWireTenants = 1 << 16;

// ---------------------------------------------------------------------
// Struct encodings. Each encode/decode pair must consume exactly what
// the other produced; decode functions validate enums and ranges.
// ---------------------------------------------------------------------

void encodeWorkloadSpec(WireWriter &w, const WorkloadSpec &spec);
WorkloadSpec decodeWorkloadSpec(WireReader &r);

/**
 * @throws WireError if @p cfg carries a custom workloadFactory — a
 * std::function cannot cross a process boundary; DistRunner rejects
 * such specs up front with the same reasoning.
 */
void encodeSystemConfig(WireWriter &w, const SystemConfig &cfg);
SystemConfig decodeSystemConfig(WireReader &r);

void encodeExperimentSpec(WireWriter &w, const ExperimentSpec &spec);
ExperimentSpec decodeExperimentSpec(WireReader &r);

/** A corrupt metric count must not OOM the decoder. */
constexpr std::uint64_t maxWireMetrics = 1 << 16;

/**
 * Generic metric-registry codec: one encoder/decoder pair covers
 * every metric kind, so a metric added in System::results() ships
 * with no wire change. Per metric: name, kind byte, pinned flag, then
 * a kind-specific payload (counter value / RunningStat snapshot /
 * occupied histogram buckets in strictly ascending order). Lossless:
 * every counter and double round-trips bit-exactly. The decoder
 * rejects empty or duplicate names, unknown kind bytes, out-of-order
 * or out-of-range histogram buckets, and zero bucket counts.
 */
void encodeMetrics(WireWriter &w, const MetricRegistry &metrics);
MetricRegistry decodeMetrics(WireReader &r);

/** Results are their metric registry on the wire. */
void encodeResults(WireWriter &w, const System::Results &res);
System::Results decodeResults(WireReader &r);

// ---------------------------------------------------------------------
// Frame layer.
// ---------------------------------------------------------------------

enum class FrameType : std::uint8_t
{
    hello = 1,   ///< worker -> parent: magic + version handshake
    job = 2,     ///< parent -> worker: (job id, SystemConfig, seed)
    result = 3,  ///< worker -> parent: (job id, System::Results)
    error = 4,   ///< worker -> parent: (job id, what()) — shard threw
};

/** One parsed frame (payload still encoded). */
struct Frame
{
    FrameType type = FrameType::hello;
    std::string payload;
};

/** Append a complete frame (header + payload) to @p out. */
void appendFrame(std::string &out, FrameType type,
                 const std::string &payload);

/**
 * Incremental frame parser for a streaming buffer. If @p buf starting
 * at @p pos holds one complete frame, fills @p out, advances @p pos
 * past it, and returns true; if the frame is merely incomplete (more
 * bytes pending on the pipe) returns false without consuming
 * anything. Structural corruption — unknown frame type, a length
 * varint that overflows or exceeds maxFramePayload — throws
 * WireError: the sender is broken, not slow.
 */
bool tryExtractFrame(const std::string &buf, std::size_t &pos,
                     Frame &out);

/**
 * Cap on the hello identity string: an identity is "host:pid"-sized,
 * so anything longer is a corrupt length, not a long hostname.
 */
constexpr std::uint64_t maxHelloIdentity = 256;

/** The parsed hello payload: version + who is speaking. */
struct HelloFrame
{
    std::uint64_t version = 0;
    std::string identity;   ///< e.g. "host:pid"; may be empty
};

/** The hello payload: magic + wireVersion + identity. */
std::string encodeHelloPayload(const std::string &identity = {});

/**
 * Validate magic and version (both typed errors — a version mismatch
 * names both versions so a skewed fleet is diagnosable), then the
 * identity (length-capped, no trailing bytes).
 */
HelloFrame decodeHelloPayload(const std::string &payload);

/** decodeHelloPayload with the identity discarded. */
void checkHelloPayload(const std::string &payload);

std::string encodeJobPayload(std::uint64_t job_id,
                             const SystemConfig &cfg,
                             std::uint64_t seed);

struct JobFrame
{
    std::uint64_t jobId = 0;
    SystemConfig cfg;
    std::uint64_t seed = 0;
};
JobFrame decodeJobPayload(const std::string &payload);

std::string encodeResultPayload(std::uint64_t job_id,
                                const System::Results &res);

struct ResultFrame
{
    std::uint64_t jobId = 0;
    System::Results results;
};
ResultFrame decodeResultPayload(const std::string &payload);

std::string encodeErrorPayload(std::uint64_t job_id,
                               const std::string &message);

struct ErrorFrame
{
    std::uint64_t jobId = 0;
    std::string message;
};
ErrorFrame decodeErrorPayload(const std::string &payload);

// ---------------------------------------------------------------------
// Checkpoint layer (see file comment). Codec only — the file I/O
// (atomic header creation, append, torn-tail truncation) lives in
// harness/dist_runner.cc.
// ---------------------------------------------------------------------

/**
 * A checkpoint file that cannot be used at all: bad magic, a
 * different wireVersion, or a header too corrupt to parse. Distinct
 * from a torn tail, which is tolerated and dropped silently.
 */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error("checkpoint: " + what)
    {}
};

/**
 * A structurally valid checkpoint recorded for a *different* sweep
 * (its fingerprint does not match the spec list being run). Resuming
 * would merge foreign results into the grid, so this is always fatal.
 */
class CheckpointMismatch : public CheckpointError
{
  public:
    using CheckpointError::CheckpointError;
};

/** Checkpoint file magic (distinct from the pipe-stream magic). */
constexpr char checkpointMagic[8] = {'T', 'O', 'K', 'C', 'K', 'P',
                                     'T', '1'};

/** CRC-32 (IEEE 802.3, reflected) over @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Order-sensitive FNV-1a hash over wireVersion plus the full encoded
 * spec list (configs, per-spec seed counts, labels). Two sweeps get
 * the same fingerprint only if every shard of one is a shard of the
 * other with the same meaning, which is exactly when resuming across
 * them is sound.
 * @throws WireError if a spec cannot be encoded (custom
 *         workloadFactory) — DistRunner rejects such sweeps anyway.
 */
std::uint64_t sweepFingerprint(const std::vector<ExperimentSpec> &specs);

struct CheckpointHeader
{
    std::uint64_t fingerprint = 0;
    std::uint64_t totalShards = 0;
};

std::string encodeCheckpointHeader(std::uint64_t fingerprint,
                                   std::uint64_t total_shards);

/**
 * Parse and validate the header at @p pos, advancing @p pos past it.
 * @throws CheckpointError on bad magic, wrong wireVersion, or a
 *         truncated header (a file that short has no usable records
 *         either). Fingerprint matching is the caller's job — only it
 *         knows the sweep being resumed.
 */
CheckpointHeader decodeCheckpointHeader(const std::string &buf,
                                        std::size_t &pos);

/** One completed shard restored from (or bound for) a checkpoint. */
struct CheckpointRecord
{
    std::uint64_t spec = 0;   ///< index into the sweep's spec list
    std::uint64_t seed = 0;   ///< 0-based seed offset within the spec
    System::Results results;
};

/**
 * One CRC-framed, append-safe record: varint payload length, payload
 * (spec, seed, encoded results), then the payload's CRC-32 as 4
 * little-endian bytes.
 */
std::string encodeCheckpointRecord(std::uint64_t spec,
                                   std::uint64_t seed,
                                   const System::Results &res);

/**
 * Incremental record parser, mirroring tryExtractFrame(): a complete,
 * CRC-clean record fills @p out and advances @p pos; an incomplete
 * trailing record returns false without consuming anything (the
 * torn-tail case a killed writer leaves behind). A record that is
 * complete but corrupt — CRC mismatch, undecodable payload, trailing
 * payload bytes — throws WireError; checkpoint loaders treat that
 * exactly like a torn tail (drop it and everything after), since an
 * append-only writer can only corrupt the end of the file.
 */
bool tryExtractCheckpointRecord(const std::string &buf,
                                std::size_t &pos,
                                CheckpointRecord &out);

} // namespace tokensim

#endif // TOKENSIM_HARNESS_WIRE_HH
