/**
 * @file
 * Flat open-addressed hash map keyed by block address.
 *
 * Every protocol keeps per-block state (transaction tables, directory
 * entries, token counts, backing-store writes) in maps keyed by a
 * block-aligned Addr, and those lookups sit directly on the simulator's
 * hot path. std::unordered_map pays a prime-modulo hash reduction, a
 * pointer chase per node, and a node allocation per insert; BlockMap
 * replaces that with one multiplicative hash, a power-of-two mask, and
 * linear probing over a single contiguous entry array — no per-entry
 * allocation, and clear() recycles the table storage.
 *
 * The interface is the subset of std::unordered_map the protocols use
 * (find/count/emplace/operator[]/erase/clear/size/iteration), with
 * entries exposing `first`/`second` so call sites are drop-in.
 * Deletion uses tombstones; the table rehashes when live + dead slots
 * pass 7/8 occupancy (shrinking never happens — the reusable-System
 * path wants the capacity back on the next run).
 *
 * Keys must be block-aligned addresses (or at least never the two
 * all-ones sentinel values — asserted), which every user guarantees by
 * construction.
 */

#ifndef TOKENSIM_MEM_BLOCK_MAP_HH
#define TOKENSIM_MEM_BLOCK_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Open-addressed Addr -> T map (see file comment). */
template <typename T>
class BlockMap
{
    /** Slot states, stored in the key word. */
    static constexpr Addr emptyKey = ~Addr{0};
    static constexpr Addr tombKey = ~Addr{0} - 1;

  public:
    /** View of one live slot; named like std::pair for drop-in use.
     *  The table itself is SoA (keys and values in separate arrays,
     *  so probing never touches a value cache line); iterators
     *  synthesize this view on demand. */
    template <bool Const>
    class Iter
    {
        using MapPtr =
            std::conditional_t<Const, const BlockMap *, BlockMap *>;
        using Ref = std::conditional_t<Const, const T &, T &>;

        /** first/second accessor pair (pair-of-references style). */
        struct View
        {
            Addr first;
            Ref second;
            const View *operator->() const { return this; }
        };

      public:
        Iter() = default;
        Iter(MapPtr m, std::size_t i) : m_(m), i_(i) { skip(); }

        View operator*() const
        {
            return View{m_->keys_[i_], m_->values_[i_]};
        }

        View operator->() const { return **this; }

        Iter &
        operator++()
        {
            ++i_;
            skip();
            return *this;
        }

        bool operator==(const Iter &o) const { return i_ == o.i_; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }

      private:
        friend class BlockMap;

        void
        skip()
        {
            while (i_ < m_->keys_.size() &&
                   (m_->keys_[i_] == emptyKey ||
                    m_->keys_[i_] == tombKey))
                ++i_;
        }

        MapPtr m_ = nullptr;
        std::size_t i_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, keys_.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }

    const_iterator
    end() const
    {
        return const_iterator(this, keys_.size());
    }

    iterator
    find(Addr key)
    {
        const std::size_t i = lookup(key);
        return i == notFound ? end() : iterator(this, i);
    }

    const_iterator
    find(Addr key) const
    {
        const std::size_t i = lookup(key);
        return i == notFound ? end() : const_iterator(this, i);
    }

    std::size_t
    count(Addr key) const
    {
        return lookup(key) == notFound ? 0 : 1;
    }

    T &
    operator[](Addr key)
    {
        return values_[slotFor(key)];
    }

    /** Insert (key, T(args...)) if absent; like unordered_map. */
    template <typename... Args>
    std::pair<iterator, bool>
    emplace(Addr key, Args &&...args)
    {
        const std::size_t before = size_;
        const std::size_t i =
            slotFor(key, std::forward<Args>(args)...);
        return {iterator(this, i), size_ != before};
    }

    /**
     * Erase leaves the value object in place (tombstoned slots are
     * unreachable, and a later insert assigns over it) — so a value's
     * internal buffers get recycled when its slot is reused.
     */
    void
    erase(iterator it)
    {
        assert(it.i_ < keys_.size());
        keys_[it.i_] = tombKey;
        --size_;
        ++tombs_;
    }

    std::size_t
    erase(Addr key)
    {
        const std::size_t i = lookup(key);
        if (i == notFound)
            return 0;
        keys_[i] = tombKey;
        --size_;
        ++tombs_;
        return 1;
    }

    /** Drop every entry but keep the table storage (and, like
     *  erase(), the unreachable value objects — see file doc). */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), emptyKey);
        size_ = 0;
        tombs_ = 0;
    }

  private:
    static constexpr std::size_t notFound = ~std::size_t{0};

    static std::size_t
    hashOf(Addr key)
    {
        std::uint64_t h = key;
        h *= 0x9e3779b97f4a7c15ULL;
        h ^= h >> 32;
        return static_cast<std::size_t>(h);
    }

    /** Index of the live entry for @p key, or notFound. */
    std::size_t
    lookup(Addr key) const
    {
        assert(key < tombKey);
        if (keys_.empty())
            return notFound;
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hashOf(key) & mask;
        for (;;) {
            const Addr k = keys_[i];
            if (k == key)
                return i;
            if (k == emptyKey)
                return notFound;
            i = (i + 1) & mask;
        }
    }

    /**
     * Find-or-insert, default- or args-constructing the value.
     *
     * The growth check runs only when a new key is actually inserted:
     * a lookup of a present key NEVER rehashes, so (like
     * std::unordered_map) references stay valid as long as no new key
     * is added.
     */
    template <typename... Args>
    std::size_t
    slotFor(Addr key, Args &&...args)
    {
        assert(key < tombKey);
        if (keys_.empty())
            rehash();
        for (;;) {
            const std::size_t mask = keys_.size() - 1;
            std::size_t i = hashOf(key) & mask;
            std::size_t tomb = notFound;
            for (;;) {
                const Addr k = keys_[i];
                if (k == key)
                    return i;
                if (k == emptyKey) {
                    if ((size_ + tombs_ + 1) * 8 >=
                        keys_.size() * 7) {
                        rehash();
                        break;   // re-probe the regrown table
                    }
                    const std::size_t dst =
                        tomb != notFound ? tomb : i;
                    if (tomb != notFound)
                        --tombs_;
                    keys_[dst] = key;
                    values_[dst] = T(std::forward<Args>(args)...);
                    ++size_;
                    return dst;
                }
                if (k == tombKey && tomb == notFound)
                    tomb = i;
                i = (i + 1) & mask;
            }
        }
    }

    void
    rehash()
    {
        // Double when genuinely full; same-size when mostly tombs.
        const std::size_t newCap = keys_.empty()
            ? 16
            : (size_ * 4 >= keys_.size() ? keys_.size() * 2
                                         : keys_.size());
        std::vector<Addr> oldKeys(newCap, emptyKey);
        std::vector<T> oldValues(newCap);
        oldKeys.swap(keys_);
        oldValues.swap(values_);
        size_ = 0;
        tombs_ = 0;
        const std::size_t mask = keys_.size() - 1;
        for (std::size_t j = 0; j < oldKeys.size(); ++j) {
            const Addr k = oldKeys[j];
            if (k != emptyKey && k != tombKey) {
                std::size_t i = hashOf(k) & mask;
                while (keys_[i] != emptyKey)
                    i = (i + 1) & mask;
                keys_[i] = k;
                values_[i] = std::move(oldValues[j]);
                ++size_;
            }
        }
    }

    /** SoA table: probe keys_ only; values_ touched on hit. */
    std::vector<Addr> keys_;
    std::vector<T> values_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

/** Set of block addresses with std::unordered_set-compatible calls. */
class BlockSet
{
    struct Nothing
    {};

  public:
    bool empty() const { return map_.empty(); }
    std::size_t size() const { return map_.size(); }
    std::size_t count(Addr key) const { return map_.count(key); }
    std::size_t erase(Addr key) { return map_.erase(key); }
    void clear() { map_.clear(); }

    std::pair<BlockMap<Nothing>::iterator, bool>
    insert(Addr key)
    {
        return map_.emplace(key);
    }

    /** Apply @p fn(addr) to every member (slot order — sort before
     *  serializing). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &[a, nothing] : map_)
            fn(a);
    }

  private:
    BlockMap<Nothing> map_;
};

} // namespace tokensim

#endif // TOKENSIM_MEM_BLOCK_MAP_HH
