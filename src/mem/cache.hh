/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * The array is protocol-agnostic: each protocol derives its line type
 * from CacheLineBase and stores its own coherence state (MOSI state bits
 * for the classical protocols, token counts for Token Coherence — the
 * paper notes tokens are held "in processor caches (e.g., part of tag
 * state)"). Replacement victims are returned to the caller, which must
 * take protocol action (write back data, return tokens to the home).
 *
 * Lookup is structure-of-arrays: the block tags and LRU stamps live in
 * their own contiguous arrays, so a set probe scans assoc consecutive
 * tag words (one cache line for a 4-way set) without dragging the full
 * protocol Line payloads through the data cache. touch() — the hottest
 * call in the whole simulator — only dereferences a payload on a hit.
 */

#ifndef TOKENSIM_MEM_CACHE_HH
#define TOKENSIM_MEM_CACHE_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Geometry and latency of one cache level (Table 1). */
struct CacheParams
{
    std::uint64_t sizeBytes = 4 * 1024 * 1024;   ///< capacity
    std::uint32_t assoc = 4;                     ///< ways per set
    std::uint32_t blockBytes = 64;               ///< line size
    Tick latency = nsToTicks(6);                 ///< access latency

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) *
                            blockBytes);
    }
};

/**
 * Common bookkeeping every cache line carries. The authoritative tag
 * and replacement state live in the CacheArray's SoA metadata; these
 * fields are kept in sync on allocate/invalidate so protocol code and
 * eviction victims still see the block identity.
 */
struct CacheLineBase
{
    Addr addr = 0;            ///< block-aligned address
    bool valid = false;       ///< tag valid (the line is allocated)
};

/**
 * A set-associative array of @p Line (derived from CacheLineBase),
 * with true-LRU replacement inside each set.
 */
template <typename Line>
class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params)
        : params_(params),
          numSets_(params.numSets()),
          blockShift_(floorLog2(params.blockBytes)),
          setMask_(numSets_ - 1),
          tags_(numSets_ * params.assoc, invalidTag),
          lruStamp_(numSets_ * params.assoc, 0),
          lines_(numSets_ * params.assoc)
    {
        assert(isPowerOf2(params.blockBytes));
        assert(numSets_ > 0 && isPowerOf2(numSets_));
    }

    const CacheParams &params() const { return params_; }

    /** Block-align an address. */
    Addr
    blockAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(params_.blockBytes - 1);
    }

    /** Find a line without touching LRU state; nullptr if absent. */
    Line *
    find(Addr a)
    {
        const std::size_t i = indexOf(blockAlign(a));
        return i == notFound ? nullptr : &lines_[i];
    }

    const Line *
    find(Addr a) const
    {
        return const_cast<CacheArray *>(this)->find(a);
    }

    /** Find a line and mark it most-recently used. */
    Line *
    touch(Addr a)
    {
        const std::size_t i = indexOf(blockAlign(a));
        if (i == notFound)
            return nullptr;
        lruStamp_[i] = ++useCounter_;
        return &lines_[i];
    }

    /** True if the block is present. */
    bool
    contains(Addr a) const
    {
        return indexOf(blockAlign(a)) != notFound;
    }

    /** Replacement victim information from allocate(). */
    struct Victim
    {
        bool valid = false;   ///< true if a line was evicted
        Line line;            ///< copy of the evicted line
    };

    /**
     * Allocate a line for block @p a (which must not be present).
     * If the set is full, the LRU way is evicted and a copy returned
     * through @p victim so the caller can perform protocol actions
     * (write back dirty data, send tokens home). The returned line is
     * default-initialized with addr/valid set.
     *
     * One pass over the set's tags decides everything: presence
     * (asserted against), the first invalid way, and the LRU victim —
     * no separate find() probe.
     */
    Line *
    allocate(Addr a, Victim *victim)
    {
        const Addr ba = blockAlign(a);
        const std::size_t base = setBase(ba);
        std::size_t way = notFound;       // first invalid way
        std::size_t lruWay = base;        // least-recent valid way
        std::uint64_t lruMin = ~std::uint64_t{0};
        for (std::size_t i = base; i < base + params_.assoc; ++i) {
            if (tags_[i] == ba) {
                assert(false &&
                       "allocate of a block already present");
            } else if (tags_[i] == invalidTag) {
                if (way == notFound)
                    way = i;
            } else if (way == notFound && lruStamp_[i] < lruMin) {
                lruMin = lruStamp_[i];
                lruWay = i;
            }
        }
        if (way == notFound) {
            way = lruWay;
            if (victim) {
                victim->valid = true;
                victim->line = lines_[way];
            }
        }
        tags_[way] = ba;
        lruStamp_[way] = ++useCounter_;
        Line &l = lines_[way];
        l = Line{};
        l.addr = ba;
        l.valid = true;
        return &l;
    }

    /** Remove a block (it must be present). */
    void
    invalidate(Addr a)
    {
        const std::size_t i = indexOf(blockAlign(a));
        assert(i != notFound);
        tags_[i] = invalidTag;
        lines_[i] = Line{};
    }

    /** Apply @p fn to every valid line (used by invariant checkers). */
    template <typename Fn>
    void
    forEachValid(Fn fn)
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != invalidTag)
                fn(lines_[i]);
        }
    }

    template <typename Fn>
    void
    forEachValid(Fn fn) const
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != invalidTag)
                fn(lines_[i]);
        }
    }

    /** Number of currently valid lines. */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        forEachValid([&](const Line &) { ++n; });
        return n;
    }

    /**
     * Invalidate every line and rewind the LRU clock — equivalent to
     * a freshly constructed array but reusing the (large) tag/stamp/
     * payload storage. The reusable-System path calls this between
     * runs.
     */
    void
    clear()
    {
        std::fill(tags_.begin(), tags_.end(), invalidTag);
        std::fill(lruStamp_.begin(), lruStamp_.end(), 0);
        // lines_ is deliberately left stale: a payload is never read
        // until allocate() has rewritten it (tag-miss lines are
        // unreachable), so wiping tens of megabytes per reset would
        // buy nothing.
        useCounter_ = 0;
    }

    // -----------------------------------------------------------------
    // Snapshot support. The warm-state snapshot codec serializes the
    // exact replacement state (per-way LRU stamps plus the global use
    // counter), so a restored array is bit-for-bit the array that was
    // saved — same victims in the same order forever after.
    // -----------------------------------------------------------------

    /** Apply @p fn(flat_way_index, lru_stamp, line) to every valid
     *  line, in flat way order (canonical for serialization). */
    template <typename Fn>
    void
    forEachValidIndexed(Fn fn) const
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != invalidTag)
                fn(i, lruStamp_[i], lines_[i]);
        }
    }

    std::uint64_t useCounter() const { return useCounter_; }
    void setUseCounter(std::uint64_t v) { useCounter_ = v; }

    /** Total number of ways (the flat index space). */
    std::size_t wayCount() const { return tags_.size(); }

    /** True iff flat way @p i could legally hold block @p ba (the way
     *  is in the block's set). For snapshot-decode validation. */
    bool
    wayMatchesSet(std::size_t i, Addr ba) const
    {
        return i >= setBase(ba) && i < setBase(ba) + params_.assoc;
    }

    bool wayValid(std::size_t i) const { return tags_[i] != invalidTag; }

    /**
     * Install block @p ba into flat way @p i with LRU stamp @p stamp.
     * The caller (the snapshot decoder) must have validated the way
     * index, set membership, vacancy, and absence of the block; those
     * preconditions are asserted here, not checked.
     */
    Line *
    restoreWay(std::size_t i, Addr ba, std::uint64_t stamp)
    {
        assert(i < tags_.size());
        assert(wayMatchesSet(i, ba));
        assert(tags_[i] == invalidTag && "restore into an occupied way");
        assert(!contains(ba) && "restore of a block already present");
        tags_[i] = ba;
        lruStamp_[i] = stamp;
        Line &l = lines_[i];
        l = Line{};
        l.addr = ba;
        l.valid = true;
        return &l;
    }

  private:
    /** Tag value of an unallocated way (never a block address: block
     *  addresses are block-aligned, all-ones is not). */
    static constexpr Addr invalidTag = ~Addr{0};
    static constexpr std::size_t notFound = ~std::size_t{0};

    std::size_t
    setBase(Addr block_addr) const
    {
        const std::uint64_t idx = (block_addr >> blockShift_) & setMask_;
        return static_cast<std::size_t>(idx * params_.assoc);
    }

    /** Flat way index of @p ba, or notFound. Tag-array scan only. */
    std::size_t
    indexOf(Addr ba) const
    {
        const std::size_t base = setBase(ba);
        const Addr *t = &tags_[base];
        if (params_.assoc == 4) {
            // The ubiquitous geometry (Table 1 L1 and L2 are both
            // 4-way): a fixed-trip probe the compiler fully unrolls
            // over one 32-byte tag group.
            if (t[0] == ba)
                return base;
            if (t[1] == ba)
                return base + 1;
            if (t[2] == ba)
                return base + 2;
            if (t[3] == ba)
                return base + 3;
            return notFound;
        }
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            if (t[w] == ba)
                return base + w;
        }
        return notFound;
    }

    CacheParams params_;
    std::uint64_t numSets_;
    /** blockBytes and numSets are powers of two: index with
     *  shift/mask, never a runtime division. */
    unsigned blockShift_;
    std::uint64_t setMask_;
    /** SoA metadata: tags and LRU stamps, contiguous per set. */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lruStamp_;
    /** Protocol payloads, touched only on hit/allocate/evict. */
    std::vector<Line> lines_;
    std::uint64_t useCounter_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_MEM_CACHE_HH
