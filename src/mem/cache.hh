/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * The array is protocol-agnostic: each protocol derives its line type
 * from CacheLineBase and stores its own coherence state (MOSI state bits
 * for the classical protocols, token counts for Token Coherence — the
 * paper notes tokens are held "in processor caches (e.g., part of tag
 * state)"). Replacement victims are returned to the caller, which must
 * take protocol action (write back data, return tokens to the home).
 */

#ifndef TOKENSIM_MEM_CACHE_HH
#define TOKENSIM_MEM_CACHE_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Geometry and latency of one cache level (Table 1). */
struct CacheParams
{
    std::uint64_t sizeBytes = 4 * 1024 * 1024;   ///< capacity
    std::uint32_t assoc = 4;                     ///< ways per set
    std::uint32_t blockBytes = 64;               ///< line size
    Tick latency = nsToTicks(6);                 ///< access latency

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) *
                            blockBytes);
    }
};

/** Common bookkeeping every cache line carries. */
struct CacheLineBase
{
    Addr addr = 0;            ///< block-aligned address
    bool valid = false;       ///< tag valid (the line is allocated)
    std::uint64_t lru = 0;    ///< last-use stamp for replacement
};

/**
 * A set-associative array of @p Line (derived from CacheLineBase),
 * with true-LRU replacement inside each set.
 */
template <typename Line>
class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params)
        : params_(params),
          numSets_(params.numSets()),
          lines_(numSets_ * params.assoc)
    {
        assert(isPowerOf2(params.blockBytes));
        assert(numSets_ > 0 && isPowerOf2(numSets_));
    }

    const CacheParams &params() const { return params_; }

    /** Block-align an address. */
    Addr
    blockAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(params_.blockBytes - 1);
    }

    /** Find a line without touching LRU state; nullptr if absent. */
    Line *
    find(Addr a)
    {
        const Addr ba = blockAlign(a);
        Line *set = setFor(ba);
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            if (set[w].valid && set[w].addr == ba)
                return &set[w];
        }
        return nullptr;
    }

    const Line *
    find(Addr a) const
    {
        return const_cast<CacheArray *>(this)->find(a);
    }

    /** Find a line and mark it most-recently used. */
    Line *
    touch(Addr a)
    {
        Line *l = find(a);
        if (l)
            l->lru = ++useCounter_;
        return l;
    }

    /** True if the block is present. */
    bool contains(Addr a) const { return find(a) != nullptr; }

    /** Replacement victim information from allocate(). */
    struct Victim
    {
        bool valid = false;   ///< true if a line was evicted
        Line line;            ///< copy of the evicted line
    };

    /**
     * Allocate a line for block @p a (which must not be present).
     * If the set is full, the LRU way is evicted and a copy returned
     * through @p victim so the caller can perform protocol actions
     * (write back dirty data, send tokens home). The returned line is
     * default-initialized with addr/valid/lru set.
     */
    Line *
    allocate(Addr a, Victim *victim)
    {
        const Addr ba = blockAlign(a);
        assert(!find(ba) && "allocate of a block already present");
        Line *set = setFor(ba);
        Line *way = nullptr;
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            if (!set[w].valid) {
                way = &set[w];
                break;
            }
        }
        if (!way) {
            way = &set[0];
            for (std::uint32_t w = 1; w < params_.assoc; ++w) {
                if (set[w].lru < way->lru)
                    way = &set[w];
            }
            if (victim) {
                victim->valid = true;
                victim->line = *way;
            }
        }
        *way = Line{};
        way->addr = ba;
        way->valid = true;
        way->lru = ++useCounter_;
        return way;
    }

    /** Remove a block (it must be present). */
    void
    invalidate(Addr a)
    {
        Line *l = find(a);
        assert(l);
        *l = Line{};
    }

    /** Apply @p fn to every valid line (used by invariant checkers). */
    template <typename Fn>
    void
    forEachValid(Fn fn)
    {
        for (auto &l : lines_) {
            if (l.valid)
                fn(l);
        }
    }

    template <typename Fn>
    void
    forEachValid(Fn fn) const
    {
        for (const auto &l : lines_) {
            if (l.valid)
                fn(l);
        }
    }

    /** Number of currently valid lines. */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        forEachValid([&](const Line &) { ++n; });
        return n;
    }

  private:
    Line *
    setFor(Addr block_addr)
    {
        const std::uint64_t idx =
            (block_addr / params_.blockBytes) & (numSets_ - 1);
        return &lines_[idx * params_.assoc];
    }

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useCounter_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_MEM_CACHE_HH
