/**
 * @file
 * Simple DRAM timing model.
 *
 * Table 1 gives an 80 ns DRAM/directory access latency. The model adds
 * an optional minimum inter-access gap per memory controller so that a
 * burst of accesses serializes (a coarse bank-conflict model); by
 * default the gap is zero, matching the paper's flat-latency treatment.
 *
 * The directory protocol stores its directory state in DRAM (Section
 * 5.1), so a directory access uses the same model; the "perfect
 * directory cache" configuration of Figure 5a sets that latency to zero.
 */

#ifndef TOKENSIM_MEM_DRAM_HH
#define TOKENSIM_MEM_DRAM_HH

#include <algorithm>

#include "sim/types.hh"

namespace tokensim {

/** DRAM model parameters. */
struct DramParams
{
    Tick latency = nsToTicks(80);   ///< access latency
    Tick minGap = 0;                ///< minimum spacing between accesses
};

/**
 * One memory controller's DRAM channel. Callers ask when an access
 * started "now" would complete; the model tracks channel occupancy.
 */
class Dram
{
  public:
    explicit Dram(const DramParams &params = {}) : params_(params) {}

    const DramParams &params() const { return params_; }

    /**
     * Begin an access at @p now and return its completion tick.
     * Accesses closer together than minGap are pushed back.
     */
    Tick
    access(Tick now)
    {
        const Tick start = std::max(now, nextStart_);
        nextStart_ = start + params_.minGap;
        ++accesses_;
        return start + params_.latency;
    }

    /** Total accesses performed. */
    std::uint64_t accesses() const { return accesses_; }

  private:
    DramParams params_;
    Tick nextStart_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_MEM_DRAM_HH
