#include "net/message.hh"

#include "sim/stats.hh"

namespace tokensim {

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::request:    return "request";
      case MsgClass::reissue:    return "reissue";
      case MsgClass::persistent: return "persistent";
      case MsgClass::nonData:    return "nonData";
      case MsgClass::data:       return "data";
    }
    return "?";
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::invalid:           return "Invalid";
      case MsgType::getS:              return "GetS";
      case MsgType::getM:              return "GetM";
      case MsgType::upgrade:           return "Upgrade";
      case MsgType::data:              return "Data";
      case MsgType::dataExclusive:     return "DataX";
      case MsgType::ack:               return "Ack";
      case MsgType::inv:               return "Inv";
      case MsgType::invAck:            return "InvAck";
      case MsgType::wbData:            return "WbData";
      case MsgType::wbClean:           return "WbClean";
      case MsgType::wbAck:             return "WbAck";
      case MsgType::putM:              return "PutM";
      case MsgType::unblock:           return "Unblock";
      case MsgType::unblockExclusive:  return "UnblockX";
      case MsgType::fwdGetS:           return "FwdGetS";
      case MsgType::fwdGetM:           return "FwdGetM";
      case MsgType::tokenTransfer:     return "TokenTransfer";
      case MsgType::persistReq:        return "PersistReq";
      case MsgType::persistActivate:   return "PersistActivate";
      case MsgType::persistActAck:     return "PersistActAck";
      case MsgType::persistDone:       return "PersistDone";
      case MsgType::persistDeactivate: return "PersistDeactivate";
      case MsgType::persistDeactAck:   return "PersistDeactAck";
      case MsgType::numTypes:          break;
    }
    return "?";
}

std::string
Message::toString() const
{
    return strformat("%s[addr=%#lx src=%u dst=%u req=%u tok=%d%s%s]",
                     msgTypeName(type),
                     static_cast<unsigned long>(addr),
                     src, dest, requester, tokens,
                     ownerToken ? " owner" : "",
                     hasData ? " data" : "");
}

} // namespace tokensim
