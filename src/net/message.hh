/**
 * @file
 * Coherence message definition shared by all protocols.
 *
 * A single flat Message struct carries every protocol's messages; fields
 * that a given protocol does not use stay at their defaults. The paper's
 * message sizing (Section 5.1) is reproduced exactly: all request,
 * acknowledgment, invalidation, and dataless token messages are 8 bytes;
 * data messages are 72 bytes (8-byte header + 64-byte block).
 *
 * The MsgClass field drives both virtual-network assignment and the
 * traffic-breakdown categories of Figures 4b and 5b.
 */

#ifndef TOKENSIM_NET_MESSAGE_HH
#define TOKENSIM_NET_MESSAGE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tokensim {

/**
 * Traffic category of a message, matching the stacked-bar breakdowns in
 * the paper's Figures 4b and 5b.
 */
enum class MsgClass : std::uint8_t
{
    request = 0,   ///< first-issue requests, forwards, invalidations
    reissue,       ///< reissued transient requests (token protocols only)
    persistent,    ///< persistent-request machinery (token protocols only)
    nonData,       ///< acks, unblocks, dataless token transfers
    data,          ///< data responses and writebacks
};

/** Number of MsgClass categories (for stats arrays). */
constexpr std::size_t numMsgClasses = 5;

/** Human-readable name of a MsgClass. */
const char *msgClassName(MsgClass c);

/** Which controller at the destination node receives a message. */
enum class Unit : std::uint8_t
{
    cache = 0,   ///< the node's L2 cache controller
    memory,      ///< the home memory controller
    arbiter,     ///< the persistent-request arbiter at the home
};

/**
 * All message kinds across all four protocols (plus the Section-7
 * extension protocols). Keeping one enum makes tracing and statistics
 * uniform; each protocol uses only its own subset.
 */
enum class MsgType : std::uint8_t
{
    invalid = 0,

    // -- Generic requests (snooping, directory, hammer, token) --
    getS,            ///< request read permission
    getM,            ///< request write permission
    upgrade,         ///< S->M permission request (no data needed)

    // -- Generic responses --
    data,            ///< data response (read permission)
    dataExclusive,   ///< data response granting write permission
    ack,             ///< generic acknowledgment
    inv,             ///< invalidation request
    invAck,          ///< invalidation acknowledgment
    wbData,          ///< writeback containing dirty data
    wbClean,         ///< clean eviction notice (token-free protocols)
    wbAck,           ///< writeback acknowledgment
    putM,            ///< owner announces a writeback (snooping, ordered)
    unblock,         ///< requester -> home: transaction complete
    unblockExclusive,///< requester -> home: complete, now exclusive owner

    // -- Directory-specific --
    fwdGetS,         ///< home -> owner: forward a read request
    fwdGetM,         ///< home -> owner: forward a write request

    // -- Token coherence --
    tokenTransfer,   ///< tokens (with or without data) moving between nodes
    persistReq,      ///< starving node -> arbiter: request activation
    persistActivate, ///< arbiter -> all nodes: activate persistent request
    persistActAck,   ///< node -> arbiter: activation acknowledged
    persistDone,     ///< satisfied node -> arbiter: request deactivation
    persistDeactivate, ///< arbiter -> all nodes: deactivate
    persistDeactAck, ///< node -> arbiter: deactivation acknowledged

    numTypes,
};

/** Number of MsgType values (for stats arrays). */
constexpr std::size_t numMsgTypes =
    static_cast<std::size_t>(MsgType::numTypes);

/** Human-readable name of a MsgType. */
const char *msgTypeName(MsgType t);

/**
 * One coherence message.
 *
 * Invariant #4' of the correctness substrate is encoded here: a message
 * carrying the owner token must carry data (asserted by the token
 * substrate when constructing messages).
 */
struct Message
{
    MsgType type = MsgType::invalid;
    MsgClass cls = MsgClass::nonData;
    Unit dstUnit = Unit::cache;

    /** Block-aligned physical address. */
    Addr addr = 0;

    /** Sending node. */
    NodeId src = invalidNode;

    /** Destination node (unicast); unused for broadcast. */
    NodeId dest = invalidNode;

    /** Original requester, for forwarded requests and responses. */
    NodeId requester = invalidNode;

    /** Non-owner tokens carried (token protocols). */
    int tokens = 0;

    /** True if the owner token is carried (token protocols). */
    bool ownerToken = false;

    /** True if the 64-byte data block is carried. */
    bool hasData = false;

    /** Modeled contents of the block (checked by the random tester). */
    std::uint64_t data = 0;

    /**
     * Acknowledgment count, used by the directory protocol to tell a
     * requester how many invalidation acks to expect, and by hammer for
     * the response count.
     */
    int ackCount = 0;

    /** Global sequence number assigned by the ordered tree's root. */
    std::uint64_t seq = 0;

    /** True if this message was produced by a memory controller
     *  (distinguishes memory data from cache-to-cache data). */
    bool fromMemoryCtrl = false;

    /** Wire size in bytes; filled in by the network from hasData. */
    std::uint32_t size = 0;

    /** Tick at which the message entered the network (for stats). */
    Tick sentAt = 0;

    /** True if delivered as part of a broadcast/multicast. */
    bool isBroadcast = false;

    /** Short human-readable rendering for traces. */
    std::string toString() const;
};

/**
 * Delivery interface implemented by each system node. The network calls
 * deliver() exactly once per (message, destination) pair at the tick the
 * message arrives.
 */
class NetworkEndpoint
{
  public:
    virtual ~NetworkEndpoint() = default;

    /** Receive one message from the interconnect. */
    virtual void deliver(const Message &msg) = 0;
};

} // namespace tokensim

#endif // TOKENSIM_NET_MESSAGE_HH
