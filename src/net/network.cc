#include "net/network.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/log.hh"

namespace tokensim {

Network::Network(EventQueue &eq, std::unique_ptr<Topology> topo,
                 NetworkParams params)
    : eq_(eq), topo_(std::move(topo)), params_(params)
{
    endpoints_.assign(static_cast<std::size_t>(topo_->numNodes()),
                      nullptr);
    linkFree_.assign(topo_->links().size(), 0);
    deliveryRing_.resize(deliveryRingSize);
    bcastIndex_.resize(static_cast<std::size_t>(topo_->numNodes()));
}

void
Network::attach(NodeId id, NetworkEndpoint *ep)
{
    assert(id < endpoints_.size());
    endpoints_[id] = ep;
}

void
Network::reset(const NetworkParams &params)
{
    params_ = params;
    std::fill(linkFree_.begin(), linkFree_.end(), 0);
    stats_.clear();
    orderSeq_ = 0;
    // A drained system has no pending deliveries or live slots; clear
    // defensively (capacity is retained either way). Tree caches stay:
    // they depend only on the topology.
    for (auto &b : deliveryRing_)
        b.clear();
    farDeliveries_.clear();
    // Recycle all pool chunks: nothing is in flight in a drained
    // system, so simply rewind the allocation cursor.
    slotCount_ = 0;
    freeHead_ = noSlot;
}

Tick
Network::serializationTicks(std::uint32_t bytes) const
{
    if (params_.unlimitedBandwidth)
        return 0;
    return static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) * static_cast<double>(ticksPerNs) /
        params_.bytesPerNs));
}

void
Network::finalize(Message &msg)
{
    msg.size = msg.hasData ? params_.dataBytes : params_.ctrlBytes;
    msg.sentAt = eq_.curTick();
}

void
Network::account(const Message &msg, std::size_t nlinks)
{
    auto &cls = stats_.byClass[static_cast<std::size_t>(msg.cls)];
    ++cls.messages;
    cls.byteLinks += static_cast<std::uint64_t>(msg.size) * nlinks;
    ++stats_.messagesByType[static_cast<std::size_t>(msg.type)];
}

std::uint32_t
Network::acquireSlot(const Message &m)
{
    std::uint32_t s;
    if (freeHead_ != noSlot) {
        s = freeHead_;
        freeHead_ = slotRef(s).nextFree;
    } else {
        s = slotCount_++;
        if ((s >> slotChunkBits) >= slotChunks_.size()) {
            slotChunks_.push_back(
                std::make_unique<TransitSlot[]>(slotChunkSize));
        }
    }
    TransitSlot &slot = slotRef(s);
    slot.msg = m;
    slot.refs = 1;
    return s;
}

void
Network::scheduleDelivery(NodeId dest, std::uint32_t slot, Tick when)
{
    assert(endpoints_[dest] &&
           "message sent to node with no attached endpoint");
    slotAddRef(slot);
    std::vector<Delivery> *batch;
    if (when - eq_.curTick() < deliveryRingSize) {
        batch = &deliveryRing_[when & deliveryRingMask];
    } else {
        batch = &farDeliveries_[when];
    }
    if (batch->empty()) {
        // First delivery landing on this tick: adopt a retired batch
        // vector (keeps its capacity) and schedule the single flush
        // event for this tick.
        if (!batchPool_.empty()) {
            *batch = std::move(batchPool_.back());
            batchPool_.pop_back();
        }
        eq_.schedule(when, [this, when]() { flushDeliveries(when); });
    }
    batch->push_back(Delivery{dest, slot});
}

void
Network::flushDeliveries(Tick when)
{
    // Move the whole batch out: a handler may send a message whose
    // delivery lands on this same tick, which opens a fresh batch (and
    // its own flush event) without disturbing this iteration.
    std::vector<Delivery> batch;
    // Far-map batches flush before any same-tick ring batch: every
    // far entry for this tick was scheduled while the tick was still
    // beyond the ring horizon, i.e. strictly before any ring entry,
    // and its flush event was likewise scheduled first — so checking
    // the far map first preserves exact per-tick scheduling order.
    auto far = farDeliveries_.find(when);
    if (far != farDeliveries_.end()) {
        batch = std::move(far->second);
        farDeliveries_.erase(far);
    } else {
        batch.swap(deliveryRing_[when & deliveryRingMask]);
    }
    assert(!batch.empty());
    for (const Delivery &d : batch) {
        ++stats_.deliveries;
        // Deliver straight out of the pool: the deque keeps the slot
        // address stable even if the handler's own sends grow it, and
        // our reference keeps the slot alive until after deliver().
        Message &msg = slotRef(d.slot).msg;
        msg.dest = d.dest;
        stats_.latency.add(
            static_cast<double>(eq_.curTick() - msg.sentAt));
        if (logging::enabled(logging::Level::trace)) {
            logging::write(logging::Level::trace, eq_.curTick(), "net",
                           "deliver " + msg.toString());
        }
        endpoints_[d.dest]->deliver(msg);
        slotRelease(d.slot);
    }
    batch.clear();
    batchPool_.push_back(std::move(batch));
}

Tick
Network::crossLink(LinkId link, Tick ser)
{
    const Tick start = std::max(eq_.curTick(), linkFree_[link]);
    if (!params_.unlimitedBandwidth)
        linkFree_[link] = start + ser;
    return start + params_.linkLatency;
}

// ---------------------------------------------------------------------
// Unicast (cut-through: reserve the whole path at send time)
// ---------------------------------------------------------------------

Tick
Network::reservePath(const std::vector<LinkId> &path, Tick ser)
{
    Tick t = eq_.curTick();
    for (LinkId link : path) {
        const Tick start = std::max(t, linkFree_[link]);
        if (!params_.unlimitedBandwidth)
            linkFree_[link] = start + ser;
        t = start + params_.linkLatency;
    }
    return t;
}

void
Network::unicast(Message msg)
{
    finalize(msg);
    assert(msg.dest != invalidNode);
    if (msg.dest == msg.src) {
        account(msg, 0);
        const std::uint32_t slot = acquireSlot(msg);
        scheduleDelivery(msg.dest, slot,
                         eq_.curTick() + params_.localDelay);
        slotRelease(slot);
        return;
    }
    const auto &path = topo_->route(msg.src, msg.dest);
    account(msg, path.size());
    // One path walk, one delivery event: the tail arrives one
    // serialization delay after the head clears the last link.
    const Tick ser = serializationTicks(msg.size);
    const Tick head = reservePath(path, ser);
    const std::uint32_t slot = acquireSlot(msg);
    scheduleDelivery(msg.dest, slot, head + ser);
    slotRelease(slot);
}

// ---------------------------------------------------------------------
// Tree forwarding (broadcast / multicast)
// ---------------------------------------------------------------------

Network::TreeIndex
Network::buildTreeIndex(std::vector<TreeEdge> edges, int src_vertex)
{
    TreeIndex idx;
    idx.edges = std::move(edges);
    idx.children.resize(idx.edges.size());
    std::unordered_map<int, int> edge_to;   // vertex -> edge reaching it
    for (std::size_t i = 0; i < idx.edges.size(); ++i)
        edge_to[idx.edges[i].to] = static_cast<int>(i);
    for (std::size_t i = 0; i < idx.edges.size(); ++i) {
        const TreeEdge &e = idx.edges[i];
        if (e.from == src_vertex) {
            idx.rootEdges.push_back(static_cast<int>(i));
        } else {
            auto it = edge_to.find(e.from);
            assert(it != edge_to.end() &&
                   "tree edge with unreachable parent");
            idx.children[static_cast<std::size_t>(it->second)]
                .push_back(static_cast<int>(i));
        }
    }
    return idx;
}

const Network::TreeIndex &
Network::broadcastIndex(NodeId src)
{
    auto &slot = bcastIndex_[src];
    if (!slot) {
        slot = std::make_unique<const TreeIndex>(buildTreeIndex(
            topo_->broadcastTree(src), static_cast<int>(src)));
    }
    return *slot;
}

const Network::TreeIndex &
Network::downIndex()
{
    if (!downIndex_) {
        downIndex_ = std::make_unique<const TreeIndex>(
            buildTreeIndex(topo_->downTree(), topo_->rootVertex()));
    }
    return *downIndex_;
}

void
Network::transmitEdge(const TreeIndex *idx, int ei, std::uint32_t slot,
                      const std::shared_ptr<const MulticastState> &mc)
{
    const TreeEdge &e = idx->edges[static_cast<std::size_t>(ei)];
    const Tick ser = serializationTicks(slotRef(slot).msg.size);
    const Tick head = crossLink(e.link, ser);

    const int num_nodes = topo_->numNodes();
    if (e.to < num_nodes &&
        (!mc || mc->want[static_cast<std::size_t>(e.to)])) {
        scheduleDelivery(static_cast<NodeId>(e.to), slot, head + ser);
    }
    if (!idx->children[static_cast<std::size_t>(ei)].empty()) {
        // The fan-out event inherits this call's slot reference.
        eq_.schedule(head, [this, idx, ei, slot, mc]() {
            const auto &kids =
                idx->children[static_cast<std::size_t>(ei)];
            for (int ci : kids) {
                slotAddRef(slot);
                transmitEdge(idx, ci, slot, mc);
            }
            slotRelease(slot);
        });
    } else {
        slotRelease(slot);
    }
}

void
Network::launchTree(const TreeIndex *idx, std::uint32_t slot,
                    const std::shared_ptr<const MulticastState> &mc)
{
    for (int ei : idx->rootEdges) {
        slotAddRef(slot);
        transmitEdge(idx, ei, slot, mc);
    }
    slotRelease(slot);
}

void
Network::multicast(Message msg, const std::vector<NodeId> &dests)
{
    finalize(msg);
    msg.isBroadcast = true;
    auto state = std::make_shared<MulticastState>();
    state->want.assign(static_cast<std::size_t>(topo_->numNodes()),
                       false);
    bool self = false;
    std::vector<NodeId> remote;
    remote.reserve(dests.size());
    for (NodeId d : dests) {
        if (d == msg.src) {
            self = true;
        } else if (!state->want[d]) {
            state->want[d] = true;
            remote.push_back(d);
        }
    }
    const std::uint32_t slot = acquireSlot(msg);
    if (!remote.empty()) {
        state->idx = buildTreeIndex(
            topo_->multicastTree(msg.src, remote),
            static_cast<int>(msg.src));
        account(msg, state->idx.edges.size());
        slotAddRef(slot);
        const TreeIndex *idx = &state->idx;
        launchTree(idx, slot, std::move(state));
    } else {
        account(msg, 0);
    }
    if (self) {
        scheduleDelivery(msg.src, slot,
                         eq_.curTick() + params_.localDelay);
    }
    slotRelease(slot);
}

void
Network::broadcast(Message msg)
{
    finalize(msg);
    msg.isBroadcast = true;
    const TreeIndex &idx = broadcastIndex(msg.src);
    account(msg, idx.edges.size());
    const std::uint32_t slot = acquireSlot(msg);
    slotAddRef(slot);
    launchTree(&idx, slot, nullptr);
    // The sender's own node (cache controller and, if it is the home,
    // memory controller) observes the broadcast locally.
    scheduleDelivery(msg.src, slot, eq_.curTick() + params_.localDelay);
    slotRelease(slot);
}

// ---------------------------------------------------------------------
// Totally-ordered broadcast
// ---------------------------------------------------------------------

void
Network::broadcastOrdered(Message msg)
{
    if (!topo_->totallyOrdered()) {
        throw std::logic_error(
            "broadcastOrdered requires a totally-ordered topology (" +
            topo_->name() + " provides none)");
    }
    finalize(msg);
    msg.isBroadcast = true;

    const auto &up = topo_->routeToRoot(msg.src);
    account(msg, up.size());

    // Phase 1: reserve the climb to the root in one cut-through walk.
    // The root receives the full message (head + serialization)
    // before ordering it, so the sequencing event lands one
    // serialization delay after the head clears the last up-link.
    const std::uint32_t slot = acquireSlot(msg);
    if (up.empty()) {
        sequenceAndFanOut(slot);
        return;
    }
    const Tick ser = serializationTicks(msg.size);
    const Tick at_root = reservePath(up, ser) + ser;
    eq_.schedule(at_root, [this, slot]() { sequenceAndFanOut(slot); });
}

void
Network::sequenceAndFanOut(std::uint32_t slot)
{
    // Phase 2: take the next slot in the global total order and fan
    // out to every node — including the sender. Root-arrival events
    // execute in tick order (FIFO within a tick), which is what
    // serializes racing broadcasts. The climb owns the transit slot
    // exclusively, so the sequence number is stamped in place.
    Message &ordered = slotRef(slot).msg;
    ordered.seq = orderSeq_++;
    const TreeIndex &idx = downIndex();
    auto &cls = stats_.byClass[static_cast<std::size_t>(ordered.cls)];
    cls.byteLinks +=
        static_cast<std::uint64_t>(ordered.size) * idx.edges.size();

    // Cut-through walk of the whole down tree: reserve every edge
    // (the recurrence is identical to forwarding it edge by edge —
    // tree edges are distinct links, so forward order is the only
    // dependency), then deliver to EVERY node at the latest arrival.
    //
    // Delivering all copies at one tick makes an ordered broadcast
    // atomically visible: the requester's own echo — which is what
    // completes its transaction — can never land before another
    // node's invalidation of the same broadcast. Traditional snooping
    // is built on that property (a store that "performed" while a
    // stale copy was still readable elsewhere violates sequential
    // consistency), and real totally-ordered trees engineer their
    // down paths to provide it. Skewed per-copy delivery only ever
    // worked by accident of per-hop event timing; cut-through
    // reservation made the skew wide enough to expose the race
    // (tests/test_random_coherence.cc soaks catch it immediately).
    // Per-link serialization and occupancy are still charged exactly
    // as before — only the visibility instant is aligned.
    const Tick ser = serializationTicks(ordered.size);
    const int num_nodes = topo_->numNodes();
    headScratch_.resize(
        static_cast<std::size_t>(topo_->numVertices()));
    headScratch_[static_cast<std::size_t>(topo_->rootVertex())] =
        eq_.curTick();
    Tick latest = 0;
    for (const TreeEdge &e : idx.edges) {
        const Tick at = headScratch_[static_cast<std::size_t>(e.from)];
        const Tick start = std::max(at, linkFree_[e.link]);
        if (!params_.unlimitedBandwidth)
            linkFree_[e.link] = start + ser;
        const Tick head = start + params_.linkLatency;
        headScratch_[static_cast<std::size_t>(e.to)] = head;
        if (e.to < num_nodes)
            latest = std::max(latest, head + ser);
    }
    for (const TreeEdge &e : idx.edges) {
        if (e.to < num_nodes)
            scheduleDelivery(static_cast<NodeId>(e.to), slot, latest);
    }
    slotRelease(slot);
}

} // namespace tokensim
