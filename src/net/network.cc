#include "net/network.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/log.hh"

namespace tokensim {

Network::Network(EventQueue &eq, std::unique_ptr<Topology> topo,
                 NetworkParams params)
    : eq_(eq), topo_(std::move(topo)), params_(params)
{
    endpoints_.assign(static_cast<std::size_t>(topo_->numNodes()),
                      nullptr);
    linkFree_.assign(topo_->links().size(), 0);
    bcastIndex_.resize(static_cast<std::size_t>(topo_->numNodes()));
}

void
Network::attach(NodeId id, NetworkEndpoint *ep)
{
    assert(id < endpoints_.size());
    endpoints_[id] = ep;
}

Tick
Network::serializationTicks(std::uint32_t bytes) const
{
    if (params_.unlimitedBandwidth)
        return 0;
    return static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) * static_cast<double>(ticksPerNs) /
        params_.bytesPerNs));
}

void
Network::finalize(Message &msg)
{
    msg.size = msg.hasData ? params_.dataBytes : params_.ctrlBytes;
    msg.sentAt = eq_.curTick();
}

void
Network::account(const Message &msg, std::size_t nlinks)
{
    auto &cls = stats_.byClass[static_cast<std::size_t>(msg.cls)];
    ++cls.messages;
    cls.byteLinks += static_cast<std::uint64_t>(msg.size) * nlinks;
    ++stats_.messagesByType[static_cast<std::size_t>(msg.type)];
}

void
Network::scheduleDelivery(NodeId dest, const Message &msg, Tick when)
{
    assert(endpoints_[dest] &&
           "message sent to node with no attached endpoint");
    auto &batch = pendingDeliveries_[when];
    if (batch.empty()) {
        if (!batchPool_.empty()) {
            batch = std::move(batchPool_.back());
            batchPool_.pop_back();
        }
        eq_.schedule(when, [this, when]() { flushDeliveries(when); });
    }
    batch.push_back(Delivery{dest, msg});
    batch.back().msg.dest = dest;
}

void
Network::flushDeliveries(Tick when)
{
    auto it = pendingDeliveries_.find(when);
    assert(it != pendingDeliveries_.end());
    // Move the batch out: a handler may send a message whose delivery
    // lands on this same tick, which opens a fresh batch (and its own
    // flush event) without disturbing this iteration.
    std::vector<Delivery> batch = std::move(it->second);
    pendingDeliveries_.erase(it);
    for (Delivery &d : batch) {
        ++stats_.deliveries;
        stats_.latency.add(
            static_cast<double>(eq_.curTick() - d.msg.sentAt));
        if (logging::enabled(logging::Level::trace)) {
            logging::write(logging::Level::trace, eq_.curTick(), "net",
                           "deliver " + d.msg.toString());
        }
        endpoints_[d.dest]->deliver(d.msg);
    }
    batch.clear();
    batchPool_.push_back(std::move(batch));
}

Tick
Network::crossLink(LinkId link, Tick ser)
{
    const Tick start = std::max(eq_.curTick(), linkFree_[link]);
    if (!params_.unlimitedBandwidth)
        linkFree_[link] = start + ser;
    return start + params_.linkLatency;
}

// ---------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------

void
Network::hopUnicast(const std::vector<LinkId> *path, std::size_t i,
                    const Message &msg)
{
    const Tick ser = serializationTicks(msg.size);
    const Tick head = crossLink((*path)[i], ser);
    if (i + 1 == path->size()) {
        // Tail arrives one serialization delay after the head.
        scheduleDelivery(msg.dest, msg, head + ser);
        return;
    }
    Message copy = msg;
    eq_.schedule(head, [this, path, i, copy]() {
        hopUnicast(path, i + 1, copy);
    });
}

void
Network::unicast(Message msg)
{
    finalize(msg);
    assert(msg.dest != invalidNode);
    if (msg.dest == msg.src) {
        account(msg, 0);
        scheduleDelivery(msg.dest, msg,
                         eq_.curTick() + params_.localDelay);
        return;
    }
    const auto &path = topo_->route(msg.src, msg.dest);
    account(msg, path.size());
    hopUnicast(&path, 0, msg);
}

// ---------------------------------------------------------------------
// Tree forwarding (broadcast / multicast)
// ---------------------------------------------------------------------

std::shared_ptr<const Network::TreeIndex>
Network::buildTreeIndex(std::vector<TreeEdge> edges, int src_vertex)
{
    auto idx = std::make_shared<TreeIndex>();
    idx->edges = std::move(edges);
    idx->children.resize(idx->edges.size());
    std::unordered_map<int, int> edge_to;   // vertex -> edge reaching it
    for (std::size_t i = 0; i < idx->edges.size(); ++i)
        edge_to[idx->edges[i].to] = static_cast<int>(i);
    for (std::size_t i = 0; i < idx->edges.size(); ++i) {
        const TreeEdge &e = idx->edges[i];
        if (e.from == src_vertex) {
            idx->rootEdges.push_back(static_cast<int>(i));
        } else {
            auto it = edge_to.find(e.from);
            assert(it != edge_to.end() &&
                   "tree edge with unreachable parent");
            idx->children[static_cast<std::size_t>(it->second)]
                .push_back(static_cast<int>(i));
        }
    }
    return idx;
}

const std::shared_ptr<const Network::TreeIndex> &
Network::broadcastIndex(NodeId src)
{
    auto &slot = bcastIndex_[src];
    if (!slot) {
        slot = buildTreeIndex(topo_->broadcastTree(src),
                              static_cast<int>(src));
    }
    return slot;
}

const std::shared_ptr<const Network::TreeIndex> &
Network::downIndex()
{
    if (!downIndex_) {
        downIndex_ =
            buildTreeIndex(topo_->downTree(), topo_->rootVertex());
    }
    return downIndex_;
}

void
Network::transmitEdge(std::shared_ptr<const TreeIndex> idx, int ei,
                      const Message &msg,
                      std::shared_ptr<const std::vector<bool>> want)
{
    const TreeEdge &e = idx->edges[static_cast<std::size_t>(ei)];
    const Tick ser = serializationTicks(msg.size);
    const Tick head = crossLink(e.link, ser);

    const int num_nodes = topo_->numNodes();
    if (e.to < num_nodes &&
        (!want || (*want)[static_cast<std::size_t>(e.to)])) {
        scheduleDelivery(static_cast<NodeId>(e.to), msg, head + ser);
    }
    if (!idx->children[static_cast<std::size_t>(ei)].empty()) {
        Message copy = msg;
        eq_.schedule(head, [this, idx, ei, copy, want]() {
            for (int ci : idx->children[static_cast<std::size_t>(ei)])
                transmitEdge(idx, ci, copy, want);
        });
    }
}

void
Network::launchTree(const std::shared_ptr<const TreeIndex> &idx,
                    const Message &msg,
                    std::shared_ptr<const std::vector<bool>> want)
{
    for (int ei : idx->rootEdges)
        transmitEdge(idx, ei, msg, want);
}

void
Network::multicast(Message msg, const std::vector<NodeId> &dests)
{
    finalize(msg);
    msg.isBroadcast = true;
    auto want = std::make_shared<std::vector<bool>>(
        static_cast<std::size_t>(topo_->numNodes()), false);
    bool self = false;
    std::vector<NodeId> remote;
    remote.reserve(dests.size());
    for (NodeId d : dests) {
        if (d == msg.src) {
            self = true;
        } else if (!(*want)[d]) {
            (*want)[d] = true;
            remote.push_back(d);
        }
    }
    if (!remote.empty()) {
        auto idx = buildTreeIndex(
            topo_->multicastTree(msg.src, remote),
            static_cast<int>(msg.src));
        account(msg, idx->edges.size());
        launchTree(idx, msg, want);
    } else {
        account(msg, 0);
    }
    if (self) {
        scheduleDelivery(msg.src, msg,
                         eq_.curTick() + params_.localDelay);
    }
}

void
Network::broadcast(Message msg)
{
    finalize(msg);
    msg.isBroadcast = true;
    const auto &idx = broadcastIndex(msg.src);
    account(msg, idx->edges.size());
    launchTree(idx, msg, nullptr);
    // The sender's own node (cache controller and, if it is the home,
    // memory controller) observes the broadcast locally.
    scheduleDelivery(msg.src, msg, eq_.curTick() + params_.localDelay);
}

// ---------------------------------------------------------------------
// Totally-ordered broadcast
// ---------------------------------------------------------------------

void
Network::broadcastOrdered(Message msg)
{
    if (!topo_->totallyOrdered()) {
        throw std::logic_error(
            "broadcastOrdered requires a totally-ordered topology (" +
            topo_->name() + " provides none)");
    }
    finalize(msg);
    msg.isBroadcast = true;

    const auto &up = topo_->routeToRoot(msg.src);
    account(msg, up.size());

    // Phase 1: climb to the root switch hop by hop. The root receives
    // the full message (head + serialization) before ordering it.
    climbToRoot(&up, 0, msg, serializationTicks(msg.size));
}

void
Network::climbToRoot(const std::vector<LinkId> *up, std::size_t i,
                     const Message &msg, Tick ser)
{
    if (i == up->size()) {
        // Phase 2: take the next slot in the global total order and
        // fan out to every node — including the sender. Root events
        // execute in tick order (FIFO within a tick), which is what
        // serializes racing broadcasts.
        Message ordered = msg;
        ordered.seq = orderSeq_++;
        const auto &idx = downIndex();
        auto &cls =
            stats_.byClass[static_cast<std::size_t>(ordered.cls)];
        cls.byteLinks += static_cast<std::uint64_t>(ordered.size) *
            idx->edges.size();
        launchTree(idx, ordered, nullptr);
        return;
    }
    const Tick head = crossLink((*up)[i], ser);
    Message copy = msg;
    eq_.schedule(head + (i + 1 == up->size() ? ser : 0),
                 [this, up, i, copy, ser]() {
        climbToRoot(up, i + 1, copy, ser);
    });
}

} // namespace tokensim
