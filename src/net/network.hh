/**
 * @file
 * Timing model of the interconnection network.
 *
 * Models each directed link with a latency (15 ns default) and a
 * serialization delay from the 3.2 GB/s link bandwidth; per-link
 * occupancy produces contention (including the tree's central-root
 * bottleneck that Section 6 Question #2 discusses). Messages are routed
 * over the Topology's precomputed paths; broadcasts use bandwidth-
 * efficient tree multicast (one copy per link). Transfer is modeled as
 * cut-through: a message pays one serialization delay end-to-end plus
 * the per-hop link latency, while occupying each crossed link for its
 * serialization time.
 *
 * Unicasts (and the ordered broadcast's climb to the root) are also
 * cut-through in the *implementation*: the sender walks its cached
 * route once, at send time, against the per-link busy-until cursors,
 * and schedules a single delivery (or root-sequencing) event at the
 * computed arrival tick — no per-hop continuation events. A link is
 * therefore busy for exactly one serialization delay per crossing and
 * per-route FIFO holds as before, but contended links now serve
 * messages in *send* order rather than head-arrival order: a message
 * reserves its downstream links when it enters the network, so a
 * later-sent message that would have reached a shared link first now
 * queues behind the earlier sender's reservation. (Tree-forwarded
 * broadcasts still arbitrate edge by edge at head-arrival time.)
 *
 * The "unlimited bandwidth" configuration used for the dark-grey bars of
 * Figure 4a/5a zeroes serialization and occupancy, leaving pure latency.
 *
 * In-flight messages are pooled: a send copies the Message once into a
 * refcounted transit slot, and every forwarding event / batched
 * delivery carries only the 4-byte slot index. Slots recycle through a
 * free list, so the steady-state network neither allocates nor copies
 * Messages hop by hop.
 */

#ifndef TOKENSIM_NET_NETWORK_HH
#define TOKENSIM_NET_NETWORK_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tokensim {

/** Tunable parameters of the link/network model (Table 1 defaults). */
struct NetworkParams
{
    /** Per-hop link latency (wire + synchronization + route). */
    Tick linkLatency = nsToTicks(15);

    /** Link bandwidth in bytes per nanosecond (3.2 GB/s). */
    double bytesPerNs = 3.2;

    /** If true, serialization and contention are disabled. */
    bool unlimitedBandwidth = false;

    /** Size of control messages on the wire (requests, acks, tokens). */
    std::uint32_t ctrlBytes = 8;

    /** Size of data messages (8-byte header + 64-byte block). */
    std::uint32_t dataBytes = 72;

    /** Delivery delay for a message a node sends to itself. */
    Tick localDelay = 1;
};

/** Interconnect traffic accounting, per Figure 4b/5b category. */
struct TrafficStats
{
    struct PerClass
    {
        std::uint64_t messages = 0;
        /** Bytes multiplied by links crossed (link utilization). */
        std::uint64_t byteLinks = 0;
    };

    std::array<PerClass, numMsgClasses> byClass{};
    std::array<std::uint64_t, numMsgTypes> messagesByType{};
    std::uint64_t deliveries = 0;
    RunningStat latency;   ///< per-delivery network latency, in ticks

    std::uint64_t
    byteLinksOf(MsgClass c) const
    {
        return byClass[static_cast<std::size_t>(c)].byteLinks;
    }

    std::uint64_t
    messagesOf(MsgClass c) const
    {
        return byClass[static_cast<std::size_t>(c)].messages;
    }

    std::uint64_t
    totalByteLinks() const
    {
        std::uint64_t t = 0;
        for (const auto &c : byClass)
            t += c.byteLinks;
        return t;
    }

    void
    clear()
    {
        *this = TrafficStats();
    }
};

/**
 * The interconnection network: owns the topology and link state, routes
 * messages, applies latency/bandwidth/contention, and delivers them to
 * attached endpoints through the event queue.
 */
class Network
{
  public:
    /**
     * @param eq the system event queue.
     * @param topo the topology (ownership transferred).
     * @param params link model parameters.
     */
    Network(EventQueue &eq, std::unique_ptr<Topology> topo,
            NetworkParams params = {});

    /** Attach the endpoint for node @p id (must cover all nodes). */
    void attach(NodeId id, NetworkEndpoint *ep);

    /** Number of endpoint nodes. */
    int numNodes() const { return topo_->numNodes(); }

    /**
     * Send a point-to-point message to msg.dest. A message to the
     * sending node itself bypasses the network (localDelay, no
     * traffic) — this is how a request reaches a home memory that is
     * co-located with the requester.
     */
    void unicast(Message msg);

    /**
     * Send one logical message to a destination set, forwarded along a
     * multicast tree so that each crossed link carries a single copy.
     * A destination equal to the source is delivered locally.
     */
    void multicast(Message msg, const std::vector<NodeId> &dests);

    /**
     * Unordered broadcast to every node. The sender receives its own
     * copy after localDelay (so a co-located home memory controller
     * still observes the request); remote nodes receive it through the
     * broadcast tree. No ordering across broadcasts is guaranteed.
     */
    void broadcast(Message msg);

    /**
     * Totally-ordered broadcast (traditional snooping). Requires a
     * topology with an ordering root. The message travels to the root,
     * receives the next global sequence number, and fans out to every
     * node — including the sender, which is how a snooping requester
     * learns its own place in the total order. All nodes observe all
     * ordered broadcasts in sequence-number order, and every node
     * observes a given broadcast at the same tick (atomic visibility:
     * the fan-out is delivered at the latest per-link arrival, so a
     * requester's echo cannot outrun a sharer's invalidation).
     */
    void broadcastOrdered(Message msg);

    /** True if broadcastOrdered() is usable on this topology. */
    bool ordered() const { return topo_->totallyOrdered(); }

    const Topology &topology() const { return *topo_; }
    const NetworkParams &params() const { return params_; }

    const TrafficStats &traffic() const { return stats_; }
    void clearTraffic() { stats_.clear(); }

    /** Serialization delay in ticks for a message of @p bytes. */
    Tick serializationTicks(std::uint32_t bytes) const;

    /**
     * Return to the just-constructed state with (possibly different)
     * link parameters @p params — clock-zero link occupancy, zeroed
     * traffic stats and ordering sequence, an empty transit pool —
     * while keeping the cached topology trees and all grown
     * pool/batch storage. The reusable-System path calls this
     * between runs.
     */
    void reset(const NetworkParams &params);

  private:
    /**
     * A forwarding tree in event-friendly form: edges plus, for each
     * edge, the indices of its child edges (edges departing from the
     * vertex it reaches). rootEdges are the edges leaving the source.
     */
    struct TreeIndex
    {
        std::vector<TreeEdge> edges;
        std::vector<std::vector<int>> children;
        std::vector<int> rootEdges;
    };

    /**
     * Keep-alive state for one in-flight multicast: the ad-hoc tree
     * (built per send, unlike the cached broadcast trees) and the
     * destination filter. Referenced by the forwarding events.
     */
    struct MulticastState
    {
        TreeIndex idx;
        std::vector<bool> want;
    };

    /** Build the child adjacency for a forward-ordered edge list. */
    static TreeIndex buildTreeIndex(std::vector<TreeEdge> edges,
                                    int src_vertex);

    /** Cached index of the broadcast tree rooted at each node. */
    const TreeIndex &broadcastIndex(NodeId src);

    /** Cached index of the ordered tree's root-to-all fan-out. */
    const TreeIndex &downIndex();

    /** Fill in wire size and entry timestamp. */
    void finalize(Message &msg);

    /** Count a message crossing @p nlinks links. */
    void account(const Message &msg, std::size_t nlinks);

    // ---- In-flight message pool ----------------------------------
    //
    // Every message in transit lives in ONE pooled slot; forwarding
    // events and batched deliveries carry a 4-byte slot index plus a
    // reference count instead of copying the full Message through
    // each closure. Slots recycle through an intrusive free list, so
    // the steady-state network performs no allocation.

    /** No-slot sentinel / free-list terminator. */
    static constexpr std::uint32_t noSlot = ~std::uint32_t{0};

    struct TransitSlot
    {
        Message msg;
        std::uint32_t refs = 0;
        std::uint32_t nextFree = noSlot;
    };

    /** Slots per pool chunk (chunks give stable addresses, so a
     *  handler can read a delivered message in place while its own
     *  sends grow the pool). */
    static constexpr std::uint32_t slotChunkBits = 8;
    static constexpr std::uint32_t slotChunkSize = 1u << slotChunkBits;

    TransitSlot &
    slotRef(std::uint32_t s)
    {
        return slotChunks_[s >> slotChunkBits][s &
                                               (slotChunkSize - 1)];
    }

    /** Copy @p m into a recycled (or new) slot; refcount starts at 1. */
    std::uint32_t acquireSlot(const Message &m);

    void slotAddRef(std::uint32_t s) { ++slotRef(s).refs; }

    void
    slotRelease(std::uint32_t s)
    {
        TransitSlot &slot = slotRef(s);
        if (--slot.refs == 0) {
            slot.nextFree = freeHead_;
            freeHead_ = s;
        }
    }

    /**
     * Schedule delivery of pooled message @p slot to @p dest at
     * @p when (takes its own slot reference). Deliveries landing on
     * the same tick are batched: the first one schedules a single
     * flush event and later ones just append to its batch, so a
     * broadcast fanning out to N nodes in one cycle costs one event
     * instead of N.
     */
    void scheduleDelivery(NodeId dest, std::uint32_t slot, Tick when);

    /** Deliver every message batched for tick @p when, in order. */
    void flushDeliveries(Tick when);

    /**
     * Arbitrate for one link *now* and return the head-arrival tick
     * at the far end. Used by the tree-forwarding (broadcast /
     * multicast) events, which arbitrate edge by edge at head-arrival
     * time; unicasts and the ordered climb reserve whole paths up
     * front via reservePath() instead.
     */
    Tick crossLink(LinkId link, Tick ser);

    /**
     * Transmit edge @p ei of @p idx now; on head arrival, deliver to
     * node vertices (filtered by @p mc->want when @p mc is set) and
     * recursively transmit child edges. Consumes one reference on
     * @p slot. @p idx must outlive the whole transmission: it is
     * either a cached tree or owned by @p mc.
     */
    void transmitEdge(const TreeIndex *idx, int ei, std::uint32_t slot,
                      const std::shared_ptr<const MulticastState> &mc);

    /**
     * Launch all root edges of a tree from the current tick.
     * Consumes one reference on @p slot.
     */
    void launchTree(const TreeIndex *idx, std::uint32_t slot,
                    const std::shared_ptr<const MulticastState> &mc);

    /**
     * Cut-through reservation: walk @p path's links in order at the
     * current tick, reserving each against its busy-until cursor
     * (occupying it for @p ser), and return the head-arrival tick at
     * the far end of the last link. The whole route is arbitrated at
     * send time — see the file comment for the tie-break this implies
     * versus per-hop arbitration.
     */
    Tick reservePath(const std::vector<LinkId> &path, Tick ser);

    /**
     * The ordered-broadcast root phase: assign the next global
     * sequence number to pooled message @p slot and fan it out down
     * the ordered tree. Runs in the event scheduled for the tick the
     * full message reaches the root. Consumes one reference.
     */
    void sequenceAndFanOut(std::uint32_t slot);

    /** One batched delivery: destination plus the pooled message. */
    struct Delivery
    {
        NodeId dest;
        std::uint32_t slot;
    };

    EventQueue &eq_;
    std::unique_ptr<Topology> topo_;
    NetworkParams params_;
    std::vector<NetworkEndpoint *> endpoints_;
    std::vector<Tick> linkFree_;
    /** In-flight message pool (see above), in fixed-size chunks. */
    std::vector<std::unique_ptr<TransitSlot[]>> slotChunks_;
    std::uint32_t slotCount_ = 0;
    std::uint32_t freeHead_ = noSlot;
    /** Delivery-batch calendar ring horizon (ticks). */
    static constexpr std::size_t deliveryRingSize = 4096;
    static constexpr std::size_t deliveryRingMask =
        deliveryRingSize - 1;

    /**
     * Same-tick delivery batches. Nearly every delivery lands within
     * deliveryRingSize ticks of "now", so batches live in a
     * direct-indexed calendar ring (no hashing on the per-message
     * path); the rare contention-delayed stragglers fall back to the
     * far map. Slot aliasing is impossible: a batch at tick T is
     * flushed during tick T, and a later tick mapping to the same
     * slot is at distance >= deliveryRingSize, which routes to the
     * far map.
     */
    std::vector<std::vector<Delivery>> deliveryRing_;
    std::unordered_map<Tick, std::vector<Delivery>> farDeliveries_;
    /** Retired batch vectors, recycled to keep their capacity. */
    std::vector<std::vector<Delivery>> batchPool_;
    std::vector<std::unique_ptr<const TreeIndex>> bcastIndex_;
    std::unique_ptr<const TreeIndex> downIndex_;
    /** Per-vertex head-arrival scratch for the ordered fan-out walk
     *  (sized to the vertex count on first use, then reused). */
    std::vector<Tick> headScratch_;
    std::uint64_t orderSeq_ = 0;
    TrafficStats stats_;
};

} // namespace tokensim

#endif // TOKENSIM_NET_NETWORK_HH
