/**
 * @file
 * Timing model of the interconnection network.
 *
 * Models each directed link with a latency (15 ns default) and a
 * serialization delay from the 3.2 GB/s link bandwidth; per-link
 * occupancy produces contention (including the tree's central-root
 * bottleneck that Section 6 Question #2 discusses). Messages are routed
 * over the Topology's precomputed paths; broadcasts use bandwidth-
 * efficient tree multicast (one copy per link). Transfer is modeled as
 * cut-through: a message pays one serialization delay end-to-end plus
 * the per-hop link latency, while occupying each crossed link for its
 * serialization time.
 *
 * The "unlimited bandwidth" configuration used for the dark-grey bars of
 * Figure 4a/5a zeroes serialization and occupancy, leaving pure latency.
 */

#ifndef TOKENSIM_NET_NETWORK_HH
#define TOKENSIM_NET_NETWORK_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tokensim {

/** Tunable parameters of the link/network model (Table 1 defaults). */
struct NetworkParams
{
    /** Per-hop link latency (wire + synchronization + route). */
    Tick linkLatency = nsToTicks(15);

    /** Link bandwidth in bytes per nanosecond (3.2 GB/s). */
    double bytesPerNs = 3.2;

    /** If true, serialization and contention are disabled. */
    bool unlimitedBandwidth = false;

    /** Size of control messages on the wire (requests, acks, tokens). */
    std::uint32_t ctrlBytes = 8;

    /** Size of data messages (8-byte header + 64-byte block). */
    std::uint32_t dataBytes = 72;

    /** Delivery delay for a message a node sends to itself. */
    Tick localDelay = 1;
};

/** Interconnect traffic accounting, per Figure 4b/5b category. */
struct TrafficStats
{
    struct PerClass
    {
        std::uint64_t messages = 0;
        /** Bytes multiplied by links crossed (link utilization). */
        std::uint64_t byteLinks = 0;
    };

    std::array<PerClass, numMsgClasses> byClass{};
    std::array<std::uint64_t, numMsgTypes> messagesByType{};
    std::uint64_t deliveries = 0;
    RunningStat latency;   ///< per-delivery network latency, in ticks

    std::uint64_t
    byteLinksOf(MsgClass c) const
    {
        return byClass[static_cast<std::size_t>(c)].byteLinks;
    }

    std::uint64_t
    messagesOf(MsgClass c) const
    {
        return byClass[static_cast<std::size_t>(c)].messages;
    }

    std::uint64_t
    totalByteLinks() const
    {
        std::uint64_t t = 0;
        for (const auto &c : byClass)
            t += c.byteLinks;
        return t;
    }

    void
    clear()
    {
        *this = TrafficStats();
    }
};

/**
 * The interconnection network: owns the topology and link state, routes
 * messages, applies latency/bandwidth/contention, and delivers them to
 * attached endpoints through the event queue.
 */
class Network
{
  public:
    /**
     * @param eq the system event queue.
     * @param topo the topology (ownership transferred).
     * @param params link model parameters.
     */
    Network(EventQueue &eq, std::unique_ptr<Topology> topo,
            NetworkParams params = {});

    /** Attach the endpoint for node @p id (must cover all nodes). */
    void attach(NodeId id, NetworkEndpoint *ep);

    /** Number of endpoint nodes. */
    int numNodes() const { return topo_->numNodes(); }

    /**
     * Send a point-to-point message to msg.dest. A message to the
     * sending node itself bypasses the network (localDelay, no
     * traffic) — this is how a request reaches a home memory that is
     * co-located with the requester.
     */
    void unicast(Message msg);

    /**
     * Send one logical message to a destination set, forwarded along a
     * multicast tree so that each crossed link carries a single copy.
     * A destination equal to the source is delivered locally.
     */
    void multicast(Message msg, const std::vector<NodeId> &dests);

    /**
     * Unordered broadcast to every node. The sender receives its own
     * copy after localDelay (so a co-located home memory controller
     * still observes the request); remote nodes receive it through the
     * broadcast tree. No ordering across broadcasts is guaranteed.
     */
    void broadcast(Message msg);

    /**
     * Totally-ordered broadcast (traditional snooping). Requires a
     * topology with an ordering root. The message travels to the root,
     * receives the next global sequence number, and fans out to every
     * node — including the sender, which is how a snooping requester
     * learns its own place in the total order. All nodes observe all
     * ordered broadcasts in sequence-number order.
     */
    void broadcastOrdered(Message msg);

    /** True if broadcastOrdered() is usable on this topology. */
    bool ordered() const { return topo_->totallyOrdered(); }

    const Topology &topology() const { return *topo_; }
    const NetworkParams &params() const { return params_; }

    const TrafficStats &traffic() const { return stats_; }
    void clearTraffic() { stats_.clear(); }

    /** Serialization delay in ticks for a message of @p bytes. */
    Tick serializationTicks(std::uint32_t bytes) const;

  private:
    /**
     * A forwarding tree in event-friendly form: edges plus, for each
     * edge, the indices of its child edges (edges departing from the
     * vertex it reaches). rootEdges are the edges leaving the source.
     */
    struct TreeIndex
    {
        std::vector<TreeEdge> edges;
        std::vector<std::vector<int>> children;
        std::vector<int> rootEdges;
    };

    /** Build the child adjacency for a forward-ordered edge list. */
    static std::shared_ptr<const TreeIndex>
    buildTreeIndex(std::vector<TreeEdge> edges, int src_vertex);

    /** Cached index of the broadcast tree rooted at each node. */
    const std::shared_ptr<const TreeIndex> &broadcastIndex(NodeId src);

    /** Cached index of the ordered tree's root-to-all fan-out. */
    const std::shared_ptr<const TreeIndex> &downIndex();

    /** Fill in wire size and entry timestamp. */
    void finalize(Message &msg);

    /** Count a message crossing @p nlinks links. */
    void account(const Message &msg, std::size_t nlinks);

    /**
     * Schedule delivery of @p msg to @p dest at @p when. Deliveries
     * landing on the same tick are batched: the first one schedules a
     * single flush event and later ones just append to its batch, so a
     * broadcast fanning out to N nodes in one cycle costs one event
     * (and one closure allocation) instead of N.
     */
    void scheduleDelivery(NodeId dest, const Message &msg, Tick when);

    /** Deliver every message batched for tick @p when, in order. */
    void flushDeliveries(Tick when);

    /**
     * Arbitrate for one link *now* and return the head-arrival tick
     * at the far end. Links are FIFO with no future reservations:
     * occupancy starts when the message actually wins the link.
     */
    Tick crossLink(LinkId link, Tick ser);

    /**
     * Transmit edge @p ei of @p idx now; on head arrival, deliver to
     * node vertices (filtered by @p want if non-null) and recursively
     * transmit child edges.
     */
    void transmitEdge(std::shared_ptr<const TreeIndex> idx, int ei,
                      const Message &msg,
                      std::shared_ptr<const std::vector<bool>> want);

    /** Launch all root edges of a tree from the current tick. */
    void launchTree(const std::shared_ptr<const TreeIndex> &idx,
                    const Message &msg,
                    std::shared_ptr<const std::vector<bool>> want);

    /**
     * Send @p msg along the remaining @p path (starting at element
     * @p i) hop by hop, delivering to msg.dest at the end.
     */
    void hopUnicast(const std::vector<LinkId> *path, std::size_t i,
                    const Message &msg);

    /**
     * Climb the ordered tree toward the root hop by hop; at the root,
     * assign the next global sequence number and fan out down-tree.
     */
    void climbToRoot(const std::vector<LinkId> *up, std::size_t i,
                     const Message &msg, Tick ser);

    /** One batched delivery: destination plus the finalized message. */
    struct Delivery
    {
        NodeId dest;
        Message msg;
    };

    EventQueue &eq_;
    std::unique_ptr<Topology> topo_;
    NetworkParams params_;
    std::vector<NetworkEndpoint *> endpoints_;
    std::vector<Tick> linkFree_;
    /** Same-tick delivery batches, keyed by delivery tick. */
    std::unordered_map<Tick, std::vector<Delivery>> pendingDeliveries_;
    /** Retired batch vectors, recycled to keep their capacity. */
    std::vector<std::vector<Delivery>> batchPool_;
    std::vector<std::shared_ptr<const TreeIndex>> bcastIndex_;
    std::shared_ptr<const TreeIndex> downIndex_;
    std::uint64_t orderSeq_ = 0;
    TrafficStats stats_;
};

} // namespace tokensim

#endif // TOKENSIM_NET_NETWORK_HH
