#include "net/topology.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "sim/stats.hh"

namespace tokensim {

void
Topology::init(int num_nodes, int num_vertices)
{
    numNodes_ = num_nodes;
    numVertices_ = num_vertices;
    routes_.assign(static_cast<std::size_t>(num_nodes) * num_nodes, {});
}

LinkId
Topology::addLink(int from, int to)
{
    assert(from >= 0 && from < numVertices_);
    assert(to >= 0 && to < numVertices_);
    links_.push_back(LinkDesc{from, to});
    return static_cast<LinkId>(links_.size() - 1);
}

void
Topology::setRoute(NodeId s, NodeId d, std::vector<LinkId> links)
{
    routes_[s * static_cast<NodeId>(numNodes_) + d] = std::move(links);
}

double
Topology::averageHops() const
{
    std::uint64_t total = 0;
    std::uint64_t pairs = 0;
    for (NodeId s = 0; s < static_cast<NodeId>(numNodes_); ++s) {
        for (NodeId d = 0; d < static_cast<NodeId>(numNodes_); ++d) {
            if (s == d)
                continue;
            total += route(s, d).size();
            ++pairs;
        }
    }
    return pairs ? static_cast<double>(total) / static_cast<double>(pairs)
                 : 0.0;
}

std::vector<TreeEdge>
Topology::unionOfRoutes(NodeId s, const std::vector<NodeId> &dests) const
{
    // Collect each link once at its (prefix-consistent) depth.
    std::vector<int> depth_of(links_.size(), -1);
    for (NodeId d : dests) {
        if (d == s)
            continue;
        const auto &r = route(s, d);
        for (std::size_t i = 0; i < r.size(); ++i) {
            const LinkId l = r[i];
            assert(depth_of[l] == -1 ||
                   depth_of[l] == static_cast<int>(i));
            depth_of[l] = static_cast<int>(i);
        }
    }
    std::vector<TreeEdge> edges;
    for (LinkId l = 0; l < links_.size(); ++l) {
        if (depth_of[l] >= 0) {
            edges.push_back(TreeEdge{l, links_[l].from, links_[l].to,
                                     depth_of[l]});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const TreeEdge &a, const TreeEdge &b) {
                  if (a.depth != b.depth)
                      return a.depth < b.depth;
                  return a.link < b.link;
              });
    return edges;
}

void
Topology::buildBroadcastTrees()
{
    std::vector<NodeId> all(static_cast<std::size_t>(numNodes_));
    for (NodeId i = 0; i < static_cast<NodeId>(numNodes_); ++i)
        all[i] = i;
    bcastTrees_.clear();
    bcastTrees_.reserve(static_cast<std::size_t>(numNodes_));
    for (NodeId s = 0; s < static_cast<NodeId>(numNodes_); ++s)
        bcastTrees_.push_back(unionOfRoutes(s, all));
}

std::vector<TreeEdge>
Topology::multicastTree(NodeId s, const std::vector<NodeId> &dests) const
{
    return unionOfRoutes(s, dests);
}

// ---------------------------------------------------------------------
// TreeTopology
// ---------------------------------------------------------------------

TreeTopology::TreeTopology(int num_nodes, int fanout)
    : fanout_(fanout)
{
    if (num_nodes < 1)
        throw std::invalid_argument("tree topology needs >= 1 node");
    if (fanout < 1)
        throw std::invalid_argument("tree fanout must be >= 1");

    const int groups = (num_nodes + fanout - 1) / fanout;
    // Vertices: procs, incoming switches, root, outgoing switches.
    const int in_base = num_nodes;
    root_ = num_nodes + groups;
    const int out_base = root_ + 1;
    init(num_nodes, num_nodes + 2 * groups + 1);

    std::vector<LinkId> up1(num_nodes), up2(groups);
    std::vector<LinkId> down1(groups), down2(num_nodes);
    for (int p = 0; p < num_nodes; ++p)
        up1[p] = addLink(p, in_base + p / fanout);
    for (int g = 0; g < groups; ++g)
        up2[g] = addLink(in_base + g, root_);
    for (int g = 0; g < groups; ++g)
        down1[g] = addLink(root_, out_base + g);
    for (int p = 0; p < num_nodes; ++p)
        down2[p] = addLink(out_base + p / fanout, p);

    for (NodeId s = 0; s < static_cast<NodeId>(num_nodes); ++s) {
        for (NodeId d = 0; d < static_cast<NodeId>(num_nodes); ++d) {
            if (s == d)
                continue;
            setRoute(s, d, {up1[s], up2[s / fanout],
                            down1[d / fanout], down2[d]});
        }
    }

    toRoot_.resize(static_cast<std::size_t>(num_nodes));
    for (int p = 0; p < num_nodes; ++p)
        toRoot_[p] = {up1[p], up2[p / fanout]};

    downTree_.clear();
    for (int g = 0; g < groups; ++g) {
        downTree_.push_back(TreeEdge{down1[g], root_, out_base + g, 0});
    }
    for (int p = 0; p < num_nodes; ++p) {
        downTree_.push_back(
            TreeEdge{down2[p], out_base + p / fanout, p, 1});
    }

    buildBroadcastTrees();
}

std::string
TreeTopology::name() const
{
    return strformat("tree%d(fanout=%d)", numNodes_, fanout_);
}

// ---------------------------------------------------------------------
// TorusTopology
// ---------------------------------------------------------------------

int
TorusTopology::ringDelta(int a, int b, int k)
{
    int d = (b - a) % k;
    if (d < 0)
        d += k;
    // Take the shorter way around; ties go the positive direction.
    return d <= k / 2 ? d : d - k;
}

TorusTopology::TorusTopology(int kx, int ky)
    : kx_(kx), ky_(ky)
{
    if (kx < 1 || ky < 1)
        throw std::invalid_argument("torus dimensions must be >= 1");

    const int n = kx * ky;
    init(n, n);

    // One directed link to each distinct neighbor in each dimension.
    std::map<std::pair<int, int>, LinkId> link_of;
    auto connect = [&](int from, int to) {
        if (from == to)
            return;
        auto key = std::make_pair(from, to);
        if (!link_of.count(key))
            link_of[key] = addLink(from, to);
    };
    for (int y = 0; y < ky; ++y) {
        for (int x = 0; x < kx; ++x) {
            const int v = vertexAt(x, y);
            if (kx > 1) {
                connect(v, vertexAt((x + 1) % kx, y));
                connect(v, vertexAt((x + kx - 1) % kx, y));
            }
            if (ky > 1) {
                connect(v, vertexAt(x, (y + 1) % ky));
                connect(v, vertexAt(x, (y + ky - 1) % ky));
            }
        }
    }

    // Dimension-order (X then Y) shortest-wrap routing.
    for (int sy = 0; sy < ky; ++sy) {
        for (int sx = 0; sx < kx; ++sx) {
            const NodeId s = static_cast<NodeId>(vertexAt(sx, sy));
            for (int dy = 0; dy < ky; ++dy) {
                for (int dx = 0; dx < kx; ++dx) {
                    const NodeId d = static_cast<NodeId>(vertexAt(dx, dy));
                    if (s == d)
                        continue;
                    std::vector<LinkId> r;
                    int x = sx, y = sy;
                    const int ddx = ringDelta(sx, dx, kx);
                    const int sx_step = ddx > 0 ? 1 : -1;
                    for (int i = 0; i < std::abs(ddx); ++i) {
                        const int nx = ((x + sx_step) % kx + kx) % kx;
                        r.push_back(link_of.at(
                            {vertexAt(x, y), vertexAt(nx, y)}));
                        x = nx;
                    }
                    const int ddy = ringDelta(sy, dy, ky);
                    const int sy_step = ddy > 0 ? 1 : -1;
                    for (int i = 0; i < std::abs(ddy); ++i) {
                        const int ny = ((y + sy_step) % ky + ky) % ky;
                        r.push_back(link_of.at(
                            {vertexAt(x, y), vertexAt(x, ny)}));
                        y = ny;
                    }
                    setRoute(s, d, std::move(r));
                }
            }
        }
    }

    buildBroadcastTrees();
}

TorusTopology *
TorusTopology::makeSquare(int num_nodes)
{
    if (num_nodes < 1)
        throw std::invalid_argument("torus needs >= 1 node");
    int kx = static_cast<int>(std::sqrt(static_cast<double>(num_nodes)));
    while (kx > 1 && num_nodes % kx != 0)
        --kx;
    return new TorusTopology(kx, num_nodes / kx);
}

std::string
TorusTopology::name() const
{
    return strformat("torus%dx%d", kx_, ky_);
}

// ---------------------------------------------------------------------

Topology *
makeTopology(const std::string &kind, int num_nodes)
{
    if (kind == "tree")
        return new TreeTopology(num_nodes);
    if (kind == "torus")
        return TorusTopology::makeSquare(num_nodes);
    throw std::invalid_argument("unknown topology kind: " + kind);
}

} // namespace tokensim
