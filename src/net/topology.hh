/**
 * @file
 * Interconnect topologies: the indirect totally-ordered broadcast tree
 * and the directly-connected unordered torus of the paper's Figure 1.
 *
 * A topology is a directed graph of vertices (the first numNodes()
 * vertices are the processor/memory nodes; the rest are switches) and
 * links. It precomputes, for every source/destination pair, the ordered
 * list of links a message crosses, and for every source the spanning
 * tree used for bandwidth-efficient multicast (each link carries one
 * copy of a broadcast, as with the tree-based multicast routing the
 * paper assumes from Duato et al.).
 */

#ifndef TOKENSIM_NET_TOPOLOGY_HH
#define TOKENSIM_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Index of a directed link within a topology. */
using LinkId = std::uint32_t;

/** Static description of one directed link. */
struct LinkDesc
{
    int from;   ///< source vertex
    int to;     ///< destination vertex
};

/** One edge of a (multicast) forwarding tree, in forward-order. */
struct TreeEdge
{
    LinkId link;   ///< the directed link crossed
    int from;      ///< parent vertex
    int to;        ///< child vertex
    int depth;     ///< link's position along the path from the source
};

/**
 * Abstract interconnect topology.
 *
 * Subclasses populate the vertex/link structure and the unicast route
 * table in their constructors; the base class derives broadcast trees
 * from the routes (valid because both topologies use prefix-consistent
 * deterministic routing).
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of endpoint nodes (vertices 0 .. numNodes()-1). */
    int numNodes() const { return numNodes_; }

    /** Total vertices including switches. */
    int numVertices() const { return numVertices_; }

    /** All directed links. */
    const std::vector<LinkDesc> &links() const { return links_; }

    /**
     * Ordered link ids crossed by a unicast from node @p s to node
     * @p d. Empty when s == d.
     */
    const std::vector<LinkId> &
    route(NodeId s, NodeId d) const
    {
        return routes_[s * static_cast<NodeId>(numNodes_) + d];
    }

    /** Number of link crossings from @p s to @p d. */
    int hops(NodeId s, NodeId d) const
    {
        return static_cast<int>(route(s, d).size());
    }

    /** Mean link crossings over all distinct node pairs. */
    double averageHops() const;

    /**
     * Spanning tree reaching every node from @p s, edges in
     * forward (increasing-depth) order. Used for broadcasts.
     */
    const std::vector<TreeEdge> &
    broadcastTree(NodeId s) const
    {
        return bcastTrees_[s];
    }

    /**
     * Forwarding edges needed to reach exactly @p dests from @p s
     * (the union of the unicast routes, deduplicated), in forward
     * order. Used for destination-set multicast (Section 7).
     */
    std::vector<TreeEdge> multicastTree(NodeId s,
        const std::vector<NodeId> &dests) const;

    /**
     * True if broadcasts through this topology can be given a total
     * order observed identically by all nodes (required by traditional
     * snooping). Only the indirect tree provides this.
     */
    virtual bool totallyOrdered() const = 0;

    /** Vertex id of the ordering root; -1 if !totallyOrdered(). */
    virtual int rootVertex() const { return -1; }

    /** Links from node @p s up to the ordering root (ordered). */
    virtual const std::vector<LinkId> &
    routeToRoot(NodeId s) const
    {
        (void)s;
        static const std::vector<LinkId> empty;
        return empty;
    }

    /**
     * Spanning tree from the ordering root down to every node, edges
     * in forward order (used for the fan-out half of an ordered
     * broadcast).
     */
    virtual const std::vector<TreeEdge> &
    downTree() const
    {
        static const std::vector<TreeEdge> empty;
        return empty;
    }

    /** Short description for reports, e.g. "torus4x4". */
    virtual std::string name() const = 0;

  protected:
    Topology() = default;

    /** Record the basic shape; call before addLink/setRoute. */
    void init(int num_nodes, int num_vertices);

    /** Add a directed link and return its id. */
    LinkId addLink(int from, int to);

    /** Install the unicast route from @p s to @p d. */
    void setRoute(NodeId s, NodeId d, std::vector<LinkId> links);

    /** Derive broadcast trees from the route table; call last. */
    void buildBroadcastTrees();

    /** Build a forward-ordered edge union of routes from s to dests. */
    std::vector<TreeEdge> unionOfRoutes(NodeId s,
        const std::vector<NodeId> &dests) const;

    int numNodes_ = 0;
    int numVertices_ = 0;
    std::vector<LinkDesc> links_;
    std::vector<std::vector<LinkId>> routes_;
    std::vector<std::vector<TreeEdge>> bcastTrees_;
};

/**
 * The paper's Figure 1a: a two-level indirect broadcast tree with
 * fan-out @p fanout (default 4). Processors connect to incoming leaf
 * switches, which feed a single root switch, which feeds outgoing leaf
 * switches back to every processor. Every message crosses four links;
 * the root observes every broadcast and assigns the total order that
 * traditional snooping requires.
 */
class TreeTopology : public Topology
{
  public:
    explicit TreeTopology(int num_nodes, int fanout = 4);

    bool totallyOrdered() const override { return true; }
    int rootVertex() const override { return root_; }

    const std::vector<LinkId> &
    routeToRoot(NodeId s) const override
    {
        return toRoot_[s];
    }

    const std::vector<TreeEdge> &downTree() const override
    {
        return downTree_;
    }

    std::string name() const override;

  private:
    int fanout_;
    int root_;
    std::vector<std::vector<LinkId>> toRoot_;
    std::vector<TreeEdge> downTree_;
};

/**
 * The paper's Figure 1b: a directly-connected two-dimensional
 * bidirectional torus (kx * ky nodes) with dimension-order (X then Y)
 * routing, taking the shorter wrap direction in each dimension. It is
 * glueless (no switch vertices) and provides no total order.
 */
class TorusTopology : public Topology
{
  public:
    TorusTopology(int kx, int ky);

    /** Square torus of n = k*k nodes. */
    static TorusTopology *makeSquare(int num_nodes);

    bool totallyOrdered() const override { return false; }
    std::string name() const override;

    int kx() const { return kx_; }
    int ky() const { return ky_; }

  private:
    int vertexAt(int x, int y) const { return y * kx_ + x; }

    /**
     * Signed hop count in a ring of size k from a to b taking the
     * shorter direction (positive ties broken toward +).
     */
    static int ringDelta(int a, int b, int k);

    int kx_;
    int ky_;
};

/**
 * Factory helper: build a topology by name ("tree" or "torus") for
 * @p num_nodes nodes.
 */
Topology *makeTopology(const std::string &kind, int num_nodes);

} // namespace tokensim

#endif // TOKENSIM_NET_TOPOLOGY_HH
