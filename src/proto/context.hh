/**
 * @file
 * ProtoContext: the environment a protocol controller runs in.
 *
 * Gathers the services every controller needs — the event queue, the
 * network, the address-to-home mapping, and the latency parameters of
 * Table 1 — so controller constructors stay small and protocols remain
 * independent of the harness.
 */

#ifndef TOKENSIM_PROTO_CONTEXT_HH
#define TOKENSIM_PROTO_CONTEXT_HH

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tokensim {

/** Shared environment for all controllers of one simulated system. */
struct ProtoContext
{
    EventQueue *eq = nullptr;
    Network *net = nullptr;

    int numNodes = 16;
    std::uint32_t blockBytes = 64;

    /** Coherence/memory controller processing latency (6 ns). */
    Tick ctrlLatency = nsToTicks(6);

    /** L2 geometry and latency (4 MB, 4-way, 6 ns). */
    CacheParams l2{4 * 1024 * 1024, 4, 64, nsToTicks(6)};

    /** DRAM timing (80 ns). */
    DramParams dram{};

    /** Block-align an address. */
    Addr
    blockAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(blockBytes - 1);
    }

    /** Home node of a block: low-order block-interleaved (Section 5). */
    NodeId
    home(Addr a) const
    {
        return static_cast<NodeId>((a / blockBytes) %
                                   static_cast<Addr>(numNodes));
    }

    Tick now() const { return eq->curTick(); }
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_CONTEXT_HH
