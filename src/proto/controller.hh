/**
 * @file
 * Abstract cache and memory controller interfaces plus a small shared
 * base class with send/latency helpers.
 *
 * Each protocol provides one CacheController per node (the L2 coherence
 * engine) and one MemoryController per node (the home for the slice of
 * physical memory interleaved to that node). The harness's Node
 * dispatches network deliveries: unicasts by Message::dstUnit, and
 * broadcasts to the cache controller plus — when the node is the
 * block's home — the memory controller.
 */

#ifndef TOKENSIM_PROTO_CONTROLLER_HH
#define TOKENSIM_PROTO_CONTROLLER_HH

#include <functional>
#include <string>
#include <unordered_map>

#include "mem/block_map.hh"
#include "net/message.hh"
#include "proto/context.hh"
#include "proto/types.hh"
#include "sim/bytes.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace tokensim {

class CacheController;
class MemoryController;

/**
 * Exact per-block index of which caches hold coherence state for a
 * block. Profiling shows functional fast-forward is dominated not by
 * its own bookkeeping but by the O(numNodes) peer-tag probes of the
 * miss path — each probe walks a cold set of another node's tag
 * array. The index bounds those walks to the handful of actual
 * holders: the first miss that needs a scan pays the full walk once
 * (via the @p scan callback) and every later miss on that block
 * probes only the recorded holders.
 *
 * The index is exact, not advisory. One env lives for the duration of
 * one System::fastForward call, and while it lives every mutation of
 * cache-resident block state flows through the protocol's functional
 * path, which keeps the list current through add()/drop(). Detailed
 * windows between fast-forward spans move state over the network,
 * invisibly to any index — which is why the env (and the index with
 * it) is rebuilt per call rather than kept on the System.
 *
 * Per block the index stores a small fixed list of holder ids — node
 * count does not bound it, so it keeps working at the wide tiers
 * where it matters most. A block shared more widely than the list
 * capacity overflows, and overflow means "probe everyone": the scan
 * falls back to the full walk for that block, never to a wrong
 * answer.
 */
class HolderIndex
{
  public:
    /** Most blocks have a handful of sharers; hot widely-shared
     *  blocks overflow and take the full walk. */
    static constexpr unsigned cap = 14;

    /** Snapshot of one block's holder list. Copied out because the
     *  caller mutates the index (drop/add) while it walks the list. */
    struct View
    {
        std::uint16_t ids[cap];
        unsigned n = 0;
        bool overflow = false;
    };

    /**
     * The holder list for @p ba. On first use runs @p scan(push) —
     * which must call push(id) for every cache currently holding
     * state for the block, the requester included — and remembers
     * the result.
     */
    template <typename Scan>
    View
    holders(Addr ba, Scan &&scan)
    {
        auto [it, inserted] = sets_.emplace(ba);
        if (inserted) {
            it->second = Entry{};
            Entry &e = it->second;
            scan([&e](NodeId id) { push(e, id); });
        }
        const Entry &e = it->second;
        View v;
        v.n = e.n;
        v.overflow = e.overflow;
        for (unsigned i = 0; i < e.n; ++i)
            v.ids[i] = e.ids[i];
        return v;
    }

    /** Record that cache @p id now holds state for @p ba. */
    void
    add(Addr ba, NodeId id)
    {
        auto it = sets_.find(ba);
        if (it != sets_.end())
            push(it->second, id);
    }

    /** Record that cache @p id no longer holds state for @p ba. */
    void
    drop(Addr ba, NodeId id)
    {
        auto it = sets_.find(ba);
        if (it == sets_.end())
            return;
        Entry &e = it->second;
        if (e.overflow)
            return;     // membership unknown; stays "probe everyone"
        for (unsigned i = 0; i < e.n; ++i) {
            if (e.ids[i] == id) {
                e.ids[i] = e.ids[--e.n];
                return;
            }
        }
    }

  private:
    struct Entry
    {
        std::uint16_t ids[cap];
        std::uint16_t n = 0;
        bool overflow = false;
    };

    static void
    push(Entry &e, NodeId id)
    {
        if (e.overflow)
            return;
        for (unsigned i = 0; i < e.n; ++i)
            if (e.ids[i] == id)
                return;
        if (e.n == cap) {
            e.overflow = true;
            return;
        }
        e.ids[e.n++] = static_cast<std::uint16_t>(id);
    }

    BlockMap<Entry> sets_;
};

/**
 * The whole-system view a functional fast-forward op runs against.
 * Fast-forward bypasses the network entirely: the requesting cache
 * controller reaches straight into its peers and the home memory and
 * moves the architectural state (lines, tokens, directory entries) to
 * the protocol's post-transaction fixpoint. Controllers are indexed by
 * node id; every element belongs to the same protocol family, so
 * implementations may static_cast to their own concrete type.
 */
struct FunctionalEnv
{
    std::vector<CacheController *> caches;
    std::vector<MemoryController *> memories;

    /** Peer-scan accelerator (exact; see HolderIndex). */
    HolderIndex holders;
};

/** Common plumbing for cache and memory controllers. */
class ControllerBase
{
  public:
    ControllerBase(ProtoContext &ctx, NodeId id, std::string tag)
        : ctx_(ctx), id_(id), tag_(std::move(tag))
    {}

    virtual ~ControllerBase() = default;

    ControllerBase(const ControllerBase &) = delete;
    ControllerBase &operator=(const ControllerBase &) = delete;

    NodeId nodeId() const { return id_; }

  protected:
    /** Unicast @p msg after @p delay ticks of local processing. */
    void
    sendAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay,
                            [this, msg]() { ctx_.net->unicast(msg); });
    }

    /** Broadcast @p msg (unordered) after @p delay ticks. */
    void
    broadcastAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay,
                            [this, msg]() { ctx_.net->broadcast(msg); });
    }

    /** Totally-ordered broadcast after @p delay ticks. */
    void
    broadcastOrderedAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(
            delay, [this, msg]() { ctx_.net->broadcastOrdered(msg); });
    }

    /** Multicast to a destination set after @p delay ticks. */
    void
    multicastAfter(Tick delay, Message msg, std::vector<NodeId> dests)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay, [this, msg, d = std::move(dests)]() {
            ctx_.net->multicast(msg, d);
        });
    }

    /**
     * True if trace-level logging is on. Call sites MUST use this to
     * guard the construction of trace strings (strformat calls,
     * Message::toString()) so untraced runs pay one branch, never a
     * std::string allocation.
     */
    static bool
    tracing()
    {
        return logging::enabled(logging::Level::trace);
    }

    /** Trace helper (no-op unless trace logging is enabled). */
    void
    trace(const std::string &what) const
    {
        if (logging::enabled(logging::Level::trace))
            logging::write(logging::Level::trace, ctx_.now(), tag_, what);
    }

    ProtoContext &ctx_;
    NodeId id_;
    std::string tag_;
};

/**
 * The per-node L2 coherence engine: accepts processor requests from the
 * sequencer and coherence messages from the network.
 */
class CacheController : public ControllerBase
{
  public:
    /** Called when a processor request completes. */
    using CompletionFn = std::function<void(const ProcResponse &)>;

    /**
     * Called when a block leaves the L2 (eviction, invalidation, or
     * loss of all permission); the sequencer uses it to keep its L1
     * inclusive.
     */
    using LineRemovedFn = std::function<void(Addr)>;

    using ControllerBase::ControllerBase;

    /**
     * Start one processor memory operation. At most one operation per
     * block may be outstanding from the local processor (the sequencer
     * serializes same-block operations).
     */
    virtual void request(const ProcRequest &req) = 0;

    /** Handle a coherence message delivered by the network. */
    virtual void handleMessage(const Message &msg) = 0;

    /**
     * True if the local L2 currently holds permission for @p op on
     * @p addr (used by tests and for hit classification).
     */
    virtual bool hasPermission(Addr addr, MemOp op) const = 0;

    /**
     * Reinitialize protocol and statistics state to exactly match a
     * freshly constructed controller built with @p params and seeded
     * with @p seed, while keeping the large allocations (the cache
     * array) in place. Structural parameters (tokensPerBlock,
     * predictorEntries) must be unchanged — System::reset() checks
     * that — but runtime tuning (reissue policy, chaos injection,
     * perfectDirectory, adaptation knobs) may differ. The completion/
     * line-removed callbacks are preserved. This is the reusable-
     * System path: System::reset() drives it between runs, and the
     * bit-identical regression tests compare it against fresh
     * construction.
     */
    virtual void resetState(const ProtocolParams &params,
                            std::uint64_t seed) = 0;

    /**
     * Apply one processor operation functionally: update the
     * architectural warm state (cache tags/LRU/data, token counts,
     * directory entries, backing stores — across the whole @p env, not
     * just this node) to the state the detailed protocol would reach
     * once the transaction and its side effects quiesced, without
     * sending messages, scheduling events, touching timers/RNGs, or
     * recording statistics. Requires a quiescent system (no
     * outstanding transactions, empty writeback buffers and home
     * queues); System::fastForward() guarantees that by draining the
     * event queue first. Returns the post-operation block value (the
     * value a ProcResponse would carry).
     *
     * Performance-policy soft state that only detailed timing
     * exercises (reissue-latency EWMAs, destination predictors,
     * adaptive filters) is deliberately left cold — the SMARTS
     * sampling model treats it as part of the detailed warm-up, not
     * the architectural state.
     */
    virtual std::uint64_t
    applyFunctional(const ProcRequest &req, FunctionalEnv &env)
    {
        (void)req;
        (void)env;
        throw std::logic_error(
            "applyFunctional not implemented for this protocol");
    }

    /**
     * Serialize this controller's architectural warm state (cache
     * lines with exact LRU stamps, predictor/coherence side tables)
     * for the warm-state snapshot codec. Requires quiescence — no
     * outstanding transactions or buffered writebacks; implementations
     * throw WireError otherwise. The encoding must be canonical
     * (BlockMap-backed state sorted by address) so identical states
     * produce identical bytes.
     */
    virtual void
    encodeWarmState(WireWriter &w) const
    {
        (void)w;
        throw WireError(
            "warm-state snapshots unsupported by this protocol");
    }

    /**
     * Inverse of encodeWarmState() into a freshly-reset controller.
     * Malformed input throws WireError; the controller may be left
     * partially populated (callers discard it on failure).
     */
    virtual void
    decodeWarmState(WireReader &r)
    {
        (void)r;
        throw WireError(
            "warm-state snapshots unsupported by this protocol");
    }

    void setCompletionCallback(CompletionFn fn) { complete_ = std::move(fn); }
    void setLineRemovedCallback(LineRemovedFn fn) { removed_ = std::move(fn); }

    const CacheCtrlStats &stats() const { return stats_; }
    CacheCtrlStats &stats() { return stats_; }

  protected:
    void
    respond(const ProcResponse &resp)
    {
        if (complete_)
            complete_(resp);
    }

    void
    notifyLineRemoved(Addr addr)
    {
        if (removed_)
            removed_(addr);
    }

    CompletionFn complete_;
    LineRemovedFn removed_;
    CacheCtrlStats stats_;
};

/**
 * The home memory controller for the slice of shared memory interleaved
 * to a node. Also hosts protocol-specific home-side machinery (the
 * directory, the hammer serializer, or the persistent-request arbiter).
 */
class MemoryController : public ControllerBase
{
  public:
    using ControllerBase::ControllerBase;

    /** Handle a coherence message delivered by the network. */
    virtual void handleMessage(const Message &msg) = 0;

    /**
     * Debug/verification accessor: the current memory image of a
     * block (the value a fresh reader would obtain from DRAM).
     */
    virtual std::uint64_t peekData(Addr addr) const = 0;

    /** Reinitialize to fresh-construction state with (runtime-
     *  compatible) @p params; memory controllers carry no RNG,
     *  hence no seed (reusable-System path). */
    virtual void resetState(const ProtocolParams &params) = 0;

    /** See CacheController::encodeWarmState — home-side warm state
     *  (backing store, directory/owner/token tables). */
    virtual void
    encodeWarmState(WireWriter &w) const
    {
        (void)w;
        throw WireError(
            "warm-state snapshots unsupported by this protocol");
    }

    /** See CacheController::decodeWarmState. */
    virtual void
    decodeWarmState(WireReader &r)
    {
        (void)r;
        throw WireError(
            "warm-state snapshots unsupported by this protocol");
    }
};

/**
 * Backing data store for one home memory controller. Untouched blocks
 * read as a deterministic function of their address (the block-aligned
 * address itself), which makes wrong-block and stale-data protocol bugs
 * visible to the value-checking tests.
 */
class BackingStore
{
  public:
    explicit BackingStore(std::uint32_t block_bytes)
        : blockBytes_(block_bytes)
    {}

    /** The architectural initial contents of a block. */
    static std::uint64_t
    initialValue(Addr block_addr)
    {
        return block_addr;
    }

    std::uint64_t
    read(Addr a) const
    {
        const Addr ba = align(a);
        auto it = data_.find(ba);
        return it == data_.end() ? initialValue(ba) : it->second;
    }

    void
    write(Addr a, std::uint64_t v)
    {
        data_[align(a)] = v;
    }

    /** Forget all writes (blocks revert to their initial values). */
    void clear() { data_.clear(); }

    /** Written blocks, for snapshot iteration (slot order — sort by
     *  address before serializing). */
    const BlockMap<std::uint64_t> &blocks() const { return data_; }

  private:
    Addr
    align(Addr a) const
    {
        return a & ~static_cast<Addr>(blockBytes_ - 1);
    }

    std::uint32_t blockBytes_;
    BlockMap<std::uint64_t> data_;
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_CONTROLLER_HH
