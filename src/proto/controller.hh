/**
 * @file
 * Abstract cache and memory controller interfaces plus a small shared
 * base class with send/latency helpers.
 *
 * Each protocol provides one CacheController per node (the L2 coherence
 * engine) and one MemoryController per node (the home for the slice of
 * physical memory interleaved to that node). The harness's Node
 * dispatches network deliveries: unicasts by Message::dstUnit, and
 * broadcasts to the cache controller plus — when the node is the
 * block's home — the memory controller.
 */

#ifndef TOKENSIM_PROTO_CONTROLLER_HH
#define TOKENSIM_PROTO_CONTROLLER_HH

#include <functional>
#include <string>
#include <unordered_map>

#include "mem/block_map.hh"
#include "net/message.hh"
#include "proto/context.hh"
#include "proto/types.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace tokensim {

/** Common plumbing for cache and memory controllers. */
class ControllerBase
{
  public:
    ControllerBase(ProtoContext &ctx, NodeId id, std::string tag)
        : ctx_(ctx), id_(id), tag_(std::move(tag))
    {}

    virtual ~ControllerBase() = default;

    ControllerBase(const ControllerBase &) = delete;
    ControllerBase &operator=(const ControllerBase &) = delete;

    NodeId nodeId() const { return id_; }

  protected:
    /** Unicast @p msg after @p delay ticks of local processing. */
    void
    sendAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay,
                            [this, msg]() { ctx_.net->unicast(msg); });
    }

    /** Broadcast @p msg (unordered) after @p delay ticks. */
    void
    broadcastAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay,
                            [this, msg]() { ctx_.net->broadcast(msg); });
    }

    /** Totally-ordered broadcast after @p delay ticks. */
    void
    broadcastOrderedAfter(Tick delay, Message msg)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(
            delay, [this, msg]() { ctx_.net->broadcastOrdered(msg); });
    }

    /** Multicast to a destination set after @p delay ticks. */
    void
    multicastAfter(Tick delay, Message msg, std::vector<NodeId> dests)
    {
        msg.src = id_;
        ctx_.eq->scheduleIn(delay, [this, msg, d = std::move(dests)]() {
            ctx_.net->multicast(msg, d);
        });
    }

    /**
     * True if trace-level logging is on. Call sites MUST use this to
     * guard the construction of trace strings (strformat calls,
     * Message::toString()) so untraced runs pay one branch, never a
     * std::string allocation.
     */
    static bool
    tracing()
    {
        return logging::enabled(logging::Level::trace);
    }

    /** Trace helper (no-op unless trace logging is enabled). */
    void
    trace(const std::string &what) const
    {
        if (logging::enabled(logging::Level::trace))
            logging::write(logging::Level::trace, ctx_.now(), tag_, what);
    }

    ProtoContext &ctx_;
    NodeId id_;
    std::string tag_;
};

/**
 * The per-node L2 coherence engine: accepts processor requests from the
 * sequencer and coherence messages from the network.
 */
class CacheController : public ControllerBase
{
  public:
    /** Called when a processor request completes. */
    using CompletionFn = std::function<void(const ProcResponse &)>;

    /**
     * Called when a block leaves the L2 (eviction, invalidation, or
     * loss of all permission); the sequencer uses it to keep its L1
     * inclusive.
     */
    using LineRemovedFn = std::function<void(Addr)>;

    using ControllerBase::ControllerBase;

    /**
     * Start one processor memory operation. At most one operation per
     * block may be outstanding from the local processor (the sequencer
     * serializes same-block operations).
     */
    virtual void request(const ProcRequest &req) = 0;

    /** Handle a coherence message delivered by the network. */
    virtual void handleMessage(const Message &msg) = 0;

    /**
     * True if the local L2 currently holds permission for @p op on
     * @p addr (used by tests and for hit classification).
     */
    virtual bool hasPermission(Addr addr, MemOp op) const = 0;

    /**
     * Reinitialize protocol and statistics state to exactly match a
     * freshly constructed controller built with @p params and seeded
     * with @p seed, while keeping the large allocations (the cache
     * array) in place. Structural parameters (tokensPerBlock,
     * predictorEntries) must be unchanged — System::reset() checks
     * that — but runtime tuning (reissue policy, chaos injection,
     * perfectDirectory, adaptation knobs) may differ. The completion/
     * line-removed callbacks are preserved. This is the reusable-
     * System path: System::reset() drives it between runs, and the
     * bit-identical regression tests compare it against fresh
     * construction.
     */
    virtual void resetState(const ProtocolParams &params,
                            std::uint64_t seed) = 0;

    void setCompletionCallback(CompletionFn fn) { complete_ = std::move(fn); }
    void setLineRemovedCallback(LineRemovedFn fn) { removed_ = std::move(fn); }

    const CacheCtrlStats &stats() const { return stats_; }
    CacheCtrlStats &stats() { return stats_; }

  protected:
    void
    respond(const ProcResponse &resp)
    {
        if (complete_)
            complete_(resp);
    }

    void
    notifyLineRemoved(Addr addr)
    {
        if (removed_)
            removed_(addr);
    }

    CompletionFn complete_;
    LineRemovedFn removed_;
    CacheCtrlStats stats_;
};

/**
 * The home memory controller for the slice of shared memory interleaved
 * to a node. Also hosts protocol-specific home-side machinery (the
 * directory, the hammer serializer, or the persistent-request arbiter).
 */
class MemoryController : public ControllerBase
{
  public:
    using ControllerBase::ControllerBase;

    /** Handle a coherence message delivered by the network. */
    virtual void handleMessage(const Message &msg) = 0;

    /**
     * Debug/verification accessor: the current memory image of a
     * block (the value a fresh reader would obtain from DRAM).
     */
    virtual std::uint64_t peekData(Addr addr) const = 0;

    /** Reinitialize to fresh-construction state with (runtime-
     *  compatible) @p params; memory controllers carry no RNG,
     *  hence no seed (reusable-System path). */
    virtual void resetState(const ProtocolParams &params) = 0;
};

/**
 * Backing data store for one home memory controller. Untouched blocks
 * read as a deterministic function of their address (the block-aligned
 * address itself), which makes wrong-block and stale-data protocol bugs
 * visible to the value-checking tests.
 */
class BackingStore
{
  public:
    explicit BackingStore(std::uint32_t block_bytes)
        : blockBytes_(block_bytes)
    {}

    /** The architectural initial contents of a block. */
    static std::uint64_t
    initialValue(Addr block_addr)
    {
        return block_addr;
    }

    std::uint64_t
    read(Addr a) const
    {
        const Addr ba = align(a);
        auto it = data_.find(ba);
        return it == data_.end() ? initialValue(ba) : it->second;
    }

    void
    write(Addr a, std::uint64_t v)
    {
        data_[align(a)] = v;
    }

    /** Forget all writes (blocks revert to their initial values). */
    void clear() { data_.clear(); }

  private:
    Addr
    align(Addr a) const
    {
        return a & ~static_cast<Addr>(blockBytes_ - 1);
    }

    std::uint32_t blockBytes_;
    BlockMap<std::uint64_t> data_;
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_CONTROLLER_HH
