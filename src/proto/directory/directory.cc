#include "proto/directory/directory.hh"

#include <algorithm>
#include <cassert>

#include "sim/stats.hh"

namespace tokensim {

// =====================================================================
// DirCache
// =====================================================================

DirCache::DirCache(ProtoContext &ctx, NodeId id,
                   const ProtocolParams &params)
    : CacheController(ctx, id, strformat("dir.%u", id)),
      params_(params),
      l2_(ctx.l2)
{
}

void
DirCache::resetState(const ProtocolParams &params, std::uint64_t)
{
    params_ = params;
    l2_.clear();
    outstanding_.clear();
    wbBuffer_.clear();
    stats_ = CacheCtrlStats{};
}

void
DirCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    DirLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == DirCacheState::M
                  : line->state != DirCacheState::I);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    Transaction tr;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    outstanding_.emplace(ba, std::move(tr));

    Message msg;
    msg.type = is_store ? MsgType::getM : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = ba;
    msg.dest = ctx_.home(ba);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
DirCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        handleFwd(msg);
        break;
      case MsgType::inv:
        handleInv(msg);
        break;
      case MsgType::data:
      case MsgType::dataExclusive:
      case MsgType::ack:
        handleDataOrGrant(msg);
        break;
      case MsgType::invAck: {
        auto it = outstanding_.find(msg.addr);
        assert(it != outstanding_.end() &&
               "invalidation ack with no transaction");
        ++it->second.acksReceived;
        maybeComplete(msg.addr);
        break;
      }
      case MsgType::wbAck:
        wbBuffer_.erase(msg.addr);
        break;
      default:
        assert(false && "unexpected message at directory cache");
    }
}

void
DirCache::handleFwd(const Message &msg)
{
    const Addr ba = msg.addr;
    const bool exclusive = msg.type == MsgType::fwdGetM;
    DirLine *line = l2_.find(ba);

    if (!line) {
        // The directory forwarded to us while our writeback was in
        // flight; answer from the writeback buffer. The home's
        // owner check will reject the stale PutM data.
        auto wit = wbBuffer_.find(ba);
        assert(wit != wbBuffer_.end() &&
               "forward to a node with neither line nor writeback");
        respondData(msg.requester, ba, wit->second.data, exclusive,
                    exclusive ? msg.ackCount : 0);
        return;
    }

    if (!exclusive) {
        if (line->state == DirCacheState::M && line->written &&
            params_.migratoryOpt) {
            // Migratory optimization: pass read/write permission.
            respondData(msg.requester, ba, line->data, true, 0);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
        } else {
            assert(line->state == DirCacheState::M ||
                   line->state == DirCacheState::O);
            respondData(msg.requester, ba, line->data, false, 0);
            line->state = DirCacheState::O;
        }
    } else {
        assert(line->state == DirCacheState::M ||
               line->state == DirCacheState::O);
        respondData(msg.requester, ba, line->data, true, msg.ackCount);
        notifyLineRemoved(ba);
        l2_.invalidate(ba);
    }
}

void
DirCache::handleInv(const Message &msg)
{
    const Addr ba = msg.addr;
    DirLine *line = l2_.find(ba);
    if (line) {
        assert(line->state == DirCacheState::S &&
               "invalidation hit a non-shared line");
        notifyLineRemoved(ba);
        l2_.invalidate(ba);
    }
    // Acknowledge straight to the requester (even if we had silently
    // dropped the line — the directory's sharer list is conservative).
    Message ack;
    ack.type = MsgType::invAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, ack);
}

void
DirCache::handleDataOrGrant(const Message &msg)
{
    const Addr ba = msg.addr;
    auto it = outstanding_.find(ba);
    assert(it != outstanding_.end() && "response with no transaction");
    Transaction &tr = it->second;
    assert(!tr.dataReceived && "duplicate response");
    tr.dataReceived = true;
    tr.acksNeeded = msg.ackCount;
    if (msg.type == MsgType::ack) {
        // Dataless grant for an owner upgrade: data is already local.
        DirLine *line = l2_.find(ba);
        assert(line && "upgrade grant with no local line");
        tr.dataValue = line->data;
        tr.dataExclusive = true;
        tr.dataFromMemory = true;
    } else {
        tr.dataValue = msg.data;
        tr.dataExclusive = msg.type == MsgType::dataExclusive;
        tr.dataFromMemory = msg.fromMemoryCtrl;
    }
    maybeComplete(ba);
}

void
DirCache::maybeComplete(Addr addr)
{
    auto it = outstanding_.find(addr);
    if (it == outstanding_.end())
        return;
    Transaction &tr = it->second;
    if (!tr.dataReceived || tr.acksReceived < tr.acksNeeded)
        return;
    assert(tr.acksReceived == tr.acksNeeded && "too many acks");

    Transaction done = std::move(tr);
    outstanding_.erase(it);

    DirLine *line = l2_.find(addr);
    if (!line)
        line = allocLine(addr);

    const bool is_store = done.req.op == MemOp::store;
    if (is_store) {
        assert(done.dataExclusive);
        line->state = DirCacheState::M;
        line->written = true;
        line->data = done.req.storeValue;
    } else if (done.dataExclusive) {
        line->state = DirCacheState::M;
        line->written = false;
        line->data = done.dataValue;
    } else {
        line->state = DirCacheState::S;
        line->written = false;
        line->data = done.dataValue;
    }

    sendUnblock(addr, done.dataExclusive || is_store);

    ProcResponse resp;
    resp.reqId = done.req.reqId;
    resp.addr = done.req.addr;
    resp.op = done.req.op;
    resp.value = line->data;
    resp.issuedAt = done.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = !done.dataFromMemory;

    ++stats_.missesCompleted;
    stats_.missLatency.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    stats_.missLatencyHist.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    if (resp.cacheToCache)
        ++stats_.cacheToCache;
    ++stats_.missesNotReissued;

    respond(resp);
}

void
DirCache::sendUnblock(Addr addr, bool exclusive)
{
    Message msg;
    msg.type = exclusive ? MsgType::unblockExclusive : MsgType::unblock;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::memory;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

DirLine *
DirCache::allocLine(Addr addr)
{
    CacheArray<DirLine>::Victim victim;
    DirLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
DirCache::evictVictim(const DirLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    if (victim.state == DirCacheState::S ||
        victim.state == DirCacheState::I) {
        return;   // silent drop; directory sharer lists stay stale-safe
    }

    wbBuffer_[victim.addr] = WbEntry{victim.data};
    Message msg;
    msg.type = MsgType::putM;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::memory;
    msg.addr = victim.addr;
    msg.dest = ctx_.home(victim.addr);
    msg.requester = id_;
    msg.hasData = true;
    msg.data = victim.data;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
DirCache::respondData(NodeId dest, Addr addr, std::uint64_t value,
                      bool exclusive, int ack_count)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    msg.hasData = true;
    msg.data = value;
    msg.ackCount = ack_count;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

bool
DirCache::hasPermission(Addr addr, MemOp op) const
{
    const DirLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return false;
    return op == MemOp::store ? line->state == DirCacheState::M
                              : line->state != DirCacheState::I;
}

DirCacheState
DirCache::state(Addr addr) const
{
    const DirLine *line = l2_.find(ctx_.blockAlign(addr));
    return line ? line->state : DirCacheState::I;
}

// =====================================================================
// DirMemory
// =====================================================================

DirMemory::DirMemory(ProtoContext &ctx, NodeId id,
                     const ProtocolParams &params)
    : MemoryController(ctx, id, strformat("dirmem.%u", id)),
      params_(params),
      store_(ctx.blockBytes),
      dram_(ctx.dram)
{
}

void
DirMemory::resetState(const ProtocolParams &params)
{
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    entries_.clear();
}

DirMemory::DirEntry &
DirMemory::entryFor(Addr addr)
{
    assert(ctx_.home(addr) == id_);
    return entries_[addr];
}

Tick
DirMemory::dirLatency() const
{
    return params_.perfectDirectory ? 0 : ctx_.dram.latency;
}

void
DirMemory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM: {
        DirEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        processRequest(msg);
        break;
      }
      case MsgType::unblock:
      case MsgType::unblockExclusive:
        handleUnblock(msg);
        break;
      case MsgType::putM: {
        DirEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        handlePutM(msg);
        break;
      }
      default:
        assert(false && "unexpected message at directory memory");
    }
}

void
DirMemory::processRequest(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(!e.busy);
    const NodeId req = msg.requester;

    e.busy = true;
    e.pendingRequester = req;

    if (msg.type == MsgType::getS) {
        if (e.owner == invalidNode) {
            sendMemoryData(msg, false, 0);
        } else {
            sendFwd(msg, MsgType::fwdGetS, 0);
        }
        return;
    }

    // GetM.
    std::set<NodeId> to_inval = e.sharers;
    to_inval.erase(req);
    const int acks = static_cast<int>(to_inval.size());

    if (e.owner == invalidNode) {
        sendMemoryData(msg, true, acks);
        sendInvs(ba, to_inval, req);
    } else if (e.owner == req) {
        // Upgrade by the current (Owned-state) owner: dataless grant.
        sendGrant(msg, acks);
        sendInvs(ba, to_inval, req);
    } else {
        sendFwd(msg, MsgType::fwdGetM, acks);
        sendInvs(ba, to_inval, req);
    }
}

void
DirMemory::handleUnblock(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(e.busy && "unblock with no transaction in flight");
    assert(msg.requester == e.pendingRequester);

    if (msg.type == MsgType::unblockExclusive) {
        e.owner = msg.requester;
        e.sharers.clear();
    } else {
        e.sharers.insert(msg.requester);
    }
    e.busy = false;
    e.pendingRequester = invalidNode;
    serviceNext(ba);
}

void
DirMemory::handlePutM(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(!e.busy);

    if (e.owner == msg.requester) {
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
        e.owner = invalidNode;
    }
    // Otherwise ownership already moved on (the evictor answered a
    // forward from its writeback buffer); drop the stale data.

    Message ack;
    ack.type = MsgType::wbAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    ack.src = id_;
    sendAfter(ctx_.ctrlLatency, ack);
}

void
DirMemory::serviceNext(Addr addr)
{
    DirEntry &e = entryFor(addr);
    while (!e.busy && !e.queue.empty()) {
        Message next = e.queue.front();
        e.queue.pop_front();
        if (next.type == MsgType::putM)
            handlePutM(next);
        else
            processRequest(next);
    }
}

void
DirMemory::sendMemoryData(const Message &req, bool exclusive,
                          int ack_count)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = req.requester;
    msg.requester = req.requester;
    msg.hasData = true;
    msg.data = store_.read(req.addr);
    msg.ackCount = ack_count;
    msg.fromMemoryCtrl = true;
    msg.src = id_;
    // The data DRAM read overlaps the directory lookup (they share
    // the access): total latency is the DRAM access itself.
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, msg]() { ctx_.net->unicast(msg); });
}

void
DirMemory::sendFwd(const Message &req, MsgType fwd_type, int ack_count)
{
    DirEntry &e = entryFor(req.addr);
    Message msg;
    msg.type = fwd_type;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = e.owner;
    msg.requester = req.requester;
    msg.ackCount = ack_count;
    msg.src = id_;
    // The forward waits on the directory lookup — the indirection
    // latency the paper's Figure 5a isolates with the striped bar.
    sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
}

void
DirMemory::sendInvs(Addr addr, const std::set<NodeId> &targets,
                    NodeId requester)
{
    for (NodeId t : targets) {
        Message msg;
        msg.type = MsgType::inv;
        msg.cls = MsgClass::request;
        msg.dstUnit = Unit::cache;
        msg.addr = addr;
        msg.dest = t;
        msg.requester = requester;
        msg.src = id_;
        sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
    }
}

void
DirMemory::sendGrant(const Message &req, int ack_count)
{
    Message msg;
    msg.type = MsgType::ack;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = req.requester;
    msg.requester = req.requester;
    msg.ackCount = ack_count;
    msg.fromMemoryCtrl = true;
    msg.src = id_;
    sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
}

std::uint64_t
DirMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

DirMemory::DirView
DirMemory::view(Addr addr) const
{
    DirView v;
    auto it = entries_.find(ctx_.blockAlign(addr));
    if (it != entries_.end()) {
        v.busy = it->second.busy;
        v.owner = it->second.owner;
        v.sharers.assign(it->second.sharers.begin(),
                         it->second.sharers.end());
    }
    return v;
}

// =====================================================================
// Fast-forward and warm-state snapshots
// =====================================================================

DirLine *
DirCache::functionalAlloc(Addr ba, FunctionalEnv &env)
{
    CacheArray<DirLine>::Victim victim;
    DirLine *line = l2_.allocate(ba, &victim);
    if (victim.valid) {
        const DirLine &v = victim.line;
        notifyLineRemoved(v.addr);
        if (v.state == DirCacheState::M || v.state == DirCacheState::O) {
            // The PutM, settled: data lands at the home, whose owner
            // check mirrors the detailed stale-writeback filter.
            auto *mem = static_cast<DirMemory *>(
                env.memories[ctx_.home(v.addr)]);
            DirMemory::DirEntry &e = mem->entryFor(v.addr);
            if (e.owner == id_) {
                mem->store_.write(v.addr, v.data);
                e.owner = invalidNode;
            }
        }
        // S/I drop silently; the directory's sharer list stays
        // conservative, exactly as in detailed mode.
    }
    return line;
}

std::uint64_t
DirCache::applyFunctional(const ProcRequest &req, FunctionalEnv &env)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    assert(outstanding_.empty() && wbBuffer_.empty() &&
           "fast-forward requires a quiescent cache");

    DirLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == DirCacheState::M
                  : line->state != DirCacheState::I);
    if (hit) {
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            return req.storeValue;
        }
        return line->data;
    }

    auto *mem = static_cast<DirMemory *>(env.memories[ctx_.home(ba)]);
    DirMemory::DirEntry &e = mem->entryFor(ba);
    assert(!e.busy && e.queue.empty() &&
           "fast-forward requires an idle directory");

    if (!is_store) {
        // GetS. The directory supplies memory data or forwards to the
        // owner; a written migratory owner hands over exclusively.
        std::uint64_t value;
        if (e.owner == invalidNode) {
            value = mem->store_.read(ba);
        } else {
            assert(e.owner != id_ &&
                   "load miss while the directory says we own it");
            auto *oc = static_cast<DirCache *>(env.caches[e.owner]);
            DirLine *ol = oc->l2_.find(ba);
            assert(ol && (ol->state == DirCacheState::M ||
                          ol->state == DirCacheState::O));
            value = ol->data;
            if (ol->state == DirCacheState::M && ol->written &&
                params_.migratoryOpt) {
                // Migratory handoff: we take M, the owner drops.
                oc->notifyLineRemoved(ba);
                oc->l2_.invalidate(ba);
                e.owner = id_;
                e.sharers.clear();
                DirLine *nl = line ? line : functionalAlloc(ba, env);
                nl->state = DirCacheState::M;
                nl->written = false;
                nl->data = value;
                return value;
            }
            ol->state = DirCacheState::O;
        }
        e.sharers.insert(id_);
        DirLine *nl = line ? line : functionalAlloc(ba, env);
        nl->state = DirCacheState::S;
        nl->written = false;
        nl->data = value;
        return value;
    }

    // GetM: sharers invalidate, the owner (us on an upgrade, a peer,
    // or memory) supplies data, and the directory records us as the
    // exclusive owner.
    for (NodeId s : e.sharers) {
        if (s == id_)
            continue;
        auto *sc = static_cast<DirCache *>(env.caches[s]);
        if (sc->l2_.find(ba)) {
            sc->notifyLineRemoved(ba);
            sc->l2_.invalidate(ba);
        }
        // Silently dropped sharer copies just ack in detailed mode.
    }
    if (e.owner != invalidNode && e.owner != id_) {
        auto *oc = static_cast<DirCache *>(env.caches[e.owner]);
        [[maybe_unused]] DirLine *ol = oc->l2_.find(ba);
        assert(ol && (ol->state == DirCacheState::M ||
                      ol->state == DirCacheState::O));
        oc->notifyLineRemoved(ba);
        oc->l2_.invalidate(ba);
    }
    // An upgrade (e.owner == id_) keeps local data; otherwise the
    // incoming data is immediately overwritten by the store anyway.
    e.owner = id_;
    e.sharers.clear();

    DirLine *nl = line ? line : functionalAlloc(ba, env);
    nl->state = DirCacheState::M;
    nl->written = true;
    nl->data = req.storeValue;
    return req.storeValue;
}

void
DirCache::encodeWarmState(WireWriter &w) const
{
    if (!quiescent())
        throw WireError("directory cache has transactions in flight");
    w.varint(l2_.useCounter());
    w.varint(l2_.validCount());
    l2_.forEachValidIndexed(
        [&](std::size_t way, std::uint64_t stamp, const DirLine &l) {
            w.varint(way);
            w.varint(stamp);
            w.varint(l.addr);
            w.u8(static_cast<std::uint8_t>(l.state));
            w.boolean(l.written);
            w.varint(l.data);
        });
    putStructEnd(w);
}

void
DirCache::decodeWarmState(WireReader &r)
{
    l2_.setUseCounter(r.varint("l2 use counter"));
    const std::uint64_t count = r.varint("l2 line count");
    if (count > l2_.wayCount())
        throw WireError("l2 line count exceeds the array's ways");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t way = r.varint("l2 way index");
        const std::uint64_t stamp = r.varint("l2 lru stamp");
        const Addr addr = r.varint("l2 line address");
        const std::uint8_t state = r.u8("dir line state");
        const bool written = r.boolean("dir line written");
        const std::uint64_t data = r.varint("dir line data");
        if (way >= l2_.wayCount())
            throw WireError("l2 way index out of range");
        if (l2_.wayValid(way))
            throw WireError("duplicate l2 way in snapshot");
        if (ctx_.blockAlign(addr) != addr)
            throw WireError("l2 line address not block-aligned");
        if (!l2_.wayMatchesSet(way, addr))
            throw WireError("l2 line mapped to the wrong set");
        if (l2_.contains(addr))
            throw WireError("duplicate l2 block in snapshot");
        if (stamp > l2_.useCounter())
            throw WireError("l2 lru stamp exceeds the use counter");
        if (state < 1 || state > 3)
            throw WireError("invalid directory line state");
        DirLine *l = l2_.restoreWay(static_cast<std::size_t>(way),
                                    addr, stamp);
        l->state = static_cast<DirCacheState>(state);
        l->written = written;
        l->data = data;
    }
    checkStructEnd(r, "directory cache warm state");
}

void
DirMemory::encodeWarmState(WireWriter &w) const
{
    std::vector<std::pair<Addr, std::uint64_t>> written;
    for (const auto &[a, v] : store_.blocks()) {
        if (v != BackingStore::initialValue(a))
            written.emplace_back(a, v);
    }
    std::sort(written.begin(), written.end());
    w.varint(written.size());
    for (const auto &[a, v] : written) {
        w.varint(a);
        w.varint(v);
    }

    std::vector<Addr> live;
    for (const auto &[a, e] : entries_) {
        if (e.busy || !e.queue.empty())
            throw WireError("directory has transactions in flight");
        if (e.owner != invalidNode || !e.sharers.empty())
            live.push_back(a);
    }
    std::sort(live.begin(), live.end());
    w.varint(live.size());
    for (Addr a : live) {
        const DirEntry &e = entries_.find(a)->second;
        w.varint(a);
        w.boolean(e.owner != invalidNode);
        if (e.owner != invalidNode)
            w.varint(e.owner);
        w.varint(e.sharers.size());
        for (NodeId s : e.sharers)   // std::set: already ascending
            w.varint(s);
    }
    putStructEnd(w);
}

void
DirMemory::decodeWarmState(WireReader &r)
{
    const std::uint64_t nwritten = r.varint("written block count");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < nwritten; ++i) {
        const Addr a = r.varint("written block address");
        const std::uint64_t v = r.varint("written block value");
        if (ctx_.blockAlign(a) != a)
            throw WireError("written block not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("written block homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("written blocks not strictly ascending");
        prev = a;
        store_.write(a, v);
    }
    const std::uint64_t nentries = r.varint("directory entry count");
    prev = 0;
    for (std::uint64_t i = 0; i < nentries; ++i) {
        const Addr a = r.varint("directory entry address");
        if (ctx_.blockAlign(a) != a)
            throw WireError("directory entry not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("directory entry homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("directory entries not strictly ascending");
        prev = a;
        DirEntry &e = entries_[a];
        if (r.boolean("directory entry has owner")) {
            const std::uint64_t o = r.varint("directory entry owner");
            if (o >= static_cast<std::uint64_t>(ctx_.numNodes))
                throw WireError("directory owner is an invalid node");
            e.owner = static_cast<NodeId>(o);
        }
        const std::uint64_t ns = r.varint("directory sharer count");
        if (ns > static_cast<std::uint64_t>(ctx_.numNodes))
            throw WireError("directory sharer count exceeds nodes");
        NodeId sprev = 0;
        for (std::uint64_t j = 0; j < ns; ++j) {
            const std::uint64_t s = r.varint("directory sharer");
            if (s >= static_cast<std::uint64_t>(ctx_.numNodes))
                throw WireError("directory sharer is an invalid node");
            if (j > 0 && s <= sprev)
                throw WireError("directory sharers not ascending");
            sprev = static_cast<NodeId>(s);
            e.sharers.insert(static_cast<NodeId>(s));
        }
    }
    checkStructEnd(r, "directory memory warm state");
}

} // namespace tokensim
