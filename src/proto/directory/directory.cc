#include "proto/directory/directory.hh"

#include <algorithm>
#include <cassert>

#include "sim/stats.hh"

namespace tokensim {

// =====================================================================
// DirCache
// =====================================================================

DirCache::DirCache(ProtoContext &ctx, NodeId id,
                   const ProtocolParams &params)
    : CacheController(ctx, id, strformat("dir.%u", id)),
      params_(params),
      l2_(ctx.l2)
{
}

void
DirCache::resetState(const ProtocolParams &params, std::uint64_t)
{
    params_ = params;
    l2_.clear();
    outstanding_.clear();
    wbBuffer_.clear();
    stats_ = CacheCtrlStats{};
}

void
DirCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    DirLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == DirCacheState::M
                  : line->state != DirCacheState::I);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    Transaction tr;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    outstanding_.emplace(ba, std::move(tr));

    Message msg;
    msg.type = is_store ? MsgType::getM : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = ba;
    msg.dest = ctx_.home(ba);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
DirCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        handleFwd(msg);
        break;
      case MsgType::inv:
        handleInv(msg);
        break;
      case MsgType::data:
      case MsgType::dataExclusive:
      case MsgType::ack:
        handleDataOrGrant(msg);
        break;
      case MsgType::invAck: {
        auto it = outstanding_.find(msg.addr);
        assert(it != outstanding_.end() &&
               "invalidation ack with no transaction");
        ++it->second.acksReceived;
        maybeComplete(msg.addr);
        break;
      }
      case MsgType::wbAck:
        wbBuffer_.erase(msg.addr);
        break;
      default:
        assert(false && "unexpected message at directory cache");
    }
}

void
DirCache::handleFwd(const Message &msg)
{
    const Addr ba = msg.addr;
    const bool exclusive = msg.type == MsgType::fwdGetM;
    DirLine *line = l2_.find(ba);

    if (!line) {
        // The directory forwarded to us while our writeback was in
        // flight; answer from the writeback buffer. The home's
        // owner check will reject the stale PutM data.
        auto wit = wbBuffer_.find(ba);
        assert(wit != wbBuffer_.end() &&
               "forward to a node with neither line nor writeback");
        respondData(msg.requester, ba, wit->second.data, exclusive,
                    exclusive ? msg.ackCount : 0);
        return;
    }

    if (!exclusive) {
        if (line->state == DirCacheState::M && line->written &&
            params_.migratoryOpt) {
            // Migratory optimization: pass read/write permission.
            respondData(msg.requester, ba, line->data, true, 0);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
        } else {
            assert(line->state == DirCacheState::M ||
                   line->state == DirCacheState::O);
            respondData(msg.requester, ba, line->data, false, 0);
            line->state = DirCacheState::O;
        }
    } else {
        assert(line->state == DirCacheState::M ||
               line->state == DirCacheState::O);
        respondData(msg.requester, ba, line->data, true, msg.ackCount);
        notifyLineRemoved(ba);
        l2_.invalidate(ba);
    }
}

void
DirCache::handleInv(const Message &msg)
{
    const Addr ba = msg.addr;
    DirLine *line = l2_.find(ba);
    if (line) {
        assert(line->state == DirCacheState::S &&
               "invalidation hit a non-shared line");
        notifyLineRemoved(ba);
        l2_.invalidate(ba);
    }
    // Acknowledge straight to the requester (even if we had silently
    // dropped the line — the directory's sharer list is conservative).
    Message ack;
    ack.type = MsgType::invAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, ack);
}

void
DirCache::handleDataOrGrant(const Message &msg)
{
    const Addr ba = msg.addr;
    auto it = outstanding_.find(ba);
    assert(it != outstanding_.end() && "response with no transaction");
    Transaction &tr = it->second;
    assert(!tr.dataReceived && "duplicate response");
    tr.dataReceived = true;
    tr.acksNeeded = msg.ackCount;
    if (msg.type == MsgType::ack) {
        // Dataless grant for an owner upgrade: data is already local.
        DirLine *line = l2_.find(ba);
        assert(line && "upgrade grant with no local line");
        tr.dataValue = line->data;
        tr.dataExclusive = true;
        tr.dataFromMemory = true;
    } else {
        tr.dataValue = msg.data;
        tr.dataExclusive = msg.type == MsgType::dataExclusive;
        tr.dataFromMemory = msg.fromMemoryCtrl;
    }
    maybeComplete(ba);
}

void
DirCache::maybeComplete(Addr addr)
{
    auto it = outstanding_.find(addr);
    if (it == outstanding_.end())
        return;
    Transaction &tr = it->second;
    if (!tr.dataReceived || tr.acksReceived < tr.acksNeeded)
        return;
    assert(tr.acksReceived == tr.acksNeeded && "too many acks");

    Transaction done = std::move(tr);
    outstanding_.erase(it);

    DirLine *line = l2_.find(addr);
    if (!line)
        line = allocLine(addr);

    const bool is_store = done.req.op == MemOp::store;
    if (is_store) {
        assert(done.dataExclusive);
        line->state = DirCacheState::M;
        line->written = true;
        line->data = done.req.storeValue;
    } else if (done.dataExclusive) {
        line->state = DirCacheState::M;
        line->written = false;
        line->data = done.dataValue;
    } else {
        line->state = DirCacheState::S;
        line->written = false;
        line->data = done.dataValue;
    }

    sendUnblock(addr, done.dataExclusive || is_store);

    ProcResponse resp;
    resp.reqId = done.req.reqId;
    resp.addr = done.req.addr;
    resp.op = done.req.op;
    resp.value = line->data;
    resp.issuedAt = done.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = !done.dataFromMemory;

    ++stats_.missesCompleted;
    stats_.missLatency.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    stats_.missLatencyHist.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    if (resp.cacheToCache)
        ++stats_.cacheToCache;
    ++stats_.missesNotReissued;

    respond(resp);
}

void
DirCache::sendUnblock(Addr addr, bool exclusive)
{
    Message msg;
    msg.type = exclusive ? MsgType::unblockExclusive : MsgType::unblock;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::memory;
    msg.addr = addr;
    msg.dest = ctx_.home(addr);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

DirLine *
DirCache::allocLine(Addr addr)
{
    CacheArray<DirLine>::Victim victim;
    DirLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
DirCache::evictVictim(const DirLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    if (victim.state == DirCacheState::S ||
        victim.state == DirCacheState::I) {
        return;   // silent drop; directory sharer lists stay stale-safe
    }

    wbBuffer_[victim.addr] = WbEntry{victim.data};
    Message msg;
    msg.type = MsgType::putM;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::memory;
    msg.addr = victim.addr;
    msg.dest = ctx_.home(victim.addr);
    msg.requester = id_;
    msg.hasData = true;
    msg.data = victim.data;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
DirCache::respondData(NodeId dest, Addr addr, std::uint64_t value,
                      bool exclusive, int ack_count)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    msg.hasData = true;
    msg.data = value;
    msg.ackCount = ack_count;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

bool
DirCache::hasPermission(Addr addr, MemOp op) const
{
    const DirLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return false;
    return op == MemOp::store ? line->state == DirCacheState::M
                              : line->state != DirCacheState::I;
}

DirCacheState
DirCache::state(Addr addr) const
{
    const DirLine *line = l2_.find(ctx_.blockAlign(addr));
    return line ? line->state : DirCacheState::I;
}

// =====================================================================
// DirMemory
// =====================================================================

DirMemory::DirMemory(ProtoContext &ctx, NodeId id,
                     const ProtocolParams &params)
    : MemoryController(ctx, id, strformat("dirmem.%u", id)),
      params_(params),
      store_(ctx.blockBytes),
      dram_(ctx.dram)
{
}

void
DirMemory::resetState(const ProtocolParams &params)
{
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    entries_.clear();
}

DirMemory::DirEntry &
DirMemory::entryFor(Addr addr)
{
    assert(ctx_.home(addr) == id_);
    return entries_[addr];
}

Tick
DirMemory::dirLatency() const
{
    return params_.perfectDirectory ? 0 : ctx_.dram.latency;
}

void
DirMemory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM: {
        DirEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        processRequest(msg);
        break;
      }
      case MsgType::unblock:
      case MsgType::unblockExclusive:
        handleUnblock(msg);
        break;
      case MsgType::putM: {
        DirEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        handlePutM(msg);
        break;
      }
      default:
        assert(false && "unexpected message at directory memory");
    }
}

void
DirMemory::processRequest(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(!e.busy);
    const NodeId req = msg.requester;

    e.busy = true;
    e.pendingRequester = req;

    if (msg.type == MsgType::getS) {
        if (e.owner == invalidNode) {
            sendMemoryData(msg, false, 0);
        } else {
            sendFwd(msg, MsgType::fwdGetS, 0);
        }
        return;
    }

    // GetM.
    std::set<NodeId> to_inval = e.sharers;
    to_inval.erase(req);
    const int acks = static_cast<int>(to_inval.size());

    if (e.owner == invalidNode) {
        sendMemoryData(msg, true, acks);
        sendInvs(ba, to_inval, req);
    } else if (e.owner == req) {
        // Upgrade by the current (Owned-state) owner: dataless grant.
        sendGrant(msg, acks);
        sendInvs(ba, to_inval, req);
    } else {
        sendFwd(msg, MsgType::fwdGetM, acks);
        sendInvs(ba, to_inval, req);
    }
}

void
DirMemory::handleUnblock(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(e.busy && "unblock with no transaction in flight");
    assert(msg.requester == e.pendingRequester);

    if (msg.type == MsgType::unblockExclusive) {
        e.owner = msg.requester;
        e.sharers.clear();
    } else {
        e.sharers.insert(msg.requester);
    }
    e.busy = false;
    e.pendingRequester = invalidNode;
    serviceNext(ba);
}

void
DirMemory::handlePutM(const Message &msg)
{
    const Addr ba = msg.addr;
    DirEntry &e = entryFor(ba);
    assert(!e.busy);

    if (e.owner == msg.requester) {
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
        e.owner = invalidNode;
    }
    // Otherwise ownership already moved on (the evictor answered a
    // forward from its writeback buffer); drop the stale data.

    Message ack;
    ack.type = MsgType::wbAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    ack.src = id_;
    sendAfter(ctx_.ctrlLatency, ack);
}

void
DirMemory::serviceNext(Addr addr)
{
    DirEntry &e = entryFor(addr);
    while (!e.busy && !e.queue.empty()) {
        Message next = e.queue.front();
        e.queue.pop_front();
        if (next.type == MsgType::putM)
            handlePutM(next);
        else
            processRequest(next);
    }
}

void
DirMemory::sendMemoryData(const Message &req, bool exclusive,
                          int ack_count)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = req.requester;
    msg.requester = req.requester;
    msg.hasData = true;
    msg.data = store_.read(req.addr);
    msg.ackCount = ack_count;
    msg.fromMemoryCtrl = true;
    msg.src = id_;
    // The data DRAM read overlaps the directory lookup (they share
    // the access): total latency is the DRAM access itself.
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, msg]() { ctx_.net->unicast(msg); });
}

void
DirMemory::sendFwd(const Message &req, MsgType fwd_type, int ack_count)
{
    DirEntry &e = entryFor(req.addr);
    Message msg;
    msg.type = fwd_type;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = e.owner;
    msg.requester = req.requester;
    msg.ackCount = ack_count;
    msg.src = id_;
    // The forward waits on the directory lookup — the indirection
    // latency the paper's Figure 5a isolates with the striped bar.
    sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
}

void
DirMemory::sendInvs(Addr addr, const std::set<NodeId> &targets,
                    NodeId requester)
{
    for (NodeId t : targets) {
        Message msg;
        msg.type = MsgType::inv;
        msg.cls = MsgClass::request;
        msg.dstUnit = Unit::cache;
        msg.addr = addr;
        msg.dest = t;
        msg.requester = requester;
        msg.src = id_;
        sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
    }
}

void
DirMemory::sendGrant(const Message &req, int ack_count)
{
    Message msg;
    msg.type = MsgType::ack;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = req.requester;
    msg.requester = req.requester;
    msg.ackCount = ack_count;
    msg.fromMemoryCtrl = true;
    msg.src = id_;
    sendAfter(ctx_.ctrlLatency + dirLatency(), msg);
}

std::uint64_t
DirMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

DirMemory::DirView
DirMemory::view(Addr addr) const
{
    DirView v;
    auto it = entries_.find(ctx_.blockAlign(addr));
    if (it != entries_.end()) {
        v.busy = it->second.busy;
        v.owner = it->second.owner;
        v.sharers.assign(it->second.sharers.begin(),
                         it->second.sharers.end());
    }
    return v;
}

} // namespace tokensim
