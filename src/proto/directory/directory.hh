/**
 * @file
 * Full-map MOSI directory protocol (Section 5.1 baseline), inspired by
 * the SGI Origin 2000 and Alpha 21364.
 *
 * Requests go to the block's home, which serializes them per block (the
 * directory "busy" state queues conflicting requests — no NACKs or
 * retries) and either supplies memory data or forwards the request to
 * the current cache owner; GetM additionally sends invalidations whose
 * acknowledgments flow directly to the requester. The requester closes
 * every transaction with an unblock message that carries the outcome
 * (shared vs. exclusive), at which point the directory commits the
 * state transition and services the next queued request.
 *
 * The directory state lives in main-memory DRAM (dirLatency = 80 ns),
 * putting the lookup on the critical path of cache-to-cache misses —
 * the indirection cost Figure 5a quantifies. ProtocolParams::
 * perfectDirectory models an idealized zero-latency directory.
 */

#ifndef TOKENSIM_PROTO_DIRECTORY_DIRECTORY_HH
#define TOKENSIM_PROTO_DIRECTORY_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "proto/controller.hh"
#include "sim/small_queue.hh"

namespace tokensim {

/** Stable MOSI states of a directory-protocol cache line. */
enum class DirCacheState : std::uint8_t
{
    I = 0,
    S,
    O,
    M,
};

/** A directory-protocol L2 line. */
struct DirLine : CacheLineBase
{
    DirCacheState state = DirCacheState::I;
    bool written = false;
    std::uint64_t data = 0;
};

/** Directory-protocol L2 cache controller. */
class DirCache : public CacheController
{
  public:
    DirCache(ProtoContext &ctx, NodeId id, const ProtocolParams &params);

    void request(const ProcRequest &req) override;
    void handleMessage(const Message &msg) override;
    bool hasPermission(Addr addr, MemOp op) const override;
    void resetState(const ProtocolParams &params,
                    std::uint64_t seed) override;

    std::uint64_t applyFunctional(const ProcRequest &req,
                                  FunctionalEnv &env) override;
    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    DirCacheState state(Addr addr) const;

    bool
    quiescent() const
    {
        return outstanding_.empty() && wbBuffer_.empty();
    }

  private:
    struct Transaction
    {
        ProcRequest req;
        Tick issuedAt = 0;
        bool dataReceived = false;
        bool dataExclusive = false;
        bool dataFromMemory = false;
        std::uint64_t dataValue = 0;
        int acksNeeded = -1;   ///< unknown until the data/grant arrives
        int acksReceived = 0;
    };

    struct WbEntry
    {
        std::uint64_t data = 0;
    };

    void handleFwd(const Message &msg);
    void handleInv(const Message &msg);
    void handleDataOrGrant(const Message &msg);
    void maybeComplete(Addr addr);

    DirLine *allocLine(Addr addr);
    void evictVictim(const DirLine &victim);

    /** Fast-forward allocation: retire any victim by moving its state
     *  functionally (no PutM message). */
    DirLine *functionalAlloc(Addr ba, FunctionalEnv &env);
    void respondData(NodeId dest, Addr addr, std::uint64_t value,
                     bool exclusive, int ack_count);
    void sendUnblock(Addr addr, bool exclusive);

    ProtocolParams params_;
    CacheArray<DirLine> l2_;
    BlockMap<Transaction> outstanding_;
    BlockMap<WbEntry> wbBuffer_;
};

/**
 * The home directory controller: full-map sharer/owner state per block,
 * busy-queueing, invalidation fan-out, and the DRAM-resident directory
 * lookup latency.
 */
class DirMemory : public MemoryController
{
  public:
    DirMemory(ProtoContext &ctx, NodeId id, const ProtocolParams &params);

    void handleMessage(const Message &msg) override;
    std::uint64_t peekData(Addr addr) const override;
    void resetState(const ProtocolParams &params) override;

    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    /** Directory's view of a block (tests). */
    struct DirView
    {
        bool busy = false;
        NodeId owner = invalidNode;   ///< invalidNode = memory owns
        std::vector<NodeId> sharers;
    };
    DirView view(Addr addr) const;

    bool
    quiescent() const
    {
        for (const auto &[a, e] : entries_) {
            if (e.busy || !e.queue.empty())
                return false;
        }
        return true;
    }

  private:
    /** Fast-forward reaches straight into the directory entries and
     *  backing store. */
    friend class DirCache;

    struct DirEntry
    {
        NodeId owner = invalidNode;
        std::set<NodeId> sharers;
        bool busy = false;
        NodeId pendingRequester = invalidNode;
        SmallQueue<Message> queue;
    };

    DirEntry &entryFor(Addr addr);

    /** Directory access latency: DRAM unless perfectDirectory. */
    Tick dirLatency() const;

    void processRequest(const Message &msg);
    void handleUnblock(const Message &msg);
    void handlePutM(const Message &msg);
    void serviceNext(Addr addr);

    void sendMemoryData(const Message &req, bool exclusive,
                        int ack_count);
    void sendFwd(const Message &req, MsgType fwd_type, int ack_count);
    void sendInvs(Addr addr, const std::set<NodeId> &targets,
                  NodeId requester);
    void sendGrant(const Message &req, int ack_count);

    ProtocolParams params_;
    BackingStore store_;
    Dram dram_;
    BlockMap<DirEntry> entries_;
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_DIRECTORY_DIRECTORY_HH
