#include "proto/hammer/hammer.hh"

#include <cassert>

#include "sim/stats.hh"

namespace tokensim {

// =====================================================================
// HammerCache
// =====================================================================

HammerCache::HammerCache(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params)
    : CacheController(ctx, id, strformat("hammer.%u", id)),
      params_(params),
      l2_(ctx.l2)
{
}

void
HammerCache::resetState(const ProtocolParams &params, std::uint64_t)
{
    params_ = params;
    l2_.clear();
    outstanding_.clear();
    wbBuffer_.clear();
    stats_ = CacheCtrlStats{};
}

void
HammerCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    HammerLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == HammerState::M
                  : line->state != HammerState::I);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    Transaction tr;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    outstanding_.emplace(ba, std::move(tr));

    Message msg;
    msg.type = is_store ? MsgType::getM : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = ba;
    msg.dest = ctx_.home(ba);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
HammerCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        handleProbe(msg);
        break;
      case MsgType::data:
      case MsgType::dataExclusive:
      case MsgType::ack:
        handleResponse(msg);
        break;
      case MsgType::wbAck:
        wbBuffer_.erase(msg.addr);
        break;
      default:
        assert(false && "unexpected message at hammer cache");
    }
}

void
HammerCache::handleProbe(const Message &msg)
{
    if (msg.requester == id_)
        return;   // requesters do not probe themselves

    const Addr ba = msg.addr;
    const bool exclusive = msg.type == MsgType::fwdGetM;
    const NodeId req = msg.requester;

    // A line whose writeback is in flight answers from the buffer.
    auto wit = wbBuffer_.find(ba);
    if (wit != wbBuffer_.end()) {
        respondData(req, ba, wit->second.data, exclusive);
        return;
    }

    HammerLine *line = l2_.find(ba);
    if (!line) {
        respondAck(req, ba);
        return;
    }

    if (!exclusive) {
        switch (line->state) {
          case HammerState::M:
            if (line->written && params_.migratoryOpt) {
                respondData(req, ba, line->data, true);
                notifyLineRemoved(ba);
                l2_.invalidate(ba);
            } else {
                respondData(req, ba, line->data, false);
                line->state = HammerState::O;
            }
            break;
          case HammerState::O:
            respondData(req, ba, line->data, false);
            break;
          default:
            respondAck(req, ba);
            break;
        }
    } else {
        switch (line->state) {
          case HammerState::M:
          case HammerState::O:
            respondData(req, ba, line->data, true);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          case HammerState::S:
            respondAck(req, ba);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          default:
            respondAck(req, ba);
            break;
        }
    }
}

void
HammerCache::handleResponse(const Message &msg)
{
    const Addr ba = msg.addr;
    auto it = outstanding_.find(ba);
    assert(it != outstanding_.end() && "response with no transaction");
    Transaction &tr = it->second;

    if (msg.fromMemoryCtrl) {
        assert(!tr.memResponse && "duplicate memory response");
        tr.memResponse = true;
        tr.memData = msg.data;
        tr.cacheResponsesNeeded = msg.ackCount;
    } else {
        ++tr.cacheResponses;
        if (msg.hasData) {
            assert(!tr.haveOwnerData && "two caches supplied data");
            tr.haveOwnerData = true;
            tr.ownerData = msg.data;
            tr.ownerDataExclusive = msg.type == MsgType::dataExclusive;
        }
    }
    maybeComplete(ba);
}

void
HammerCache::maybeComplete(Addr addr)
{
    auto it = outstanding_.find(addr);
    if (it == outstanding_.end())
        return;
    Transaction &tr = it->second;
    if (!tr.memResponse || tr.cacheResponses < tr.cacheResponsesNeeded)
        return;
    assert(tr.cacheResponses == tr.cacheResponsesNeeded);

    Transaction done = std::move(tr);
    outstanding_.erase(it);

    HammerLine *line = l2_.find(addr);
    if (!line)
        line = allocLine(addr);

    const bool is_store = done.req.op == MemOp::store;
    const std::uint64_t fill =
        done.haveOwnerData ? done.ownerData : done.memData;
    const bool exclusive =
        is_store || (done.haveOwnerData && done.ownerDataExclusive);

    if (is_store) {
        line->state = HammerState::M;
        line->written = true;
        line->data = done.req.storeValue;
    } else if (exclusive) {
        line->state = HammerState::M;
        line->written = false;
        line->data = fill;
    } else {
        line->state = HammerState::S;
        line->written = false;
        line->data = fill;
    }

    Message unb;
    unb.type = exclusive ? MsgType::unblockExclusive : MsgType::unblock;
    unb.cls = MsgClass::nonData;
    unb.dstUnit = Unit::memory;
    unb.addr = addr;
    unb.dest = ctx_.home(addr);
    unb.requester = id_;
    sendAfter(ctx_.ctrlLatency, unb);

    ProcResponse resp;
    resp.reqId = done.req.reqId;
    resp.addr = done.req.addr;
    resp.op = done.req.op;
    resp.value = line->data;
    resp.issuedAt = done.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = done.haveOwnerData;

    ++stats_.missesCompleted;
    stats_.missLatency.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    stats_.missLatencyHist.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    if (resp.cacheToCache)
        ++stats_.cacheToCache;
    ++stats_.missesNotReissued;

    respond(resp);
}

HammerLine *
HammerCache::allocLine(Addr addr)
{
    CacheArray<HammerLine>::Victim victim;
    HammerLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
HammerCache::evictVictim(const HammerLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    if (victim.state == HammerState::S ||
        victim.state == HammerState::I) {
        return;
    }

    wbBuffer_[victim.addr] = WbEntry{victim.data};
    Message msg;
    msg.type = MsgType::putM;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::memory;
    msg.addr = victim.addr;
    msg.dest = ctx_.home(victim.addr);
    msg.requester = id_;
    msg.hasData = true;
    msg.data = victim.data;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
HammerCache::respondData(NodeId dest, Addr addr, std::uint64_t value,
                         bool exclusive)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    msg.hasData = true;
    msg.data = value;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

void
HammerCache::respondAck(NodeId dest, Addr addr)
{
    Message msg;
    msg.type = MsgType::ack;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

bool
HammerCache::hasPermission(Addr addr, MemOp op) const
{
    const HammerLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return false;
    return op == MemOp::store ? line->state == HammerState::M
                              : line->state != HammerState::I;
}

HammerState
HammerCache::state(Addr addr) const
{
    const HammerLine *line = l2_.find(ctx_.blockAlign(addr));
    return line ? line->state : HammerState::I;
}

// =====================================================================
// HammerMemory
// =====================================================================

HammerMemory::HammerMemory(ProtoContext &ctx, NodeId id,
                           const ProtocolParams &params)
    : MemoryController(ctx, id, strformat("hammem.%u", id)),
      params_(params),
      store_(ctx.blockBytes),
      dram_(ctx.dram)
{
}

void
HammerMemory::resetState(const ProtocolParams &params)
{
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    entries_.clear();
}

HammerMemory::HomeEntry &
HammerMemory::entryFor(Addr addr)
{
    assert(ctx_.home(addr) == id_);
    return entries_[addr];
}

void
HammerMemory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM:
      case MsgType::putM: {
        HomeEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        if (msg.type == MsgType::putM)
            handlePutM(msg);
        else
            processRequest(msg);
        break;
      }
      case MsgType::unblock:
      case MsgType::unblockExclusive:
        handleUnblock(msg);
        break;
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        // Our own probe broadcast echoing back to the home node.
        break;
      default:
        assert(false && "unexpected message at hammer memory");
    }
}

void
HammerMemory::processRequest(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(!e.busy);
    e.busy = true;
    e.pendingRequester = msg.requester;

    // Probe every node immediately — no directory lookup gates it.
    Message probe;
    probe.type = msg.type == MsgType::getM ? MsgType::fwdGetM
                                           : MsgType::fwdGetS;
    probe.cls = MsgClass::request;
    probe.dstUnit = Unit::cache;
    probe.addr = ba;
    probe.requester = msg.requester;
    broadcastAfter(ctx_.ctrlLatency, probe);

    // Speculative memory read proceeds in parallel. Its response also
    // tells the requester how many cache responses to expect.
    Message data;
    data.type = msg.type == MsgType::getM ? MsgType::dataExclusive
                                          : MsgType::data;
    data.cls = MsgClass::data;
    data.dstUnit = Unit::cache;
    data.addr = ba;
    data.dest = msg.requester;
    data.requester = msg.requester;
    data.hasData = true;
    data.data = store_.read(ba);
    data.ackCount = ctx_.numNodes - 1;
    data.fromMemoryCtrl = true;
    data.src = id_;
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, data]() { ctx_.net->unicast(data); });
}

void
HammerMemory::handleUnblock(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(e.busy && "unblock with no transaction in flight");
    assert(msg.requester == e.pendingRequester);
    if (msg.type == MsgType::unblockExclusive)
        e.owner = msg.requester;
    e.busy = false;
    e.pendingRequester = invalidNode;
    serviceNext(ba);
}

void
HammerMemory::handlePutM(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(!e.busy);

    // Every M/O line was created through an exclusive unblock, so the
    // last-owner id is authoritative: a writeback from anyone else is
    // stale (its ownership was probed away in flight) and is dropped.
    if (e.owner == msg.requester) {
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
        e.owner = invalidNode;
    }

    Message ack;
    ack.type = MsgType::wbAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    ack.src = id_;
    sendAfter(ctx_.ctrlLatency, ack);
}

void
HammerMemory::serviceNext(Addr addr)
{
    HomeEntry &e = entryFor(addr);
    while (!e.busy && !e.queue.empty()) {
        Message next = e.queue.front();
        e.queue.pop_front();
        if (next.type == MsgType::putM)
            handlePutM(next);
        else
            processRequest(next);
    }
}

std::uint64_t
HammerMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

} // namespace tokensim
