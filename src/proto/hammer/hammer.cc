#include "proto/hammer/hammer.hh"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/stats.hh"

namespace tokensim {

// =====================================================================
// HammerCache
// =====================================================================

HammerCache::HammerCache(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params)
    : CacheController(ctx, id, strformat("hammer.%u", id)),
      params_(params),
      l2_(ctx.l2)
{
}

void
HammerCache::resetState(const ProtocolParams &params, std::uint64_t)
{
    params_ = params;
    l2_.clear();
    outstanding_.clear();
    wbBuffer_.clear();
    stats_ = CacheCtrlStats{};
}

void
HammerCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    HammerLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == HammerState::M
                  : line->state != HammerState::I);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    Transaction tr;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    outstanding_.emplace(ba, std::move(tr));

    Message msg;
    msg.type = is_store ? MsgType::getM : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::memory;
    msg.addr = ba;
    msg.dest = ctx_.home(ba);
    msg.requester = id_;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
HammerCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        handleProbe(msg);
        break;
      case MsgType::data:
      case MsgType::dataExclusive:
      case MsgType::ack:
        handleResponse(msg);
        break;
      case MsgType::wbAck:
        wbBuffer_.erase(msg.addr);
        break;
      default:
        assert(false && "unexpected message at hammer cache");
    }
}

void
HammerCache::handleProbe(const Message &msg)
{
    if (msg.requester == id_)
        return;   // requesters do not probe themselves

    const Addr ba = msg.addr;
    const bool exclusive = msg.type == MsgType::fwdGetM;
    const NodeId req = msg.requester;

    // A line whose writeback is in flight answers from the buffer.
    auto wit = wbBuffer_.find(ba);
    if (wit != wbBuffer_.end()) {
        respondData(req, ba, wit->second.data, exclusive);
        return;
    }

    HammerLine *line = l2_.find(ba);
    if (!line) {
        respondAck(req, ba);
        return;
    }

    if (!exclusive) {
        switch (line->state) {
          case HammerState::M:
            if (line->written && params_.migratoryOpt) {
                respondData(req, ba, line->data, true);
                notifyLineRemoved(ba);
                l2_.invalidate(ba);
            } else {
                respondData(req, ba, line->data, false);
                line->state = HammerState::O;
            }
            break;
          case HammerState::O:
            respondData(req, ba, line->data, false);
            break;
          default:
            respondAck(req, ba);
            break;
        }
    } else {
        switch (line->state) {
          case HammerState::M:
          case HammerState::O:
            respondData(req, ba, line->data, true);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          case HammerState::S:
            respondAck(req, ba);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          default:
            respondAck(req, ba);
            break;
        }
    }
}

void
HammerCache::handleResponse(const Message &msg)
{
    const Addr ba = msg.addr;
    auto it = outstanding_.find(ba);
    assert(it != outstanding_.end() && "response with no transaction");
    Transaction &tr = it->second;

    if (msg.fromMemoryCtrl) {
        assert(!tr.memResponse && "duplicate memory response");
        tr.memResponse = true;
        tr.memData = msg.data;
        tr.cacheResponsesNeeded = msg.ackCount;
    } else {
        ++tr.cacheResponses;
        if (msg.hasData) {
            assert(!tr.haveOwnerData && "two caches supplied data");
            tr.haveOwnerData = true;
            tr.ownerData = msg.data;
            tr.ownerDataExclusive = msg.type == MsgType::dataExclusive;
        }
    }
    maybeComplete(ba);
}

void
HammerCache::maybeComplete(Addr addr)
{
    auto it = outstanding_.find(addr);
    if (it == outstanding_.end())
        return;
    Transaction &tr = it->second;
    if (!tr.memResponse || tr.cacheResponses < tr.cacheResponsesNeeded)
        return;
    assert(tr.cacheResponses == tr.cacheResponsesNeeded);

    Transaction done = std::move(tr);
    outstanding_.erase(it);

    HammerLine *line = l2_.find(addr);
    if (!line)
        line = allocLine(addr);

    const bool is_store = done.req.op == MemOp::store;
    const std::uint64_t fill =
        done.haveOwnerData ? done.ownerData : done.memData;
    const bool exclusive =
        is_store || (done.haveOwnerData && done.ownerDataExclusive);

    if (is_store) {
        line->state = HammerState::M;
        line->written = true;
        line->data = done.req.storeValue;
    } else if (exclusive) {
        line->state = HammerState::M;
        line->written = false;
        line->data = fill;
    } else {
        line->state = HammerState::S;
        line->written = false;
        line->data = fill;
    }

    Message unb;
    unb.type = exclusive ? MsgType::unblockExclusive : MsgType::unblock;
    unb.cls = MsgClass::nonData;
    unb.dstUnit = Unit::memory;
    unb.addr = addr;
    unb.dest = ctx_.home(addr);
    unb.requester = id_;
    sendAfter(ctx_.ctrlLatency, unb);

    ProcResponse resp;
    resp.reqId = done.req.reqId;
    resp.addr = done.req.addr;
    resp.op = done.req.op;
    resp.value = line->data;
    resp.issuedAt = done.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = done.haveOwnerData;

    ++stats_.missesCompleted;
    stats_.missLatency.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    stats_.missLatencyHist.add(
        static_cast<double>(ctx_.now() - done.issuedAt));
    if (resp.cacheToCache)
        ++stats_.cacheToCache;
    ++stats_.missesNotReissued;

    respond(resp);
}

HammerLine *
HammerCache::allocLine(Addr addr)
{
    CacheArray<HammerLine>::Victim victim;
    HammerLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
HammerCache::evictVictim(const HammerLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    if (victim.state == HammerState::S ||
        victim.state == HammerState::I) {
        return;
    }

    wbBuffer_[victim.addr] = WbEntry{victim.data};
    Message msg;
    msg.type = MsgType::putM;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::memory;
    msg.addr = victim.addr;
    msg.dest = ctx_.home(victim.addr);
    msg.requester = id_;
    msg.hasData = true;
    msg.data = victim.data;
    sendAfter(ctx_.ctrlLatency, msg);
}

void
HammerCache::respondData(NodeId dest, Addr addr, std::uint64_t value,
                         bool exclusive)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    msg.hasData = true;
    msg.data = value;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

void
HammerCache::respondAck(NodeId dest, Addr addr)
{
    Message msg;
    msg.type = MsgType::ack;
    msg.cls = MsgClass::nonData;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

bool
HammerCache::hasPermission(Addr addr, MemOp op) const
{
    const HammerLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return false;
    return op == MemOp::store ? line->state == HammerState::M
                              : line->state != HammerState::I;
}

HammerState
HammerCache::state(Addr addr) const
{
    const HammerLine *line = l2_.find(ctx_.blockAlign(addr));
    return line ? line->state : HammerState::I;
}

// =====================================================================
// HammerMemory
// =====================================================================

HammerMemory::HammerMemory(ProtoContext &ctx, NodeId id,
                           const ProtocolParams &params)
    : MemoryController(ctx, id, strformat("hammem.%u", id)),
      params_(params),
      store_(ctx.blockBytes),
      dram_(ctx.dram)
{
}

void
HammerMemory::resetState(const ProtocolParams &params)
{
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    entries_.clear();
}

HammerMemory::HomeEntry &
HammerMemory::entryFor(Addr addr)
{
    assert(ctx_.home(addr) == id_);
    return entries_[addr];
}

void
HammerMemory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM:
      case MsgType::putM: {
        HomeEntry &e = entryFor(msg.addr);
        if (e.busy) {
            e.queue.push_back(msg);
            return;
        }
        if (msg.type == MsgType::putM)
            handlePutM(msg);
        else
            processRequest(msg);
        break;
      }
      case MsgType::unblock:
      case MsgType::unblockExclusive:
        handleUnblock(msg);
        break;
      case MsgType::fwdGetS:
      case MsgType::fwdGetM:
        // Our own probe broadcast echoing back to the home node.
        break;
      default:
        assert(false && "unexpected message at hammer memory");
    }
}

void
HammerMemory::processRequest(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(!e.busy);
    e.busy = true;
    e.pendingRequester = msg.requester;

    // Probe every node immediately — no directory lookup gates it.
    Message probe;
    probe.type = msg.type == MsgType::getM ? MsgType::fwdGetM
                                           : MsgType::fwdGetS;
    probe.cls = MsgClass::request;
    probe.dstUnit = Unit::cache;
    probe.addr = ba;
    probe.requester = msg.requester;
    broadcastAfter(ctx_.ctrlLatency, probe);

    // Speculative memory read proceeds in parallel. Its response also
    // tells the requester how many cache responses to expect.
    Message data;
    data.type = msg.type == MsgType::getM ? MsgType::dataExclusive
                                          : MsgType::data;
    data.cls = MsgClass::data;
    data.dstUnit = Unit::cache;
    data.addr = ba;
    data.dest = msg.requester;
    data.requester = msg.requester;
    data.hasData = true;
    data.data = store_.read(ba);
    data.ackCount = ctx_.numNodes - 1;
    data.fromMemoryCtrl = true;
    data.src = id_;
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, data]() { ctx_.net->unicast(data); });
}

void
HammerMemory::handleUnblock(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(e.busy && "unblock with no transaction in flight");
    assert(msg.requester == e.pendingRequester);
    if (msg.type == MsgType::unblockExclusive)
        e.owner = msg.requester;
    e.busy = false;
    e.pendingRequester = invalidNode;
    serviceNext(ba);
}

void
HammerMemory::handlePutM(const Message &msg)
{
    const Addr ba = msg.addr;
    HomeEntry &e = entryFor(ba);
    assert(!e.busy);

    // Every M/O line was created through an exclusive unblock, so the
    // last-owner id is authoritative: a writeback from anyone else is
    // stale (its ownership was probed away in flight) and is dropped.
    if (e.owner == msg.requester) {
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
        e.owner = invalidNode;
    }

    Message ack;
    ack.type = MsgType::wbAck;
    ack.cls = MsgClass::nonData;
    ack.dstUnit = Unit::cache;
    ack.addr = ba;
    ack.dest = msg.requester;
    ack.requester = msg.requester;
    ack.src = id_;
    sendAfter(ctx_.ctrlLatency, ack);
}

void
HammerMemory::serviceNext(Addr addr)
{
    HomeEntry &e = entryFor(addr);
    while (!e.busy && !e.queue.empty()) {
        Message next = e.queue.front();
        e.queue.pop_front();
        if (next.type == MsgType::putM)
            handlePutM(next);
        else
            processRequest(next);
    }
}

std::uint64_t
HammerMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

// =====================================================================
// Fast-forward and warm-state snapshots
// =====================================================================

HammerLine *
HammerCache::functionalAlloc(Addr ba, FunctionalEnv &env)
{
    CacheArray<HammerLine>::Victim victim;
    HammerLine *line = l2_.allocate(ba, &victim);
    if (victim.valid) {
        const HammerLine &v = victim.line;
        notifyLineRemoved(v.addr);
        if (v.state == HammerState::M || v.state == HammerState::O) {
            // The PutM, settled: the last-owner filter mirrors the
            // detailed stale-writeback drop.
            auto *mem = static_cast<HammerMemory *>(
                env.memories[ctx_.home(v.addr)]);
            HammerMemory::HomeEntry &e = mem->entryFor(v.addr);
            if (e.owner == id_) {
                mem->store_.write(v.addr, v.data);
                e.owner = invalidNode;
            }
        }
    }
    return line;
}

std::uint64_t
HammerCache::applyFunctional(const ProcRequest &req, FunctionalEnv &env)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    assert(outstanding_.empty() && wbBuffer_.empty() &&
           "fast-forward requires a quiescent cache");

    HammerLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == HammerState::M
                  : line->state != HammerState::I);
    if (hit) {
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            return req.storeValue;
        }
        return line->data;
    }

    auto *mem = static_cast<HammerMemory *>(env.memories[ctx_.home(ba)]);
    HammerMemory::HomeEntry &e = mem->entryFor(ba);
    assert(!e.busy && e.queue.empty() &&
           "fast-forward requires an idle home");

    if (!is_store) {
        // GetS probes every cache; the M/O owner supplies data (a
        // written migratory M owner hands over exclusively), else the
        // speculative memory read wins.
        for (CacheController *c : env.caches) {
            if (c == this)
                continue;
            auto *hc = static_cast<HammerCache *>(c);
            HammerLine *ol = hc->l2_.find(ba);
            if (!ol || (ol->state != HammerState::M &&
                        ol->state != HammerState::O))
                continue;
            const std::uint64_t value = ol->data;
            if (ol->state == HammerState::M && ol->written &&
                params_.migratoryOpt) {
                hc->notifyLineRemoved(ba);
                hc->l2_.invalidate(ba);
                e.owner = id_;   // exclusive unblock
                HammerLine *nl = line ? line : functionalAlloc(ba, env);
                nl->state = HammerState::M;
                nl->written = false;
                nl->data = value;
                return value;
            }
            if (ol->state == HammerState::M)
                ol->state = HammerState::O;
            HammerLine *nl = line ? line : functionalAlloc(ba, env);
            nl->state = HammerState::S;
            nl->written = false;
            nl->data = value;
            return value;
        }
        const std::uint64_t value = mem->store_.read(ba);
        HammerLine *nl = line ? line : functionalAlloc(ba, env);
        nl->state = HammerState::S;
        nl->written = false;
        nl->data = value;
        return value;
    }

    // GetM probes drop every peer copy; we take exclusive ownership.
    for (CacheController *c : env.caches) {
        if (c == this)
            continue;
        auto *hc = static_cast<HammerCache *>(c);
        if (hc->l2_.find(ba)) {
            hc->notifyLineRemoved(ba);
            hc->l2_.invalidate(ba);
        }
    }
    e.owner = id_;   // exclusive unblock

    HammerLine *nl = line ? line : functionalAlloc(ba, env);
    nl->state = HammerState::M;
    nl->written = true;
    nl->data = req.storeValue;
    return req.storeValue;
}

void
HammerCache::encodeWarmState(WireWriter &w) const
{
    if (!quiescent())
        throw WireError("hammer cache has transactions in flight");
    w.varint(l2_.useCounter());
    w.varint(l2_.validCount());
    l2_.forEachValidIndexed(
        [&](std::size_t way, std::uint64_t stamp, const HammerLine &l) {
            w.varint(way);
            w.varint(stamp);
            w.varint(l.addr);
            w.u8(static_cast<std::uint8_t>(l.state));
            w.boolean(l.written);
            w.varint(l.data);
        });
    putStructEnd(w);
}

void
HammerCache::decodeWarmState(WireReader &r)
{
    l2_.setUseCounter(r.varint("l2 use counter"));
    const std::uint64_t count = r.varint("l2 line count");
    if (count > l2_.wayCount())
        throw WireError("l2 line count exceeds the array's ways");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t way = r.varint("l2 way index");
        const std::uint64_t stamp = r.varint("l2 lru stamp");
        const Addr addr = r.varint("l2 line address");
        const std::uint8_t state = r.u8("hammer line state");
        const bool written = r.boolean("hammer line written");
        const std::uint64_t data = r.varint("hammer line data");
        if (way >= l2_.wayCount())
            throw WireError("l2 way index out of range");
        if (l2_.wayValid(way))
            throw WireError("duplicate l2 way in snapshot");
        if (ctx_.blockAlign(addr) != addr)
            throw WireError("l2 line address not block-aligned");
        if (!l2_.wayMatchesSet(way, addr))
            throw WireError("l2 line mapped to the wrong set");
        if (l2_.contains(addr))
            throw WireError("duplicate l2 block in snapshot");
        if (stamp > l2_.useCounter())
            throw WireError("l2 lru stamp exceeds the use counter");
        if (state < 1 || state > 3)
            throw WireError("invalid hammer line state");
        HammerLine *l = l2_.restoreWay(static_cast<std::size_t>(way),
                                       addr, stamp);
        l->state = static_cast<HammerState>(state);
        l->written = written;
        l->data = data;
    }
    checkStructEnd(r, "hammer cache warm state");
}

void
HammerMemory::encodeWarmState(WireWriter &w) const
{
    std::vector<std::pair<Addr, std::uint64_t>> written;
    for (const auto &[a, v] : store_.blocks()) {
        if (v != BackingStore::initialValue(a))
            written.emplace_back(a, v);
    }
    std::sort(written.begin(), written.end());
    w.varint(written.size());
    for (const auto &[a, v] : written) {
        w.varint(a);
        w.varint(v);
    }

    std::vector<std::pair<Addr, NodeId>> owners;
    for (const auto &[a, e] : entries_) {
        if (e.busy || !e.queue.empty())
            throw WireError("hammer home has transactions in flight");
        if (e.owner != invalidNode)
            owners.emplace_back(a, e.owner);
    }
    std::sort(owners.begin(), owners.end());
    w.varint(owners.size());
    for (const auto &[a, o] : owners) {
        w.varint(a);
        w.varint(o);
    }
    putStructEnd(w);
}

void
HammerMemory::decodeWarmState(WireReader &r)
{
    const std::uint64_t nwritten = r.varint("written block count");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < nwritten; ++i) {
        const Addr a = r.varint("written block address");
        const std::uint64_t v = r.varint("written block value");
        if (ctx_.blockAlign(a) != a)
            throw WireError("written block not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("written block homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("written blocks not strictly ascending");
        prev = a;
        store_.write(a, v);
    }
    const std::uint64_t nowners = r.varint("owner record count");
    prev = 0;
    for (std::uint64_t i = 0; i < nowners; ++i) {
        const Addr a = r.varint("owner record address");
        const std::uint64_t o = r.varint("owner record node");
        if (ctx_.blockAlign(a) != a)
            throw WireError("owner record not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("owner record homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("owner records not strictly ascending");
        if (o >= static_cast<std::uint64_t>(ctx_.numNodes))
            throw WireError("owner record names an invalid node");
        prev = a;
        entries_[a].owner = static_cast<NodeId>(o);
    }
    checkStructEnd(r, "hammer memory warm state");
}

} // namespace tokensim
