/**
 * @file
 * AMD-Hammer-style broadcast protocol (Section 5.1 baseline).
 *
 * A requester sends its request to the block's home node, which
 * serializes requests per block and broadcasts a probe to every node
 * while reading memory in parallel. Every node responds directly to the
 * requester — the owner with data, everyone else with an ack — and the
 * memory's (possibly stale) data arrives as well; the requester prefers
 * owner data. A final unblock releases the home to service the next
 * queued request.
 *
 * The protocol needs no directory state and no directory lookup before
 * probing (lower cache-to-cache latency than Directory), but it still
 * takes the home-node indirection and pays one response message per
 * node per request — the traffic the paper's Figure 5b shows dwarfing
 * both TokenB and Directory.
 *
 * One home-side refinement: the home keeps the identity of the last
 * exclusive owner so that a stale writeback (whose data was already
 * handed over through a probe answered from the writeback buffer) can
 * be recognized and dropped. Real Hammer implementations resolve this
 * race with their victim-buffer/probe interlocks; a last-owner id is
 * the minimal equivalent in message-passing form (see DESIGN.md).
 */

#ifndef TOKENSIM_PROTO_HAMMER_HAMMER_HH
#define TOKENSIM_PROTO_HAMMER_HAMMER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "proto/controller.hh"
#include "sim/small_queue.hh"

namespace tokensim {

/** Stable MOSI states of a hammer cache line. */
enum class HammerState : std::uint8_t
{
    I = 0,
    S,
    O,
    M,
};

/** A hammer-protocol L2 line. */
struct HammerLine : CacheLineBase
{
    HammerState state = HammerState::I;
    bool written = false;
    std::uint64_t data = 0;
};

/** Hammer L2 cache controller. */
class HammerCache : public CacheController
{
  public:
    HammerCache(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params);

    void request(const ProcRequest &req) override;
    void handleMessage(const Message &msg) override;
    bool hasPermission(Addr addr, MemOp op) const override;
    void resetState(const ProtocolParams &params,
                    std::uint64_t seed) override;

    std::uint64_t applyFunctional(const ProcRequest &req,
                                  FunctionalEnv &env) override;
    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    HammerState state(Addr addr) const;

    bool
    quiescent() const
    {
        return outstanding_.empty() && wbBuffer_.empty();
    }

  private:
    struct Transaction
    {
        ProcRequest req;
        Tick issuedAt = 0;
        int cacheResponses = 0;     ///< acks/data from other caches
        int cacheResponsesNeeded = -1;
        bool memResponse = false;   ///< home memory's response arrived
        bool haveOwnerData = false; ///< a cache supplied (fresh) data
        bool ownerDataExclusive = false;
        std::uint64_t ownerData = 0;
        std::uint64_t memData = 0;
    };

    struct WbEntry
    {
        std::uint64_t data = 0;
    };

    void handleProbe(const Message &msg);
    void handleResponse(const Message &msg);
    void maybeComplete(Addr addr);

    HammerLine *allocLine(Addr addr);
    void evictVictim(const HammerLine &victim);

    /** Fast-forward allocation: retire any victim by moving its state
     *  functionally (no PutM message). */
    HammerLine *functionalAlloc(Addr ba, FunctionalEnv &env);
    void respondData(NodeId dest, Addr addr, std::uint64_t value,
                     bool exclusive);
    void respondAck(NodeId dest, Addr addr);

    ProtocolParams params_;
    CacheArray<HammerLine> l2_;
    BlockMap<Transaction> outstanding_;
    BlockMap<WbEntry> wbBuffer_;
};

/**
 * Hammer home controller: per-block serialization, probe broadcast,
 * speculative memory read, and the last-owner writeback filter.
 */
class HammerMemory : public MemoryController
{
  public:
    HammerMemory(ProtoContext &ctx, NodeId id,
                 const ProtocolParams &params);

    void handleMessage(const Message &msg) override;
    std::uint64_t peekData(Addr addr) const override;
    void resetState(const ProtocolParams &params) override;

    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    bool
    quiescent() const
    {
        for (const auto &[a, e] : entries_) {
            if (e.busy || !e.queue.empty())
                return false;
        }
        return true;
    }

  private:
    /** Fast-forward reaches straight into the owner table and backing
     *  store. */
    friend class HammerCache;

    struct HomeEntry
    {
        bool busy = false;
        NodeId pendingRequester = invalidNode;
        NodeId owner = invalidNode;   ///< last exclusive owner
        SmallQueue<Message> queue;
    };

    HomeEntry &entryFor(Addr addr);

    void processRequest(const Message &msg);
    void handleUnblock(const Message &msg);
    void handlePutM(const Message &msg);
    void serviceNext(Addr addr);

    ProtocolParams params_;
    BackingStore store_;
    Dram dram_;
    BlockMap<HomeEntry> entries_;
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_HAMMER_HAMMER_HH
