#include "proto/snooping/snooping.hh"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/stats.hh"

namespace tokensim {

const char *
snoopStateName(SnoopState s)
{
    switch (s) {
      case SnoopState::I: return "I";
      case SnoopState::S: return "S";
      case SnoopState::O: return "O";
      case SnoopState::M: return "M";
    }
    return "?";
}

// =====================================================================
// SnoopCache
// =====================================================================

SnoopCache::SnoopCache(ProtoContext &ctx, NodeId id,
                       const ProtocolParams &params)
    : CacheController(ctx, id, strformat("snoop.%u", id)),
      params_(params),
      l2_(ctx.l2)
{
}

void
SnoopCache::resetState(const ProtocolParams &params, std::uint64_t)
{
    params_ = params;
    l2_.clear();
    outstanding_.clear();
    wbBuffer_.clear();
    migratoryPred_.clear();
    stats_ = CacheCtrlStats{};
}

void
SnoopCache::request(const ProcRequest &req)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    assert(!outstanding_.count(ba) &&
           "sequencer must serialize same-block operations");

    SnoopLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == SnoopState::M
                  : line->state != SnoopState::I);
    if (hit) {
        ++stats_.hits;
        ProcResponse resp;
        resp.reqId = req.reqId;
        resp.addr = req.addr;
        resp.op = req.op;
        resp.issuedAt = ctx_.now();
        resp.completedAt = ctx_.now() + ctx_.l2.latency;
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            resp.value = req.storeValue;
        } else {
            resp.value = line->data;
        }
        ctx_.eq->scheduleIn(ctx_.l2.latency,
                            [this, resp]() { respond(resp); });
        return;
    }

    ++stats_.misses;
    Transaction tr;
    tr.req = req;
    tr.issuedAt = ctx_.now();
    outstanding_.emplace(ba, std::move(tr));

    // Requester-side migratory optimization: a store miss means the
    // block follows the read-modify-write pattern, so future loads
    // fetch it exclusively and the whole section costs one miss.
    bool exclusive = is_store;
    if (params_.migratoryOpt) {
        if (is_store)
            migratoryPred_.insert(ba);
        else if (migratoryPred_.count(ba))
            exclusive = true;
    }

    Message msg;
    msg.type = exclusive ? MsgType::getM : MsgType::getS;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = ba;
    msg.requester = id_;
    broadcastOrderedAfter(ctx_.ctrlLatency, msg);
}

void
SnoopCache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::getS:
      case MsgType::getM:
      case MsgType::putM:
        handleSnoop(msg);
        break;
      case MsgType::data:
      case MsgType::dataExclusive:
        handleData(msg);
        break;
      default:
        assert(false && "unexpected message at snooping cache");
    }
}

void
SnoopCache::handleSnoop(const Message &msg)
{
    if (msg.requester == id_) {
        handleOwnRequest(msg);
        return;
    }
    if (msg.type == MsgType::putM)
        return;   // foreign writeback announcements are none of ours

    auto it = outstanding_.find(msg.addr);
    if (it != outstanding_.end() && it->second.ordered) {
        // We are the block's logical holder (our request was ordered
        // first) but the data has not arrived: defer this snoop and
        // replay it after the fill — a classic non-stable state.
        it->second.deferred.push_back(msg);
        return;
    }
    applySnoop(msg);
}

void
SnoopCache::applySnoop(const Message &msg)
{
    const Addr ba = msg.addr;
    const bool exclusive = msg.type == MsgType::getM;
    const Tick resp_delay = ctx_.ctrlLatency + ctx_.l2.latency;
    (void)resp_delay;

    // A line announced for writeback still answers snoops ordered
    // before its PutM.
    auto wit = wbBuffer_.find(ba);
    if (wit != wbBuffer_.end()) {
        if (exclusive) {
            respondData(msg.requester, ba, wit->second.data, true);
            wit->second.surrendered = true;
        } else {
            respondData(msg.requester, ba, wit->second.data, false);
        }
        return;
    }

    SnoopLine *line = l2_.find(ba);
    if (!line)
        return;

    if (!exclusive) {
        switch (line->state) {
          case SnoopState::M:
            respondData(msg.requester, ba, line->data, false);
            line->state = SnoopState::O;
            if (!line->written)
                migratoryPred_.erase(ba);   // read-shared after all
            break;
          case SnoopState::O:
            respondData(msg.requester, ba, line->data, false);
            break;
          default:
            break;   // S and I do not respond to GetS
        }
    } else {
        switch (line->state) {
          case SnoopState::M:
          case SnoopState::O:
            respondData(msg.requester, ba, line->data, true);
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          case SnoopState::S:
            // Invalidate silently; ordering replaces explicit acks.
            notifyLineRemoved(ba);
            l2_.invalidate(ba);
            break;
          default:
            break;
        }
    }
}

void
SnoopCache::handleOwnRequest(const Message &msg)
{
    const Addr ba = msg.addr;

    if (msg.type == MsgType::putM) {
        auto wit = wbBuffer_.find(ba);
        assert(wit != wbBuffer_.end());
        if (!wit->second.surrendered) {
            Message wb;
            wb.type = MsgType::wbData;
            wb.cls = MsgClass::data;
            wb.dstUnit = Unit::memory;
            wb.addr = ba;
            wb.dest = ctx_.home(ba);
            wb.requester = id_;
            wb.hasData = true;
            wb.data = wit->second.data;
            sendAfter(ctx_.ctrlLatency, wb);
        }
        wbBuffer_.erase(wit);
        return;
    }

    auto it = outstanding_.find(ba);
    assert(it != outstanding_.end() &&
           "own ordered request with no transaction");
    it->second.ordered = true;

    // Upgrade from Owned: we are the block's owner, so no one else
    // will supply data — our own copy is the data, and every other
    // sharer invalidates on observing this GetM.
    if (msg.type == MsgType::getM && !it->second.dataReceived) {
        SnoopLine *line = l2_.find(ba);
        if (line && (line->state == SnoopState::O ||
                     line->state == SnoopState::M)) {
            it->second.dataReceived = true;
            it->second.dataValue = line->data;
            it->second.dataExclusive = true;
            it->second.dataFromMemory = true;   // not a c2c transfer
        }
    }

    if (it->second.dataReceived)
        completeTrans(ba);
}

void
SnoopCache::handleData(const Message &msg)
{
    auto it = outstanding_.find(msg.addr);
    assert(it != outstanding_.end() && "data response with no miss");
    Transaction &tr = it->second;
    assert(!tr.dataReceived && "duplicate data response");
    tr.dataReceived = true;
    tr.dataValue = msg.data;
    tr.dataExclusive = msg.type == MsgType::dataExclusive;
    tr.dataFromMemory = msg.fromMemoryCtrl;
    if (tr.ordered)
        completeTrans(msg.addr);
}

void
SnoopCache::completeTrans(Addr addr)
{
    auto it = outstanding_.find(addr);
    assert(it != outstanding_.end());
    Transaction tr = std::move(it->second);
    outstanding_.erase(it);

    SnoopLine *line = l2_.find(addr);
    if (!line)
        line = allocLine(addr);

    const bool is_store = tr.req.op == MemOp::store;
    if (is_store) {
        assert(tr.dataExclusive && "store fill without write permission");
        line->state = SnoopState::M;
        line->written = true;
        line->data = tr.req.storeValue;
    } else if (tr.dataExclusive) {
        // Migratory transfer: we received read/write permission.
        line->state = SnoopState::M;
        line->written = false;
        line->data = tr.dataValue;
    } else {
        line->state = SnoopState::S;
        line->written = false;
        line->data = tr.dataValue;
    }

    ProcResponse resp;
    resp.reqId = tr.req.reqId;
    resp.addr = tr.req.addr;
    resp.op = tr.req.op;
    resp.value = is_store ? tr.req.storeValue : tr.dataValue;
    resp.issuedAt = tr.issuedAt;
    resp.completedAt = ctx_.now();
    resp.wasMiss = true;
    resp.cacheToCache = !tr.dataFromMemory;

    ++stats_.missesCompleted;
    stats_.missLatency.add(
        static_cast<double>(ctx_.now() - tr.issuedAt));
    stats_.missLatencyHist.add(
        static_cast<double>(ctx_.now() - tr.issuedAt));
    if (resp.cacheToCache)
        ++stats_.cacheToCache;
    ++stats_.missesNotReissued;   // snooping never reissues

    respond(resp);

    // Replay snoops that were ordered after our request but arrived
    // before our data.
    for (const Message &m : tr.deferred)
        applySnoop(m);
}

SnoopLine *
SnoopCache::allocLine(Addr addr)
{
    CacheArray<SnoopLine>::Victim victim;
    SnoopLine *line = l2_.allocate(addr, &victim);
    if (victim.valid)
        evictVictim(victim.line);
    return line;
}

void
SnoopCache::evictVictim(const SnoopLine &victim)
{
    ++stats_.evictions;
    notifyLineRemoved(victim.addr);
    if (victim.state == SnoopState::S || victim.state == SnoopState::I)
        return;   // clean shared copies drop silently

    // Owner eviction: announce the writeback in the total order, then
    // ship the data once the announcement has been ordered.
    wbBuffer_[victim.addr] = WbEntry{victim.data, false};
    Message msg;
    msg.type = MsgType::putM;
    msg.cls = MsgClass::request;
    msg.dstUnit = Unit::cache;
    msg.addr = victim.addr;
    msg.requester = id_;
    broadcastOrderedAfter(ctx_.ctrlLatency, msg);
}

void
SnoopCache::respondData(NodeId dest, Addr addr, std::uint64_t value,
                        bool exclusive)
{
    Message msg;
    msg.type = exclusive ? MsgType::dataExclusive : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = addr;
    msg.dest = dest;
    msg.requester = dest;
    msg.hasData = true;
    msg.data = value;
    sendAfter(ctx_.ctrlLatency + ctx_.l2.latency, msg);
}

bool
SnoopCache::hasPermission(Addr addr, MemOp op) const
{
    const SnoopLine *line = l2_.find(ctx_.blockAlign(addr));
    if (!line)
        return false;
    return op == MemOp::store ? line->state == SnoopState::M
                              : line->state != SnoopState::I;
}

SnoopState
SnoopCache::state(Addr addr) const
{
    const SnoopLine *line = l2_.find(ctx_.blockAlign(addr));
    return line ? line->state : SnoopState::I;
}

// =====================================================================
// SnoopMemory
// =====================================================================

SnoopMemory::SnoopMemory(ProtoContext &ctx, NodeId id,
                         const ProtocolParams &params)
    : MemoryController(ctx, id, strformat("snoopmem.%u", id)),
      params_(params),
      store_(ctx.blockBytes),
      dram_(ctx.dram)
{
}

void
SnoopMemory::resetState(const ProtocolParams &params)
{
    params_ = params;
    store_.clear();
    dram_ = Dram(ctx_.dram);
    blocks_.clear();
}

SnoopMemory::MemBlock &
SnoopMemory::blockFor(Addr addr)
{
    assert(ctx_.home(addr) == id_);
    return blocks_[addr];
}

void
SnoopMemory::handleMessage(const Message &msg)
{
    const Addr ba = msg.addr;
    switch (msg.type) {
      case MsgType::getS: {
        MemBlock &mb = blockFor(ba);
        if (mb.owner == invalidNode) {
            if (mb.wbPending)
                mb.waiting.push_back(msg);
            else
                respondData(msg);
        }
        break;
      }
      case MsgType::getM: {
        MemBlock &mb = blockFor(ba);
        if (mb.owner == invalidNode) {
            if (mb.wbPending)
                mb.waiting.push_back(msg);
            else
                respondData(msg);
        }
        mb.owner = msg.requester;
        break;
      }
      case MsgType::putM: {
        MemBlock &mb = blockFor(ba);
        if (mb.owner == msg.requester) {
            mb.owner = invalidNode;
            mb.wbPending = true;
        }
        // Otherwise the writeback was overtaken by a GetM ordered
        // before it; the evictor already surrendered the data.
        break;
      }
      case MsgType::wbData: {
        MemBlock &mb = blockFor(ba);
        assert(mb.wbPending && "unexpected writeback data");
        store_.write(ba, msg.data);
        dram_.access(ctx_.now());
        mb.wbPending = false;
        while (!mb.waiting.empty()) {
            Message queued = mb.waiting.front();
            mb.waiting.pop_front();
            respondData(queued);
        }
        break;
      }
      default:
        assert(false && "unexpected message at snooping memory");
    }
}

void
SnoopMemory::respondData(const Message &req)
{
    Message msg;
    msg.type = req.type == MsgType::getM ? MsgType::dataExclusive
                                         : MsgType::data;
    msg.cls = MsgClass::data;
    msg.dstUnit = Unit::cache;
    msg.addr = req.addr;
    msg.dest = req.requester;
    msg.requester = req.requester;
    msg.hasData = true;
    msg.data = store_.read(req.addr);
    msg.fromMemoryCtrl = true;
    msg.src = id_;
    const Tick ready = dram_.access(ctx_.now() + ctx_.ctrlLatency);
    ctx_.eq->schedule(ready, [this, msg]() { ctx_.net->unicast(msg); });
}

std::uint64_t
SnoopMemory::peekData(Addr addr) const
{
    return store_.read(ctx_.blockAlign(addr));
}

bool
SnoopMemory::memoryOwns(Addr addr) const
{
    auto it = blocks_.find(ctx_.blockAlign(addr));
    return it == blocks_.end() || it->second.owner == invalidNode;
}

// =====================================================================
// Fast-forward and warm-state snapshots
// =====================================================================

SnoopLine *
SnoopCache::functionalAlloc(Addr ba, FunctionalEnv &env)
{
    CacheArray<SnoopLine>::Victim victim;
    SnoopLine *line = l2_.allocate(ba, &victim);
    if (victim.valid) {
        const SnoopLine &v = victim.line;
        notifyLineRemoved(v.addr);
        if (v.state == SnoopState::M || v.state == SnoopState::O) {
            // The PutM/wbData exchange, settled: data lands at the
            // home, which stops tracking us as owner (a stale-owner
            // record — writeback overtaken by a GetM — never happens
            // at quiescence, but mirror the detailed filter anyway).
            auto *mem = static_cast<SnoopMemory *>(
                env.memories[ctx_.home(v.addr)]);
            SnoopMemory::MemBlock &mb = mem->blockFor(v.addr);
            if (mb.owner == id_) {
                mem->store_.write(v.addr, v.data);
                mb.owner = invalidNode;
            }
        }
    }
    return line;
}

std::uint64_t
SnoopCache::applyFunctional(const ProcRequest &req, FunctionalEnv &env)
{
    const Addr ba = ctx_.blockAlign(req.addr);
    const bool is_store = req.op == MemOp::store;
    assert(outstanding_.empty() && wbBuffer_.empty() &&
           "fast-forward requires a quiescent cache");

    SnoopLine *line = l2_.touch(ba);
    const bool hit = line &&
        (is_store ? line->state == SnoopState::M
                  : line->state != SnoopState::I);
    if (hit) {
        if (is_store) {
            line->data = req.storeValue;
            line->written = true;
            return req.storeValue;
        }
        return line->data;
    }

    // Miss. Same requester-side migratory prediction as request().
    bool exclusive = is_store;
    if (params_.migratoryOpt) {
        if (is_store)
            migratoryPred_.insert(ba);
        else if (migratoryPred_.count(ba))
            exclusive = true;
    }

    auto *mem = static_cast<SnoopMemory *>(env.memories[ctx_.home(ba)]);

    if (!exclusive) {
        // GetS: the owner — an M/O line somewhere, else the home
        // memory — supplies data; an M owner downgrades to O.
        std::uint64_t value;
        SnoopCache *ownerCache = nullptr;
        SnoopLine *ownerLine = nullptr;
        for (CacheController *c : env.caches) {
            if (c == this)
                continue;
            auto *sc = static_cast<SnoopCache *>(c);
            SnoopLine *l = sc->l2_.find(ba);
            if (l && (l->state == SnoopState::M ||
                      l->state == SnoopState::O)) {
                ownerCache = sc;
                ownerLine = l;
                break;
            }
        }
        if (ownerLine) {
            value = ownerLine->data;
            if (ownerLine->state == SnoopState::M) {
                ownerLine->state = SnoopState::O;
                if (!ownerLine->written)
                    ownerCache->migratoryPred_.erase(ba);
            }
        } else {
            value = mem->store_.read(ba);
        }
        SnoopLine *nl = line ? line : functionalAlloc(ba, env);
        nl->state = SnoopState::S;
        nl->written = false;
        nl->data = value;
        return value;
    }

    // GetM: take data from the owner (our own O/M line, a peer's,
    // else memory), drop every other copy, and become the memory's
    // recorded owner — exactly the ordered-broadcast outcome.
    std::uint64_t value = 0;
    bool haveData = false;
    if (line && (line->state == SnoopState::O ||
                 line->state == SnoopState::M)) {
        value = line->data;
        haveData = true;
    }
    for (CacheController *c : env.caches) {
        if (c == this)
            continue;
        auto *sc = static_cast<SnoopCache *>(c);
        SnoopLine *l = sc->l2_.find(ba);
        if (!l)
            continue;
        if (!haveData && (l->state == SnoopState::M ||
                          l->state == SnoopState::O)) {
            value = l->data;
            haveData = true;
        }
        sc->notifyLineRemoved(ba);
        sc->l2_.invalidate(ba);
    }
    if (!haveData)
        value = mem->store_.read(ba);
    mem->blockFor(ba).owner = id_;

    SnoopLine *nl = line ? line : functionalAlloc(ba, env);
    nl->state = SnoopState::M;
    if (is_store) {
        nl->written = true;
        nl->data = req.storeValue;
        return req.storeValue;
    }
    nl->written = false;
    nl->data = value;
    return value;
}

void
SnoopCache::encodeWarmState(WireWriter &w) const
{
    if (!quiescent())
        throw WireError("snooping cache has transactions in flight");
    w.varint(l2_.useCounter());
    w.varint(l2_.validCount());
    l2_.forEachValidIndexed(
        [&](std::size_t way, std::uint64_t stamp, const SnoopLine &l) {
            w.varint(way);
            w.varint(stamp);
            w.varint(l.addr);
            w.u8(static_cast<std::uint8_t>(l.state));
            w.boolean(l.written);
            w.varint(l.data);
        });
    std::vector<Addr> pred;
    migratoryPred_.forEach([&](Addr a) { pred.push_back(a); });
    std::sort(pred.begin(), pred.end());
    w.varint(pred.size());
    for (Addr a : pred)
        w.varint(a);
    putStructEnd(w);
}

void
SnoopCache::decodeWarmState(WireReader &r)
{
    l2_.setUseCounter(r.varint("l2 use counter"));
    const std::uint64_t count = r.varint("l2 line count");
    if (count > l2_.wayCount())
        throw WireError("l2 line count exceeds the array's ways");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t way = r.varint("l2 way index");
        const std::uint64_t stamp = r.varint("l2 lru stamp");
        const Addr addr = r.varint("l2 line address");
        const std::uint8_t state = r.u8("snoop line state");
        const bool written = r.boolean("snoop line written");
        const std::uint64_t data = r.varint("snoop line data");
        if (way >= l2_.wayCount())
            throw WireError("l2 way index out of range");
        if (l2_.wayValid(way))
            throw WireError("duplicate l2 way in snapshot");
        if (ctx_.blockAlign(addr) != addr)
            throw WireError("l2 line address not block-aligned");
        if (!l2_.wayMatchesSet(way, addr))
            throw WireError("l2 line mapped to the wrong set");
        if (l2_.contains(addr))
            throw WireError("duplicate l2 block in snapshot");
        if (stamp > l2_.useCounter())
            throw WireError("l2 lru stamp exceeds the use counter");
        if (state < 1 || state > 3)
            throw WireError("invalid snooping line state");
        SnoopLine *l = l2_.restoreWay(static_cast<std::size_t>(way),
                                      addr, stamp);
        l->state = static_cast<SnoopState>(state);
        l->written = written;
        l->data = data;
    }
    const std::uint64_t npred = r.varint("migratory predictor size");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < npred; ++i) {
        const Addr a = r.varint("migratory predictor entry");
        if (ctx_.blockAlign(a) != a)
            throw WireError("predictor entry not block-aligned");
        if (i > 0 && a <= prev)
            throw WireError("predictor entries not strictly ascending");
        prev = a;
        migratoryPred_.insert(a);
    }
    checkStructEnd(r, "snooping cache warm state");
}

void
SnoopMemory::encodeWarmState(WireWriter &w) const
{
    std::vector<std::pair<Addr, std::uint64_t>> written;
    for (const auto &[a, v] : store_.blocks()) {
        if (v != BackingStore::initialValue(a))
            written.emplace_back(a, v);
    }
    std::sort(written.begin(), written.end());
    w.varint(written.size());
    for (const auto &[a, v] : written) {
        w.varint(a);
        w.varint(v);
    }

    std::vector<std::pair<Addr, NodeId>> owners;
    for (const auto &[a, mb] : blocks_) {
        if (mb.wbPending || !mb.waiting.empty())
            throw WireError("snooping memory has writebacks in flight");
        if (mb.owner != invalidNode)
            owners.emplace_back(a, mb.owner);
    }
    std::sort(owners.begin(), owners.end());
    w.varint(owners.size());
    for (const auto &[a, o] : owners) {
        w.varint(a);
        w.varint(o);
    }
    putStructEnd(w);
}

void
SnoopMemory::decodeWarmState(WireReader &r)
{
    const std::uint64_t nwritten = r.varint("written block count");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < nwritten; ++i) {
        const Addr a = r.varint("written block address");
        const std::uint64_t v = r.varint("written block value");
        if (ctx_.blockAlign(a) != a)
            throw WireError("written block not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("written block homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("written blocks not strictly ascending");
        prev = a;
        store_.write(a, v);
    }
    const std::uint64_t nowners = r.varint("owner record count");
    prev = 0;
    for (std::uint64_t i = 0; i < nowners; ++i) {
        const Addr a = r.varint("owner record address");
        const std::uint64_t o = r.varint("owner record node");
        if (ctx_.blockAlign(a) != a)
            throw WireError("owner record not block-aligned");
        if (ctx_.home(a) != id_)
            throw WireError("owner record homed elsewhere");
        if (i > 0 && a <= prev)
            throw WireError("owner records not strictly ascending");
        if (o >= static_cast<std::uint64_t>(ctx_.numNodes))
            throw WireError("owner record names an invalid node");
        prev = a;
        blocks_[a].owner = static_cast<NodeId>(o);
    }
    checkStructEnd(r, "snooping memory warm state");
}

} // namespace tokensim
