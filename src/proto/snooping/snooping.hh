/**
 * @file
 * Traditional split-transaction MOSI snooping (Section 5.1 baseline).
 *
 * Every request is a totally-ordered broadcast through the tree's root;
 * all caches and the home memory observe all requests for a block in
 * the same order, which is what resolves the races of Section 2. Like
 * the paper's baseline (modeled on the Sun Starfire [11]), the protocol
 * avoids a snoop-response combining tree by keeping a single "owner"
 * indication at the memory [16] that says whether memory must respond;
 * additional non-stable states relax synchronous timing (a requester
 * whose request has been ordered but whose data has not arrived defers
 * conflicting snoops until the data shows up).
 *
 * Store misses always issue GetM (no separate upgrade transaction);
 * this sidesteps the classic stale-upgrade race and matches the
 * migratory-optimized behavior the paper assumes, where write misses
 * transfer data anyway.
 *
 * The migratory-sharing optimization is implemented on the requester
 * side: a small per-cache predictor marks blocks that exhibit the
 * load-then-store pattern, and loads to marked blocks issue GetM
 * ("load-exclusive") so the whole read-modify-write costs one
 * transaction. Owner-side exclusive handoffs on GetS — what the other
 * protocols use — would move ownership invisibly to the memory's
 * owner tracking and break its stale-writeback filtering, because
 * snooping has no home-serialization point to make the transfer
 * visible; with the requester-side scheme every ownership transfer is
 * a GetM that memory observes in the total order.
 */

#ifndef TOKENSIM_PROTO_SNOOPING_SNOOPING_HH
#define TOKENSIM_PROTO_SNOOPING_SNOOPING_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/block_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "proto/controller.hh"
#include "sim/small_queue.hh"

namespace tokensim {

/** Stable MOSI states of a snooping cache line. */
enum class SnoopState : std::uint8_t
{
    I = 0,
    S,
    O,
    M,
};

/** Human-readable state name. */
const char *snoopStateName(SnoopState s);

/** A snooping L2 line. */
struct SnoopLine : CacheLineBase
{
    SnoopState state = SnoopState::I;
    bool written = false;   ///< stored to while in M (migratory hint)
    std::uint64_t data = 0;
};

/** Snooping L2 cache controller. */
class SnoopCache : public CacheController
{
  public:
    SnoopCache(ProtoContext &ctx, NodeId id,
               const ProtocolParams &params);

    void request(const ProcRequest &req) override;
    void handleMessage(const Message &msg) override;
    bool hasPermission(Addr addr, MemOp op) const override;
    void resetState(const ProtocolParams &params,
                    std::uint64_t seed) override;

    std::uint64_t applyFunctional(const ProcRequest &req,
                                  FunctionalEnv &env) override;
    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    /** Stable state of a block (tests). */
    SnoopState state(Addr addr) const;

    bool
    quiescent() const
    {
        return outstanding_.empty() && wbBuffer_.empty();
    }

  private:
    /** One outstanding miss. */
    struct Transaction
    {
        ProcRequest req;
        Tick issuedAt = 0;
        bool ordered = false;        ///< own request observed
        bool dataReceived = false;
        bool dataExclusive = false;
        bool dataFromMemory = false;
        std::uint64_t dataValue = 0;
        std::vector<Message> deferred;   ///< snoops to apply after fill
    };

    /** A line between PutM issue and writeback-data send. */
    struct WbEntry
    {
        std::uint64_t data = 0;
        bool surrendered = false;   ///< ownership taken by a GetM
    };

    void handleSnoop(const Message &msg);
    void handleOwnRequest(const Message &msg);
    void applySnoop(const Message &msg);
    void handleData(const Message &msg);
    void completeTrans(Addr addr);

    SnoopLine *allocLine(Addr addr);
    void evictVictim(const SnoopLine &victim);
    void respondData(NodeId dest, Addr addr, std::uint64_t value,
                     bool exclusive);

    /** Allocate a line during fast-forward, retiring any victim by
     *  moving its state functionally (no PutM broadcast). */
    SnoopLine *functionalAlloc(Addr ba, FunctionalEnv &env);

    ProtocolParams params_;
    CacheArray<SnoopLine> l2_;
    BlockMap<Transaction> outstanding_;
    BlockMap<WbEntry> wbBuffer_;

    /** Blocks predicted migratory: loads fetch them exclusively. */
    BlockSet migratoryPred_;
};

/**
 * Snooping home memory: observes the total order of requests for the
 * blocks homed here, keeps the per-block owner indication, and responds
 * when no cache owner exists. Writeback data that has been announced
 * (PutM ordered) but not yet arrived causes subsequent requests to
 * queue ("wb pending").
 */
class SnoopMemory : public MemoryController
{
  public:
    SnoopMemory(ProtoContext &ctx, NodeId id,
                const ProtocolParams &params);

    void handleMessage(const Message &msg) override;
    std::uint64_t peekData(Addr addr) const override;
    void resetState(const ProtocolParams &params) override;

    void encodeWarmState(WireWriter &w) const override;
    void decodeWarmState(WireReader &r) override;

    /** True if memory would respond to a request for @p addr. */
    bool memoryOwns(Addr addr) const;

  private:
    /** Fast-forward reaches straight into the home's owner table and
     *  backing store. */
    friend class SnoopCache;
    struct MemBlock
    {
        NodeId owner = invalidNode;   ///< invalidNode = memory owns
        bool wbPending = false;
        SmallQueue<Message> waiting;
    };

    MemBlock &blockFor(Addr addr);
    void respondData(const Message &req);

    ProtocolParams params_;
    BackingStore store_;
    Dram dram_;
    BlockMap<MemBlock> blocks_;
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_SNOOPING_SNOOPING_HH
