#include "proto/types.hh"

namespace tokensim {

const char *
protocolName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::snooping:  return "Snooping";
      case ProtocolKind::directory: return "Directory";
      case ProtocolKind::hammer:    return "Hammer";
      case ProtocolKind::tokenB:    return "TokenB";
      case ProtocolKind::tokenD:    return "TokenD";
      case ProtocolKind::tokenM:    return "TokenM";
      case ProtocolKind::tokenA:    return "TokenA";
      case ProtocolKind::tokenNull: return "TokenNull";
    }
    return "?";
}

bool
isTokenProtocol(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::tokenB:
      case ProtocolKind::tokenD:
      case ProtocolKind::tokenM:
      case ProtocolKind::tokenA:
      case ProtocolKind::tokenNull:
        return true;
      default:
        return false;
    }
}

} // namespace tokensim
