/**
 * @file
 * Shared protocol-level types: processor requests/responses, controller
 * statistics, and per-protocol tuning parameters.
 */

#ifndef TOKENSIM_PROTO_TYPES_HH
#define TOKENSIM_PROTO_TYPES_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace tokensim {

/** Kind of processor memory operation. */
enum class MemOp : std::uint8_t
{
    load = 0,
    store,
};

/** The coherence protocols this library implements. */
enum class ProtocolKind : std::uint8_t
{
    snooping = 0,   ///< traditional MOSI snooping (needs ordered tree)
    directory,      ///< Origin-2000-style full-map MOSI directory
    hammer,         ///< AMD-Hammer-style broadcast-from-home
    tokenB,         ///< Token Coherence w/ broadcast performance protocol
    tokenD,         ///< Section-7: directory-like performance protocol
    tokenM,         ///< Section-7: destination-set-predicting multicast
    tokenA,         ///< Section-7: bandwidth-adaptive TokenB/TokenD hybrid
    tokenNull,      ///< null performance protocol (persistent reqs only)
};

/** Human-readable protocol name. */
const char *protocolName(ProtocolKind k);

/** True for the Token Coherence family (shared correctness substrate). */
bool isTokenProtocol(ProtocolKind k);

/** One memory operation presented by a processor to its cache. */
struct ProcRequest
{
    MemOp op = MemOp::load;
    Addr addr = 0;
    std::uint64_t storeValue = 0;   ///< block payload written by a store
    std::uint64_t reqId = 0;        ///< sequencer-assigned id
};

/** Completion record returned to the processor. */
struct ProcResponse
{
    std::uint64_t reqId = 0;
    Addr addr = 0;
    MemOp op = MemOp::load;
    std::uint64_t value = 0;        ///< block payload observed by a load
    Tick issuedAt = 0;
    Tick completedAt = 0;
    bool wasMiss = false;           ///< required a coherence transaction
    bool cacheToCache = false;      ///< data supplied by another cache
    int reissues = 0;               ///< transient-request reissues (token)
    bool usedPersistent = false;    ///< resorted to a persistent request
};

/**
 * Statistics kept by every cache controller. Token-only fields stay
 * zero for the classical protocols.
 */
struct CacheCtrlStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t hits = 0;          ///< satisfied locally by the L2
    std::uint64_t misses = 0;        ///< coherence transactions started
    std::uint64_t missesCompleted = 0;
    std::uint64_t cacheToCache = 0;  ///< misses served by a remote cache
    std::uint64_t evictions = 0;
    RunningStat missLatency;         ///< ticks per completed miss
    LogHistogram missLatencyHist;    ///< same samples, log2 buckets

    // Token Coherence only (Table 2 inputs).
    std::uint64_t missesNotReissued = 0;
    std::uint64_t missesReissuedOnce = 0;
    std::uint64_t missesReissuedMore = 0;
    std::uint64_t missesPersistent = 0;
    std::uint64_t reissueMessages = 0;
    std::uint64_t persistentInvocations = 0;
};

/** Per-protocol tuning knobs (paper defaults). */
struct ProtocolParams
{
    /**
     * Migratory-sharing optimization (Section 4.2, implemented in all
     * compared protocols): a dirty exclusive owner answering a read
     * request hands over write permission instead of sharing.
     */
    bool migratoryOpt = true;

    // ---- Token Coherence ----

    /**
     * Tokens per block, T. Must be at least the number of processors;
     * 0 means "choose numNodes automatically".
     */
    int tokensPerBlock = 0;

    /** Transient-request reissues before a persistent request (~4). */
    int maxReissues = 4;

    /**
     * Reissue timeout = reissueLatencyMultiple x recent average miss
     * latency, plus a small randomized exponential backoff.
     */
    double reissueLatencyMultiple = 2.0;

    /** Fractional jitter added per reissue (doubles each attempt). */
    double reissueJitter = 0.2;

    /** Average miss latency assumed before any miss completes. */
    Tick initialAvgMissLatency = nsToTicks(400);

    /** Hard cap on the reissue timeout (runaway-backoff guard). */
    Tick maxReissueTimeout = nsToTicks(20000);

    /** Disable reissues entirely (ablation; persistent-only fallback). */
    bool reissueEnabled = true;

    // ---- Failure injection (tests of Section 4.1's claim that a
    // buggy performance protocol cannot affect correctness) ----

    /** Probability a transient request is silently dropped. */
    double chaosDropFraction = 0.0;

    /**
     * Probability a transient request is misdirected to a single
     * random node instead of broadcast.
     */
    double chaosMisdirectFraction = 0.0;

    // ---- Directory ----

    /** Zero-latency directory access ("perfect" SRAM/dir cache). */
    bool perfectDirectory = false;

    // ---- TokenM (destination-set prediction) ----

    /** Predictor table entries per node. */
    std::uint32_t predictorEntries = 8192;

    // ---- TokenA (bandwidth-adaptive) ----

    /** Utilization above which TokenA switches to unicast mode. */
    double adaptiveThreshold = 0.25;

    /** Utilization sampling window. */
    Tick adaptiveWindow = nsToTicks(1000);
};

} // namespace tokensim

#endif // TOKENSIM_PROTO_TYPES_HH
