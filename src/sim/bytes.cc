#include "sim/bytes.hh"

#include <cstring>

namespace tokensim {

namespace {

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

} // namespace

// ---------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------

void
WireWriter::varint(std::uint64_t v)
{
    while (v >= 0x80) {
        out_.push_back(static_cast<char>(
            static_cast<unsigned char>(v) | 0x80));
        v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
}

void
WireWriter::svarint(std::int64_t v)
{
    varint(zigzag(v));
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "");
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

void
WireWriter::str(const std::string &s)
{
    varint(s.size());
    out_.append(s);
}

void
WireWriter::raw(const void *data, std::size_t size)
{
    out_.append(static_cast<const char *>(data), size);
}

// ---------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------

std::uint8_t
WireReader::u8(const char *what)
{
    if (remaining() < 1)
        throw WireError(std::string("truncated while reading ") + what);
    return p_[pos_++];
}

bool
WireReader::boolean(const char *what)
{
    const std::uint8_t v = u8(what);
    if (v > 1) {
        throw WireError(std::string(what) + ": invalid bool byte " +
                        std::to_string(v));
    }
    return v == 1;
}

std::uint64_t
WireReader::varint(const char *what)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos_ >= size_) {
            throw WireError(std::string("truncated mid-varint in ") +
                            what);
        }
        const unsigned char b = p_[pos_++];
        if (shift >= 63) {
            // Byte 10 carries at most bit 63; more payload — or an
            // 11th byte — cannot fit in 64 bits (and shifting by
            // >= 64 would be UB, so reject before it can happen).
            if ((b & 0x7f) > 1 || (b & 0x80)) {
                throw WireError(std::string(what) +
                                ": varint overflows 64 bits");
            }
        }
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

std::int64_t
WireReader::svarint(const char *what)
{
    return unzigzag(varint(what));
}

double
WireReader::f64(const char *what)
{
    if (remaining() < 8)
        throw WireError(std::string("truncated while reading ") + what);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<std::uint64_t>(p_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str(const char *what)
{
    const std::uint64_t len = varint(what);
    if (len > remaining()) {
        throw WireError(std::string(what) + ": string length " +
                        std::to_string(len) + " exceeds the " +
                        std::to_string(remaining()) +
                        " bytes remaining");
    }
    std::string s(reinterpret_cast<const char *>(p_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
}

void
WireReader::raw(void *dst, std::size_t size, const char *what)
{
    if (remaining() < size)
        throw WireError(std::string("truncated while reading ") + what);
    std::memcpy(dst, p_ + pos_, size);
    pos_ += size;
}

void
WireReader::expectEnd(const char *what) const
{
    if (pos_ != size_) {
        throw WireError(std::to_string(size_ - pos_) +
                        " trailing bytes after " + what);
    }
}

// ---------------------------------------------------------------------
// Struct-end sentinel
// ---------------------------------------------------------------------

void
putStructEnd(WireWriter &w)
{
    w.u8(kStructEnd);
}

void
checkStructEnd(WireReader &r, const char *what)
{
    if (r.u8(what) != kStructEnd) {
        throw WireError(std::string(what) +
                        ": layout mismatch (sender and receiver "
                        "disagree about the encoding — version skew?)");
    }
}

} // namespace tokensim
