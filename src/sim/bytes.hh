/**
 * @file
 * Byte-level encoding primitives shared by every binary codec in the
 * tree: the sweep wire format (harness/wire), the warm-state snapshot
 * codec (harness/snapshot), and the per-controller warm-state
 * encoders in proto/ and cpu/ that the snapshot codec composes.
 *
 * Extracted from harness/wire so low-level units can serialize
 * themselves without depending on the harness (harness/system.hh
 * includes the protocol headers, so the include arrow must point this
 * way). harness/wire.hh re-exports everything here; existing callers
 * compile unchanged.
 *
 * Discipline (same as workload/trace.hh): little-endian throughout,
 * ULEB128 varints for counters, zigzag varints for signed ints,
 * doubles as raw IEEE-754 bit patterns, and a bounds-checked reader
 * where every malformed input class — short buffer, oversized varint,
 * non-0/1 bool, trailing garbage — throws a typed WireError naming
 * the field. The parser never reads out of bounds.
 */

#ifndef TOKENSIM_SIM_BYTES_HH
#define TOKENSIM_SIM_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tokensim {

/** Any structural problem with a wire buffer or frame. */
class WireError : public std::runtime_error
{
  public:
    explicit WireError(const std::string &what)
        : std::runtime_error("wire: " + what)
    {}
};

/** Appends primitives to a growing buffer (the inverse of WireReader). */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void varint(std::uint64_t v);
    /** Zigzag-coded signed varint. */
    void svarint(std::int64_t v);
    /** Raw IEEE-754 bit pattern, 8 bytes little-endian. */
    void f64(double v);
    /** varint length + bytes. */
    void str(const std::string &s);
    void raw(const void *data, std::size_t size);

    const std::string &buffer() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/**
 * Bounds-checked cursor over a serialized buffer. Every read names
 * what it was reading so truncation errors localize the field.
 */
class WireReader
{
  public:
    WireReader(const void *data, std::size_t size)
        : p_(static_cast<const unsigned char *>(data)), size_(size)
    {}
    explicit WireReader(const std::string &buf)
        : WireReader(buf.data(), buf.size())
    {}

    std::uint8_t u8(const char *what);
    /** Strict: only 0 and 1 are valid encodings. */
    bool boolean(const char *what);
    std::uint64_t varint(const char *what);
    std::int64_t svarint(const char *what);
    double f64(const char *what);
    std::string str(const char *what);
    void raw(void *dst, std::size_t size, const char *what);

    std::size_t remaining() const { return size_ - pos_; }

    /** Bytes consumed so far (for callers resuming an outer cursor). */
    std::size_t consumed() const { return pos_; }

    /** @throws WireError if any bytes remain unconsumed. */
    void expectEnd(const char *what) const;

  private:
    const unsigned char *p_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/**
 * Marks the end of each struct encoding. A decode that lands anywhere
 * but on this byte means the two sides disagree about the layout —
 * report it as a version skew rather than whatever field error the
 * misparse would otherwise stumble into next.
 */
constexpr std::uint8_t kStructEnd = 0x5a;

void putStructEnd(WireWriter &w);

/** @throws WireError naming @p what if the sentinel byte is absent. */
void checkStructEnd(WireReader &r, const char *what);

} // namespace tokensim

#endif // TOKENSIM_SIM_BYTES_HH
