/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated system. Components
 * schedule callbacks at absolute or relative ticks; events scheduled for
 * the same tick fire in FIFO order of scheduling (a deterministic total
 * order, which keeps simulations reproducible for a given seed).
 *
 * There is intentionally no event cancellation: components that may need
 * to abandon a timer (e.g., TokenB reissue timers) tag their events with a
 * generation counter and ignore stale firings. This mirrors the common
 * simulator idiom and keeps the queue simple and fast.
 */

#ifndef TOKENSIM_SIM_EVENT_QUEUE_HH
#define TOKENSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * The central event queue of a simulated system.
 *
 * Each System owns exactly one EventQueue. All components hold a
 * reference to it and schedule work through it; curTick() is the only
 * notion of "now" in the simulator.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule an event at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callback to run.
     */
    void
    schedule(Tick when, EventFn fn)
    {
        if (when < curTick_)
            when = curTick_;
        events_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule an event @p delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    /** True if no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run until the queue drains or @p maxTick is passed.
     *
     * Events scheduled exactly at @p maxTick still execute; the first
     * event strictly beyond it stays queued and the clock advances to
     * @p maxTick.
     *
     * @return true if the queue drained, false if maxTick stopped it.
     */
    bool
    run(Tick maxTick = tickNever)
    {
        while (!events_.empty()) {
            const Entry &top = events_.top();
            if (top.when > maxTick) {
                curTick_ = maxTick;
                return false;
            }
            curTick_ = top.when;
            EventFn fn = std::move(const_cast<Entry &>(top).fn);
            events_.pop();
            ++executed_;
            fn();
        }
        return true;
    }

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p maxTick passes.
     *
     * @return true if pred was satisfied.
     */
    bool
    runUntil(const std::function<bool()> &pred, Tick maxTick = tickNever)
    {
        if (pred())
            return true;
        while (!events_.empty()) {
            const Entry &top = events_.top();
            if (top.when > maxTick) {
                curTick_ = maxTick;
                return false;
            }
            curTick_ = top.when;
            EventFn fn = std::move(const_cast<Entry &>(top).fn);
            events_.pop();
            ++executed_;
            fn();
            if (pred())
                return true;
        }
        return false;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> events_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_SIM_EVENT_QUEUE_HH
