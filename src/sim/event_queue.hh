/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated system. Components
 * schedule callbacks at absolute or relative ticks; events scheduled for
 * the same tick fire in FIFO order of scheduling (a deterministic total
 * order, which keeps simulations reproducible for a given seed).
 *
 * The queue is a calendar-style bucket ring rather than a binary heap:
 * the next `windowSize` ticks map one-to-one onto an array of buckets
 * (append = O(1), no comparator, no per-event heap churn), with a bitmap
 * over the buckets so finding the next occupied tick is a handful of
 * count-trailing-zero scans. Events beyond the ring's horizon wait in a
 * small overflow heap and migrate into the ring as the clock advances —
 * migration happens eagerly on every clock advance, before any new
 * events can be scheduled, which preserves the global same-tick FIFO
 * order across the horizon boundary.
 *
 * There is intentionally no event cancellation: components that may need
 * to abandon a timer (e.g., TokenB reissue timers) tag their events with a
 * generation counter and ignore stale firings. This mirrors the common
 * simulator idiom and keeps the queue simple and fast.
 */

#ifndef TOKENSIM_SIM_EVENT_QUEUE_HH
#define TOKENSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * The central event queue of a simulated system.
 *
 * Each System owns exactly one EventQueue. All components hold a
 * reference to it and schedule work through it; curTick() is the only
 * notion of "now" in the simulator.
 */
class EventQueue
{
  public:
    EventQueue()
        : buckets_(windowSize), occupied_(windowSize / 64, 0)
    {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule an event at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callback to run.
     */
    void
    schedule(Tick when, EventFn fn)
    {
        if (when < curTick_)
            when = curTick_;
        if (when - curTick_ < windowSize) {
            const std::size_t slot = when & windowMask;
            buckets_[slot].push_back(std::move(fn));
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++ringCount_;
        } else {
            overflow_.push(FarEntry{when, nextSeq_++, std::move(fn)});
        }
    }

    /** Schedule an event @p delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    /** True if no events remain. */
    bool empty() const { return ringCount_ == 0 && overflow_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return ringCount_ + overflow_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run until the queue drains or @p maxTick is passed.
     *
     * Events scheduled exactly at @p maxTick still execute; the first
     * event strictly beyond it stays queued and the clock advances to
     * @p maxTick.
     *
     * @return true if the queue drained, false if maxTick stopped it.
     */
    bool
    run(Tick maxTick = tickNever)
    {
        while (!empty()) {
            const Tick next = nextEventTick();
            if (next > maxTick) {
                advanceTo(maxTick);
                return false;
            }
            advanceTo(next);

            auto &bucket = buckets_[curTick_ & windowMask];
            std::size_t i = 0;
            while (i < bucket.size()) {
                EventFn fn = std::move(bucket[i]);
                ++i;
                ++executed_;
                try {
                    fn();
                } catch (...) {
                    reconcileAfterThrow(bucket, i);
                    throw;
                }
            }
            retireBucket(bucket, i);
        }
        return true;
    }

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p maxTick passes.
     *
     * @return true if pred was satisfied.
     */
    bool
    runUntil(const std::function<bool()> &pred, Tick maxTick = tickNever)
    {
        if (pred())
            return true;
        while (!empty()) {
            const Tick next = nextEventTick();
            if (next > maxTick) {
                advanceTo(maxTick);
                return false;
            }
            advanceTo(next);

            auto &bucket = buckets_[curTick_ & windowMask];
            std::size_t i = 0;
            bool satisfied = false;
            while (i < bucket.size()) {
                EventFn fn = std::move(bucket[i]);
                ++i;
                ++executed_;
                try {
                    fn();
                } catch (...) {
                    reconcileAfterThrow(bucket, i);
                    throw;
                }
                if (pred()) {
                    satisfied = true;
                    break;
                }
            }
            if (i == bucket.size()) {
                retireBucket(bucket, i);
            } else {
                // Early exit mid-bucket: keep the unexecuted suffix
                // (still this tick's events; the slot stays occupied).
                bucket.erase(bucket.begin(),
                             bucket.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                ringCount_ -= i;
            }
            if (satisfied)
                return true;
        }
        return false;
    }

  private:
    /** Ring horizon: how far ahead the bucket array reaches. */
    static constexpr std::size_t windowBits = 12;
    static constexpr std::size_t windowSize = std::size_t{1} << windowBits;
    static constexpr std::size_t windowMask = windowSize - 1;

    /** An event beyond the ring horizon, ordered by (when, seq). */
    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const FarEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /**
     * Earliest pending tick. With the migration invariant (every
     * overflow entry is at least windowSize past curTick_), any
     * occupied ring slot beats the overflow heap.
     */
    Tick
    nextEventTick() const
    {
        if (ringCount_ != 0) {
            const std::size_t start = curTick_ & windowMask;
            const std::size_t startWord = start >> 6;
            constexpr std::size_t numWords = windowSize / 64;
            for (std::size_t k = 0; k <= numWords; ++k) {
                const std::size_t w = (startWord + k) & (numWords - 1);
                std::uint64_t word = occupied_[w];
                if (k == 0)
                    word &= ~std::uint64_t{0} << (start & 63);
                else if (k == numWords)
                    word &= (std::uint64_t{1} << (start & 63)) - 1;
                if (word) {
                    const std::size_t slot =
                        (w << 6) +
                        static_cast<std::size_t>(
                            __builtin_ctzll(word));
                    return curTick_ + ((slot - start) & windowMask);
                }
            }
        }
        return overflow_.top().when;
    }

    /**
     * Advance the clock and immediately migrate every overflow event
     * that the new window now covers. Doing this on every advance —
     * before any handler can schedule — keeps same-tick FIFO exact
     * across the horizon: a ring bucket only ever receives entries in
     * global scheduling order.
     */
    void
    advanceTo(Tick t)
    {
        if (t > curTick_)
            curTick_ = t;
        while (!overflow_.empty() &&
               overflow_.top().when - curTick_ < windowSize) {
            auto &top = const_cast<FarEntry &>(overflow_.top());
            const std::size_t slot = top.when & windowMask;
            buckets_[slot].push_back(std::move(top.fn));
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++ringCount_;
            overflow_.pop();
        }
    }

    /**
     * A handler threw mid-drain: drop the executed (moved-from)
     * prefix and fix the counters so the queue stays consistent and
     * resumable, like the old pop-before-execute heap was.
     */
    void
    reconcileAfterThrow(std::vector<EventFn> &bucket, std::size_t n)
    {
        bucket.erase(bucket.begin(),
                     bucket.begin() + static_cast<std::ptrdiff_t>(n));
        ringCount_ -= n;
        if (bucket.empty()) {
            const std::size_t slot = curTick_ & windowMask;
            occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        }
    }

    /** Finish a fully drained bucket: release storage accounting. */
    void
    retireBucket(std::vector<EventFn> &bucket, std::size_t n)
    {
        bucket.clear();
        ringCount_ -= n;
        const std::size_t slot = curTick_ & windowMask;
        occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }

    std::vector<std::vector<EventFn>> buckets_;
    std::vector<std::uint64_t> occupied_;
    std::size_t ringCount_ = 0;
    std::priority_queue<FarEntry, std::vector<FarEntry>,
                        std::greater<>>
        overflow_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_SIM_EVENT_QUEUE_HH
