/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated system. Components
 * schedule callbacks at absolute or relative ticks; events scheduled for
 * the same tick fire in FIFO order of scheduling (a deterministic total
 * order, which keeps simulations reproducible for a given seed).
 *
 * ## The event record (SBO size contract)
 *
 * Events are stored as Event records: a fixed-size, small-buffer-
 * optimized closure with `Event::inlineCapacity` bytes of inline
 * storage and NO heap fallback. Constructing an Event from a callable
 * larger than the inline buffer is a compile error (static_assert), so
 * scheduling can never allocate behind the simulator's back the way
 * std::function's SBO-miss path does. The capacity is sized for the
 * largest closure the simulator schedules — a controller send helper
 * capturing `this`, a full Message by value, and a destination vector
 * (8 + 88 + 24 bytes; see ControllerBase::multicastAfter) — and the
 * static_assert is the contract: if Message grows, the assert fires at
 * the offending capture site and the capacity here must be revisited
 * deliberately.
 *
 * ## The pool design (allocation-free steady state)
 *
 * The queue is a calendar-style bucket ring rather than a binary heap:
 * the next `windowSize` ticks map one-to-one onto an array of buckets
 * (append = O(1), no comparator, no per-event heap churn), with a bitmap
 * over the buckets so finding the next occupied tick is a handful of
 * count-trailing-zero scans. The bucket vectors are the event arena:
 * they are cleared after draining but never shrunk, so once the ring has
 * warmed up, scheduling is a placement-construct into recycled storage
 * and dispatch frees nothing — the steady-state loop performs zero heap
 * allocations (tests/test_sim.cc proves this with a counting
 * operator new). Events beyond the ring's horizon wait in a small
 * overflow heap (a capacity-retaining vector managed with push_heap/
 * pop_heap) and migrate into the ring as the clock advances — migration
 * happens eagerly on every clock advance, before any new events can be
 * scheduled, which preserves the global same-tick FIFO order across the
 * horizon boundary.
 *
 * ## Timers (cancellable, reschedulable)
 *
 * Plain scheduled events cannot be cancelled — the bucket arena hands
 * out no stable handles. Components that need an abandonable deadline
 * (reissue timeouts, the arbiter's delayed broadcasts) hold an
 * EventQueue::Timer: a handle onto a slot-stable pooled timer record.
 * Arming stores the callback in the pool slot and schedules a small
 * proxy event carrying (slot, generation); cancel and reschedule bump
 * the generation (cancel also destroys the callback immediately, so
 * captures are released at cancel time). A superseded proxy still
 * drains through the ring — cancellation is lazy — but it fires into a
 * generation check instead of a user callback, costs no protocol work,
 * and is excluded from dispatched(). Slots recycle through a free list
 * tied to handle lifetime, so steady-state timer churn is
 * allocation-free like everything else here.
 */

#ifndef TOKENSIM_SIM_EVENT_QUEUE_HH
#define TOKENSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tokensim {

/**
 * A fixed-size, move-only callable: the one event type the queue
 * stores. Captures live inline (never on the heap); see the file
 * comment for the size contract.
 */
class Event
{
  public:
    /** Inline capture storage, in bytes. */
    static constexpr std::size_t inlineCapacity = 120;

    Event() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Event>>>
    Event(F &&f)   // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineCapacity,
                      "event closure exceeds Event::inlineCapacity — "
                      "it would spill to the heap; shrink the capture "
                      "or grow the contract in sim/event_queue.hh");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event closure");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event closures must be nothrow-movable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        vt_ = &vtableFor<Fn>;
    }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    Event(Event &&o) noexcept
    {
        if (o.vt_) {
            vt_ = o.vt_;
            vt_->relocate(buf_, o.buf_);
            o.vt_ = nullptr;
        }
    }

    Event &
    operator=(Event &&o) noexcept
    {
        if (this != &o) {
            if (vt_)
                vt_->destroy(buf_);
            vt_ = nullptr;
            if (o.vt_) {
                vt_ = o.vt_;
                vt_->relocate(buf_, o.buf_);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    ~Event()
    {
        if (vt_)
            vt_->destroy(buf_);
    }

    /** True if this event holds a callable (not moved-from). */
    explicit operator bool() const noexcept { return vt_ != nullptr; }

    /** Invoke the stored callable. */
    void operator()() { vt_->invoke(buf_); }

    /**
     * Invoke the stored callable and destroy it in one indirect call,
     * leaving this Event empty — the dispatch loop's fast path (the
     * callable is destroyed even if it throws).
     */
    void
    runAndDispose()
    {
        const VTable *vt = vt_;
        vt_ = nullptr;
        vt->run(buf_);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        void (*run)(void *);   ///< invoke + destroy (throw-safe)
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr VTable vtableFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *p) {
            struct Guard
            {
                Fn *f;
                ~Guard() { f->~Fn(); }
            } g{static_cast<Fn *>(p)};
            (*g.f)();
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
    };

    alignas(std::max_align_t) unsigned char buf_[inlineCapacity];
    const VTable *vt_ = nullptr;
};

static_assert(sizeof(Event) == 128,
              "Event should stay exactly two cache lines");

/** Callback type executed when an event fires. */
using EventFn = Event;

/**
 * The central event queue of a simulated system.
 *
 * Each System owns exactly one EventQueue. All components hold a
 * reference to it and schedule work through it; curTick() is the only
 * notion of "now" in the simulator.
 */
class EventQueue
{
  public:
    EventQueue()
        : buckets_(windowSize), occupied_(windowSize / 64, 0)
    {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule an event at an absolute tick.
     *
     * A template so the caller's closure is placement-constructed
     * directly into the bucket's Event slot — no intermediate Event
     * copy on the hottest call in the simulator.
     *
     * @param when absolute tick; must not be in the past.
     * @param fn callback to run (anything an Event can hold).
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        ++scheduled_;
        if (when < curTick_)
            when = curTick_;
        if (when - curTick_ < windowSize) {
            const std::size_t slot = when & windowMask;
            auto &bucket = buckets_[slot];
            if (bucket.capacity() == bucket.size()) {
                // Skip the 1->2->4 growth crawl: events are two cache
                // lines each, so tiny reallocations are all copy.
                bucket.reserve(bucket.empty() ? 4
                                              : 2 * bucket.size());
            }
            bucket.emplace_back(std::forward<F>(fn));
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++ringCount_;
        } else {
            overflow_.push_back(FarEntry{when, nextSeq_++,
                                         Event(std::forward<F>(fn))});
            std::push_heap(overflow_.begin(), overflow_.end(),
                           FarEntry::Later{});
        }
    }

    /** Schedule an event @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(curTick_ + delay, std::forward<F>(fn));
    }

    /** True if no events remain. */
    bool empty() const { return ringCount_ == 0 && overflow_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return ringCount_ + overflow_.size(); }

    /** Total number of events executed so far. This is the raw record
     *  count — it includes superseded timer proxies that fired into a
     *  generation check; see dispatched() for the useful-work count. */
    std::uint64_t executed() const { return executed_; }

    /** Total events accepted by schedule()/scheduleIn(), including
     *  the proxy scheduled by every Timer arm/re-arm. */
    std::uint64_t scheduled() const { return scheduled_; }

    /**
     * Events that executed a live callback: executed() minus timer
     * proxies that fired stale (cancelled, rescheduled, or reset away
     * before their tick). The events-per-op diagnostics report this.
     */
    std::uint64_t
    dispatched() const
    {
        return executed_ - staleTimerFires_;
    }

    /** Timer disarms: explicit cancel(), a re-schedule of a pending
     *  timer, or handle destruction while pending. */
    std::uint64_t cancelled() const { return cancelled_; }

    /**
     * Return to the just-constructed state (time zero, no events, no
     * counters) while KEEPING the grown bucket/overflow storage — the
     * reusable-System path resets the queue between runs so the next
     * run starts allocation-free.
     */
    void
    reset()
    {
        for (auto &b : buckets_)
            b.clear();
        drain_.clear();
        std::fill(occupied_.begin(), occupied_.end(), 0);
        overflow_.clear();
        ringCount_ = 0;
        curTick_ = 0;
        nextSeq_ = 0;
        executed_ = 0;
        scheduled_ = 0;
        cancelled_ = 0;
        staleTimerFires_ = 0;
        // Disarm every timer: pending callbacks are destroyed with the
        // rest of the queue's events. Handles keep their slots (and
        // stay usable — re-arming after a reset is allowed); only the
        // armed state and the stored callback are wiped.
        for (std::uint32_t s = 0; s < timerCount_; ++s) {
            TimerSlot &slot = timerSlot(s);
            slot.armed = false;
            slot.fn = Event();
        }
    }

    /**
     * Run until the queue drains or @p maxTick is passed.
     *
     * Events scheduled exactly at @p maxTick still execute; the first
     * event strictly beyond it stays queued and the clock advances to
     * @p maxTick.
     *
     * @return true if the queue drained, false if maxTick stopped it.
     */
    bool
    run(Tick maxTick = tickNever)
    {
        runUntil([]() { return false; }, maxTick);
        return empty();
    }

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p maxTick passes.
     *
     * A template so the predicate check inlines into the dispatch
     * loop (the harness polls a counter after every event).
     *
     * @return true if pred was satisfied.
     */
    template <typename Pred>
    bool
    runUntil(Pred &&pred, Tick maxTick = tickNever)
    {
        if (pred())
            return true;
        while (!empty()) {
            const Tick next = nextEventTick();
            if (next > maxTick) {
                advanceTo(maxTick);
                return false;
            }
            advanceTo(next);

            auto &bucket = buckets_[curTick_ & windowMask];
            // Swap the bucket's events into the drain buffer and run
            // them IN PLACE (no per-event move): handlers appending
            // same-tick events refill `bucket`, which the outer loop
            // then drains — the same global FIFO order as appending
            // to a live bucket.
            while (!bucket.empty()) {
                drain_.swap(bucket);
                const std::size_t n = drain_.size();
                ringCount_ -= n;
                {
                    const std::size_t slot = curTick_ & windowMask;
                    occupied_[slot >> 6] &=
                        ~(std::uint64_t{1} << (slot & 63));
                }
                std::size_t i = 0;
                try {
                    for (; i < n; ++i) {
                        ++executed_;
                        drain_[i].runAndDispose();
                        if (pred()) {
                            ++i;
                            requeueSuffix(bucket, i);
                            return true;
                        }
                    }
                } catch (...) {
                    requeueSuffix(bucket, i + 1);
                    throw;
                }
                drain_.clear();
            }
            // Hand the slot back its own (largest) buffer so bucket
            // capacities stay put across reuse instead of rotating
            // through the drain buffer — that rotation would cause
            // steady-state reallocations whenever a big bucket
            // inherited a small buffer.
            if (drain_.capacity() > bucket.capacity())
                drain_.swap(bucket);
        }
        return false;
    }

    /**
     * A cancellable, reschedulable deadline — the handle side of the
     * queue's pooled timer records (see the file comment).
     *
     * A default-constructed Timer is idle. schedule() binds it to a
     * queue on first use (one queue per handle, asserted), arms it,
     * and implicitly cancels any pending arming — a Timer holds at
     * most one live deadline. reschedule() moves a *pending* timer's
     * deadline, reusing the stored callback; after the timer fires or
     * is cancelled the callback is gone and schedule() must supply a
     * new one. cancel() on an idle timer is a no-op, so completion
     * paths can cancel unconditionally.
     *
     * The handle owns its pool slot: move-only, releasing the slot on
     * destruction (cancelling first). EventQueue::reset() disarms
     * every timer but leaves handles usable — they may be re-armed,
     * cancelled, or destroyed afterwards. Handles must not outlive
     * their queue.
     */
    class Timer
    {
      public:
        Timer() = default;

        ~Timer() { release(); }

        Timer(const Timer &) = delete;
        Timer &operator=(const Timer &) = delete;

        Timer(Timer &&o) noexcept : eq_(o.eq_), slot_(o.slot_)
        {
            o.eq_ = nullptr;
            o.slot_ = noTimer;
        }

        Timer &
        operator=(Timer &&o) noexcept
        {
            if (this != &o) {
                release();
                eq_ = o.eq_;
                slot_ = o.slot_;
                o.eq_ = nullptr;
                o.slot_ = noTimer;
            }
            return *this;
        }

        /** True if armed and not yet fired. */
        bool
        pending() const
        {
            return eq_ && slot_ != noTimer &&
                eq_->timerSlot(slot_).armed;
        }

        /** Absolute fire tick; only meaningful while pending(). */
        Tick
        deadline() const
        {
            assert(pending());
            return eq_->timerSlot(slot_).when;
        }

        /**
         * Arm (or re-arm) the timer to run @p fn at absolute tick
         * @p when. Supersedes any pending deadline.
         */
        template <typename F>
        void
        schedule(EventQueue &eq, Tick when, F &&fn)
        {
            bind(eq);
            TimerSlot &s = eq_->timerSlot(slot_);
            if (s.armed)
                ++eq_->cancelled_;
            s.fn = Event(std::forward<F>(fn));
            arm(when);
        }

        /** Arm the timer @p delay ticks from now. */
        template <typename F>
        void
        scheduleIn(EventQueue &eq, Tick delay, F &&fn)
        {
            schedule(eq, eq.curTick() + delay,
                     std::forward<F>(fn));
        }

        /**
         * Move a pending timer's deadline to @p when, keeping the
         * stored callback. The timer must be pending — after a fire
         * or cancel there is no callback left to reuse.
         */
        void
        reschedule(Tick when)
        {
            assert(pending() &&
                   "reschedule() needs a pending timer; use "
                   "schedule() to arm with a fresh callback");
            ++eq_->cancelled_;
            arm(when);
        }

        /** Move a pending timer's deadline @p delay ticks from now. */
        void
        rescheduleIn(Tick delay)
        {
            reschedule(eq_->curTick() + delay);
        }

        /**
         * Disarm: the stored callback is destroyed now (releasing its
         * captures) and the already-scheduled proxy fires stale. Idle
         * timers ignore this, so it is safe on every completion path.
         */
        void
        cancel() noexcept
        {
            if (!pending())
                return;
            TimerSlot &s = eq_->timerSlot(slot_);
            s.armed = false;
            s.fn = Event();
            ++eq_->cancelled_;
        }

      private:
        /** Adopt @p eq and a pool slot on first use. */
        void
        bind(EventQueue &eq)
        {
            assert((!eq_ || eq_ == &eq) &&
                   "a Timer binds to one EventQueue for life");
            eq_ = &eq;
            if (slot_ == noTimer)
                slot_ = eq_->acquireTimerSlot();
        }

        /** Stamp a fresh generation and schedule the proxy. */
        void
        arm(Tick when)
        {
            auto &s = eq_->timerSlot(slot_);
            if (when < eq_->curTick_)
                when = eq_->curTick_;
            ++s.gen;
            s.when = when;
            s.armed = true;
            eq_->schedule(when, TimerFire{eq_, slot_, s.gen});
        }

        void
        release() noexcept
        {
            if (eq_ && slot_ != noTimer) {
                cancel();
                eq_->releaseTimerSlot(slot_);
            }
            eq_ = nullptr;
            slot_ = noTimer;
        }

        EventQueue *eq_ = nullptr;
        std::uint32_t slot_ = noTimer;
    };

  private:
    /** Ring horizon: how far ahead the bucket array reaches. */
    static constexpr std::size_t windowBits = 12;
    static constexpr std::size_t windowSize = std::size_t{1} << windowBits;
    static constexpr std::size_t windowMask = windowSize - 1;

    /** An event beyond the ring horizon, ordered by (when, seq). */
    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Event fn;

        /** Min-heap comparator: "a fires later than b". */
        struct Later
        {
            bool
            operator()(const FarEntry &a, const FarEntry &b) const
            {
                if (a.when != b.when)
                    return a.when > b.when;
                return a.seq > b.seq;
            }
        };
    };

    /**
     * Earliest pending tick. With the migration invariant (every
     * overflow entry is at least windowSize past curTick_), any
     * occupied ring slot beats the overflow heap.
     */
    Tick
    nextEventTick() const
    {
        if (ringCount_ != 0) {
            const std::size_t start = curTick_ & windowMask;
            const std::size_t startWord = start >> 6;
            constexpr std::size_t numWords = windowSize / 64;
            for (std::size_t k = 0; k <= numWords; ++k) {
                const std::size_t w = (startWord + k) & (numWords - 1);
                std::uint64_t word = occupied_[w];
                if (k == 0)
                    word &= ~std::uint64_t{0} << (start & 63);
                else if (k == numWords)
                    word &= (std::uint64_t{1} << (start & 63)) - 1;
                if (word) {
                    const std::size_t slot =
                        (w << 6) +
                        static_cast<std::size_t>(
                            __builtin_ctzll(word));
                    return curTick_ + ((slot - start) & windowMask);
                }
            }
        }
        return overflow_.front().when;
    }

    /**
     * Advance the clock and immediately migrate every overflow event
     * that the new window now covers. Doing this on every advance —
     * before any handler can schedule — keeps same-tick FIFO exact
     * across the horizon: a ring bucket only ever receives entries in
     * global scheduling order.
     */
    void
    advanceTo(Tick t)
    {
        if (t > curTick_)
            curTick_ = t;
        while (!overflow_.empty() &&
               overflow_.front().when - curTick_ < windowSize) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          FarEntry::Later{});
            FarEntry &e = overflow_.back();
            const std::size_t slot = e.when & windowMask;
            buckets_[slot].push_back(std::move(e.fn));
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++ringCount_;
            overflow_.pop_back();
        }
    }

    /**
     * The drain stopped early (predicate satisfied or a handler
     * threw): the unexecuted suffix drain_[from..] must run before
     * any same-tick events handlers appended to @p bucket, so splice
     * it back to the bucket's front and fix the ring accounting.
     */
    void
    requeueSuffix(std::vector<Event> &bucket, std::size_t from)
    {
        const std::size_t left = drain_.size() - from;
        if (left != 0) {
            bucket.insert(
                bucket.begin(),
                std::make_move_iterator(
                    drain_.begin() +
                    static_cast<std::ptrdiff_t>(from)),
                std::make_move_iterator(drain_.end()));
            ringCount_ += left;
        }
        if (!bucket.empty()) {
            const std::size_t slot = curTick_ & windowMask;
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        }
        drain_.clear();
    }

    // ---- Timer pool -----------------------------------------------
    //
    // One slot per live Timer handle, in fixed-size chunks so slot
    // addresses stay stable while a firing callback grows the pool.
    // The proxy event in the ring carries (slot, generation); a
    // generation mismatch — or a disarmed slot — means the proxy was
    // superseded and it returns without touching user code.

    /** No-slot sentinel / free-list terminator. */
    static constexpr std::uint32_t noTimer = ~std::uint32_t{0};

    struct TimerSlot
    {
        Event fn;                          ///< armed callback
        Tick when = 0;                     ///< armed deadline
        std::uint32_t gen = 0;             ///< bumped on every arm
        std::uint32_t nextFree = noTimer;
        bool armed = false;
    };

    static constexpr std::uint32_t timerChunkBits = 6;
    static constexpr std::uint32_t timerChunkSize =
        1u << timerChunkBits;

    TimerSlot &
    timerSlot(std::uint32_t s)
    {
        return timerChunks_[s >> timerChunkBits]
                           [s & (timerChunkSize - 1)];
    }

    std::uint32_t
    acquireTimerSlot()
    {
        std::uint32_t s;
        if (timerFreeHead_ != noTimer) {
            s = timerFreeHead_;
            timerFreeHead_ = timerSlot(s).nextFree;
        } else {
            s = timerCount_++;
            if ((s >> timerChunkBits) >= timerChunks_.size()) {
                timerChunks_.push_back(
                    std::make_unique<TimerSlot[]>(timerChunkSize));
            }
        }
        return s;
    }

    void
    releaseTimerSlot(std::uint32_t s) noexcept
    {
        TimerSlot &slot = timerSlot(s);
        slot.nextFree = timerFreeHead_;
        timerFreeHead_ = s;
    }

    /** The proxy event a Timer arm schedules into the ring. */
    struct TimerFire
    {
        EventQueue *q;
        std::uint32_t slot;
        std::uint32_t gen;

        void operator()() { q->fireTimer(slot, gen); }
    };

    /**
     * Proxy dispatch: run the armed callback, or count a stale fire
     * if this proxy was superseded. The callback is moved out of the
     * slot before it runs, so it may freely re-arm its own timer.
     */
    void
    fireTimer(std::uint32_t slot, std::uint32_t gen)
    {
        TimerSlot &s = timerSlot(slot);
        if (!s.armed || s.gen != gen) {
            ++staleTimerFires_;
            return;
        }
        s.armed = false;
        Event fn = std::move(s.fn);
        fn.runAndDispose();
    }

    std::vector<std::vector<Event>> buckets_;
    /** Scratch the dispatch loop drains a bucket into (swap target;
     *  retains the high-water capacity across ticks). */
    std::vector<Event> drain_;
    std::vector<std::uint64_t> occupied_;
    std::size_t ringCount_ = 0;
    /** Min-heap (via push_heap/pop_heap) of beyond-horizon events;
     *  a plain vector so capacity survives reset(). */
    std::vector<FarEntry> overflow_;
    /** Timer pool chunks (see the Timer pool section above). */
    std::vector<std::unique_ptr<TimerSlot[]>> timerChunks_;
    std::uint32_t timerCount_ = 0;
    std::uint32_t timerFreeHead_ = noTimer;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t staleTimerFires_ = 0;
};

/** The simulator's timer handle (see EventQueue::Timer). */
using Timer = EventQueue::Timer;

} // namespace tokensim

#endif // TOKENSIM_SIM_EVENT_QUEUE_HH
