#include "sim/log.hh"

#include <atomic>
#include <cstdio>

namespace tokensim {
namespace logging {

namespace {
// Atomic so ParallelRunner workers can read it without a data race.
std::atomic<Level> globalLevel{Level::none};
} // namespace

void
setLevel(Level lvl)
{
    globalLevel = lvl;
}

Level
level()
{
    return globalLevel.load(std::memory_order_relaxed);
}

bool
enabled(Level lvl)
{
    return static_cast<int>(lvl) <= static_cast<int>(level());
}

void
write(Level lvl, Tick tick, const std::string &tag, const std::string &msg)
{
    if (!enabled(lvl))
        return;
    std::fprintf(stdout, "[%10.1fns] %-12s %s\n", ticksToNsF(tick),
                 tag.c_str(), msg.c_str());
}

} // namespace logging
} // namespace tokensim
