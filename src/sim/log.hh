/**
 * @file
 * Minimal leveled logging for simulator debugging.
 *
 * Logging is off by default (Level::none) so benches pay only a branch.
 * Tests and the examples turn on trace output to show protocol activity
 * (e.g., the Figure-2 race walk-through prints every message).
 */

#ifndef TOKENSIM_SIM_LOG_HH
#define TOKENSIM_SIM_LOG_HH

#include <string>

#include "sim/types.hh"

namespace tokensim {
namespace logging {

/** Verbosity levels, in increasing detail. */
enum class Level
{
    none = 0,
    warn,
    info,
    debug,
    trace,
};

/** Set the global verbosity. */
void setLevel(Level lvl);

/** Current global verbosity. */
Level level();

/** True if a message at @p lvl would be emitted. */
bool enabled(Level lvl);

/**
 * Emit one line: "[tick] tag: message".
 * @param lvl severity of this message.
 * @param tick current simulated time (for prefixing).
 * @param tag short component tag such as "tokenb.3" or "net".
 * @param msg preformatted body.
 */
void write(Level lvl, Tick tick, const std::string &tag,
           const std::string &msg);

} // namespace logging
} // namespace tokensim

#endif // TOKENSIM_SIM_LOG_HH
