#include "sim/metrics.hh"

#include <stdexcept>

namespace tokensim {

bool
Metric::operator==(const Metric &o) const
{
    if (name != o.name || kind != o.kind || pinned != o.pinned)
        return false;
    switch (kind) {
      case MetricKind::counter:
        return value == o.value;
      case MetricKind::stat:
        return stat == o.stat;
      case MetricKind::histogram:
        return hist == o.hist;
    }
    return false;
}

Metric &
MetricRegistry::addMetric(const std::string &name, MetricKind kind,
                          bool pinned)
{
    if (name.empty())
        throw std::invalid_argument("metric name must not be empty");
    if (find(name)) {
        throw std::invalid_argument("duplicate metric name: " + name);
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    m.pinned = pinned;
    metrics_.push_back(std::move(m));
    return metrics_.back();
}

void
MetricRegistry::addCounter(const std::string &name, bool pinned,
                           std::uint64_t value)
{
    addMetric(name, MetricKind::counter, pinned).value = value;
}

void
MetricRegistry::addStat(const std::string &name, bool pinned,
                        const RunningStat &stat)
{
    addMetric(name, MetricKind::stat, pinned).stat = stat;
}

void
MetricRegistry::addHistogram(const std::string &name, bool pinned,
                             const LogHistogram &hist)
{
    addMetric(name, MetricKind::histogram, pinned).hist = hist;
}

const Metric *
MetricRegistry::find(const std::string &name) const
{
    for (const Metric &m : metrics_) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    const Metric *m = find(name);
    return m && m->kind == MetricKind::counter ? m->value : 0;
}

RunningStat
MetricRegistry::statValue(const std::string &name) const
{
    const Metric *m = find(name);
    return m && m->kind == MetricKind::stat ? m->stat : RunningStat{};
}

const LogHistogram *
MetricRegistry::histogram(const std::string &name) const
{
    const Metric *m = find(name);
    return m && m->kind == MetricKind::histogram ? &m->hist : nullptr;
}

void
MetricRegistry::merge(const MetricRegistry &o)
{
    for (const Metric &om : o.metrics_) {
        Metric *mine = nullptr;
        for (Metric &m : metrics_) {
            if (m.name == om.name) {
                mine = &m;
                break;
            }
        }
        if (!mine) {
            metrics_.push_back(om);
            continue;
        }
        if (mine->kind != om.kind) {
            throw std::logic_error("metric kind mismatch merging " +
                                   om.name);
        }
        if (mine->pinned != om.pinned) {
            throw std::logic_error(
                "metric pinned flag mismatch merging " + om.name);
        }
        switch (mine->kind) {
          case MetricKind::counter:
            mine->value += om.value;
            break;
          case MetricKind::stat:
            mine->stat.combine(om.stat);
            break;
          case MetricKind::histogram:
            mine->hist.merge(om.hist);
            break;
        }
    }
}

bool
MetricRegistry::operator==(const MetricRegistry &o) const
{
    return metrics_ == o.metrics_;
}

} // namespace tokensim
