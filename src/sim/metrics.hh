/**
 * @file
 * Named-metric registry: the typed, self-describing container behind
 * System::Results ("results v2").
 *
 * Every run statistic is one Metric — a monotonic counter, a
 * RunningStat, or a sparse log-bucket histogram — registered under a
 * stable string name with a merge rule implied by its kind (sum /
 * Welford-combine / bucket-add) and a pinned-vs-diagnostic flag.
 * Aggregation (harness/experiment.cc), parallel sharding
 * (harness/parallel_runner.cc), and the process wire format
 * (harness/wire.cc) all operate on the registry generically: adding a
 * metric is a one-line registration in System::results(), not a
 * six-file plumbing change.
 *
 * ## Pinned vs diagnostic
 *
 * `pinned` metrics feed the aggregates that resultDigest() prints —
 * the golden-trace oracle pins their values, so changing how one is
 * collected or merged requires a golden regeneration with written
 * justification (tests/golden/README.md policy). `diagnostic` metrics
 * (event-kernel counters, traffic breakdowns, latency histograms)
 * describe simulator cost or extra detail: they must still be
 * deterministic — identicalResults() and the dist/parallel
 * differential gates compare the *whole* registry — but they stay out
 * of the digest so bookkeeping changes never churn goldens.
 *
 * ## Determinism contract
 *
 * A registry is an ordered sequence, not a map: two registries are
 * equal only if they hold the same metrics in the same order with
 * bit-identical payloads. System::results() registers metrics in one
 * fixed order, so serial, ParallelRunner, and DistRunner results
 * compare with a plain operator==.
 */

#ifndef TOKENSIM_SIM_METRICS_HH
#define TOKENSIM_SIM_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace tokensim {

/** What a Metric holds; doubles as its wire tag and merge rule. */
enum class MetricKind : std::uint8_t
{
    counter = 0,    ///< u64, merges by sum
    stat = 1,       ///< RunningStat, merges by Welford-combine
    histogram = 2,  ///< LogHistogram, merges by bucket-wise add
};

/** Readability constants for the registration flag. */
constexpr bool metricPinned = true;
constexpr bool metricDiagnostic = false;

/** One named statistic. Exactly one payload is live, per `kind`. */
struct Metric
{
    std::string name;
    MetricKind kind = MetricKind::counter;
    bool pinned = false;

    std::uint64_t value = 0;  ///< kind == counter
    RunningStat stat;         ///< kind == stat
    LogHistogram hist;        ///< kind == histogram

    bool operator==(const Metric &o) const;
    bool operator!=(const Metric &o) const { return !(*this == o); }
};

/** Insertion-ordered collection of uniquely named metrics. */
class MetricRegistry
{
  public:
    /** @throws std::invalid_argument on an empty or duplicate name. */
    void addCounter(const std::string &name, bool pinned,
                    std::uint64_t value);
    void addStat(const std::string &name, bool pinned,
                 const RunningStat &stat);
    void addHistogram(const std::string &name, bool pinned,
                      const LogHistogram &hist);

    /** The metric named @p name, or nullptr. Linear scan: a run
     *  produces ~45 metrics and lookups happen at reporting time, not
     *  on the simulation hot path. */
    const Metric *find(const std::string &name) const;

    /** Counter value, or 0 if absent (absent ≡ never incremented —
     *  what a default-constructed Results reports for every field). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Stat payload, or an empty RunningStat if absent. */
    RunningStat statValue(const std::string &name) const;

    /** Histogram payload, or nullptr if absent. */
    const LogHistogram *histogram(const std::string &name) const;

    /**
     * Fold @p o into this registry: shared names merge by kind (sum /
     * combine / bucket-add), names only in @p o are appended. This is
     * the one merge every aggregation path uses — cross-seed
     * (aggregateResults), cross-thread (ParallelRunner), and
     * cross-process (DistRunner) — so they cannot drift apart.
     *
     * @throws std::logic_error if a shared name disagrees on kind or
     * pinned flag: that means two builds registered the same metric
     * differently, a bug to surface, not to paper over.
     */
    void merge(const MetricRegistry &o);

    /** Order-sensitive, bit-exact equality (see file comment). */
    bool operator==(const MetricRegistry &o) const;
    bool operator!=(const MetricRegistry &o) const
    {
        return !(*this == o);
    }

    const std::vector<Metric> &all() const { return metrics_; }
    std::size_t size() const { return metrics_.size(); }
    bool empty() const { return metrics_.empty(); }

  private:
    Metric &addMetric(const std::string &name, MetricKind kind,
                      bool pinned);

    std::vector<Metric> metrics_;
};

} // namespace tokensim

#endif // TOKENSIM_SIM_METRICS_HH
