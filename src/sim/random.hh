/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (workload generators, the TokenB backoff
 * timer, the random tester) owns its own Rng seeded from the system seed
 * plus a component-specific salt, so adding a component never perturbs
 * the random stream of another. Runs with equal seeds are bit-identical.
 */

#ifndef TOKENSIM_SIM_RANDOM_HH
#define TOKENSIM_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace tokensim {

/**
 * A small, fast, deterministic RNG (xoshiro256** seeded via SplitMix64).
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds give identical streams. */
    explicit Rng(std::uint64_t seed = 0x544f4b454e53494dULL)
    {
        // SplitMix64 to spread the seed over the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Derive an independent stream for a sub-component. */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL + salt));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t t = -bound % bound;
            while (lo < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometrically distributed count of trials until first success with
     * probability @p p (>= 1). Used for think-time style delays.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        double u = uniform();
        // Avoid log(0).
        if (u <= 0.0)
            u = 0x1.0p-60;
        return 1 +
            static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tokensim

#endif // TOKENSIM_SIM_RANDOM_HH
