/**
 * @file
 * A FIFO queue on a vector, for short per-block wait queues.
 *
 * The protocols' home controllers keep a small queue of waiting
 * requests per block. std::deque is the obvious container, but its
 * default constructor heap-allocates a chunk — and these queues live
 * inside BlockMap tables that are grown, rehashed, and recycled by the
 * reusable-System path, so "default-construct a value" must be free.
 * SmallQueue is a vector plus a head cursor: push is amortized O(1),
 * pop advances the cursor, and the storage compacts (and its capacity
 * is reused) whenever the queue drains, which for these short bursty
 * queues is constantly.
 */

#ifndef TOKENSIM_SIM_SMALL_QUEUE_HH
#define TOKENSIM_SIM_SMALL_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tokensim {

/** Vector-backed FIFO (see file comment). */
template <typename T>
class SmallQueue
{
  public:
    bool empty() const { return head_ == items_.size(); }
    std::size_t size() const { return items_.size() - head_; }

    void
    push_back(T v)
    {
        items_.push_back(std::move(v));
    }

    T &front() { return items_[head_]; }
    const T &front() const { return items_[head_]; }

    /** Iteration over the queued elements, front to back. */
    auto begin() { return items_.begin() + off(); }
    auto end() { return items_.end(); }
    auto begin() const { return items_.begin() + off(); }
    auto end() const { return items_.end(); }

    void
    pop_front()
    {
        assert(!empty());
        ++head_;
        if (head_ == items_.size()) {
            items_.clear();
            head_ = 0;
        }
    }

    void
    clear()
    {
        items_.clear();
        head_ = 0;
    }

  private:
    std::ptrdiff_t off() const
    {
        return static_cast<std::ptrdiff_t>(head_);
    }

    std::vector<T> items_;
    std::size_t head_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_SIM_SMALL_QUEUE_HH
