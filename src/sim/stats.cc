#include "sim/stats.hh"

#include <cstdarg>
#include <cstdio>

namespace tokensim {

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(ap2);
    return out;
}

} // namespace tokensim
