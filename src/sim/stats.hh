/**
 * @file
 * Lightweight statistics utilities.
 *
 * Components accumulate counters and distributions during simulation; the
 * harness reads them out at the end of a run to assemble the paper's
 * tables and figures. Nothing here is thread-aware: the simulator is
 * single-threaded and deterministic.
 */

#ifndef TOKENSIM_SIM_STATS_HH
#define TOKENSIM_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace tokensim {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 *
 * Used for miss latencies (TokenB's adaptive reissue timeout needs a
 * recent average) and for run-to-run error bars.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /**
     * Fold @p o into this stat as if every sample @p o absorbed had
     * been add()ed here directly (Chan et al.'s parallel combine).
     * This is the registry merge rule for stat metrics: it pools
     * miss-latency stats across nodes and seeds, so a run (or seed)
     * with more samples weighs proportionally more — the old
     * mean-of-per-group-means aggregation weighed every group
     * equally.
     *
     * When @p o holds exactly one sample the update is performed as
     * add(o.mean()), which is the bit-exact sequential path: merging
     * a sequence of single-sample stats therefore reproduces a plain
     * add() loop double-for-double. The cross-seed cycles-per-
     * transaction aggregation (one sample per run) relies on this to
     * keep its digest-pinned mean/stddev unchanged under the generic
     * registry merge.
     */
    void
    combine(const RunningStat &o)
    {
        if (o.n_ == 0)
            return;
        if (n_ == 0) {
            *this = o;
            return;
        }
        if (o.n_ == 1) {
            add(o.mean_);
            return;
        }
        const double na = static_cast<double>(n_);
        const double nb = static_cast<double>(o.n_);
        const double n = na + nb;
        const double delta = o.mean_ - mean_;
        mean_ += delta * (nb / n);
        m2_ += o.m2_ + delta * delta * (na * nb / n);
        n_ += o.n_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void
    reset()
    {
        *this = RunningStat();
    }

    /**
     * Bit-exact equality of the complete internal state (IEEE-754 bit
     * patterns, not numeric comparison — NaN == NaN, -0.0 != +0.0).
     * This is the comparison the determinism tests need: two stats are
     * interchangeable iff every future mean()/stddev() they can report
     * is identical.
     */
    bool
    operator==(const RunningStat &o) const
    {
        return n_ == o.n_ && sameBits(mean_, o.mean_) &&
            sameBits(m2_, o.m2_) && sameBits(min_, o.min_) &&
            sameBits(max_, o.max_);
    }
    bool operator!=(const RunningStat &o) const { return !(*this == o); }

    static bool
    sameBits(double a, double b)
    {
        std::uint64_t ua, ub;
        std::memcpy(&ua, &a, sizeof(ua));
        std::memcpy(&ub, &b, sizeof(ub));
        return ua == ub;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * The complete internal state, exposed so a RunningStat can cross
     * a process boundary losslessly (harness/wire.cc ships
     * System::Results between DistRunner worker processes). An empty
     * stat's min/max are the +/-infinity sentinels; they round-trip
     * as IEEE-754 bit patterns like any other double.
     */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{n_, mean_, m2_, min_, max_};
    }

    static RunningStat
    fromSnapshot(const Snapshot &s)
    {
        RunningStat r;
        r.n_ = s.count;
        r.mean_ = s.mean;
        r.m2_ = s.m2;
        r.min_ = s.min;
        r.max_ = s.max;
        return r;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Exponentially-weighted moving average.
 *
 * TokenB sizes its reissue timeout from the *recent* average miss
 * latency (Section 4.2); an EWMA captures "recent" without storing a
 * window.
 */
class Ewma
{
  public:
    /** @param alpha weight of each new sample, in (0, 1]. */
    explicit Ewma(double alpha = 0.1, double initial = 0.0)
        : alpha_(alpha), value_(initial)
    {}

    void
    add(double x)
    {
        if (!primed_) {
            value_ = x;
            primed_ = true;
        } else {
            value_ += alpha_ * (x - value_);
        }
    }

    double value() const { return value_; }
    bool primed() const { return primed_; }

    void
    reset(double initial = 0.0)
    {
        value_ = initial;
        primed_ = false;
    }

  private:
    double alpha_;
    double value_;
    bool primed_ = false;
};

/**
 * Fixed-width linear histogram with an overflow bucket; enough for miss
 * latency distributions and queue depths.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket.
     * @param num_buckets number of regular buckets (plus one overflow).
     */
    explicit Histogram(double bucket_width = 1.0,
                       std::size_t num_buckets = 64)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {}

    void
    add(double x)
    {
        stat_.add(x);
        // Bucket selection must clamp *before* the float-to-integer
        // cast: casting a negative, NaN, or out-of-range double to
        // std::size_t is undefined behavior, not a saturating
        // conversion. NaN and negative samples land in bucket 0;
        // anything at or past the last regular bucket lands in the
        // overflow bucket.
        const double r = x / width_;
        std::size_t idx;
        if (std::isnan(r) || r < 0.0)
            idx = 0;
        else if (r >= static_cast<double>(buckets_.size() - 1))
            idx = buckets_.size() - 1;
        else
            idx = static_cast<std::size_t>(r);
        ++buckets_[idx];
    }

    std::uint64_t count() const { return stat_.count(); }
    double mean() const { return stat_.mean(); }
    double stddev() const { return stat_.stddev(); }
    double max() const { return stat_.max(); }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return width_; }

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    RunningStat stat_;
};

/**
 * Sparse power-of-two histogram for long-tailed distributions (miss
 * latencies span ~20 ticks for an L2 hit to tens of thousands under
 * persistent-request starvation, so linear buckets either blur the
 * head or truncate the tail).
 *
 * Bucket b holds samples x with 2^(b-1) <= x < 2^b; bucket 0 collects
 * everything below 1.0 plus the clamped junk (negatives, NaN), and
 * bucket kMaxBucket is the overflow for anything >= 2^63. Only
 * occupied buckets are stored, as (bucket, count) pairs kept sorted by
 * bucket index — the registry merges and serializes these generically,
 * and a typical run occupies well under a dozen buckets.
 */
class LogHistogram
{
  public:
    /** Highest bucket index; also the overflow bucket. */
    static constexpr std::int32_t kMaxBucket = 64;

    /** Bucket index for a sample; total function, never UB. */
    static std::int32_t
    bucketOf(double x)
    {
        if (std::isnan(x) || x < 1.0)
            return 0;
        if (x >= 0x1p63)
            return kMaxBucket;
        return 1 + std::ilogb(x);
    }

    void add(double x) { addCount(bucketOf(x), 1); }

    /**
     * Add @p count samples to bucket @p bucket directly; the merge
     * rule and the wire decoder both enter through here. Out-of-range
     * bucket indices are clamped, preserving total counts.
     */
    void
    addCount(std::int32_t bucket, std::uint64_t count)
    {
        if (count == 0)
            return;
        bucket = std::min(std::max(bucket, std::int32_t{0}), kMaxBucket);
        auto it = std::lower_bound(
            buckets_.begin(), buckets_.end(), bucket,
            [](const auto &p, std::int32_t b) { return p.first < b; });
        if (it != buckets_.end() && it->first == bucket)
            it->second += count;
        else
            buckets_.insert(it, {bucket, count});
    }

    /** Bucket-wise addition; the registry merge rule for histograms. */
    void
    merge(const LogHistogram &o)
    {
        for (const auto &[bucket, count] : o.buckets_)
            addCount(bucket, count);
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (const auto &[bucket, count] : buckets_) {
            (void)bucket;
            t += count;
        }
        return t;
    }

    bool empty() const { return buckets_.empty(); }

    /** Occupied buckets, sorted ascending by bucket index. */
    const std::vector<std::pair<std::int32_t, std::uint64_t>> &
    buckets() const
    {
        return buckets_;
    }

    bool
    operator==(const LogHistogram &o) const
    {
        return buckets_ == o.buckets_;
    }
    bool operator!=(const LogHistogram &o) const { return !(*this == o); }

  private:
    std::vector<std::pair<std::int32_t, std::uint64_t>> buckets_;
};

/** printf-style std::string formatting helper. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tokensim

#endif // TOKENSIM_SIM_STATS_HH
