/**
 * @file
 * Lightweight statistics utilities.
 *
 * Components accumulate counters and distributions during simulation; the
 * harness reads them out at the end of a run to assemble the paper's
 * tables and figures. Nothing here is thread-aware: the simulator is
 * single-threaded and deterministic.
 */

#ifndef TOKENSIM_SIM_STATS_HH
#define TOKENSIM_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tokensim {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 *
 * Used for miss latencies (TokenB's adaptive reissue timeout needs a
 * recent average) and for run-to-run error bars.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    void
    reset()
    {
        *this = RunningStat();
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * The complete internal state, exposed so a RunningStat can cross
     * a process boundary losslessly (harness/wire.cc ships
     * System::Results between DistRunner worker processes). An empty
     * stat's min/max are the +/-infinity sentinels; they round-trip
     * as IEEE-754 bit patterns like any other double.
     */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{n_, mean_, m2_, min_, max_};
    }

    static RunningStat
    fromSnapshot(const Snapshot &s)
    {
        RunningStat r;
        r.n_ = s.count;
        r.mean_ = s.mean;
        r.m2_ = s.m2;
        r.min_ = s.min;
        r.max_ = s.max;
        return r;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Exponentially-weighted moving average.
 *
 * TokenB sizes its reissue timeout from the *recent* average miss
 * latency (Section 4.2); an EWMA captures "recent" without storing a
 * window.
 */
class Ewma
{
  public:
    /** @param alpha weight of each new sample, in (0, 1]. */
    explicit Ewma(double alpha = 0.1, double initial = 0.0)
        : alpha_(alpha), value_(initial)
    {}

    void
    add(double x)
    {
        if (!primed_) {
            value_ = x;
            primed_ = true;
        } else {
            value_ += alpha_ * (x - value_);
        }
    }

    double value() const { return value_; }
    bool primed() const { return primed_; }

    void
    reset(double initial = 0.0)
    {
        value_ = initial;
        primed_ = false;
    }

  private:
    double alpha_;
    double value_;
    bool primed_ = false;
};

/**
 * Fixed-width linear histogram with an overflow bucket; enough for miss
 * latency distributions and queue depths.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket.
     * @param num_buckets number of regular buckets (plus one overflow).
     */
    explicit Histogram(double bucket_width = 1.0,
                       std::size_t num_buckets = 64)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {}

    void
    add(double x)
    {
        stat_.add(x);
        auto idx = static_cast<std::size_t>(x / width_);
        if (idx >= buckets_.size() - 1)
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }

    std::uint64_t count() const { return stat_.count(); }
    double mean() const { return stat_.mean(); }
    double stddev() const { return stat_.stddev(); }
    double max() const { return stat_.max(); }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return width_; }

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    RunningStat stat_;
};

/** printf-style std::string formatting helper. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tokensim

#endif // TOKENSIM_SIM_STATS_HH
