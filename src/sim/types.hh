/**
 * @file
 * Fundamental simulator types and unit conversions.
 *
 * The simulator measures time in ticks of 100 picoseconds. This makes every
 * latency in the paper's Table 1 an integral number of ticks (see
 * DESIGN.md §4), including the serialization delay of an 8-byte control
 * message on a 3.2 GB/s link (2.5 ns = 25 ticks).
 */

#ifndef TOKENSIM_SIM_TYPES_HH
#define TOKENSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace tokensim {

/** Simulated time, in units of 100 picoseconds. */
using Tick = std::uint64_t;

/** Physical address of a byte of shared memory. */
using Addr = std::uint64_t;

/** Identifier of a system node (processor/cache/memory slice). */
using NodeId = std::uint32_t;

/** Number of ticks per nanosecond (tick = 100 ps). */
constexpr Tick ticksPerNs = 10;

/** A tick value that is never reached; used as "no deadline". */
constexpr Tick tickNever = std::numeric_limits<Tick>::max();

/** An invalid node id, used before routing information is filled in. */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Convert a whole number of nanoseconds to ticks. */
constexpr Tick
nsToTicks(std::uint64_t ns)
{
    return ns * ticksPerNs;
}

/** Convert ticks to (truncated) nanoseconds. */
constexpr std::uint64_t
ticksToNs(Tick t)
{
    return t / ticksPerNs;
}

/** Convert ticks to fractional nanoseconds (for reporting). */
constexpr double
ticksToNsF(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/**
 * Convert a *fractional* tick count to nanoseconds. Statistical means
 * of tick-valued samples are not whole ticks; routing them through the
 * Tick overload would silently truncate (that truncation quantized the
 * reported average miss latency to 0.1 ns steps until PR 6).
 */
constexpr double
ticksToNsF(double t)
{
    return t / static_cast<double>(ticksPerNs);
}

/**
 * Integer log2 for power-of-two values (block sizes, set counts).
 * Returns the floor of log2(v); v must be non-zero.
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** True if v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Ceiling division for unsigned integers; used for link serialization
 * delays (bytes / bandwidth rounded up to whole ticks).
 */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace tokensim

#endif // TOKENSIM_SIM_TYPES_HH
