#include "workload/commercial.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace tokensim {

// ---------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------

ZipfSampler::ZipfSampler(std::size_t n, double theta)
    : table_(tableFor(n, theta))
{}

std::shared_ptr<const ZipfSampler::Table>
ZipfSampler::tableFor(std::size_t n, double theta)
{
    assert(n > 0);
    assert(n <= std::numeric_limits<std::uint32_t>::max());

    // Intern cache: one table per distinct (n, theta), shared by all
    // samplers in all Systems (tables are immutable after build).
    struct Key
    {
        std::size_t n;
        double theta;
        bool
        operator==(const Key &o) const
        {
            return n == o.n && theta == o.theta;
        }
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(k.theta), "");
            std::memcpy(&bits, &k.theta, sizeof(bits));
            return std::hash<std::uint64_t>()(
                bits * 0x9e3779b97f4a7c15ULL ^ k.n);
        }
    };
    static std::mutex cacheLock;
    static std::unordered_map<Key, std::shared_ptr<const Table>,
                              KeyHash>
        cache;

    const Key key{n, theta};
    {
        std::lock_guard<std::mutex> g(cacheLock);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    auto t = std::make_shared<Table>();
    t->theta = theta;
    std::vector<double> w(n);
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        w[k] = 1.0 / std::pow(static_cast<double>(k + 1), theta);
        sum += w[k];
    }
    t->invWeightSum = 1.0 / sum;

    // Vose's alias method: scale each weight by n, then repeatedly
    // pair an under-full column with an over-full one. Build is O(n);
    // every sample() afterwards is one column pick + one coin flip.
    t->prob.assign(n, 1.0);
    t->alias.resize(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        w[k] *= t->invWeightSum * static_cast<double>(n);
        t->alias[k] = static_cast<std::uint32_t>(k);
        if (w[k] < 1.0)
            small.push_back(static_cast<std::uint32_t>(k));
        else
            large.push_back(static_cast<std::uint32_t>(k));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        const std::uint32_t l = large.back();
        small.pop_back();
        t->prob[s] = w[s];
        t->alias[s] = l;
        w[l] = (w[l] + w[s]) - 1.0;
        if (w[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Numerical leftovers on either worklist are columns whose scaled
    // weight is 1 up to rounding: they keep prob 1 (self-alias).

    std::lock_guard<std::mutex> g(cacheLock);
    auto [it, inserted] = cache.emplace(key, std::move(t));
    // A racing builder may have beaten us; either table is identical.
    return it->second;
}

double
ZipfSampler::weight(std::size_t k) const
{
    return table_->invWeightSum /
        std::pow(static_cast<double>(k + 1), table_->theta);
}

// ---------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------
//
// The mixes are tuned to reproduce the first-order sharing statistics
// the paper's workloads are characterized with:
//  - OLTP: lock-dominated; most L2 misses are cache-to-cache and
//    migratory [8]. Highest communication rate.
//  - Apache: large read-mostly working set (file cache, handler
//    structures) plus producer-consumer network buffers; high miss
//    rate, many cache-to-cache transfers.
//  - SPECjbb: mostly per-warehouse-private data, moderate migratory
//    traffic, the least sharing of the three.

CommercialParams
CommercialParams::oltp()
{
    CommercialParams p;
    p.name = "OLTP";
    p.fracPrivateHot = 0.66;
    p.fracPrivateCold = 0.035;
    p.fracSharedRead = 0.14;
    p.fracMigratory = 0.13;     // lock-dominated
    p.fracProdCons = 0.035;
    p.privateStoreFrac = 0.35;
    p.sharedStoreFrac = 0.01;
    p.hotPrivateBlocks = 4 << 10;
    p.sharedHotBlocks = 1 << 13;
    p.migratoryHotBlocks = 1 << 9;
    p.prodConsHotBlocks = 1 << 10;
    p.zipfTheta = 0.85;
    p.opsPerTransaction = 50;
    return p;
}

CommercialParams
CommercialParams::apache()
{
    CommercialParams p;
    p.name = "Apache";
    p.fracPrivateHot = 0.60;
    p.fracPrivateCold = 0.04;
    p.fracSharedRead = 0.21;
    p.fracMigratory = 0.10;
    p.fracProdCons = 0.05;
    p.privateStoreFrac = 0.30;
    p.sharedStoreFrac = 0.03;
    p.hotPrivateBlocks = 4 << 10;
    p.sharedHotBlocks = 1 << 13;
    p.migratoryHotBlocks = 1 << 10;
    p.prodConsHotBlocks = 1 << 11;
    p.zipfTheta = 0.85;
    p.opsPerTransaction = 50;
    return p;
}

CommercialParams
CommercialParams::specjbb()
{
    CommercialParams p;
    p.name = "SPECjbb";
    p.fracPrivateHot = 0.76;
    p.fracPrivateCold = 0.03;
    p.fracSharedRead = 0.10;
    p.fracMigratory = 0.08;
    p.fracProdCons = 0.03;
    p.privateStoreFrac = 0.35;
    p.sharedStoreFrac = 0.01;
    p.hotPrivateBlocks = 4 << 10;
    p.sharedHotBlocks = 1 << 13;
    p.migratoryHotBlocks = 1 << 9;
    p.prodConsHotBlocks = 1 << 9;
    p.zipfTheta = 0.88;
    p.opsPerTransaction = 50;
    return p;
}

CommercialParams
CommercialParams::preset(const std::string &which)
{
    if (which == "oltp" || which == "OLTP")
        return oltp();
    if (which == "apache" || which == "Apache")
        return apache();
    if (which == "specjbb" || which == "SPECjbb")
        return specjbb();
    throw std::invalid_argument("unknown workload preset: " + which);
}

// ---------------------------------------------------------------------
// CommercialWorkload
// ---------------------------------------------------------------------

CommercialWorkload::CommercialWorkload(NodeId node, int num_nodes,
                                       const AddressMap &map,
                                       const CommercialParams &params,
                                       std::uint64_t seed)
    : node_(node),
      numNodes_(num_nodes),
      map_(map),
      params_(params),
      rng_(seed),
      privateZipf_(params.hotPrivateBlocks, params.zipfTheta),
      sharedZipf_(params.sharedHotBlocks, params.zipfTheta),
      migratoryZipf_(params.migratoryHotBlocks, params.zipfTheta)
{
    // The hot set plus the streamed cold region share the node's
    // private address range.
    assert(params.hotPrivateBlocks * 2 <= map.privateBlocksPerNode);
    assert(params.sharedHotBlocks <= map.sharedBlocks);
    assert(params.migratoryHotBlocks <= map.migratoryBlocks);
    assert(params.prodConsHotBlocks <= map.prodConsBlocks);
}

void
CommercialWorkload::queueMigratorySection()
{
    // A lock/counter access: read the line, then write it. Whoever
    // ran the section last holds the block in M — the next processor
    // through is the migratory pattern the optimization targets.
    const Addr addr = map_.migratoryBase(numNodes_) +
        migratoryZipf_.sample(rng_) * map_.blockBytes;
    pending_.push_back(WorkloadOp{MemOp::load, addr, false});
    pending_.push_back(WorkloadOp{MemOp::store, addr, false});
}

WorkloadOp
CommercialWorkload::next()
{
    WorkloadOp op;
    if (scanPos_ < params_.hotPrivateBlocks) {
        // Warm-scan preamble: sweep the resident set once so the
        // measured window starts from warm caches (the simulator's
        // analogue of the paper's checkpoint warmup).
        op.addr = map_.privateBase(node_) + scanPos_ * map_.blockBytes;
        // Scan with stores: private data ends up owned (M), so the
        // measured window sees neither cold loads nor first-store
        // upgrade misses on the resident set.
        op.op = MemOp::store;
        ++scanPos_;
        ++opCount_;
        op.endsTransaction =
            (opCount_ % static_cast<std::uint64_t>(
                            params_.opsPerTransaction)) == 0;
        return op;
    }
    if (!pending_.empty()) {
        op = pending_.front();
        pending_.pop_front();
    } else {
        const double u = rng_.uniform();
        const double hot_end = params_.fracPrivateHot;
        const double cold_end = hot_end + params_.fracPrivateCold;
        const double shared_end = cold_end + params_.fracSharedRead;
        const double mig_end = shared_end + params_.fracMigratory;
        if (u < hot_end) {
            op.addr = map_.privateBase(node_) +
                privateZipf_.sample(rng_) * map_.blockBytes;
            op.op = rng_.chance(params_.privateStoreFrac)
                ? MemOp::store : MemOp::load;
        } else if (u < cold_end) {
            // Streaming sweep: always a fresh block, so this is the
            // capacity-miss component served by memory.
            const std::uint64_t cold_blocks =
                map_.privateBlocksPerNode - params_.hotPrivateBlocks;
            op.addr = map_.privateBase(node_) +
                (params_.hotPrivateBlocks +
                 (coldCursor_++ % cold_blocks)) * map_.blockBytes;
            op.op = rng_.chance(params_.privateStoreFrac)
                ? MemOp::store : MemOp::load;
        } else if (u < shared_end) {
            op.addr = map_.sharedBase(numNodes_) +
                sharedZipf_.sample(rng_) * map_.blockBytes;
            op.op = rng_.chance(params_.sharedStoreFrac)
                ? MemOp::store : MemOp::load;
        } else if (u < mig_end) {
            queueMigratorySection();
            op = pending_.front();
            pending_.pop_front();
        } else {
            // Producer-consumer: each block has a static producer.
            const std::uint64_t idx =
                rng_.below(params_.prodConsHotBlocks);
            const Addr addr = map_.prodConsBase(numNodes_) +
                idx * map_.blockBytes;
            const NodeId producer = static_cast<NodeId>(
                idx % static_cast<std::uint64_t>(numNodes_));
            op.addr = addr;
            op.op = producer == node_ ? MemOp::store : MemOp::load;
        }
    }

    ++opCount_;
    op.endsTransaction =
        (opCount_ % static_cast<std::uint64_t>(
                        params_.opsPerTransaction)) == 0;
    return op;
}

} // namespace tokensim
