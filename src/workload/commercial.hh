/**
 * @file
 * Synthetic commercial workload generators standing in for the paper's
 * OLTP, Apache, and SPECjbb full-system checkpoints.
 *
 * Each generator mixes four access patterns with per-workload
 * fractions (see commercial.cc for the presets and their rationale):
 *
 *  - private:      per-processor data, Zipf-skewed working set sized
 *                  against the 4 MB L2 to produce capacity misses that
 *                  memory must serve;
 *  - shared read-mostly: hot read-shared structures (code-like and
 *                  lookup structures) with a small store fraction;
 *  - migratory:    lock/counter blocks accessed load-then-store by one
 *                  processor at a time — the dominant cache-to-cache
 *                  pattern in OLTP [8, 12, 40];
 *  - producer-consumer: blocks written by a home producer and read by
 *                  others.
 *
 * A "transaction" is a fixed number of operations; runtime results are
 * reported as cycles per transaction like the paper's figures.
 */

#ifndef TOKENSIM_WORKLOAD_COMMERCIAL_HH
#define TOKENSIM_WORKLOAD_COMMERCIAL_HH

#include <deque>

#include "workload/workload.hh"

namespace tokensim {

/**
 * Mixing fractions and region sizes for a commercial workload.
 *
 * Accesses split into five patterns:
 *  - private hot:  a per-node Zipf-skewed resident set (cache hits
 *    after a short warmup; the L1 filters its head);
 *  - private cold: a per-node streaming sweep over a large region —
 *    every access touches a fresh block, modeling the capacity-miss
 *    component that memory must serve without requiring the simulator
 *    to warm tens of megabytes;
 *  - shared read-mostly, migratory, producer-consumer as described in
 *    workload.hh.
 */
struct CommercialParams
{
    std::string name = "generic";

    // Pattern mix (must sum to 1).
    double fracPrivateHot = 0.68;
    double fracPrivateCold = 0.04;
    double fracSharedRead = 0.14;
    double fracMigratory = 0.10;
    double fracProdCons = 0.04;

    // Store fractions inside each pattern.
    double privateStoreFrac = 0.30;
    double sharedStoreFrac = 0.02;

    // Working-set shaping.
    std::uint64_t hotPrivateBlocks = 6 << 10;   ///< 384 kB resident
    std::uint64_t sharedHotBlocks = 1 << 13;
    std::uint64_t migratoryHotBlocks = 1 << 9;
    std::uint64_t prodConsHotBlocks = 1 << 10;
    double zipfTheta = 0.65;

    int opsPerTransaction = 50;

    /** Built-in presets. */
    static CommercialParams oltp();
    static CommercialParams apache();
    static CommercialParams specjbb();

    /** Preset lookup by name ("oltp" / "apache" / "specjbb"). */
    static CommercialParams preset(const std::string &which);
};

/** The per-processor generator. */
class CommercialWorkload : public Workload
{
  public:
    /**
     * @param node this processor.
     * @param num_nodes system size.
     * @param map shared address-space layout.
     * @param params workload preset.
     * @param seed per-node stream seed.
     */
    CommercialWorkload(NodeId node, int num_nodes,
                       const AddressMap &map,
                       const CommercialParams &params,
                       std::uint64_t seed);

    WorkloadOp next() override;
    std::string name() const override { return params_.name; }

  private:
    /** Queue the load+store pair of a migratory critical section. */
    void queueMigratorySection();

    NodeId node_;
    int numNodes_;
    AddressMap map_;
    CommercialParams params_;
    Rng rng_;
    ZipfSampler privateZipf_;
    ZipfSampler sharedZipf_;
    ZipfSampler migratoryZipf_;
    std::deque<WorkloadOp> pending_;
    std::uint64_t opCount_ = 0;
    std::uint64_t coldCursor_ = 0;   ///< streaming sweep position
    std::uint64_t scanPos_ = 0;      ///< warm-scan preamble position
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_COMMERCIAL_HH
