#include "workload/factory.hh"

#include <stdexcept>

#include "workload/commercial.hh"

namespace tokensim {

WorkloadFactory::WorkloadFactory(const WorkloadSpec &spec,
                                 int num_nodes, const AddressMap &map)
    : spec_(spec), numNodes_(num_nodes), map_(map)
{
    if (spec_.isTrace()) {
        trace_ = TraceData::loadCached(spec_.tracePath);
        if (static_cast<int>(trace_->numNodes()) != num_nodes) {
            throw TraceError(
                "'" + spec_.tracePath + "' was recorded on " +
                std::to_string(trace_->numNodes()) +
                " nodes but the system has " +
                std::to_string(num_nodes));
        }
        return;
    }
    // Validate the preset name up front (the commercial presets
    // validate inside CommercialParams::preset).
    const std::string &p = spec_.preset;
    if (p != "uniform" && p != "hot" && p != "private" &&
        p != "producer-consumer" && p != "lock-ping") {
        CommercialParams::preset(p);   // throws on unknown names
    }
}

std::unique_ptr<Workload>
WorkloadFactory::make(NodeId node, std::uint64_t seed) const
{
    if (trace_)
        return std::make_unique<TraceWorkload>(trace_, node);

    const std::string &p = spec_.preset;
    if (p == "uniform") {
        return std::make_unique<UniformSharedWorkload>(
            spec_.uniformBlocks, spec_.storeFraction,
            map_.blockBytes, seed);
    }
    if (p == "hot") {
        return std::make_unique<HotBlockWorkload>(
            0, spec_.storeFraction, seed);
    }
    if (p == "private") {
        return std::make_unique<PrivateWorkload>(
            node, map_, 1 << 15, spec_.storeFraction, seed);
    }
    if (p == "producer-consumer") {
        return std::make_unique<ProducerConsumerWorkload>(
            node, numNodes_, map_, spec_.prodConsBlocks, seed);
    }
    if (p == "lock-ping") {
        return std::make_unique<LockPingWorkload>(
            node, numNodes_, map_, spec_.lockBlocks,
            spec_.sectionOps, seed);
    }
    return std::make_unique<CommercialWorkload>(
        node, numNodes_, map_, CommercialParams::preset(p), seed);
}

} // namespace tokensim
