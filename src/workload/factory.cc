#include "workload/factory.hh"

#include <stdexcept>

#include "workload/commercial.hh"
#include "workload/tpcc.hh"
#include "workload/ycsb.hh"

namespace tokensim {

namespace {

void
requireFraction(const char *knob, double v)
{
    if (!(v >= 0.0 && v <= 1.0)) {
        throw std::invalid_argument(
            std::string(knob) + " must be in [0, 1], got " +
            std::to_string(v));
    }
}

void
validateYcsb(const WorkloadSpec &s)
{
    if (s.ycsbRecords < 1)
        throw std::invalid_argument("ycsbRecords must be >= 1");
    if (s.ycsbScanLen < 1)
        throw std::invalid_argument("ycsbScanLen must be >= 1");
    if (!(s.ycsbTheta >= 0.0))
        throw std::invalid_argument("ycsbTheta must be >= 0");
    requireFraction("ycsbReadFraction", s.ycsbReadFraction);
    requireFraction("ycsbUpdateFraction", s.ycsbUpdateFraction);
    if (s.ycsbReadFraction + s.ycsbUpdateFraction > 1.0) {
        throw std::invalid_argument(
            "ycsbReadFraction + ycsbUpdateFraction must be <= 1");
    }
}

void
validateTpcc(const WorkloadSpec &s)
{
    requireFraction("tpccHomeFraction", s.tpccHomeFraction);
    if (s.tpccOpsPerTxn < 1)
        throw std::invalid_argument("tpccOpsPerTxn must be >= 1");
    if (s.tpccThinkOps < 0)
        throw std::invalid_argument("tpccThinkOps must be >= 0");
}

} // namespace

WorkloadFactory::WorkloadFactory(const WorkloadSpec &spec,
                                 int num_nodes, const AddressMap &map)
    : spec_(spec), numNodes_(num_nodes), map_(map)
{
    if (spec_.isTrace()) {
        trace_ = TraceData::loadCached(spec_.tracePath);
        if (static_cast<int>(trace_->numNodes()) != num_nodes) {
            throw TraceError(
                "'" + spec_.tracePath + "' was recorded on " +
                std::to_string(trace_->numNodes()) +
                " nodes but the system has " +
                std::to_string(num_nodes));
        }
        return;
    }
    // Validate the preset name and its knobs up front (the commercial
    // presets validate inside CommercialParams::preset).
    const std::string &p = spec_.preset;
    if (p == "ycsb") {
        validateYcsb(spec_);
    } else if (p == "tpcc") {
        validateTpcc(spec_);
    } else if (p != "uniform" && p != "hot" && p != "private" &&
               p != "producer-consumer" && p != "lock-ping") {
        CommercialParams::preset(p);   // throws on unknown names
    }
}

std::unique_ptr<Workload>
WorkloadFactory::make(NodeId node, std::uint64_t seed) const
{
    if (trace_)
        return std::make_unique<TraceWorkload>(trace_, node);

    const std::string &p = spec_.preset;
    if (p == "uniform") {
        return std::make_unique<UniformSharedWorkload>(
            spec_.uniformBlocks, spec_.storeFraction,
            map_.blockBytes, seed);
    }
    if (p == "hot") {
        return std::make_unique<HotBlockWorkload>(
            0, spec_.storeFraction, seed);
    }
    if (p == "private") {
        return std::make_unique<PrivateWorkload>(
            node, map_, 1 << 15, spec_.storeFraction, seed);
    }
    if (p == "producer-consumer") {
        return std::make_unique<ProducerConsumerWorkload>(
            node, numNodes_, map_, spec_.prodConsBlocks, seed);
    }
    if (p == "lock-ping") {
        return std::make_unique<LockPingWorkload>(
            node, numNodes_, map_, spec_.lockBlocks,
            spec_.sectionOps, seed);
    }
    if (p == "ycsb") {
        YcsbParams yp;
        yp.records = spec_.ycsbRecords;
        yp.theta = spec_.ycsbTheta;
        yp.readFraction = spec_.ycsbReadFraction;
        yp.updateFraction = spec_.ycsbUpdateFraction;
        yp.scanLen = spec_.ycsbScanLen;
        return std::make_unique<YcsbWorkload>(node, numNodes_, map_,
                                              yp, seed);
    }
    if (p == "tpcc") {
        TpccParams tp;
        tp.warehouses = spec_.tpccWarehouses;
        tp.homeFraction = spec_.tpccHomeFraction;
        tp.opsPerTxn = spec_.tpccOpsPerTxn;
        tp.thinkOps = spec_.tpccThinkOps;
        return std::make_unique<TpccWorkload>(node, numNodes_, map_,
                                              tp, seed);
    }
    return std::make_unique<CommercialWorkload>(
        node, numNodes_, map_, CommercialParams::preset(p), seed);
}

} // namespace tokensim
