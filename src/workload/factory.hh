/**
 * @file
 * WorkloadSpec — how an experiment names its operation source — and
 * the factory that turns a spec into per-node Workload instances.
 *
 * A spec is either a synthetic preset name ("oltp", "apache",
 * "specjbb", "producer-consumer", "lock-ping", "uniform", "hot",
 * "private", "ycsb", "tpcc") plus its per-preset knobs, or a
 * recorded trace path
 * (workload/trace.hh) replayed as a drop-in op source. The spec is a
 * runtime knob of SystemConfig: System::reset switches preset↔trace
 * freely, and ParallelRunner sweeps can mix both in one matrix.
 *
 * The factory front-loads all validation: an unknown preset throws
 * std::invalid_argument and a missing/malformed/mismatched trace
 * throws TraceError at construction — never mid-simulation.
 */

#ifndef TOKENSIM_WORKLOAD_FACTORY_HH
#define TOKENSIM_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>

#include "workload/trace.hh"
#include "workload/workload.hh"

namespace tokensim {

/** Names an experiment's operation source: preset or recorded trace. */
struct WorkloadSpec
{
    /**
     * Synthetic preset name; ignored when tracePath is set. Implicit
     * construction from a string keeps `cfg.workload = "oltp"` the
     * idiomatic spelling.
     */
    std::string preset = "oltp";

    /** Replay this recorded trace instead of a generator. */
    std::string tracePath;

    // Per-preset knobs (each used only by the presets named).
    std::uint64_t uniformBlocks = 512;   ///< "uniform" hot-set size
    double storeFraction = 0.3;          ///< micro-workload stores
    std::uint64_t prodConsBlocks = 256;  ///< "producer-consumer" buffer
    std::uint64_t lockBlocks = 8;        ///< "lock-ping" lock count
    int sectionOps = 6;                  ///< "lock-ping" section length

    // "ycsb" knobs (workload/ycsb.hh).
    std::uint64_t ycsbRecords = 1 << 16; ///< table size in records
    double ycsbTheta = 0.8;              ///< Zipf skew of popularity
    double ycsbReadFraction = 0.70;      ///< point reads
    double ycsbUpdateFraction = 0.25;    ///< RMW updates (rest: scans)
    int ycsbScanLen = 8;                 ///< records per scan

    // "tpcc" knobs (workload/tpcc.hh).
    std::uint64_t tpccWarehouses = 0;    ///< 0 = one per node
    double tpccHomeFraction = 0.85;      ///< P(txn hits home warehouse)
    int tpccOpsPerTxn = 24;              ///< record accesses per txn
    int tpccThinkOps = 12;               ///< private ops between txns

    WorkloadSpec() = default;
    WorkloadSpec(std::string preset_name)          // NOLINT(implicit)
        : preset(std::move(preset_name))
    {}
    WorkloadSpec(const char *preset_name) : preset(preset_name) {}

    /** Named constructor for trace replay. */
    static WorkloadSpec
    trace(std::string path)
    {
        WorkloadSpec s;
        s.tracePath = std::move(path);
        return s;
    }

    bool isTrace() const { return !tracePath.empty(); }

    /** Display name for labels and reports. */
    std::string
    name() const
    {
        return isTrace() ? "trace:" + tracePath : preset;
    }

    /**
     * Whole-value equality over every field. Serialization hook: the
     * sweep wire format (harness/wire.cc) ships specs between worker
     * processes field by field, and its round-trip tests compare
     * through this operator — a field added here must be added to
     * encodeWorkloadSpec/decodeWorkloadSpec (and wireVersion bumped)
     * or the wire tests' exhaustive-field round trip will catch the
     * omission. A sizeof sentinel next to encodeWorkloadSpec
     * (harness/wire.cc) additionally fails the build on layout growth
     * so the knob can't be added *here* and forgotten *there*.
     */
    friend bool
    operator==(const WorkloadSpec &a, const WorkloadSpec &b)
    {
        return a.preset == b.preset && a.tracePath == b.tracePath &&
            a.uniformBlocks == b.uniformBlocks &&
            a.storeFraction == b.storeFraction &&
            a.prodConsBlocks == b.prodConsBlocks &&
            a.lockBlocks == b.lockBlocks &&
            a.sectionOps == b.sectionOps &&
            a.ycsbRecords == b.ycsbRecords &&
            a.ycsbTheta == b.ycsbTheta &&
            a.ycsbReadFraction == b.ycsbReadFraction &&
            a.ycsbUpdateFraction == b.ycsbUpdateFraction &&
            a.ycsbScanLen == b.ycsbScanLen &&
            a.tpccWarehouses == b.tpccWarehouses &&
            a.tpccHomeFraction == b.tpccHomeFraction &&
            a.tpccOpsPerTxn == b.tpccOpsPerTxn &&
            a.tpccThinkOps == b.tpccThinkOps;
    }

    friend bool
    operator!=(const WorkloadSpec &a, const WorkloadSpec &b)
    {
        return !(a == b);
    }
};

/**
 * Builds one node's Workload per call. Constructed once per System
 * (and once per System::reset), which is where the spec is validated
 * and a replayed trace is loaded — through the process-wide intern
 * cache, so every shard of a sweep shares one parsed copy.
 */
class WorkloadFactory
{
  public:
    /**
     * @throws std::invalid_argument unknown preset.
     * @throws TraceError missing/malformed trace, or a trace whose
     *         recorded node count differs from @p num_nodes.
     */
    WorkloadFactory(const WorkloadSpec &spec, int num_nodes,
                    const AddressMap &map);

    /** Build node @p node's op stream seeded with @p seed. */
    std::unique_ptr<Workload> make(NodeId node,
                                   std::uint64_t seed) const;

    const WorkloadSpec &spec() const { return spec_; }

    /** The replayed trace; null for preset specs. */
    const std::shared_ptr<const TraceData> &trace() const
    {
        return trace_;
    }

  private:
    WorkloadSpec spec_;
    int numNodes_;
    AddressMap map_;
    std::shared_ptr<const TraceData> trace_;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_FACTORY_HH
