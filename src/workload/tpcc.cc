#include "workload/tpcc.hh"

namespace tokensim {

namespace {

/// Zipf skew of record popularity inside a warehouse slab (district /
/// customer rows are far hotter than order lines).
constexpr double kRecordTheta = 0.6;

/// Store fraction of in-slab record accesses (inserts + updates of a
/// NewOrder/Payment mix).
constexpr double kRecordStoreFraction = 0.3;

/// Private working set touched by think-time ops, in blocks.
constexpr std::uint64_t kThinkBlocks = 1024;

/// Store fraction of think-time ops (stack / client bookkeeping).
constexpr double kThinkStoreFraction = 0.25;

} // namespace

TpccWorkload::TpccWorkload(NodeId node, int num_nodes,
                           const AddressMap &map,
                           const TpccParams &params, std::uint64_t seed)
    : tableBase_(map.tableBase(num_nodes)),
      privateBase_(map.privateBase(node)),
      blockBytes_(map.blockBytes),
      params_(params),
      warehouses_(params.warehouses
                      ? params.warehouses
                      : static_cast<std::uint64_t>(num_nodes)),
      homeWarehouse_(static_cast<std::uint64_t>(node) % warehouses_),
      recordZipf_(static_cast<std::size_t>(kSlabBlocks - 1),
                  kRecordTheta),
      rng_(seed)
{}

Addr
TpccWorkload::slabAddr(std::uint64_t warehouse,
                       std::uint64_t block) const
{
    return tableBase_ + (warehouse * kSlabBlocks + block) * blockBytes_;
}

void
TpccWorkload::buildTransaction()
{
    const std::uint64_t w = rng_.chance(params_.homeFraction)
        ? homeWarehouse_
        : rng_.below(warehouses_);

    // 1. Warehouse header RMW: every transaction bumps the slab's
    //    block-0 counter, making it migratory among its clients.
    pending_.push_back(WorkloadOp{MemOp::load, slabAddr(w, 0), false});
    pending_.push_back(WorkloadOp{MemOp::store, slabAddr(w, 0), false});

    // 2. Record accesses inside the warehouse slab.
    for (int i = 0; i < params_.opsPerTxn; ++i) {
        const std::uint64_t block = 1 + recordZipf_.sample(rng_);
        const MemOp op = rng_.chance(kRecordStoreFraction)
            ? MemOp::store : MemOp::load;
        pending_.push_back(WorkloadOp{op, slabAddr(w, block),
                                      i == params_.opsPerTxn - 1});
    }

    // 3. Think time: private accesses between transactions.
    for (int i = 0; i < params_.thinkOps; ++i) {
        const Addr a = privateBase_ +
            rng_.below(kThinkBlocks) * blockBytes_;
        const MemOp op = rng_.chance(kThinkStoreFraction)
            ? MemOp::store : MemOp::load;
        pending_.push_back(WorkloadOp{op, a, false});
    }
}

WorkloadOp
TpccWorkload::next()
{
    if (pending_.empty())
        buildTransaction();
    WorkloadOp op = pending_.front();
    pending_.pop_front();
    return op;
}

} // namespace tokensim
