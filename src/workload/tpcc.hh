/**
 * @file
 * TPC-C-like transactional workload generator.
 *
 * Models the memory-system shape of an order-entry OLTP workload the
 * way ScaleStore's tpcc frontend drives one: multi-record
 * transactions against per-warehouse data slabs with strong home
 * locality. Each node is affiliated with a home warehouse
 * (node mod warehouses); a transaction picks the home warehouse with
 * probability homeFraction and a uniformly random remote one
 * otherwise — the classic ~15% remote-warehouse rate of TPC-C's
 * NewOrder/Payment mix at the default 0.85.
 *
 * A transaction is:
 *  1. the warehouse header RMW (load + store of slab block 0 —
 *     the D_NEXT_O_ID-style counter every transaction bumps, so the
 *     header block is migratory among the warehouse's clients),
 *  2. opsPerTxn record accesses Zipf-skewed inside the warehouse's
 *     slab (~30% stores), the last of which ends the transaction,
 *  3. thinkOps private-region accesses modeling client think time /
 *     per-transaction bookkeeping between transactions.
 *
 * Warehouse slabs live in the shared table region
 * (AddressMap::tableBase), kSlabBlocks blocks apart, so the
 * block-interleaved home mapping spreads each slab's directory homes
 * across the machine even though its *accessors* are mostly local.
 */

#ifndef TOKENSIM_WORKLOAD_TPCC_HH
#define TOKENSIM_WORKLOAD_TPCC_HH

#include <deque>
#include <string>

#include "workload/workload.hh"

namespace tokensim {

/** Knobs for TpccWorkload; validated by the workload factory. */
struct TpccParams
{
    std::uint64_t warehouses = 0;  ///< 0 = one per node
    double homeFraction = 0.85;    ///< P(txn hits home warehouse)
    int opsPerTxn = 24;            ///< record accesses per transaction
    int thinkOps = 12;             ///< private ops between transactions
};

class TpccWorkload : public Workload
{
  public:
    /** Blocks per warehouse slab (header block + records). */
    static constexpr std::uint64_t kSlabBlocks = 4096;

    TpccWorkload(NodeId node, int num_nodes, const AddressMap &map,
                 const TpccParams &params, std::uint64_t seed);

    WorkloadOp next() override;

    std::string name() const override { return "tpcc"; }

    std::uint64_t homeWarehouse() const { return homeWarehouse_; }

  private:
    void buildTransaction();

    Addr slabAddr(std::uint64_t warehouse, std::uint64_t block) const;

    Addr tableBase_;
    Addr privateBase_;
    std::uint32_t blockBytes_;
    TpccParams params_;
    std::uint64_t warehouses_;
    std::uint64_t homeWarehouse_;
    ZipfSampler recordZipf_;
    Rng rng_;
    std::deque<WorkloadOp> pending_;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_TPCC_HH
