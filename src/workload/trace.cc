#include "workload/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace tokensim {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'K', 'T', 'R', 'A', 'C', 'E'};

constexpr unsigned char kFlagStore = 1u << 0;
constexpr unsigned char kFlagEndsTransaction = 1u << 1;
constexpr unsigned char kFlagReservedMask =
    static_cast<unsigned char>(~(kFlagStore | kFlagEndsTransaction));

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

/**
 * Bounds-checked little-endian cursor over a serialized trace. Every
 * primitive read verifies the remaining size first, so a truncated or
 * corrupted buffer surfaces as TraceError, never as an out-of-bounds
 * read.
 */
struct Cursor
{
    const unsigned char *p;
    std::size_t size;
    std::size_t pos = 0;

    void
    need(std::size_t n, const char *what) const
    {
        if (size - pos < n) {
            throw TraceError(std::string("truncated while reading ") +
                             what);
        }
    }

    void
    bytes(void *dst, std::size_t n, const char *what)
    {
        need(n, what);
        std::memcpy(dst, p + pos, n);
        pos += n;
    }

    std::uint16_t
    u16(const char *what)
    {
        need(2, what);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(p[pos + i]) << (8 * i);
        pos += 2;
        return v;
    }

    std::uint32_t
    u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
};

void
putU16(std::string &out, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** ULEB128 decode with bounds checking against @p end. */
std::uint64_t
getVarint(const unsigned char *p, std::size_t size, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos >= size)
            throw TraceError("stream truncated mid-varint");
        const unsigned char b = p[pos++];
        if (shift >= 63) {
            // Byte 10 carries at most bit 63; any more payload — or
            // an 11th byte — cannot fit (and shifting by >= 64 would
            // be UB, so reject before it can happen).
            if ((b & 0x7f) > 1 || (b & 0x80))
                throw TraceError("varint overflows 64 bits");
        }
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

} // namespace

// ---------------------------------------------------------------------
// TraceData
// ---------------------------------------------------------------------

TraceData
TraceData::parse(const void *data, std::size_t size)
{
    Cursor c{static_cast<const unsigned char *>(data), size};

    char magic[8];
    c.bytes(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw TraceError("bad magic (not a tokensim trace)");

    const std::uint32_t ver = c.u32("version");
    if (ver != version) {
        throw TraceError("unsupported version " + std::to_string(ver) +
                         " (expected " + std::to_string(version) + ")");
    }

    TraceData t;
    t.header_.numNodes = c.u32("node count");
    if (t.header_.numNodes == 0)
        throw TraceError("node count is zero");
    t.header_.blockBytes = c.u32("block size");
    t.header_.seed = c.u64("seed");
    t.header_.warmupOpsPerProcessor = c.u64("warmup ops");

    const std::uint16_t plen = c.u16("provenance length");
    c.need(plen, "provenance");
    t.header_.provenance.assign(
        reinterpret_cast<const char *>(c.p + c.pos), plen);
    c.pos += plen;

    const std::size_t n = t.header_.numNodes;
    t.opsPerNode_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        t.opsPerNode_[i] = c.u64("op counts");
    std::vector<std::uint64_t> streamBytes(n);
    for (std::size_t i = 0; i < n; ++i)
        streamBytes[i] = c.u64("stream sizes");

    t.streams_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        c.need(streamBytes[i], "stream body");
        t.streams_[i].assign(c.p + c.pos,
                             c.p + c.pos + streamBytes[i]);
        c.pos += streamBytes[i];
    }
    if (c.pos != size)
        throw TraceError("trailing garbage after last stream");

    // Validate every stream decodes to exactly the advertised op
    // count; afterwards Reader::next() can never fault on in-bounds
    // traces, and a truncation inside the body is caught here rather
    // than mid-simulation.
    for (std::size_t i = 0; i < n; ++i) {
        Reader r(t, static_cast<NodeId>(i));
        for (std::uint64_t k = 0; k < t.opsPerNode_[i]; ++k)
            r.next();
    }
    return t;
}

std::shared_ptr<const TraceData>
TraceData::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceError("cannot open '" + path + "' for reading");
    std::string buf;
    char chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.append(chunk, got);
    const bool read_error = std::ferror(f);
    std::fclose(f);
    if (read_error)
        throw TraceError("I/O error reading '" + path + "'");
    return std::make_shared<const TraceData>(
        parse(buf.data(), buf.size()));
}

namespace {

/** The loadCached intern table and its lock. */
struct TraceCache
{
    std::mutex lock;
    std::unordered_map<std::string, std::shared_ptr<const TraceData>>
        entries;

    static TraceCache &
    instance()
    {
        static TraceCache c;
        return c;
    }
};

} // namespace

std::shared_ptr<const TraceData>
TraceData::loadCached(const std::string &path)
{
    TraceCache &c = TraceCache::instance();
    {
        std::lock_guard<std::mutex> g(c.lock);
        auto it = c.entries.find(path);
        if (it != c.entries.end())
            return it->second;
    }
    std::shared_ptr<const TraceData> t = load(path);
    std::lock_guard<std::mutex> g(c.lock);
    auto [it, inserted] = c.entries.emplace(path, std::move(t));
    // A racing loader may have beaten us; both parsed the same file.
    return it->second;
}

void
TraceData::invalidateCached(const std::string &path)
{
    TraceCache &c = TraceCache::instance();
    std::lock_guard<std::mutex> g(c.lock);
    c.entries.erase(path);
}

std::uint64_t
TraceData::minOpsPerNode() const
{
    std::uint64_t m = opsPerNode_.empty() ? 0 : opsPerNode_[0];
    for (std::uint64_t c : opsPerNode_)
        m = std::min(m, c);
    return m;
}

std::uint64_t
TraceData::totalOps() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : opsPerNode_)
        total += c;
    return total;
}

TraceData::Reader::Reader(const TraceData &trace, NodeId node)
{
    if (node >= trace.header_.numNodes) {
        throw TraceError("node " + std::to_string(node) +
                         " out of range (trace has " +
                         std::to_string(trace.header_.numNodes) +
                         " nodes)");
    }
    base_ = trace.streams_[node].data();
    size_ = trace.streams_[node].size();
    count_ = trace.opsPerNode_[node];
}

WorkloadOp
TraceData::Reader::next()
{
    if (done())
        throw TraceError("read past end of stream");
    if (pos_ >= size_)
        throw TraceError("stream shorter than advertised op count");
    const unsigned char flags = base_[pos_++];
    if (flags & kFlagReservedMask)
        throw TraceError("reserved flag bits set (corrupt stream?)");
    const std::int64_t delta =
        unzigzag(getVarint(base_, size_, pos_));

    WorkloadOp op;
    op.op = (flags & kFlagStore) ? MemOp::store : MemOp::load;
    op.endsTransaction = (flags & kFlagEndsTransaction) != 0;
    op.addr = prevAddr_ + static_cast<Addr>(delta);
    prevAddr_ = op.addr;
    ++returned_;
    return op;
}

void
TraceData::Reader::rewind()
{
    pos_ = 0;
    returned_ = 0;
    prevAddr_ = 0;
}

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(TraceHeader header)
    : header_(std::move(header)),
      opsPerNode_(header_.numNodes, 0),
      streams_(header_.numNodes),
      prevAddr_(header_.numNodes, 0)
{
    if (header_.numNodes == 0)
        throw TraceError("cannot record a zero-node trace");
    if (header_.provenance.size() > 0xffff)
        throw TraceError("provenance string too long");
}

void
TraceWriter::append(NodeId node, const WorkloadOp &op)
{
    std::vector<unsigned char> &s = streams_.at(node);
    unsigned char flags = 0;
    if (op.op == MemOp::store)
        flags |= kFlagStore;
    if (op.endsTransaction)
        flags |= kFlagEndsTransaction;
    s.push_back(flags);
    const std::int64_t delta = static_cast<std::int64_t>(
        op.addr - prevAddr_[node]);
    putVarint(s, zigzag(delta));
    prevAddr_[node] = op.addr;
    ++opsPerNode_[node];
}

std::string
TraceWriter::serialize() const
{
    std::string out;
    std::size_t body = 0;
    for (const auto &s : streams_)
        body += s.size();
    out.reserve(64 + header_.provenance.size() +
                16 * streams_.size() + body);

    out.append(kMagic, sizeof(kMagic));
    putU32(out, TraceData::version);
    putU32(out, header_.numNodes);
    putU32(out, header_.blockBytes);
    putU64(out, header_.seed);
    putU64(out, header_.warmupOpsPerProcessor);
    putU16(out, static_cast<std::uint16_t>(header_.provenance.size()));
    out.append(header_.provenance);
    for (std::uint64_t c : opsPerNode_)
        putU64(out, c);
    for (const auto &s : streams_)
        putU64(out, s.size());
    for (const auto &s : streams_)
        out.append(reinterpret_cast<const char *>(s.data()), s.size());
    return out;
}

void
TraceWriter::writeFile(const std::string &path) const
{
    // The file is about to change; a stale interned parse of the old
    // contents must not outlive it.
    TraceData::invalidateCached(path);
    const std::string buf = serialize();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw TraceError("cannot open '" + path + "' for writing");
    const std::size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
    const bool ok = wrote == buf.size() && std::fclose(f) == 0;
    if (!ok) {
        if (wrote != buf.size())
            std::fclose(f);
        throw TraceError("short write to '" + path + "'");
    }
}

} // namespace tokensim
