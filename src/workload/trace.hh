/**
 * @file
 * Trace-driven workload replay: a versioned binary format for recorded
 * per-processor operation streams, a recorder that wraps any live
 * Workload, and a replaying Workload that is a drop-in op source.
 *
 * The paper's evaluation rests on replayable commercial workload
 * checkpoints; our synthetic generators are parameterized stand-ins.
 * Recording a generator run to a trace makes any experiment exactly
 * re-runnable from an artifact, and — because replay feeds the
 * protocol stack the very same operation streams — a committed trace
 * plus its expected results is the strongest regression oracle we have
 * against behavioral drift in the simulator hot path
 * (tests/test_golden_traces.cc).
 *
 * Two properties the format leans on:
 *  - A sequencer pulls exactly (opsPerProcessor + warmupOpsPerProcessor)
 *    operations from its Workload per run, independent of protocol or
 *    timing, so a recorded trace replays against ANY protocol /
 *    topology / timing configuration with the same node count.
 *  - Each node's stream is self-contained (own generator RNG), so
 *    streams are recorded and replayed per node with no interleaving
 *    information needed.
 *
 * ## Trace format, version 1 (little-endian throughout)
 *
 *   offset  size          field
 *   0       8             magic "TOKTRACE"
 *   8       u32           version (= 1)
 *   12      u32           numNodes
 *   16      u32           blockBytes   (provenance; not enforced)
 *   20      u64           seed         (cfg.seed of the recorded run)
 *   28      u64           warmupOpsPerProcessor of the recorded run
 *   36      u16           provenance length P
 *   38      P bytes       provenance (workload preset name, UTF-8)
 *   ...     numNodes*u64  opsPerNode[n]     (operation counts)
 *   ...     numNodes*u64  streamBytes[n]    (encoded stream sizes)
 *   ...                   node 0's stream, node 1's stream, ...
 *
 * Per-operation encoding inside a stream (typically 2-3 bytes/op):
 *
 *   1 byte  flags: bit0 = store, bit1 = endsTransaction, bits 2..7
 *           must be zero in version 1
 *   varint  ULEB128 of the zigzag-encoded signed delta between this
 *           op's address and the previous address in the same stream
 *           (the first op's "previous address" is 0)
 *
 * Any malformed input — short header, bad magic/version, reserved
 * flag bits, a stream that ends mid-op or whose decoded op count
 * disagrees with the header — throws TraceError with a message naming
 * the problem; the parser never reads out of bounds.
 */

#ifndef TOKENSIM_WORKLOAD_TRACE_HH
#define TOKENSIM_WORKLOAD_TRACE_HH

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace tokensim {

/** Any structural problem with a trace file or buffer. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error("trace: " + what)
    {}
};

/** Provenance and geometry of a recorded run. */
struct TraceHeader
{
    std::uint32_t numNodes = 0;
    std::uint32_t blockBytes = 64;
    std::uint64_t seed = 0;
    std::uint64_t warmupOpsPerProcessor = 0;
    std::string provenance;   ///< preset name of the recorded workload
};

/**
 * An immutable parsed trace: the header plus one encoded operation
 * stream per node. Streams stay varint-encoded in memory (a few bytes
 * per op); TraceData::Reader decodes on the fly.
 */
class TraceData
{
  public:
    static constexpr std::uint32_t version = 1;

    /** Parse an in-memory serialized trace. @throws TraceError */
    static TraceData parse(const void *data, std::size_t size);

    /** Read and parse @p path. @throws TraceError (file or format). */
    static std::shared_ptr<const TraceData> load(const std::string &path);

    /**
     * Like load(), but interned in a process-wide cache keyed by path:
     * every shard of a ParallelRunner sweep replaying one trace shares
     * a single parsed copy instead of re-reading the file per
     * System::reset. Failed loads are never cached, and
     * TraceWriter::writeFile drops the entry for a path it rewrites
     * (in-process record → replay → re-record stays coherent; files
     * replaced behind the process's back by other means are not
     * detected).
     */
    static std::shared_ptr<const TraceData>
    loadCached(const std::string &path);

    /** Drop @p path's loadCached entry (the file changed). */
    static void invalidateCached(const std::string &path);

    const TraceHeader &header() const { return header_; }
    std::uint32_t numNodes() const { return header_.numNodes; }

    /** Recorded operation count of @p node's stream. */
    std::uint64_t
    opsForNode(NodeId node) const
    {
        return opsPerNode_.at(node);
    }

    /** Smallest per-node op count (a safe replay budget). */
    std::uint64_t minOpsPerNode() const;

    /** Total recorded operations across all nodes. */
    std::uint64_t totalOps() const;

    /** Sequential decoder over one node's stream. */
    class Reader
    {
      public:
        Reader(const TraceData &trace, NodeId node);

        /** All recorded ops have been returned since last rewind(). */
        bool done() const { return returned_ >= count_; }

        /** Decode the next op. @throws TraceError when done(). */
        WorkloadOp next();

        /** Restart from the first op. */
        void rewind();

      private:
        const unsigned char *base_;
        std::size_t size_;
        std::size_t pos_ = 0;
        std::uint64_t count_;
        std::uint64_t returned_ = 0;
        Addr prevAddr_ = 0;
    };

  private:
    TraceHeader header_;
    std::vector<std::uint64_t> opsPerNode_;
    /** Encoded streams; streams_[n] is node n's bytes. */
    std::vector<std::vector<unsigned char>> streams_;
};

/**
 * Accumulates per-node operation streams and serializes them to the
 * format above. Appends are buffered in memory (encoded immediately);
 * nothing touches the filesystem until writeFile().
 */
class TraceWriter
{
  public:
    explicit TraceWriter(TraceHeader header);

    /** Record one op of @p node's stream (in pull order). */
    void append(NodeId node, const WorkloadOp &op);

    std::uint64_t
    opsForNode(NodeId node) const
    {
        return opsPerNode_.at(node);
    }

    /** Serialize everything recorded so far. */
    std::string serialize() const;

    /** serialize() to @p path. @throws TraceError on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    TraceHeader header_;
    std::vector<std::uint64_t> opsPerNode_;
    std::vector<std::vector<unsigned char>> streams_;
    std::vector<Addr> prevAddr_;
};

/**
 * Transparent recording decorator: pulls from the wrapped generator,
 * appends each op to the (System-owned) TraceWriter, and hands the op
 * through unchanged — the simulation cannot tell it is being recorded.
 */
class RecordingWorkload : public Workload
{
  public:
    RecordingWorkload(std::unique_ptr<Workload> inner,
                      TraceWriter *writer, NodeId node)
        : inner_(std::move(inner)), writer_(writer), node_(node)
    {}

    WorkloadOp
    next() override
    {
        const WorkloadOp op = inner_->next();
        writer_->append(node_, op);
        return op;
    }

    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<Workload> inner_;
    TraceWriter *writer_;
    NodeId node_;
};

/**
 * Replays one node's recorded stream as a drop-in Workload. Pulling
 * past the recorded length wraps around to the start of the stream
 * (so a replay budget larger than the recording still runs; exact
 * reproduction requires matching budgets — trace_tool stats prints
 * the recorded counts).
 */
class TraceWorkload : public Workload
{
  public:
    TraceWorkload(std::shared_ptr<const TraceData> trace, NodeId node)
        : trace_(std::move(trace)), reader_(*trace_, node)
    {}

    WorkloadOp
    next() override
    {
        if (reader_.done())
            reader_.rewind();
        return reader_.next();
    }

    std::string
    name() const override
    {
        return "trace:" + trace_->header().provenance;
    }

  private:
    std::shared_ptr<const TraceData> trace_;   ///< keeps streams alive
    TraceData::Reader reader_;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_TRACE_HH
