/**
 * @file
 * Workload generator interface and building blocks.
 *
 * The paper drives its evaluation with full-system commercial workload
 * checkpoints (OLTP, Apache, SPECjbb). Those are substituted here by
 * synthetic generators that reproduce the sharing *patterns* those
 * workloads are known for (Barroso et al. [8]; Alameldeen et al. [6]):
 * per-processor private data, read-mostly shared data,
 * producer-consumer data, and — dominant in OLTP — migratory data
 * (locks and counters accessed read-modify-write by one processor at a
 * time). See DESIGN.md §1 for the substitution rationale.
 *
 * A Workload instance is the per-processor operation stream: the
 * sequencer pulls one WorkloadOp at a time.
 */

#ifndef TOKENSIM_WORKLOAD_WORKLOAD_HH
#define TOKENSIM_WORKLOAD_WORKLOAD_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proto/types.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace tokensim {

/** One memory operation produced by a workload generator. */
struct WorkloadOp
{
    MemOp op = MemOp::load;
    Addr addr = 0;
    bool endsTransaction = false;  ///< closes one unit of work
};

/** Per-processor stream of memory operations. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next operation of this processor's stream. */
    virtual WorkloadOp next() = 0;

    /**
     * Discard the next @p n operations of the stream, leaving the
     * generator exactly where @p n next() calls would have left it.
     * Warm-state snapshot restore uses this to re-align a fresh
     * workload with the operations the saved fast-forward consumed
     * (trace replays wrap exactly like repeated next() does).
     */
    virtual void
    skip(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            (void)next();
    }

    /** Generator name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Zipf-distributed sampler over [0, n): item k has weight
 * 1/(k+1)^theta. theta = 0 degenerates to uniform.
 *
 * Sampling is O(1) via a Walker/Vose alias table (one uniform column
 * pick plus one biased coin) instead of the former O(log n) binary
 * search over a CDF — Zipf draws sit on the workload-generation hot
 * path of every commercial preset. The (immutable) alias tables are
 * interned in a process-wide cache keyed by (n, theta): every node of
 * every System reuses one table per distinct distribution instead of
 * re-running the O(n log) build, which used to dominate per-shard
 * workload construction in the sweep benches.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta);

    std::size_t
    sample(Rng &rng) const
    {
        const Table &t = *table_;
        const std::size_t i =
            static_cast<std::size_t>(rng.below(t.prob.size()));
        return rng.uniform() < t.prob[i] ? i : t.alias[i];
    }

    std::size_t size() const { return table_->prob.size(); }

    /** Normalized closed-form weight of item @p k (for tests). */
    double weight(std::size_t k) const;

  private:
    struct Table
    {
        std::vector<double> prob;           ///< acceptance threshold
        std::vector<std::uint32_t> alias;   ///< fallback per column
        double theta = 0.0;
        double invWeightSum = 0.0;
    };

    /** Build (or fetch from the intern cache) the table. */
    static std::shared_ptr<const Table> tableFor(std::size_t n,
                                                 double theta);

    std::shared_ptr<const Table> table_;
};

/**
 * Shared layout of the synthetic address space. All generators draw
 * from these four region types; region placement interleaves homes
 * across all nodes automatically (block-address interleaving).
 */
struct AddressMap
{
    std::uint32_t blockBytes = 64;

    std::uint64_t privateBlocksPerNode = 1 << 18;  ///< 16 MB/node
    std::uint64_t sharedBlocks = 1 << 14;          ///< read-mostly
    std::uint64_t migratoryBlocks = 1 << 12;       ///< locks/counters
    std::uint64_t prodConsBlocks = 1 << 12;

    /** Region bases (computed; regions are disjoint). */
    Addr
    privateBase(NodeId node) const
    {
        return (Addr{node} * privateBlocksPerNode) * blockBytes;
    }

    Addr
    sharedBase(int num_nodes) const
    {
        return (Addr{static_cast<std::uint64_t>(num_nodes)} *
                privateBlocksPerNode) * blockBytes;
    }

    Addr
    migratoryBase(int num_nodes) const
    {
        return sharedBase(num_nodes) + sharedBlocks * blockBytes;
    }

    Addr
    prodConsBase(int num_nodes) const
    {
        return migratoryBase(num_nodes) + migratoryBlocks * blockBytes;
    }

    /**
     * Base of the transactional table region (YCSB records, TPC-C
     * warehouse slabs). Last region in the address space, so its size
     * is open-ended: the transactional presets size it from their own
     * knobs (record count, warehouses x slab blocks).
     */
    Addr
    tableBase(int num_nodes) const
    {
        return prodConsBase(num_nodes) + prodConsBlocks * blockBytes;
    }
};

// ---------------------------------------------------------------------
// Microbenchmark generators
// ---------------------------------------------------------------------

/**
 * Uniform random accesses to a small hot set shared by every
 * processor; storeFraction of the operations are writes. Used by the
 * Question-5 scaling study and the contention stress tests.
 */
class UniformSharedWorkload : public Workload
{
  public:
    UniformSharedWorkload(std::uint64_t blocks, double store_fraction,
                          std::uint32_t block_bytes, std::uint64_t seed,
                          int ops_per_transaction = 20)
        : blocks_(blocks), storeFraction_(store_fraction),
          blockBytes_(block_bytes), rng_(seed),
          opsPerTransaction_(ops_per_transaction)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = rng_.below(blocks_) * blockBytes_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = (++count_ % opsPerTransaction_) == 0;
        return op;
    }

    std::string name() const override { return "uniform-shared"; }

  private:
    std::uint64_t blocks_;
    double storeFraction_;
    std::uint32_t blockBytes_;
    Rng rng_;
    int opsPerTransaction_;
    std::uint64_t count_ = 0;
};

/**
 * Every processor hammers the same single block with stores — the
 * worst case for racing transient requests, used to exercise reissues
 * and persistent requests.
 */
class HotBlockWorkload : public Workload
{
  public:
    HotBlockWorkload(Addr block_addr, double store_fraction,
                     std::uint64_t seed)
        : addr_(block_addr), storeFraction_(store_fraction), rng_(seed)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = addr_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = true;
        return op;
    }

    std::string name() const override { return "hot-block"; }

  private:
    Addr addr_;
    double storeFraction_;
    Rng rng_;
};

/** Purely private accesses (no sharing): a protocol-overhead floor. */
class PrivateWorkload : public Workload
{
  public:
    PrivateWorkload(NodeId node, const AddressMap &map,
                    std::uint64_t working_set_blocks, double store_frac,
                    std::uint64_t seed)
        : base_(map.privateBase(node)),
          blocks_(working_set_blocks),
          blockBytes_(map.blockBytes),
          storeFraction_(store_frac),
          rng_(seed)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = base_ + rng_.below(blocks_) * blockBytes_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = (++count_ % 20) == 0;
        return op;
    }

    std::string name() const override { return "private"; }

  private:
    Addr base_;
    std::uint64_t blocks_;
    std::uint32_t blockBytes_;
    double storeFraction_;
    Rng rng_;
    std::uint64_t count_ = 0;
};

/**
 * Pure producer-consumer sharing: every block of a shared buffer
 * region has one static producer (block index mod node count) that
 * writes it; all other processors read it. This isolates the
 * producer-consumer component that the commercial mixes dilute with
 * private traffic — useful for studying forwarding behavior and as a
 * golden-trace workload whose sharing pattern is easy to reason about.
 */
class ProducerConsumerWorkload : public Workload
{
  public:
    ProducerConsumerWorkload(NodeId node, int num_nodes,
                             const AddressMap &map,
                             std::uint64_t buffer_blocks,
                             std::uint64_t seed,
                             int ops_per_transaction = 20)
        : node_(node), numNodes_(num_nodes),
          base_(map.prodConsBase(num_nodes)),
          blockBytes_(map.blockBytes),
          blocks_(std::min<std::uint64_t>(buffer_blocks,
                                          map.prodConsBlocks)),
          rng_(seed), opsPerTransaction_(ops_per_transaction)
    {}

    WorkloadOp
    next() override
    {
        const std::uint64_t idx = rng_.below(blocks_);
        const NodeId producer = static_cast<NodeId>(
            idx % static_cast<std::uint64_t>(numNodes_));
        WorkloadOp op;
        op.addr = base_ + idx * blockBytes_;
        op.op = producer == node_ ? MemOp::store : MemOp::load;
        op.endsTransaction = (++count_ % opsPerTransaction_) == 0;
        return op;
    }

    std::string name() const override { return "producer-consumer"; }

  private:
    NodeId node_;
    int numNodes_;
    Addr base_;
    std::uint32_t blockBytes_;
    std::uint64_t blocks_;
    Rng rng_;
    int opsPerTransaction_;
    std::uint64_t count_ = 0;
};

/**
 * Lock-contended ping-pong: every processor loops acquire → critical
 * section → release over a small set of lock blocks shared by all
 * nodes. An acquire is the load+store RMW pair of a test-and-set, the
 * critical section is a few private accesses (the protected work),
 * and the release is a final store to the lock that also ends the
 * transaction. With few locks and many contenders the lock lines
 * ping-pong continuously — a barrier-style stress for migratory
 * sharing, racing transient requests, and persistent-request
 * starvation avoidance.
 */
class LockPingWorkload : public Workload
{
  public:
    LockPingWorkload(NodeId node, int num_nodes, const AddressMap &map,
                     std::uint64_t lock_blocks, int section_ops,
                     std::uint64_t seed)
        : privateBase_(map.privateBase(node)),
          lockBase_(map.migratoryBase(num_nodes)),
          blockBytes_(map.blockBytes),
          locks_(std::min<std::uint64_t>(
              lock_blocks ? lock_blocks : 1, map.migratoryBlocks)),
          sectionOps_(section_ops), rng_(seed)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        switch (phase_) {
          case Phase::acquireLoad:
            lockAddr_ = lockBase_ + rng_.below(locks_) * blockBytes_;
            op = WorkloadOp{MemOp::load, lockAddr_, false};
            phase_ = Phase::acquireStore;
            break;
          case Phase::acquireStore:
            op = WorkloadOp{MemOp::store, lockAddr_, false};
            sectionLeft_ = sectionOps_;
            phase_ = sectionLeft_ > 0 ? Phase::section
                                      : Phase::release;
            break;
          case Phase::section:
            // Protected work: a small private working set, half
            // stores (the shared data a real lock guards is modeled
            // by the lock line itself ping-ponging).
            op.addr = privateBase_ +
                rng_.below(kSectionBlocks) * blockBytes_;
            op.op = rng_.chance(0.5) ? MemOp::store : MemOp::load;
            if (--sectionLeft_ == 0)
                phase_ = Phase::release;
            break;
          case Phase::release:
            // The release makes the next contender's acquire miss.
            op = WorkloadOp{MemOp::store, lockAddr_, true};
            phase_ = Phase::acquireLoad;
            break;
        }
        return op;
    }

    std::string name() const override { return "lock-ping"; }

  private:
    enum class Phase : std::uint8_t
    {
        acquireLoad,
        acquireStore,
        section,
        release,
    };

    static constexpr std::uint64_t kSectionBlocks = 64;

    Addr privateBase_;
    Addr lockBase_;
    std::uint32_t blockBytes_;
    std::uint64_t locks_;
    int sectionOps_;
    Rng rng_;
    Phase phase_ = Phase::acquireLoad;
    Addr lockAddr_ = 0;
    int sectionLeft_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_WORKLOAD_HH
