/**
 * @file
 * Workload generator interface and building blocks.
 *
 * The paper drives its evaluation with full-system commercial workload
 * checkpoints (OLTP, Apache, SPECjbb). Those are substituted here by
 * synthetic generators that reproduce the sharing *patterns* those
 * workloads are known for (Barroso et al. [8]; Alameldeen et al. [6]):
 * per-processor private data, read-mostly shared data,
 * producer-consumer data, and — dominant in OLTP — migratory data
 * (locks and counters accessed read-modify-write by one processor at a
 * time). See DESIGN.md §1 for the substitution rationale.
 *
 * A Workload instance is the per-processor operation stream: the
 * sequencer pulls one WorkloadOp at a time.
 */

#ifndef TOKENSIM_WORKLOAD_WORKLOAD_HH
#define TOKENSIM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proto/types.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace tokensim {

/** One memory operation produced by a workload generator. */
struct WorkloadOp
{
    MemOp op = MemOp::load;
    Addr addr = 0;
    bool endsTransaction = false;  ///< closes one unit of work
};

/** Per-processor stream of memory operations. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next operation of this processor's stream. */
    virtual WorkloadOp next() = 0;

    /** Generator name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Zipf-distributed sampler over [0, n): item k has weight
 * 1/(k+1)^theta. theta = 0 degenerates to uniform.
 *
 * Sampling is O(1) via a Walker/Vose alias table (one uniform column
 * pick plus one biased coin) instead of the former O(log n) binary
 * search over a CDF — Zipf draws sit on the workload-generation hot
 * path of every commercial preset. The (immutable) alias tables are
 * interned in a process-wide cache keyed by (n, theta): every node of
 * every System reuses one table per distinct distribution instead of
 * re-running the O(n log) build, which used to dominate per-shard
 * workload construction in the sweep benches.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta);

    std::size_t
    sample(Rng &rng) const
    {
        const Table &t = *table_;
        const std::size_t i =
            static_cast<std::size_t>(rng.below(t.prob.size()));
        return rng.uniform() < t.prob[i] ? i : t.alias[i];
    }

    std::size_t size() const { return table_->prob.size(); }

    /** Normalized closed-form weight of item @p k (for tests). */
    double weight(std::size_t k) const;

  private:
    struct Table
    {
        std::vector<double> prob;           ///< acceptance threshold
        std::vector<std::uint32_t> alias;   ///< fallback per column
        double theta = 0.0;
        double invWeightSum = 0.0;
    };

    /** Build (or fetch from the intern cache) the table. */
    static std::shared_ptr<const Table> tableFor(std::size_t n,
                                                 double theta);

    std::shared_ptr<const Table> table_;
};

/**
 * Shared layout of the synthetic address space. All generators draw
 * from these four region types; region placement interleaves homes
 * across all nodes automatically (block-address interleaving).
 */
struct AddressMap
{
    std::uint32_t blockBytes = 64;

    std::uint64_t privateBlocksPerNode = 1 << 18;  ///< 16 MB/node
    std::uint64_t sharedBlocks = 1 << 14;          ///< read-mostly
    std::uint64_t migratoryBlocks = 1 << 12;       ///< locks/counters
    std::uint64_t prodConsBlocks = 1 << 12;

    /** Region bases (computed; regions are disjoint). */
    Addr
    privateBase(NodeId node) const
    {
        return (Addr{node} * privateBlocksPerNode) * blockBytes;
    }

    Addr
    sharedBase(int num_nodes) const
    {
        return (Addr{static_cast<std::uint64_t>(num_nodes)} *
                privateBlocksPerNode) * blockBytes;
    }

    Addr
    migratoryBase(int num_nodes) const
    {
        return sharedBase(num_nodes) + sharedBlocks * blockBytes;
    }

    Addr
    prodConsBase(int num_nodes) const
    {
        return migratoryBase(num_nodes) + migratoryBlocks * blockBytes;
    }
};

// ---------------------------------------------------------------------
// Microbenchmark generators
// ---------------------------------------------------------------------

/**
 * Uniform random accesses to a small hot set shared by every
 * processor; storeFraction of the operations are writes. Used by the
 * Question-5 scaling study and the contention stress tests.
 */
class UniformSharedWorkload : public Workload
{
  public:
    UniformSharedWorkload(std::uint64_t blocks, double store_fraction,
                          std::uint32_t block_bytes, std::uint64_t seed,
                          int ops_per_transaction = 20)
        : blocks_(blocks), storeFraction_(store_fraction),
          blockBytes_(block_bytes), rng_(seed),
          opsPerTransaction_(ops_per_transaction)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = rng_.below(blocks_) * blockBytes_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = (++count_ % opsPerTransaction_) == 0;
        return op;
    }

    std::string name() const override { return "uniform-shared"; }

  private:
    std::uint64_t blocks_;
    double storeFraction_;
    std::uint32_t blockBytes_;
    Rng rng_;
    int opsPerTransaction_;
    std::uint64_t count_ = 0;
};

/**
 * Every processor hammers the same single block with stores — the
 * worst case for racing transient requests, used to exercise reissues
 * and persistent requests.
 */
class HotBlockWorkload : public Workload
{
  public:
    HotBlockWorkload(Addr block_addr, double store_fraction,
                     std::uint64_t seed)
        : addr_(block_addr), storeFraction_(store_fraction), rng_(seed)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = addr_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = true;
        return op;
    }

    std::string name() const override { return "hot-block"; }

  private:
    Addr addr_;
    double storeFraction_;
    Rng rng_;
};

/** Purely private accesses (no sharing): a protocol-overhead floor. */
class PrivateWorkload : public Workload
{
  public:
    PrivateWorkload(NodeId node, const AddressMap &map,
                    std::uint64_t working_set_blocks, double store_frac,
                    std::uint64_t seed)
        : base_(map.privateBase(node)),
          blocks_(working_set_blocks),
          blockBytes_(map.blockBytes),
          storeFraction_(store_frac),
          rng_(seed)
    {}

    WorkloadOp
    next() override
    {
        WorkloadOp op;
        op.addr = base_ + rng_.below(blocks_) * blockBytes_;
        op.op = rng_.chance(storeFraction_) ? MemOp::store : MemOp::load;
        op.endsTransaction = (++count_ % 20) == 0;
        return op;
    }

    std::string name() const override { return "private"; }

  private:
    Addr base_;
    std::uint64_t blocks_;
    std::uint32_t blockBytes_;
    double storeFraction_;
    Rng rng_;
    std::uint64_t count_ = 0;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_WORKLOAD_HH
