#include "workload/ycsb.hh"

namespace tokensim {

YcsbWorkload::YcsbWorkload(NodeId node, int num_nodes,
                           const AddressMap &map,
                           const YcsbParams &params, std::uint64_t seed)
    : tableBase_(map.tableBase(num_nodes)),
      blockBytes_(map.blockBytes),
      params_(params),
      zipf_(static_cast<std::size_t>(params.records), params.theta),
      rng_(seed)
{
    (void)node;  // all nodes of a group share one table
}

std::uint64_t
YcsbWorkload::scramble(std::uint64_t rank, std::uint64_t records)
{
    // SplitMix64 finalizer: a bijective 64-bit mix, folded into the
    // table. Distinct ranks can collide after the fold (as in YCSB's
    // own FNV-based scrambling) — harmless, popularity just stacks.
    std::uint64_t z = rank + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z % records;
}

Addr
YcsbWorkload::recordAddr(std::uint64_t key) const
{
    return tableBase_ + key * blockBytes_;
}

WorkloadOp
YcsbWorkload::next()
{
    if (!pending_.empty()) {
        WorkloadOp op = pending_.front();
        pending_.pop_front();
        return op;
    }

    const std::uint64_t rank = zipf_.sample(rng_);
    const std::uint64_t key = scramble(rank, params_.records);
    const double r = rng_.uniform();

    if (r < params_.readFraction)
        return WorkloadOp{MemOp::load, recordAddr(key), true};

    if (r < params_.readFraction + params_.updateFraction) {
        // Read-modify-write to one record.
        pending_.push_back(WorkloadOp{MemOp::store, recordAddr(key),
                                      true});
        return WorkloadOp{MemOp::load, recordAddr(key), false};
    }

    // Scan: scanLen sequential records from the chosen key, wrapping
    // at the end of the table.
    for (int i = 1; i < params_.scanLen; ++i) {
        const std::uint64_t k = (key + static_cast<std::uint64_t>(i)) %
            params_.records;
        pending_.push_back(WorkloadOp{MemOp::load, recordAddr(k),
                                      i == params_.scanLen - 1});
    }
    return WorkloadOp{MemOp::load, recordAddr(key),
                      params_.scanLen == 1};
}

} // namespace tokensim
