/**
 * @file
 * YCSB-style key-value workload generator.
 *
 * Models the Yahoo! Cloud Serving Benchmark request mixes that
 * distributed key-value stores (and ScaleStore-style disaggregated
 * engines) are evaluated with: point reads, read-modify-write
 * updates, and short range scans over a table of fixed-size records,
 * with popularity following a *scrambled* Zipf distribution — the
 * Zipf rank order is hashed so the hot keys scatter uniformly across
 * the table instead of clustering at its start. Every node of a
 * tenant group draws from the same table (the shared region at
 * AddressMap::tableBase), so popular records are genuinely contended
 * across processors while the block-interleaved home mapping spreads
 * their directories over the whole machine.
 *
 * One record maps to one cache block. Operations:
 *  - read:   one load, ends the transaction;
 *  - update: load + store RMW pair to one record (migratory-style
 *            sharing on hot records), store ends the transaction;
 *  - scan:   scanLen sequential records (wrapping mod table size),
 *            all loads, last one ends the transaction.
 */

#ifndef TOKENSIM_WORKLOAD_YCSB_HH
#define TOKENSIM_WORKLOAD_YCSB_HH

#include <deque>
#include <string>

#include "workload/workload.hh"

namespace tokensim {

/** Knobs for YcsbWorkload; validated by the workload factory. */
struct YcsbParams
{
    std::uint64_t records = 1 << 16;  ///< table size in records/blocks
    double theta = 0.8;               ///< Zipf skew of key popularity
    double readFraction = 0.70;       ///< point reads
    double updateFraction = 0.25;     ///< RMW updates (rest: scans)
    int scanLen = 8;                  ///< records per scan
};

class YcsbWorkload : public Workload
{
  public:
    YcsbWorkload(NodeId node, int num_nodes, const AddressMap &map,
                 const YcsbParams &params, std::uint64_t seed);

    WorkloadOp next() override;

    std::string name() const override { return "ycsb"; }

    /**
     * The scrambled key for Zipf rank @p rank: a 64-bit finalizer mix
     * folded into the table, so rank order (and thus popularity mass)
     * is decorrelated from table position. Exposed for tests.
     */
    static std::uint64_t scramble(std::uint64_t rank,
                                  std::uint64_t records);

  private:
    Addr recordAddr(std::uint64_t key) const;

    Addr tableBase_;
    std::uint32_t blockBytes_;
    YcsbParams params_;
    ZipfSampler zipf_;
    Rng rng_;
    std::deque<WorkloadOp> pending_;
};

} // namespace tokensim

#endif // TOKENSIM_WORKLOAD_YCSB_HH
