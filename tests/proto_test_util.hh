/**
 * @file
 * Shared helper for protocol-level tests: builds a System without
 * active sequencers and drives the cache controllers directly, so
 * tests can issue single operations and observe protocol state
 * between them.
 */

#ifndef TOKENSIM_TESTS_PROTO_TEST_UTIL_HH
#define TOKENSIM_TESTS_PROTO_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "harness/system.hh"

namespace tokensim {
namespace testutil {

/** Drives protocol controllers directly, one operation at a time. */
class ProtoDriver
{
  public:
    /** Build with a config; opsPerProcessor is forced to zero and the
     *  completion callbacks are re-pointed at the driver. */
    explicit ProtoDriver(SystemConfig cfg)
    {
        cfg.opsPerProcessor = 0;
        sys = std::make_unique<System>(cfg);
        completions.resize(static_cast<std::size_t>(sys->numNodes()));
        removals.resize(static_cast<std::size_t>(sys->numNodes()));
        for (int i = 0; i < sys->numNodes(); ++i) {
            const auto id = static_cast<NodeId>(i);
            sys->cache(id).setCompletionCallback(
                [this, id](const ProcResponse &r) {
                    completions[id].push_back(r);
                });
            sys->cache(id).setLineRemovedCallback(
                [this, id](Addr a) { removals[id].push_back(a); });
        }
    }

    /** Issue an operation without waiting. */
    void
    issue(NodeId node, MemOp op, Addr addr, std::uint64_t value = 0)
    {
        ProcRequest req;
        req.op = op;
        req.addr = addr;
        req.storeValue = value;
        req.reqId = ++nextId;
        sys->cache(node).request(req);
    }

    /** Run the event queue until node has >= count completions. */
    bool
    runUntilCompletions(NodeId node, std::size_t count,
                        Tick guard = nsToTicks(50'000'000))
    {
        return sys->eq().runUntil(
            [&]() { return completions[node].size() >= count; },
            sys->eq().curTick() + guard);
    }

    /** Issue one op and run until it completes; returns the response. */
    ProcResponse
    doOp(NodeId node, MemOp op, Addr addr, std::uint64_t value = 0)
    {
        const std::size_t want = completions[node].size() + 1;
        issue(node, op, addr, value);
        EXPECT_TRUE(runUntilCompletions(node, want))
            << "operation did not complete (node " << node << ", addr "
            << std::hex << addr << ")";
        return completions[node].back();
    }

    ProcResponse
    load(NodeId node, Addr addr)
    {
        return doOp(node, MemOp::load, addr);
    }

    ProcResponse
    store(NodeId node, Addr addr, std::uint64_t value)
    {
        return doOp(node, MemOp::store, addr, value);
    }

    /** Drain every pending event (writebacks, handshakes). */
    void
    drain(Tick guard = nsToTicks(50'000'000))
    {
        EXPECT_TRUE(sys->eq().run(sys->eq().curTick() + guard))
            << "event queue failed to drain";
    }

    /** Token-conservation audit (token protocols with auditor). */
    void
    expectConserved()
    {
        if (sys->auditor()) {
            std::string err;
            EXPECT_TRUE(sys->auditor()->auditAll(&err)) << err;
        }
    }

    std::unique_ptr<System> sys;
    std::vector<std::vector<ProcResponse>> completions;
    std::vector<std::vector<Addr>> removals;
    std::uint64_t nextId = 0;
};

/** A base config for small protocol tests. */
inline SystemConfig
smallConfig(ProtocolKind proto, const std::string &topo = "torus",
            int nodes = 4)
{
    SystemConfig cfg;
    cfg.numNodes = nodes;
    cfg.topology = topo;
    cfg.protocol = proto;
    cfg.attachAuditor = true;
    cfg.workload = "private";   // irrelevant: driver issues ops
    return cfg;
}

} // namespace testutil
} // namespace tokensim

#endif // TOKENSIM_TESTS_PROTO_TEST_UTIL_HH
