/**
 * @file
 * Strict CLI numeric parsing (harness/argparse.hh): every malformed
 * form the sweep tool used to accept silently — trailing garbage,
 * wrapped negatives, empty strings, overflow — must throw ArgError
 * with a message naming the offending option.
 */

#include <gtest/gtest.h>

#include <functional>

#include "harness/argparse.hh"

using namespace tokensim;

namespace {

/** The thrown message names the option and echoes the bad text. */
void
expectArgError(const std::function<void()> &f, const char *what,
               const char *text)
{
    try {
        f();
        FAIL() << what << " should have rejected '" << text << "'";
    } catch (const ArgError &e) {
        EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(text), std::string::npos)
            << e.what();
    }
}

TEST(ArgParse, U64AcceptsPlainIntegers)
{
    EXPECT_EQ(parseU64("--ops", "0"), 0u);
    EXPECT_EQ(parseU64("--ops", "1000"), 1000u);
    EXPECT_EQ(parseU64("--seed", "18446744073709551615"),
              ~std::uint64_t{0});
}

TEST(ArgParse, U64RejectsGarbage)
{
    expectArgError([] { parseU64("--ops", ""); }, "--ops", "''");
    expectArgError([] { parseU64("--ops", "12x"); }, "--ops", "12x");
    expectArgError([] { parseU64("--ops", "x12"); }, "--ops", "x12");
    expectArgError([] { parseU64("--ops", "1 2"); }, "--ops", "1 2");
    expectArgError([] { parseU64("--ops", "1.5"); }, "--ops", "1.5");
    expectArgError([] { parseU64("--ops", " 7"); }, "--ops", " 7");
}

TEST(ArgParse, U64RejectsNegativesInsteadOfWrapping)
{
    // std::stoull would wrap "-1" through to 2^64 - 1.
    expectArgError([] { parseU64("--seeds", "-1"); }, "--seeds", "-1");
    expectArgError([] { parseU64("--seeds", "-0"); }, "--seeds", "-0");
}

TEST(ArgParse, U64RejectsOverflow)
{
    expectArgError([] { parseU64("--seed", "18446744073709551616"); },
                   "--seed", "18446744073709551616");
    expectArgError([] { parseU64("--seed", "999999999999999999999"); },
                   "--seed", "999999999999999999999");
}

TEST(ArgParse, U64EnforcesCallerRange)
{
    EXPECT_EQ(parseU64("--seeds", "1", 1), 1u);
    expectArgError([] { parseU64("--seeds", "0", 1); }, "--seeds",
                   "0");
    expectArgError([] { parseU64("--w", "11", 0, 10); }, "--w", "11");
}

TEST(ArgParse, I64AcceptsSignedIntegers)
{
    EXPECT_EQ(parseI64("--t", "-1"), -1);
    EXPECT_EQ(parseI64("--t", "0"), 0);
    EXPECT_EQ(parseI64("--t", "9223372036854775807"),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(parseI64("--t", "-9223372036854775808"),
              std::numeric_limits<std::int64_t>::min());
}

TEST(ArgParse, I64RejectsGarbageAndOverflow)
{
    expectArgError([] { parseI64("--t", ""); }, "--t", "''");
    expectArgError([] { parseI64("--t", "-"); }, "--t", "'-'");
    expectArgError([] { parseI64("--t", "--2"); }, "--t", "--2");
    expectArgError([] { parseI64("--t", "3ms"); }, "--t", "3ms");
    expectArgError([] { parseI64("--t", "9223372036854775808"); },
                   "--t", "9223372036854775808");
}

TEST(ArgParse, I64EnforcesCallerRange)
{
    EXPECT_EQ(parseI64("--shard-timeout", "-1", -1), -1);
    expectArgError([] { parseI64("--shard-timeout", "-2", -1); },
                   "--shard-timeout", "-2");
}

TEST(ArgParse, IntNarrowsWithRangeCheck)
{
    EXPECT_EQ(parseInt("--nodes", "1024", 1), 1024);
    expectArgError([] { parseInt("--nodes", "0", 1); }, "--nodes",
                   "0");
    // Beyond int range is out of the (defaulted) caller range.
    expectArgError([] { parseInt("--nodes", "2147483648", 1); },
                   "--nodes", "2147483648");
}

} // namespace
