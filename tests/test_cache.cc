/**
 * @file
 * Unit tests for the set-associative cache array, DRAM model, and
 * backing store.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "proto/controller.hh"

namespace tokensim {
namespace {

struct TestLine : CacheLineBase
{
    int payload = 0;
};

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 64B.
    return CacheParams{512, 2, 64, nsToTicks(6)};
}

TEST(CacheArray, Geometry)
{
    CacheArray<TestLine> c(smallCache());
    EXPECT_EQ(c.params().numSets(), 4u);
    EXPECT_EQ(c.blockAlign(0x12345), 0x12340u);
}

TEST(CacheArray, FindMissesWhenEmpty)
{
    CacheArray<TestLine> c(smallCache());
    EXPECT_EQ(c.find(0x1000), nullptr);
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(CacheArray, AllocateAndFind)
{
    CacheArray<TestLine> c(smallCache());
    CacheArray<TestLine>::Victim v;
    TestLine *l = c.allocate(0x1000, &v);
    ASSERT_NE(l, nullptr);
    EXPECT_FALSE(v.valid);
    l->payload = 42;
    TestLine *f = c.find(0x1000);
    ASSERT_EQ(f, l);
    EXPECT_EQ(f->payload, 42);
    // Sub-block addresses find the same line.
    EXPECT_EQ(c.find(0x1004), l);
}

TEST(CacheArray, EvictsLruWayWhenSetFull)
{
    CacheArray<TestLine> c(smallCache());
    // Set index = (addr/64) % 4. Addresses 0x000, 0x100, 0x200 all
    // map to set 0 (strides of 256 = 4 blocks).
    CacheArray<TestLine>::Victim v;
    c.allocate(0x000, &v)->payload = 1;
    c.allocate(0x100, &v)->payload = 2;
    EXPECT_FALSE(v.valid);
    // Touch 0x000 so 0x100 becomes LRU.
    c.touch(0x000);
    c.allocate(0x200, &v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.line.addr, 0x100u);
    EXPECT_EQ(v.line.payload, 2);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x200));
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray<TestLine> c(smallCache());
    CacheArray<TestLine>::Victim v;
    c.allocate(0x000, &v);
    c.allocate(0x100, &v);
    c.invalidate(0x000);
    EXPECT_FALSE(c.contains(0x000));
    // Allocation now reuses the freed way without eviction.
    c.allocate(0x200, &v);
    EXPECT_FALSE(v.valid);
}

TEST(CacheArray, ForEachValidVisitsAllLines)
{
    CacheArray<TestLine> c(smallCache());
    CacheArray<TestLine>::Victim v;
    c.allocate(0x000, &v);
    c.allocate(0x040, &v);
    c.allocate(0x080, &v);
    EXPECT_EQ(c.validCount(), 3u);
    int sum = 0;
    c.forEachValid([&](TestLine &l) {
        l.payload = 1;
        ++sum;
    });
    EXPECT_EQ(sum, 3);
}

TEST(CacheArray, Table1L2Geometry)
{
    // 4 MB, 4-way, 64 B: 16384 sets.
    CacheParams p{4 * 1024 * 1024, 4, 64, nsToTicks(6)};
    EXPECT_EQ(p.numSets(), 16384u);
    CacheArray<TestLine> c(p);
    CacheArray<TestLine>::Victim v;
    c.allocate(0xdeadbeefc0ULL, &v);
    EXPECT_TRUE(c.contains(0xdeadbeefc0ULL));
}

TEST(Dram, FixedLatency)
{
    Dram d(DramParams{nsToTicks(80), 0});
    EXPECT_EQ(d.access(0), nsToTicks(80));
    EXPECT_EQ(d.access(100), 100 + nsToTicks(80));
    EXPECT_EQ(d.accesses(), 2u);
}

TEST(Dram, MinGapSerializesBursts)
{
    Dram d(DramParams{nsToTicks(80), nsToTicks(10)});
    EXPECT_EQ(d.access(0), nsToTicks(80));
    // Second access at the same instant starts 10 ns later.
    EXPECT_EQ(d.access(0), nsToTicks(10) + nsToTicks(80));
}

TEST(BackingStore, InitialValueIsAddressPattern)
{
    BackingStore bs(64);
    EXPECT_EQ(bs.read(0x1000), 0x1000u);
    EXPECT_EQ(bs.read(0x1004), 0x1000u);   // block-aligned
}

TEST(BackingStore, WriteThenRead)
{
    BackingStore bs(64);
    bs.write(0x2000, 0xabcd);
    EXPECT_EQ(bs.read(0x2000), 0xabcdu);
    EXPECT_EQ(bs.read(0x203f), 0xabcdu);
    EXPECT_EQ(bs.read(0x2040), 0x2040u);   // next block untouched
}

} // namespace
} // namespace tokensim
