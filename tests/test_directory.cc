/**
 * @file
 * Protocol tests for the full-map MOSI directory: home serialization,
 * forwarded requests, invalidation acks, the owner-upgrade grant path,
 * writeback/forward races, queueing without NACKs, and the
 * perfect-directory latency ablation of Figure 5a.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "proto/directory/directory.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

DirCache &
dcache(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<DirCache &>(d.sys->cache(n));
}

DirMemory &
dmem(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<DirMemory &>(d.sys->memory(n));
}

SystemConfig
dirConfig(int nodes = 4)
{
    return smallConfig(ProtocolKind::directory, "torus", nodes);
}

constexpr Addr kBlock = 0x400;   // home 0 on 4 nodes

TEST(Directory, ColdLoadRecordsSharer)
{
    ProtoDriver d(dirConfig());
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_FALSE(r.cacheToCache);
    EXPECT_EQ(r.value, kBlock);
    EXPECT_EQ(dcache(d, 1).state(kBlock), DirCacheState::S);
    d.drain();   // let the unblock land before inspecting the home
    const auto v = dmem(d, 0).view(kBlock);
    EXPECT_FALSE(v.busy);
    EXPECT_EQ(v.owner, invalidNode);
    ASSERT_EQ(v.sharers.size(), 1u);
    EXPECT_EQ(v.sharers[0], 1u);
}

TEST(Directory, StoreRecordsOwner)
{
    ProtoDriver d(dirConfig());
    d.store(2, kBlock, 0x22);
    d.drain();
    const auto v = dmem(d, 0).view(kBlock);
    EXPECT_EQ(v.owner, 2u);
    EXPECT_TRUE(v.sharers.empty());
    EXPECT_EQ(dcache(d, 2).state(kBlock), DirCacheState::M);
}

TEST(Directory, StoreToSharedSendsInvalidations)
{
    ProtoDriver d(dirConfig());
    for (NodeId n = 1; n < 4; ++n)
        d.load(n, kBlock);
    const ProcResponse r = d.store(3, kBlock, 0x99);
    EXPECT_TRUE(r.wasMiss);
    for (NodeId n = 1; n < 3; ++n)
        EXPECT_EQ(dcache(d, n).state(kBlock), DirCacheState::I);
    EXPECT_EQ(dcache(d, 3).state(kBlock), DirCacheState::M);
    // Two sharers were invalidated; their acks went to node 3.
    EXPECT_EQ(d.sys->net().traffic()
                  .messagesByType[static_cast<std::size_t>(
                      MsgType::inv)], 2u);
    EXPECT_EQ(d.sys->net().traffic()
                  .messagesByType[static_cast<std::size_t>(
                      MsgType::invAck)], 2u);
}

TEST(Directory, CacheToCacheForwardOnRead)
{
    SystemConfig cfg = dirConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 0xabc);
    const ProcResponse r = d.load(2, kBlock);
    EXPECT_TRUE(r.cacheToCache);   // three-hop transfer via owner
    EXPECT_EQ(r.value, 0xabcu);
    EXPECT_EQ(dcache(d, 1).state(kBlock), DirCacheState::O);
    EXPECT_EQ(dcache(d, 2).state(kBlock), DirCacheState::S);
    d.drain();
    const auto v = dmem(d, 0).view(kBlock);
    EXPECT_EQ(v.owner, 1u);
    EXPECT_EQ(v.sharers.size(), 1u);
}

TEST(Directory, MigratoryReadTransfersExclusive)
{
    ProtoDriver d(dirConfig());
    d.store(1, kBlock, 0xabc);
    const ProcResponse r = d.load(2, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(dcache(d, 2).state(kBlock), DirCacheState::M);
    EXPECT_EQ(dcache(d, 1).state(kBlock), DirCacheState::I);
    d.drain();
    const auto v = dmem(d, 0).view(kBlock);
    EXPECT_EQ(v.owner, 2u);   // unblockExclusive retargeted ownership
    EXPECT_FALSE(d.store(2, kBlock, 0xdef).wasMiss);
}

TEST(Directory, OwnerUpgradeUsesDatalessGrant)
{
    SystemConfig cfg = dirConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 0x1);    // node 1: M
    d.load(2, kBlock);          // node 1 -> O, node 2: S
    ASSERT_EQ(dcache(d, 1).state(kBlock), DirCacheState::O);
    const auto data_before = d.sys->net().traffic().messagesOf(
        MsgClass::data);
    const ProcResponse r = d.store(1, kBlock, 0x2);   // O -> M upgrade
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(dcache(d, 1).state(kBlock), DirCacheState::M);
    EXPECT_EQ(dcache(d, 2).state(kBlock), DirCacheState::I);
    // The grant carried no data: no new data messages.
    EXPECT_EQ(d.sys->net().traffic().messagesOf(MsgClass::data),
              data_before);
    EXPECT_EQ(d.load(1, kBlock).value, 0x2u);
}

TEST(Directory, FwdGetMCollectsInvalidationsAtRequester)
{
    SystemConfig cfg = dirConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 0x1);    // owner 1
    d.load(2, kBlock);          // owner 1 (O), sharer 2
    d.load(3, kBlock);          // sharers {2, 3}
    const ProcResponse r = d.store(0, kBlock, 0xff);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(dcache(d, 0).state(kBlock), DirCacheState::M);
    for (NodeId n = 1; n < 4; ++n)
        EXPECT_EQ(dcache(d, n).state(kBlock), DirCacheState::I);
    d.drain();
    const auto v = dmem(d, 0).view(kBlock);
    EXPECT_EQ(v.owner, 0u);
    EXPECT_TRUE(v.sharers.empty());
}

TEST(Directory, RacingRequestsQueueWithoutNacks)
{
    ProtoDriver d(dirConfig());
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, 0x100 + n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1)) << "node " << n;
    d.drain();
    EXPECT_TRUE(dmem(d, 0).quiescent());
    int modified = 0;
    for (NodeId n = 0; n < 4; ++n)
        modified += dcache(d, n).state(kBlock) == DirCacheState::M;
    EXPECT_EQ(modified, 1);
}

TEST(Directory, WritebackUpdatesMemoryAndDirectory)
{
    SystemConfig cfg = dirConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.store(1, 0x200, 0x333);   // evicts 0x000 -> PutM
    d.drain();
    EXPECT_TRUE(dcache(d, 1).quiescent());   // wbAck arrived
    const auto v = dmem(d, 0).view(0x000);
    EXPECT_EQ(v.owner, invalidNode);
    EXPECT_EQ(dmem(d, 0).peekData(0x000), 0x111u);
    EXPECT_EQ(d.load(2, 0x000).value, 0x111u);
}

TEST(Directory, ForwardDuringWritebackServedFromBuffer)
{
    // Evict a dirty line and immediately have another node request
    // it: the forward may reach the evictor before its PutM lands;
    // it must answer from the writeback buffer.
    SystemConfig cfg = dirConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.issue(1, MemOp::store, 0x200, 0x333);   // evicts 0x000
    d.issue(3, MemOp::load, 0x000);
    ASSERT_TRUE(d.runUntilCompletions(3, 1));
    EXPECT_EQ(d.completions[3][0].value, 0x111u);
    d.drain();
    EXPECT_TRUE(dcache(d, 1).quiescent());
    EXPECT_TRUE(dmem(d, 0).quiescent());
}

TEST(Directory, PerfectDirectoryLowersCacheToCacheLatency)
{
    // Figure 5a's striped bar: the DRAM directory lookup gates the
    // forward; a zero-latency directory removes it.
    auto run = [](bool perfect) {
        SystemConfig cfg = dirConfig();
        cfg.proto.perfectDirectory = perfect;
        ProtoDriver d(cfg);
        d.store(1, kBlock, 0x1);
        const ProcResponse r = d.load(2, kBlock);
        return r.completedAt - r.issuedAt;
    };
    const Tick dram_dir = run(false);
    const Tick perfect_dir = run(true);
    EXPECT_GT(dram_dir, perfect_dir);
    // The difference is roughly the 80 ns lookup.
    EXPECT_NEAR(static_cast<double>(dram_dir - perfect_dir),
                static_cast<double>(nsToTicks(80)),
                static_cast<double>(nsToTicks(10)));
}

TEST(Directory, ValuesChainAcrossOwners)
{
    ProtoDriver d(dirConfig());
    std::uint64_t expect = kBlock;
    for (int round = 0; round < 3; ++round) {
        for (NodeId n = 0; n < 4; ++n) {
            EXPECT_EQ(d.load(n, kBlock).value, expect);
            expect = 0x1000u * (round + 1) + n;
            d.store(n, kBlock, expect);
        }
    }
    d.drain();
    EXPECT_TRUE(dmem(d, 0).quiescent());
}

TEST(Directory, SilentSharerDropStillAcksInvalidation)
{
    SystemConfig cfg = dirConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.load(1, 0x000);           // sharer 1 recorded
    d.load(1, 0x100);
    d.load(1, 0x200);           // silently evicts 0x000 from node 1
    EXPECT_EQ(dcache(d, 1).state(0x000), DirCacheState::I);
    // The directory still thinks node 1 shares 0x000; the store must
    // complete anyway (stale sharers ack without a line).
    const ProcResponse r = d.store(2, 0x000, 0x77);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(dcache(d, 2).state(0x000), DirCacheState::M);
    d.drain();
}

} // namespace
} // namespace tokensim
