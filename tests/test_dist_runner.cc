/**
 * @file
 * Distributed-determinism suite for the process-sharded sweep runner:
 * resultDigest() equality across the serial loop, ParallelRunner
 * (threads), and DistRunner (worker subprocesses) at every
 * parallelism level, on mixed preset+trace sweeps and on the
 * committed golden traces — plus crash-recovery gates proving that a
 * SIGKILLed worker or a truncated reply frame reassigns the shard
 * with no effect on final digests.
 *
 * This is the process-level extension of test_parallel_runner.cc's
 * contract (and of the paper's thesis): which process runs a shard,
 * in what order, and through how many failures is performance policy;
 * the results are correctness, and must not move.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/dist_runner.hh"
#include "harness/parallel_runner.hh"
#include "harness/wire.hh"
#include "workload/trace.hh"

namespace tokensim {
namespace {

/** A small but diverse spec matrix: protocol x topology x tokens. */
std::vector<ExperimentSpec>
smallMatrix()
{
    std::vector<ExperimentSpec> specs;
    struct Pt
    {
        ProtocolKind proto;
        const char *topo;
        int tokens;
    };
    const Pt pts[] = {
        {ProtocolKind::tokenB, "torus", 0},
        {ProtocolKind::tokenB, "tree", 19},
        {ProtocolKind::tokenD, "torus", 0},
        {ProtocolKind::snooping, "tree", 0},
        {ProtocolKind::directory, "torus", 0},
        {ProtocolKind::hammer, "torus", 0},
    };
    for (const Pt &p : pts) {
        SystemConfig cfg;
        cfg.numNodes = 8;
        cfg.topology = p.topo;
        cfg.protocol = p.proto;
        cfg.workload = "uniform";
        cfg.workload.uniformBlocks = 128;
        cfg.proto.tokensPerBlock = p.tokens;
        cfg.opsPerProcessor = 300;
        cfg.seed = 23;
        specs.push_back(ExperimentSpec{cfg, 2, protocolName(p.proto)});
    }
    return specs;
}

std::vector<std::string>
digestsOf(const std::vector<ExperimentResult> &results)
{
    std::vector<std::string> out;
    out.reserve(results.size());
    for (const ExperimentResult &r : results)
        out.push_back(resultDigest(r));
    return out;
}

void
expectSameDigests(const std::vector<ExperimentResult> &a,
                  const std::vector<ExperimentResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].label);
        EXPECT_EQ(resultDigest(a[i]), resultDigest(b[i]));
        EXPECT_TRUE(identicalResults(a[i], b[i]));
    }
}

DistRunner
makeRunner(int workers)
{
    DistRunnerOptions opts;
    opts.workers = workers;
    return DistRunner(std::move(opts));
}

TEST(DistRunner, WorkerCountResolvesToAtLeastOne)
{
    EXPECT_GE(DistRunner().workers(), 1);
    EXPECT_EQ(makeRunner(3).workers(), 3);
}

TEST(DistRunner, EmptySpecListIsFine)
{
    EXPECT_TRUE(
        makeRunner(2).run(std::vector<ExperimentSpec>{}).empty());
}

TEST(DistRunner, ZeroSeedsMatchesSerialZeroSeeds)
{
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.opsPerProcessor = 50;
    const ExperimentSpec spec{cfg, 0, "empty"};
    const ExperimentResult serial = runExperiment(cfg, 0, "empty");
    const ExperimentResult dist = makeRunner(2).run(spec);
    EXPECT_EQ(dist.ops, 0u);
    EXPECT_EQ(resultDigest(dist), resultDigest(serial));
}

TEST(DistDeterminism, MatchesSerialAndParallelAtEveryWidth)
{
    // The differential gate: serial oracle vs ParallelRunner at
    // 1/2/4 threads vs DistRunner at 1/2/4 worker processes — every
    // combination must produce the same digest list, on a sweep that
    // mixes synthetic presets and a recorded-trace replay.
    std::filesystem::create_directories("test_traces");
    const std::string path = "test_traces/dist_mixed.trace";

    SystemConfig rec;
    rec.numNodes = 8;
    rec.protocol = ProtocolKind::tokenB;
    rec.workload = "producer-consumer";
    rec.opsPerProcessor = 300;
    rec.seed = 11;
    rec.recordTrace = path;
    runOnce(rec, rec.seed);

    std::vector<ExperimentSpec> specs = smallMatrix();
    SystemConfig replay = rec;
    replay.recordTrace.clear();
    replay.workload = WorkloadSpec::trace(path);
    specs.push_back(ExperimentSpec{replay, 2, "replay"});

    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectSameDigests(
            ParallelRunner(ParallelRunnerOptions{threads}).run(specs),
            serial);
    }
    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameDigests(makeRunner(workers).run(specs), serial);
    }
}

TEST(DistDeterminism, StreamingLinesArriveAndFinalOrderIsSpecOrder)
{
    // Streaming partial aggregates must not perturb the final merge:
    // one progress line per shard, one completion line per spec, and
    // the completion lines carry exactly the digests the run returns
    // (the partial aggregate IS the final aggregate).
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::size_t total_shards = 0;
    for (const ExperimentSpec &s : specs)
        total_shards += static_cast<std::size_t>(s.seeds);

    std::vector<std::string> lines;
    DistRunnerOptions opts;
    opts.workers = 3;
    opts.progress = [&](const std::string &line) {
        lines.push_back(line);
    };
    const std::vector<ExperimentResult> results =
        DistRunner(std::move(opts)).run(specs);

    std::size_t shard_lines = 0;
    std::size_t spec_lines = 0;
    for (const std::string &l : lines) {
        if (l.rfind("shard ", 0) == 0)
            ++shard_lines;
        if (l.rfind("spec ", 0) == 0) {
            ++spec_lines;
            // "spec <i> "<label>" complete: <digest>"
            const std::size_t colon = l.find(": ");
            ASSERT_NE(colon, std::string::npos);
            const std::string digest = l.substr(colon + 2);
            bool matched = false;
            for (const ExperimentResult &r : results)
                matched = matched || resultDigest(r) == digest;
            EXPECT_TRUE(matched)
                << "streamed partial aggregate differs from the "
                   "final merge: "
                << l;
        }
    }
    EXPECT_EQ(shard_lines, total_shards);
    EXPECT_EQ(spec_lines, specs.size());
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(results[i].label, specs[i].label);
}

TEST(DistCrashRecovery, KilledWorkerShardIsRetriedWithSameDigests)
{
    // Worker 0 SIGKILLs itself after computing its second shard,
    // before replying — the parent must observe EOF with a job
    // outstanding, reassign the shard to a healthy worker, and merge
    // to exactly the serial oracle's digests.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    DistRunnerOptions opts;
    opts.workers = 3;
    opts.workerFault.crashAfterShards = 1;
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
}

TEST(DistCrashRecovery, TruncatedResultFrameIsRetriedWithSameDigests)
{
    // Worker 0 replies to its first shard with half a result frame
    // and exits: the parent sees a partial frame then EOF — the
    // malformed-reply path — and must reassign, again bit-identical.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    DistRunnerOptions opts;
    opts.workers = 2;
    opts.workerFault.truncateAfterShards = 0;
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
}

TEST(DistCrashRecovery, GarbageReplyFromAnyWorkerIndexIsRecovered)
{
    // Worker 2 — NOT worker 0, proving fault targeting reaches every
    // pool slot — replies to its first shard with 64 bytes of 0xee
    // (an invalid frame type) and exits. The parent's decoder throws,
    // the worker is killed and replaced, the shard reassigns.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    DistRunnerOptions opts;
    opts.workers = 3;
    opts.workerFault.worker = 2;
    opts.workerFault.garbageAfterShards = 0;
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
}

TEST(DistCrashRecovery, HungWorkerIsKilledByDeadlineAndRecovered)
{
    // Worker 0 goes silent forever after its second shard — no exit,
    // no bytes, the one failure EOF can never report. The per-shard
    // deadline must SIGKILL it and reassign, digests untouched.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    bool sawHangKill = false;
    DistRunnerOptions opts;
    opts.workers = 3;
    opts.shardTimeoutMs = 1500;
    opts.workerFault.hangAfterShards = 1;
    opts.progress = [&](const std::string &l) {
        if (l.find("hung") != std::string::npos)
            sawHangKill = true;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    EXPECT_TRUE(sawHangKill);
}

TEST(DistCrashRecovery, PartialFrameThenHangIsRecoveredByDeadline)
{
    // Half a result frame, then silence: the buffered prefix never
    // completes a frame, so only the deadline can unstick the sweep.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    DistRunnerOptions opts;
    opts.workers = 3;
    opts.shardTimeoutMs = 1500;
    opts.workerFault.partialFrameAfterShards = 0;
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
}

TEST(DistCrashRecovery, RespawnedWorkerCrashingAgainIsStillRecovered)
{
    // Every process spawned into slot 0 — the initial worker AND each
    // respawn — crashes after its second shard. The respawn budget
    // (2x workers = 6) absorbs the churn; healthy slots 1 and 2 plus
    // the retry budget carry the sweep to the same digests.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    int respawns = 0;
    DistRunnerOptions opts;
    opts.workers = 3;
    opts.maxShardRetries = 20;
    opts.workerFault.worker = 0;
    opts.workerFault.spawnGeneration = -1;   // every spawn
    opts.workerFault.crashAfterShards = 1;
    opts.progress = [&](const std::string &l) {
        if (l.find("respawned") != std::string::npos)
            ++respawns;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    EXPECT_GE(respawns, 1);
}

TEST(DistCrashRecovery, TotalWorkerChurnDegradesToInProcessRun)
{
    // Every worker, every spawn, crashes before its first reply: no
    // shard can EVER complete in a subprocess. Once the respawn
    // budget is spent and the pool empties, the parent must finish
    // the sweep in-process — same digests, not an exception.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    bool degraded = false;
    DistRunnerOptions opts;
    opts.workers = 2;
    opts.maxWorkerRespawns = 2;
    opts.maxShardRetries = 100;
    opts.workerFault.worker = -1;            // every slot
    opts.workerFault.spawnGeneration = -1;   // every spawn
    opts.workerFault.crashAfterShards = 0;
    opts.progress = [&](const std::string &l) {
        if (l.find("in-process") != std::string::npos)
            degraded = true;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    EXPECT_TRUE(degraded);
}

TEST(DistRunner, ShardExceptionPropagatesFromWorker)
{
    // An impossible topology throws inside the worker subprocess; the
    // worker reports it as an error frame (a deterministic failure,
    // not a worker death) and the parent rethrows with the message.
    SystemConfig cfg;
    cfg.topology = "moebius";
    cfg.opsPerProcessor = 10;
    std::vector<ExperimentSpec> specs{ExperimentSpec{cfg, 2, "bad"}};
    try {
        makeRunner(2).run(specs);
        FAIL() << "impossible topology ran successfully";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("bad"),
                  std::string::npos)
            << e.what();
    }
}

TEST(DistRunner, CustomWorkloadFactoryIsRejectedUpFront)
{
    SystemConfig cfg;
    cfg.workloadFactory = [](NodeId, int,
                             std::uint64_t) -> std::unique_ptr<Workload> {
        return nullptr;
    };
    std::vector<ExperimentSpec> specs{ExperimentSpec{cfg, 1, "f"}};
    EXPECT_THROW(makeRunner(2).run(specs), std::invalid_argument);
}

TEST(DistRunner, NonWorkerBinaryFailsHandshakeWithClearError)
{
    // Exec'ing something that does not speak the protocol (cat
    // echoes our own job frame back before any hello) must surface
    // as a handshake failure naming the problem — not burn the
    // retry budget and die as "workers keep dying".
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.opsPerProcessor = 10;
    std::vector<ExperimentSpec> specs{ExperimentSpec{cfg, 1, "h"}};
    DistRunnerOptions opts;
    opts.workers = 2;
    opts.workerArgv = {"/bin/cat"};
    try {
        DistRunner(std::move(opts)).run(specs);
        FAIL() << "/bin/cat passed the worker handshake";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("handshake"),
                  std::string::npos)
            << e.what();
    }
}

TEST(DistRunner, RecordTraceIsRejectedUpFront)
{
    SystemConfig cfg;
    cfg.recordTrace = "test_traces/should_not_race.trace";
    std::vector<ExperimentSpec> specs{ExperimentSpec{cfg, 1, "r"}};
    EXPECT_THROW(makeRunner(2).run(specs), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------

std::string
ckptPath(const std::string &name)
{
    std::filesystem::create_directories("test_ckpt");
    const std::string path = "test_ckpt/" + name + ".ckpt";
    std::filesystem::remove(path);
    return path;
}

DistRunnerOptions
ckptOpts(const std::string &path, int workers)
{
    DistRunnerOptions opts;
    opts.workers = workers;
    opts.checkpointPath = path;
    return opts;
}

TEST(DistCheckpoint, ResumeFromCompleteAndTruncatedFilesIsIdentical)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));
    const std::string path = ckptPath("resume");

    // Pass 1: fresh file, all 12 shards computed and recorded.
    expectSameDigests(
        DistRunner(ckptOpts(path, 3)).run(specs), serial);
    const std::uintmax_t full_size = std::filesystem::file_size(path);

    // Pass 2: full restore — zero recomputation, identical digests,
    // and the restore line says so (at a different worker count, to
    // prove restore is schedule-independent).
    std::string restore_line;
    DistRunnerOptions opts2 = ckptOpts(path, 2);
    opts2.progress = [&](const std::string &l) {
        if (l.rfind("checkpoint: restored", 0) == 0)
            restore_line = l;
    };
    expectSameDigests(DistRunner(std::move(opts2)).run(specs), serial);
    EXPECT_NE(restore_line.find("restored 12/12"), std::string::npos)
        << restore_line;

    // Pass 3: chop the file mid-record (a crash mid-append). The torn
    // tail must drop, the missing shards recompute, digests hold.
    std::filesystem::resize_file(path, full_size * 2 / 3);
    std::string torn_line;
    DistRunnerOptions opts3 = ckptOpts(path, 3);
    opts3.progress = [&](const std::string &l) {
        if (l.rfind("checkpoint: restored", 0) == 0)
            torn_line = l;
    };
    expectSameDigests(DistRunner(std::move(opts3)).run(specs), serial);
    EXPECT_NE(torn_line.find("torn tail"), std::string::npos)
        << torn_line;

    // Pass 4: pass 3's re-appended records must land where the next
    // resume can see them — a full restore again.
    std::string again;
    DistRunnerOptions opts4 = ckptOpts(path, 2);
    opts4.progress = [&](const std::string &l) {
        if (l.rfind("checkpoint: restored", 0) == 0)
            again = l;
    };
    expectSameDigests(DistRunner(std::move(opts4)).run(specs), serial);
    EXPECT_NE(again.find("restored 12/12"), std::string::npos)
        << again;
}

TEST(DistCheckpoint, CorruptTrailingByteReadsAsTornTail)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));
    const std::string path = ckptPath("corrupt");
    expectSameDigests(
        DistRunner(ckptOpts(path, 3)).run(specs), serial);

    // Flip a byte inside the last record: its CRC fails, it drops as
    // a torn tail, and the shard recomputes to the same digest.
    const std::uintmax_t size = std::filesystem::file_size(path);
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 10));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size - 10));
    f.put(static_cast<char>(c ^ 0x55));
    f.close();

    expectSameDigests(
        DistRunner(ckptOpts(path, 2)).run(specs), serial);
}

TEST(DistCheckpoint, DifferentSweepFingerprintIsRejected)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();
    const std::string path = ckptPath("mismatch");
    DistRunner(ckptOpts(path, 2)).run(specs);

    // One more seed per point is a different sweep: resuming against
    // the old file must throw the typed mismatch, not merge garbage.
    std::vector<ExperimentSpec> other = specs;
    for (ExperimentSpec &s : other)
        s.seeds += 1;
    EXPECT_THROW(DistRunner(ckptOpts(path, 2)).run(other),
                 CheckpointMismatch);

    // A non-checkpoint file is a typed CheckpointError.
    const std::string junk = ckptPath("junk");
    std::ofstream(junk, std::ios::binary) << "not a checkpoint file";
    EXPECT_THROW(DistRunner(ckptOpts(junk, 2)).run(specs),
                 CheckpointError);
}

TEST(DistCheckpoint, SigkilledSweepResumesBitIdentically)
{
    // The end-to-end crash gate: a whole DistRunner — parent and
    // workers — is SIGKILLed mid-sweep, then the sweep reruns against
    // the surviving checkpoint. The resume must restore whatever was
    // recorded (any torn trailing record dropped), recompute the
    // rest, and match the serial oracle exactly.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));
    const std::string path = ckptPath("sigkill");

    int progress_pipe[2];
    ASSERT_EQ(::pipe(progress_pipe), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Victim process: run the checkpointed sweep with forked
        // workers, ticking a byte into the pipe per completed shard
        // so the parent can kill us provably mid-sweep. Only _exit
        // from here — this is a forked copy of the test binary.
        ::close(progress_pipe[0]);
        DistRunnerOptions opts = ckptOpts(path, 2);
        const int wfd = progress_pipe[1];
        opts.progress = [wfd](const std::string &l) {
            if (l.rfind("shard ", 0) == 0)
                (void)!::write(wfd, "x", 1);
        };
        try {
            DistRunner(std::move(opts)).run(specs);
        } catch (...) {
            _exit(1);
        }
        _exit(0);
    }
    ::close(progress_pipe[1]);

    // Let a few shards land, then kill without warning. (If the child
    // somehow finishes first, read returns 0 and the resume below
    // simply restores everything — the assertion still holds.)
    std::size_t ticks = 0;
    char c;
    while (ticks < 3 && ::read(progress_pipe[0], &c, 1) == 1)
        ++ticks;
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    ::close(progress_pipe[0]);

    ASSERT_TRUE(std::filesystem::exists(path))
        << "checkpoint never materialized";
    std::size_t restored = 0;
    DistRunnerOptions opts = ckptOpts(path, 3);
    opts.progress = [&](const std::string &l) {
        if (l.find("restored") != std::string::npos)
            ++restored;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
}

// ---------------------------------------------------------------------
// Golden-trace replay through the DistRunner
// ---------------------------------------------------------------------

std::string
goldenDir()
{
    return std::string(TOKENSIM_TESTS_DIR) + "/golden";
}

/** Mirrors test_golden_traces.cc's reference config. */
SystemConfig
goldenConfig(ProtocolKind proto, const std::string &workload)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = proto;
    cfg.topology = proto == ProtocolKind::snooping ? "tree" : "torus";
    cfg.opsPerProcessor = 400;
    cfg.warmupOpsPerProcessor = 4400;
    cfg.seed = 20260701;
    cfg.attachAuditor = isTokenProtocol(proto);
    cfg.workload = WorkloadSpec::trace(goldenDir() + "/golden_" +
                                       workload + ".trace");
    return cfg;
}

std::map<std::string, std::string>
loadGoldenDigests()
{
    std::map<std::string, std::string> out;
    std::ifstream in(goldenDir() + "/golden_digests.txt");
    EXPECT_TRUE(in) << "missing golden digests";
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            continue;
        out[line.substr(0, space)] = line.substr(space + 1);
    }
    return out;
}

TEST(DistGolden, ReplayThroughWorkersReproducesCommittedDigests)
{
    // The strongest cross-process oracle available: the committed
    // golden digests were produced by in-process serial replays, so
    // matching them from worker subprocesses proves the entire
    // pipeline — spec encode, worker-side System build, result
    // encode, streaming merge — adds exactly zero drift.
    const ProtocolKind protos[] = {
        ProtocolKind::snooping, ProtocolKind::directory,
        ProtocolKind::hammer,   ProtocolKind::tokenB,
        ProtocolKind::tokenD,   ProtocolKind::tokenM,
        ProtocolKind::tokenA,   ProtocolKind::tokenNull,
    };
    const char *const workloads[] = {"oltp", "producer-consumer",
                                     "ycsb", "tpcc"};

    std::vector<ExperimentSpec> specs;
    for (ProtocolKind proto : protos) {
        for (const char *w : workloads) {
            specs.push_back(ExperimentSpec{
                goldenConfig(proto, w), 1,
                std::string(protocolName(proto)) + "/" + w});
            // The sampled variants ride along (mirrors
            // test_golden_traces.cc): fast-forward spans and window
            // pooling must survive the worker round-trip bit for bit
            // too.
            SystemConfig sampled = goldenConfig(proto, w);
            sampled.warmupOpsPerProcessor = 0;
            sampled.opsPerProcessor = 0;
            sampled.sampling = SamplingSpec{1000, 200, 4};
            specs.push_back(ExperimentSpec{
                sampled, 1,
                "sampled-" + std::string(protocolName(proto)) + "/" +
                    w});
        }
    }

    const std::map<std::string, std::string> expected =
        loadGoldenDigests();
    ASSERT_EQ(expected.size(), specs.size());

    const std::vector<ExperimentResult> results =
        makeRunner(4).run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (const ExperimentResult &r : results) {
        SCOPED_TRACE(r.label);
        const auto it = expected.find(r.label);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(resultDigest(r), it->second)
            << "distributed replay drifted from the committed "
               "golden digest";
    }
}

TEST(DistDeterminism, RepeatedDistRunsAreIdentical)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();
    const std::vector<std::string> a =
        digestsOf(makeRunner(3).run(specs));
    const std::vector<std::string> b =
        digestsOf(makeRunner(3).run(specs));
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// TCP transport. The same frame conversation over connected sockets:
// workers fork from the test binary inside onListen() (so the
// listener is provably up first) and dial the ephemeral port. Every
// gate is the same as the pipe suite's: digests equal to the serial
// oracle, no matter what the socket does.
// ---------------------------------------------------------------------

/**
 * Fork a TCP worker child: dial 127.0.0.1:@p port (retrying, so it
 * may be forked before the parent polls accept), serve shards with
 * @p fault, exit with the serve loop's code. The child is a forked
 * copy of the test binary — only _exit() from it.
 */
pid_t
spawnTcpWorker(int port, const DistWorkerFault &fault = {},
               int delay_ms = 0,
               const std::string &identity = "tcp-test-worker")
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    // Drop every inherited descriptor: a forked copy of the test's
    // listening socket would keep the port accepting after the sweep
    // ends, and a late joiner would then connect to a listener nobody
    // will ever accept from (and hang instead of being refused).
    for (int fd = 3; fd < 1024; ++fd)
        ::close(fd);
    if (delay_ms > 0)
        ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
    try {
        const int fd = tcpConnect(
            "127.0.0.1:" + std::to_string(port), 10000);
        _exit(runDistWorker(fd, fd, fault, identity));
    } catch (...) {
        _exit(9);
    }
}

void
reapAll(std::vector<pid_t> &pids)
{
    for (const pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    pids.clear();
}

TEST(DistTcp, ZeroLocalWorkersWhenFleetIsRemote)
{
    DistRunnerOptions opts;
    opts.listen = "127.0.0.1:0";
    EXPECT_EQ(DistRunner(std::move(opts)).workers(), 0);
}

TEST(DistTcp, MatchesSerialAtEveryWidth)
{
    // The TCP leg of the differential gate: a remote-only fleet of
    // 1/2/4 connecting workers on a mixed preset+trace sweep, bit-
    // identical to the serial oracle (and so to ParallelRunner and
    // the pipe DistRunner, which the suite pins to the same oracle).
    std::filesystem::create_directories("test_traces");
    const std::string path = "test_traces/dist_tcp_mixed.trace";

    SystemConfig rec;
    rec.numNodes = 8;
    rec.protocol = ProtocolKind::tokenB;
    rec.workload = "producer-consumer";
    rec.opsPerProcessor = 300;
    rec.seed = 11;
    rec.recordTrace = path;
    runOnce(rec, rec.seed);

    std::vector<ExperimentSpec> specs = smallMatrix();
    SystemConfig replay = rec;
    replay.recordTrace.clear();
    replay.workload = WorkloadSpec::trace(path);
    specs.push_back(ExperimentSpec{replay, 2, "replay"});

    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE("tcp workers=" + std::to_string(workers));
        std::vector<pid_t> pids;
        DistRunnerOptions opts;
        opts.listen = "127.0.0.1:0";
        opts.onListen = [&](int port) {
            for (int k = 0; k < workers; ++k)
                pids.push_back(spawnTcpWorker(port));
        };
        expectSameDigests(DistRunner(std::move(opts)).run(specs),
                          serial);
        reapAll(pids);
    }
}

TEST(DistTcp, LateJoinersAndMixedFleetMatchSerial)
{
    // Elastic membership: two local pipe workers and one TCP worker
    // start the sweep; a second TCP worker forks only after the
    // second shard completes — provably mid-sweep, with ten shards
    // still outstanding, so its join cannot race the shutdown.
    // Joiners are handed shards on arrival; the merge cannot tell.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    std::vector<pid_t> pids;
    int joins = 0;
    int shardsDone = 0;
    int lateAtPort = 0;
    bool lateSpawned = false;
    DistRunnerOptions opts;
    opts.workers = 2;
    opts.listen = "127.0.0.1:0";
    opts.onListen = [&](int port) {
        lateAtPort = port;
        pids.push_back(spawnTcpWorker(port, {}, 0, "early"));
    };
    opts.progress = [&](const std::string &l) {
        if (l.rfind("tcp worker joined", 0) == 0)
            ++joins;
        if (l.rfind("shard ", 0) == 0 && ++shardsDone == 2 &&
            !lateSpawned) {
            lateSpawned = true;
            pids.push_back(
                spawnTcpWorker(lateAtPort, {}, 0, "late"));
        }
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    reapAll(pids);
    EXPECT_EQ(joins, 2);
}

TEST(DistTcp, DialedWorkerServesSweepAndDeadEndpointIsSkipped)
{
    // The other connection direction: a `worker --listen`-shaped
    // child opens its own ephemeral port (reported back through a
    // pipe), the parent dials it via the host manifest. A dead
    // manifest entry is skipped, never fatal.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::close(port_pipe[0]);
        try {
            int port = 0;
            const int lfd = tcpListen("127.0.0.1:0", port);
            (void)!::write(port_pipe[1], &port, sizeof(port));
            ::close(port_pipe[1]);
            const int fd = ::accept(lfd, nullptr, nullptr);
            ::close(lfd);
            if (fd < 0)
                _exit(9);
            _exit(runDistWorker(fd, fd, {}, "dialed-worker"));
        } catch (...) {
            _exit(9);
        }
    }
    ::close(port_pipe[1]);
    int port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
              static_cast<ssize_t>(sizeof(port)));
    ::close(port_pipe[0]);

    bool sawSkip = false;
    DistRunnerOptions opts;
    opts.dial = {"127.0.0.1:" + std::to_string(port),
                 "127.0.0.1:1"};   // nothing listens on port 1
    opts.progress = [&](const std::string &l) {
        if (l.find("dial") != std::string::npos &&
            l.find("failed") != std::string::npos)
            sawSkip = true;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    int status = 0;
    ::waitpid(child, &status, 0);
    EXPECT_TRUE(sawSkip);
}

TEST(DistTcpFault, EveryPipeFaultShapeRecoversOverSockets)
{
    // The pipe suite's fault shapes, re-run over TCP: crash (RST'd
    // peer), truncated reply then FIN, garbage frame, and the TCP-
    // only shape — half a result frame then a hard RST close. One
    // healthy worker carries the reassigned shards; TCP workers are
    // never respawned, so recovery IS the reassignment.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    struct Shape
    {
        const char *name;
        DistWorkerFault fault;
    };
    std::vector<Shape> shapes;
    {
        Shape s;
        s.name = "crash";
        s.fault.crashAfterShards = 1;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "truncate";
        s.fault.truncateAfterShards = 0;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "garbage";
        s.fault.garbageAfterShards = 0;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "disconnect-mid-frame";
        s.fault.disconnectAfterShards = 0;
        shapes.push_back(s);
    }

    for (const Shape &shape : shapes) {
        SCOPED_TRACE(shape.name);
        std::vector<pid_t> pids;
        bool sawDeath = false;
        DistRunnerOptions opts;
        opts.listen = "127.0.0.1:0";
        opts.onListen = [&](int port) {
            pids.push_back(
                spawnTcpWorker(port, shape.fault, 0, "faulty"));
            pids.push_back(spawnTcpWorker(port, {}, 0, "healthy"));
        };
        opts.progress = [&](const std::string &l) {
            if (l.find("disconnected") != std::string::npos)
                sawDeath = true;
        };
        expectSameDigests(DistRunner(std::move(opts)).run(specs),
                          serial);
        reapAll(pids);
        EXPECT_TRUE(sawDeath);
    }
}

TEST(DistTcpFault, HungAndPartialFrameSocketsAreReapedByDeadline)
{
    // Alive-but-silent over TCP: a half-open peer the kernel will
    // never report closed. Only the per-shard deadline can unstick
    // the sweep — it closes the socket, which reads as the death.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    for (const bool partial : {false, true}) {
        SCOPED_TRACE(partial ? "partial-frame" : "hang");
        DistWorkerFault fault;
        if (partial)
            fault.partialFrameAfterShards = 0;
        else
            fault.hangAfterShards = 1;
        std::vector<pid_t> pids;
        bool sawHangKill = false;
        DistRunnerOptions opts;
        opts.listen = "127.0.0.1:0";
        opts.shardTimeoutMs = 1500;
        opts.onListen = [&](int port) {
            pids.push_back(spawnTcpWorker(port, fault, 0, "wedged"));
            pids.push_back(spawnTcpWorker(port, {}, 0, "healthy"));
        };
        opts.progress = [&](const std::string &l) {
            if (l.find("hung") != std::string::npos)
                sawHangKill = true;
        };
        expectSameDigests(DistRunner(std::move(opts)).run(specs),
                          serial);
        // The wedged child blocks in pause()/a dead write forever;
        // its socket is closed but it never exits on its own.
        for (const pid_t pid : pids)
            ::kill(pid, SIGKILL);
        reapAll(pids);
        EXPECT_TRUE(sawHangKill);
    }
}

TEST(DistTcpFault, SilentStrangerBeforeHelloIsDroppedNotFatal)
{
    // Connect-then-silence: a peer that never speaks must be dropped
    // at the hello deadline without touching the sweep. The healthy
    // worker joins late (after the drop window) so the sweep provably
    // outlives the stranger's occupation of the pool.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    std::vector<pid_t> pids;
    int strangerFd = -1;
    bool sawDrop = false;
    DistRunnerOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.helloTimeoutMs = 500;
    opts.onListen = [&](int port) {
        strangerFd = tcpConnect(
            "127.0.0.1:" + std::to_string(port));   // never speaks
        pids.push_back(spawnTcpWorker(port, {}, 900, "late-honest"));
    };
    opts.progress = [&](const std::string &l) {
        if (l.rfind("tcp peer", 0) == 0 &&
            l.find("dropping") != std::string::npos)
            sawDrop = true;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    if (strangerFd >= 0)
        ::close(strangerFd);
    reapAll(pids);
    EXPECT_TRUE(sawDrop);
}

TEST(DistTcpFault, GarbageBeforeHelloIsRejectedNotFatal)
{
    // A stranger speaking a different protocol entirely: 64 bytes of
    // 0xee land before any hello. On a pipe that is a fatal handshake
    // error (our own spawn is broken); on a listener it is just noise
    // — reject the connection, run the sweep on the honest worker.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    std::vector<pid_t> pids;
    int strangerFd = -1;
    bool sawReject = false;
    DistRunnerOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.onListen = [&](int port) {
        strangerFd = tcpConnect("127.0.0.1:" + std::to_string(port));
        const std::string garbage(64, '\xee');
        (void)!::write(strangerFd, garbage.data(), garbage.size());
        pids.push_back(spawnTcpWorker(port, {}, 0, "honest"));
    };
    opts.progress = [&](const std::string &l) {
        if (l.find("rejected before hello") != std::string::npos)
            sawReject = true;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    if (strangerFd >= 0)
        ::close(strangerFd);
    reapAll(pids);
    EXPECT_TRUE(sawReject);
}

TEST(DistTcpFault, WrongVersionHelloIsRejectedWithTypedMessage)
{
    // A version-skewed worker: its hello is well-formed for wire
    // version 2, which this parent does not speak. The typed
    // version-mismatch WireError must surface in the rejection line
    // (so the operator knows to upgrade the fleet), and the sweep
    // must finish on the honest worker regardless.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    std::vector<pid_t> pids;
    int skewedFd = -1;
    std::string rejectLine;
    DistRunnerOptions opts;
    opts.listen = "127.0.0.1:0";
    opts.onListen = [&](int port) {
        skewedFd = tcpConnect("127.0.0.1:" + std::to_string(port));
        WireWriter w;
        w.raw(wireMagic, sizeof(wireMagic));
        w.varint(wireVersion - 1);
        w.str("old-fleet:1");
        std::string frame;
        appendFrame(frame, FrameType::hello, w.take());
        (void)!::write(skewedFd, frame.data(), frame.size());
        pids.push_back(spawnTcpWorker(port, {}, 0, "honest"));
    };
    opts.progress = [&](const std::string &l) {
        if (l.find("rejected before hello") != std::string::npos)
            rejectLine = l;
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    if (skewedFd >= 0)
        ::close(skewedFd);
    reapAll(pids);
    EXPECT_NE(rejectLine.find("version mismatch"), std::string::npos)
        << rejectLine;
}

TEST(DistTcpCheckpoint, MixedFleetSigkillResumesWithDifferentFleet)
{
    // The cluster-scale crash gate: a checkpointed sweep over a MIXED
    // fleet (one local pipe worker + two TCP workers) is SIGKILLed —
    // parent and all — mid-sweep. The rerun resumes against the
    // surviving checkpoint with a DIFFERENT fleet (two pipe workers +
    // one TCP worker) and must still match the serial oracle bit for
    // bit: the checkpoint is transport-agnostic.
    const std::vector<ExperimentSpec> specs = smallMatrix();
    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));
    const std::string path = ckptPath("tcp_mixed_sigkill");

    int progress_pipe[2];
    ASSERT_EQ(::pipe(progress_pipe), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Victim: mixed-fleet checkpointed sweep, ticking a byte per
        // completed shard. Its TCP workers are grandchildren; when we
        // are SIGKILLed their sockets die and they exit on their own.
        ::close(progress_pipe[0]);
        DistRunnerOptions opts = ckptOpts(path, 1);
        opts.listen = "127.0.0.1:0";
        opts.onListen = [](int port) {
            spawnTcpWorker(port, {}, 0, "victim-a");
            spawnTcpWorker(port, {}, 0, "victim-b");
        };
        const int wfd = progress_pipe[1];
        opts.progress = [wfd](const std::string &l) {
            if (l.rfind("shard ", 0) == 0)
                (void)!::write(wfd, "x", 1);
        };
        try {
            DistRunner(std::move(opts)).run(specs);
        } catch (...) {
            _exit(1);
        }
        _exit(0);
    }
    ::close(progress_pipe[1]);

    std::size_t ticks = 0;
    char c;
    while (ticks < 3 && ::read(progress_pipe[0], &c, 1) == 1)
        ++ticks;
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    ::close(progress_pipe[0]);

    ASSERT_TRUE(std::filesystem::exists(path))
        << "checkpoint never materialized";
    std::vector<pid_t> pids;
    DistRunnerOptions opts = ckptOpts(path, 2);
    opts.listen = "127.0.0.1:0";
    opts.onListen = [&](int port) {
        pids.push_back(spawnTcpWorker(port, {}, 0, "resume-worker"));
    };
    expectSameDigests(DistRunner(std::move(opts)).run(specs), serial);
    reapAll(pids);
}

} // namespace
} // namespace tokensim
