/**
 * @file
 * Tests for the Section-7 extension performance protocols: TokenD's
 * soft-state home redirection, TokenM's destination-set prediction
 * and broadcast fallback, and the framework claim itself — changing
 * the performance protocol never changes correctness, only traffic
 * and latency.
 */

#include <gtest/gtest.h>

#include "core/ext/tokena.hh"
#include "core/ext/tokend.hh"
#include "core/ext/tokenm.hh"
#include "harness/system.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

constexpr Addr kBlock = 0x400;

TEST(TokenD, UnicastsToHomeInsteadOfBroadcasting)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenD));
    d.load(1, kBlock);
    d.drain();
    // One request message, one link-hop cost pattern: request
    // traffic far below a broadcast's 3 tree links.
    const auto &t = d.sys->net().traffic();
    EXPECT_EQ(t.messagesOf(MsgClass::request), 1u);
    d.expectConserved();
}

TEST(TokenD, SoftStateRedirectsToOwner)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenD));
    d.store(1, kBlock, 0xaa);   // soft state: probable owner = 1
    auto &mem = dynamic_cast<TokenDMemory &>(d.sys->memory(0));
    ASSERT_NE(mem.softState(kBlock), nullptr);
    EXPECT_EQ(mem.softState(kBlock)->probableOwner, 1u);
    // A second requester is redirected to node 1 and completes
    // cache-to-cache.
    const ProcResponse r = d.load(2, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(r.value, 0xaau);
    d.drain();
    d.expectConserved();
}

TEST(TokenD, StaleSoftStateRecoversViaReissue)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenD));
    d.store(1, kBlock, 0xaa);
    d.load(2, kBlock);          // migratory: tokens move 1 -> 2
    d.store(3, kBlock, 0xbb);   // 3 gathers everything
    // Soft state has churned; a fresh reader must still succeed
    // (possibly via reissue), and see the latest value.
    const ProcResponse r = d.load(0, kBlock);
    EXPECT_EQ(r.value, 0xbbu);
    d.drain();
    d.expectConserved();
}

TEST(TokenM, PredictorLearnsHolders)
{
    DestSetPredictor p(64, 64, 64);
    EXPECT_TRUE(p.predict(0x1000).empty());
    p.train(0x1000, 3);
    p.train(0x1000, 7);
    const auto set = p.predict(0x1000);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0], 3u);
    EXPECT_EQ(set[1], 7u);
}

TEST(TokenM, PredictorTracksNodesBeyond64)
{
    // Regression: the predictor's former single 64-bit mask silently
    // dropped every node >= 64, so wide-machine multicasts always
    // mispredicted high nodes and fell back to broadcast.
    DestSetPredictor p(16, 64, 1024);
    p.train(0x1000, 3);
    p.train(0x1000, 64);
    p.train(0x1000, 700);
    p.train(0x1000, 1023);
    const auto set = p.predict(0x1000);
    ASSERT_EQ(set.size(), 4u);
    EXPECT_EQ(set[0], 3u);
    EXPECT_EQ(set[1], 64u);
    EXPECT_EQ(set[2], 700u);
    EXPECT_EQ(set[3], 1023u);

    // An observed exclusive gather collapses the set to one high node.
    p.trainExclusive(0x1000, 900);
    const auto excl = p.predict(0x1000);
    ASSERT_EQ(excl.size(), 1u);
    EXPECT_EQ(excl[0], 900u);
}

TEST(TokenM, PredictorEvictsOnConflict)
{
    DestSetPredictor p(1, 64, 64);   // single entry: every block aliases
    p.train(0x1000, 3);
    p.train(0x2000, 5);          // evicts 0x1000's entry
    EXPECT_TRUE(p.predict(0x1000).empty());
    const auto set = p.predict(0x2000);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], 5u);
}

TEST(TokenM, FirstRequestMulticastsToHomeOnly)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenM));
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_EQ(r.value, kBlock);
    auto &c = dynamic_cast<TokenMCache &>(d.sys->cache(1));
    EXPECT_EQ(c.multicasts(), 1u);
    EXPECT_EQ(c.broadcastFallbacks(), 0u);
    d.drain();
    d.expectConserved();
}

TEST(TokenM, UsesLessRequestTrafficThanTokenB)
{
    auto request_traffic = [](ProtocolKind kind) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = "torus";
        cfg.protocol = kind;
        cfg.workload = "uniform";
        cfg.workload.uniformBlocks = 64;
        cfg.opsPerProcessor = 1500;
        cfg.attachAuditor = true;
        cfg.seed = 5;
        System sys(cfg);
        sys.run();
        std::string err;
        EXPECT_TRUE(!sys.auditor() || sys.auditor()->auditAll(&err))
            << err;
        const auto &t = sys.net().traffic();
        return t.byteLinksOf(MsgClass::request) +
            t.byteLinksOf(MsgClass::reissue);
    };
    const auto tokenm = request_traffic(ProtocolKind::tokenM);
    const auto tokenb = request_traffic(ProtocolKind::tokenB);
    EXPECT_LT(static_cast<double>(tokenm),
              0.8 * static_cast<double>(tokenb));
}

TEST(TokenD, UsesLessRequestTrafficThanTokenM)
{
    // The Section-7 traffic spectrum: TokenD (directory-like) below
    // TokenM (predictive multicast) below TokenB (broadcast).
    auto request_traffic = [](ProtocolKind kind) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = "torus";
        cfg.protocol = kind;
        cfg.workload = "uniform";
        cfg.workload.uniformBlocks = 256;
        cfg.opsPerProcessor = 1000;
        cfg.attachAuditor = false;
        cfg.seed = 6;
        System sys(cfg);
        sys.run();
        const auto &t = sys.net().traffic();
        return t.byteLinksOf(MsgClass::request);
    };
    EXPECT_LT(request_traffic(ProtocolKind::tokenD),
              request_traffic(ProtocolKind::tokenB));
}

TEST(TokenA, BroadcastsWhenBandwidthIsPlentiful)
{
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenA;
    cfg.workload = "uniform";
    cfg.workload.uniformBlocks = 256;
    cfg.opsPerProcessor = 1500;
    cfg.net.unlimitedBandwidth = true;   // utilization estimate ~= 0
    cfg.attachAuditor = true;
    System sys(cfg);
    sys.run();
    std::uint64_t bcasts = 0, unis = 0;
    for (int n = 0; n < 16; ++n) {
        auto &c = dynamic_cast<TokenACache &>(
            sys.cache(static_cast<NodeId>(n)));
        bcasts += c.broadcastIssues();
        unis += c.unicastIssues();
    }
    EXPECT_GT(bcasts, 0u);
    EXPECT_EQ(unis, 0u);
    std::string err;
    EXPECT_TRUE(sys.auditor()->auditAll(&err)) << err;
}

TEST(TokenA, SwitchesToUnicastUnderBandwidthPressure)
{
    SystemConfig cfg;
    cfg.numNodes = 16;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenA;
    cfg.workload = "uniform";
    cfg.workload.uniformBlocks = 256;
    cfg.opsPerProcessor = 1500;
    cfg.net.bytesPerNs = 0.4;   // starved links: 1/8 the paper's BW
    cfg.attachAuditor = true;
    System sys(cfg);
    sys.run();
    std::uint64_t bcasts = 0, unis = 0;
    double max_util = 0;
    for (int n = 0; n < 16; ++n) {
        auto &c = dynamic_cast<TokenACache &>(
            sys.cache(static_cast<NodeId>(n)));
        bcasts += c.broadcastIssues();
        unis += c.unicastIssues();
        max_util = std::max(max_util, c.utilizationEstimate());
    }
    EXPECT_GT(unis, bcasts) << "max util seen: " << max_util;
    std::string err;
    EXPECT_TRUE(sys.auditor()->auditAll(&err)) << err;
}

TEST(TokenA, AdaptiveUsesLessTrafficThanTokenBWhenStarved)
{
    auto traffic = [](ProtocolKind kind) {
        SystemConfig cfg;
        cfg.numNodes = 16;
        cfg.topology = "torus";
        cfg.protocol = kind;
        cfg.workload = "uniform";
        cfg.workload.uniformBlocks = 256;
        cfg.opsPerProcessor = 1200;
        cfg.net.bytesPerNs = 0.4;
        cfg.seed = 9;
        System sys(cfg);
        sys.run();
        return sys.results().totalLinkBytes();
    };
    EXPECT_LT(traffic(ProtocolKind::tokenA),
              traffic(ProtocolKind::tokenB));
}

TEST(Extensions, AllTokenProtocolsAgreeOnValues)
{
    // The decoupling claim, executably: different performance
    // protocols produce identical architectural outcomes for a
    // deterministic request sequence.
    auto final_value = [](ProtocolKind kind) {
        ProtoDriver d(smallConfig(kind));
        std::uint64_t v = 0;
        for (int round = 0; round < 4; ++round) {
            for (NodeId n = 0; n < 4; ++n) {
                d.load(n, kBlock);
                v = 0x100u * round + n;
                d.store(n, kBlock, v);
            }
        }
        d.drain();
        d.expectConserved();
        return d.load(0, kBlock).value;
    };
    const auto tb = final_value(ProtocolKind::tokenB);
    const auto td = final_value(ProtocolKind::tokenD);
    const auto tm = final_value(ProtocolKind::tokenM);
    const auto ta = final_value(ProtocolKind::tokenA);
    EXPECT_EQ(tb, td);
    EXPECT_EQ(tb, tm);
    EXPECT_EQ(tb, ta);
    EXPECT_EQ(tb, 0x303u);
}

} // namespace
} // namespace tokensim
