/**
 * @file
 * Golden-trace regression suite: committed recorded traces replayed
 * under every protocol must reproduce committed ExperimentResult
 * digests bit for bit. This is the drift detector for hot-path
 * refactors — any change that perturbs protocol behavior, event
 * ordering, timing arithmetic, or statistics accounting shows up here
 * as a digest mismatch, even when every invariant test still passes.
 *
 * Artifacts live in tests/golden/ (located via the TOKENSIM_TESTS_DIR
 * compile definition):
 *   - golden_<workload>.trace (oltp, producer-consumer, ycsb,
 *     tpcc): recorded on
 *     the reference config below. Trace content is protocol-
 *     independent (sequencers pull exactly their budget regardless of
 *     protocol — tests/test_trace.cc proves it), so one trace per
 *     workload covers every protocol.
 *   - golden_digests.txt: one "<protocol>/<workload> <digest>" line
 *     per combination, produced by resultDigest().
 *
 * Regenerating after an INTENDED behavior change:
 *   TOKENSIM_UPDATE_GOLDEN=1 ./test_golden_traces
 * then commit the rewritten artifacts with a justification — a golden
 * update is a reviewable statement that the simulation's behavior
 * changed on purpose.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "workload/trace.hh"

namespace tokensim {
namespace {

const char *const kWorkloads[] = {"oltp", "producer-consumer",
                                  "ycsb", "tpcc"};

const ProtocolKind kProtocols[] = {
    ProtocolKind::snooping, ProtocolKind::directory,
    ProtocolKind::hammer,   ProtocolKind::tokenB,
    ProtocolKind::tokenD,   ProtocolKind::tokenM,
    ProtocolKind::tokenA,   ProtocolKind::tokenNull,
};

std::string
goldenDir()
{
    return std::string(TOKENSIM_TESTS_DIR) + "/golden";
}

std::string
tracePath(const std::string &workload)
{
    return goldenDir() + "/golden_" + workload + ".trace";
}

std::string
digestsPath()
{
    return goldenDir() + "/golden_digests.txt";
}

/**
 * The reference configuration: small enough that all 16 replays run
 * in seconds, large enough that every protocol's machinery (reissues,
 * persistent requests, evictions) is exercised.
 */
SystemConfig
goldenConfig(ProtocolKind proto)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = proto;
    cfg.topology =
        proto == ProtocolKind::snooping ? "tree" : "torus";
    // The warmup window covers the commercial generators' warm-scan
    // preamble (4096 blocks for oltp) plus margin, so the measured
    // window — what the digests pin down — is the steady-state
    // sharing mix, not the cold scan.
    cfg.opsPerProcessor = 400;
    cfg.warmupOpsPerProcessor = 4400;
    cfg.seed = 20260701;
    cfg.attachAuditor = isTokenProtocol(proto);
    return cfg;
}

std::string
comboKey(ProtocolKind proto, const std::string &workload)
{
    return std::string(protocolName(proto)) + "/" + workload;
}

ExperimentResult
replayCombo(ProtocolKind proto, const std::string &workload)
{
    SystemConfig cfg = goldenConfig(proto);
    cfg.workload = WorkloadSpec::trace(tracePath(workload));
    return aggregateResults({runOnce(cfg, cfg.seed)},
                            comboKey(proto, workload));
}

/**
 * Sampled variants of the same replays: SMARTS-style fast-forward
 * between detailed measurement windows, sized so the sampled run
 * consumes exactly the committed traces' 4800 ops per node
 * (4 windows x (1000 fast-forwarded + 200 detailed), no warmup).
 * These digests pin the whole sampled machinery — the functional
 * fast-forward path of every protocol, the phase scheduling, and the
 * per-window metric pooling — separately from the detailed digests,
 * so drift in either engine is attributed to the right one.
 */
std::string
sampledComboKey(ProtocolKind proto, const std::string &workload)
{
    return "sampled-" + comboKey(proto, workload);
}

ExperimentResult
sampledReplayCombo(ProtocolKind proto, const std::string &workload)
{
    SystemConfig cfg = goldenConfig(proto);
    cfg.workload = WorkloadSpec::trace(tracePath(workload));
    cfg.warmupOpsPerProcessor = 0;
    cfg.opsPerProcessor = 0;
    cfg.sampling = SamplingSpec{1000, 200, 4};
    return aggregateResults({runOnce(cfg, cfg.seed)},
                            sampledComboKey(proto, workload));
}

bool
updateRequested()
{
    const char *v = std::getenv("TOKENSIM_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

/** Record the golden traces and rewrite every digest line. */
void
regenerate()
{
    for (const char *workload : kWorkloads) {
        SystemConfig cfg = goldenConfig(ProtocolKind::tokenB);
        cfg.workload = workload;
        cfg.recordTrace = tracePath(workload);
        runOnce(cfg, cfg.seed);
    }
    std::ofstream out(digestsPath(), std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << digestsPath();
    out << "# <protocol>/<workload> <resultDigest()>\n"
        << "# regenerate: TOKENSIM_UPDATE_GOLDEN=1 "
           "./test_golden_traces\n";
    for (ProtocolKind proto : kProtocols) {
        for (const char *workload : kWorkloads) {
            out << comboKey(proto, workload) << " "
                << resultDigest(replayCombo(proto, workload)) << "\n";
        }
    }
    for (ProtocolKind proto : kProtocols) {
        for (const char *workload : kWorkloads) {
            out << sampledComboKey(proto, workload) << " "
                << resultDigest(sampledReplayCombo(proto, workload))
                << "\n";
        }
    }
}

std::map<std::string, std::string>
loadDigests()
{
    std::map<std::string, std::string> out;
    std::ifstream in(digestsPath());
    EXPECT_TRUE(in) << "missing golden artifact " << digestsPath();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos) {
            ADD_FAILURE() << "bad digest line: " << line;
            continue;
        }
        out[line.substr(0, space)] = line.substr(space + 1);
    }
    return out;
}

TEST(GoldenTraces, ReplayReproducesCommittedDigests)
{
    if (updateRequested()) {
        regenerate();
        SUCCEED() << "golden artifacts regenerated";
        return;
    }

    const std::map<std::string, std::string> expected = loadDigests();
    ASSERT_EQ(expected.size(),
              2 * std::size(kProtocols) * std::size(kWorkloads));

    const auto check = [&expected](const std::string &key,
                                   const ExperimentResult &r) {
        SCOPED_TRACE(key);
        const auto it = expected.find(key);
        ASSERT_NE(it, expected.end())
            << "no committed digest for " << key;
        EXPECT_EQ(resultDigest(r), it->second)
            << "behavioral drift detected: the replayed golden "
               "trace no longer reproduces the committed result. "
               "If this change is intentional, regenerate with "
               "TOKENSIM_UPDATE_GOLDEN=1 and commit the new "
               "artifacts.";
    };
    for (ProtocolKind proto : kProtocols) {
        for (const char *workload : kWorkloads) {
            check(comboKey(proto, workload),
                  replayCombo(proto, workload));
            check(sampledComboKey(proto, workload),
                  sampledReplayCombo(proto, workload));
        }
    }
}

TEST(GoldenTraces, CommittedTracesAreWellFormed)
{
    for (const char *workload : kWorkloads) {
        SCOPED_TRACE(workload);
        if (updateRequested())
            continue;
        const auto trace = TraceData::load(tracePath(workload));
        EXPECT_EQ(trace->numNodes(), 8u);
        EXPECT_EQ(trace->header().provenance, workload);
        EXPECT_EQ(trace->minOpsPerNode(), 4800u);
        EXPECT_EQ(trace->header().warmupOpsPerProcessor, 4400u);
    }
}

} // namespace
} // namespace tokensim
