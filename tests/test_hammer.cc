/**
 * @file
 * Protocol tests for the Hammer baseline: home-serialized broadcast
 * probes, every-node acknowledgments (the traffic cost Figure 5b
 * shows), owner data priority over stale memory data, migratory
 * optimization, and writeback filtering.
 */

#include <gtest/gtest.h>

#include "proto/hammer/hammer.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

HammerCache &
hcache(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<HammerCache &>(d.sys->cache(n));
}

HammerMemory &
hmem(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<HammerMemory &>(d.sys->memory(n));
}

SystemConfig
hammerConfig(int nodes = 4)
{
    return smallConfig(ProtocolKind::hammer, "torus", nodes);
}

constexpr Addr kBlock = 0x400;   // home 0 on 4 nodes

TEST(Hammer, ColdLoadCollectsAllResponses)
{
    ProtoDriver d(hammerConfig());
    const auto acks_before = d.sys->net().traffic()
        .messagesByType[static_cast<std::size_t>(MsgType::ack)];
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_FALSE(r.cacheToCache);
    EXPECT_EQ(r.value, kBlock);
    EXPECT_EQ(hcache(d, 1).state(kBlock), HammerState::S);
    // Every node but the requester acked: N-1 = 3 acknowledgments.
    EXPECT_EQ(d.sys->net().traffic()
                  .messagesByType[static_cast<std::size_t>(
                      MsgType::ack)],
              acks_before + 3);
}

TEST(Hammer, StoreBecomesModified)
{
    ProtoDriver d(hammerConfig());
    d.store(2, kBlock, 0x22);
    EXPECT_EQ(hcache(d, 2).state(kBlock), HammerState::M);
    EXPECT_FALSE(d.store(2, kBlock, 0x23).wasMiss);
    EXPECT_EQ(d.load(2, kBlock).value, 0x23u);
}

TEST(Hammer, OwnerDataBeatsStaleMemoryData)
{
    ProtoDriver d(hammerConfig());
    d.store(1, kBlock, 0xf0e5);
    // Memory still has the initial pattern; the owner must supply.
    const ProcResponse r = d.load(2, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(r.value, 0xf0e5u);
}

TEST(Hammer, MigratoryTransfer)
{
    ProtoDriver d(hammerConfig());
    d.store(1, kBlock, 0xaa);
    const ProcResponse r = d.load(3, kBlock);
    EXPECT_EQ(hcache(d, 3).state(kBlock), HammerState::M);
    EXPECT_EQ(hcache(d, 1).state(kBlock), HammerState::I);
    EXPECT_FALSE(d.store(3, kBlock, 0xbb).wasMiss);
}

TEST(Hammer, NonMigratorySharing)
{
    SystemConfig cfg = hammerConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 0xaa);
    d.load(3, kBlock);
    EXPECT_EQ(hcache(d, 1).state(kBlock), HammerState::O);
    EXPECT_EQ(hcache(d, 3).state(kBlock), HammerState::S);
    // O-state owner keeps answering readers.
    EXPECT_EQ(d.load(2, kBlock).value, 0xaau);
    EXPECT_EQ(hcache(d, 2).state(kBlock), HammerState::S);
}

TEST(Hammer, StoreInvalidatesSharers)
{
    SystemConfig cfg = hammerConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    for (NodeId n = 0; n < 4; ++n)
        d.load(n, kBlock);
    d.store(2, kBlock, 0x55);
    for (NodeId n = 0; n < 4; ++n) {
        if (n != 2)
            EXPECT_EQ(hcache(d, n).state(kBlock), HammerState::I);
    }
    EXPECT_EQ(d.load(0, kBlock).value, 0x55u);
}

TEST(Hammer, RacingStoresSerializeAtHome)
{
    ProtoDriver d(hammerConfig());
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, 0x100 + n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1)) << "node " << n;
    d.drain();
    EXPECT_TRUE(hmem(d, 0).quiescent());
    int modified = 0;
    for (NodeId n = 0; n < 4; ++n)
        modified += hcache(d, n).state(kBlock) == HammerState::M;
    EXPECT_EQ(modified, 1);
}

TEST(Hammer, WritebackUpdatesMemory)
{
    SystemConfig cfg = hammerConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.store(1, 0x200, 0x333);   // evicts 0x000
    d.drain();
    EXPECT_TRUE(hcache(d, 1).quiescent());
    EXPECT_EQ(hmem(d, 0).peekData(0x000), 0x111u);
    EXPECT_EQ(d.load(2, 0x000).value, 0x111u);
}

TEST(Hammer, ProbeDuringWritebackServedFromBuffer)
{
    SystemConfig cfg = hammerConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.issue(1, MemOp::store, 0x200, 0x333);   // eviction in flight
    d.issue(3, MemOp::load, 0x000);
    ASSERT_TRUE(d.runUntilCompletions(3, 1));
    EXPECT_EQ(d.completions[3][0].value, 0x111u);
    d.drain();
    EXPECT_TRUE(hcache(d, 1).quiescent());
    EXPECT_TRUE(hmem(d, 0).quiescent());
}

TEST(Hammer, UsesMoreNonDataTrafficThanDirectory)
{
    // The every-node-acks cost (Figure 5b's striped segment):
    // run identical request sequences under both protocols and
    // compare non-data traffic.
    auto traffic = [](ProtocolKind kind) {
        ProtoDriver d(smallConfig(kind, "torus", 4));
        for (int i = 0; i < 8; ++i) {
            d.store(static_cast<NodeId>(i % 4), 0x400, i);
            d.load(static_cast<NodeId>((i + 1) % 4), 0x400);
        }
        d.drain();
        return d.sys->net().traffic().byteLinksOf(MsgClass::nonData);
    };
    EXPECT_GT(traffic(ProtocolKind::hammer),
              traffic(ProtocolKind::directory));
}

TEST(Hammer, ValueChain)
{
    ProtoDriver d(hammerConfig());
    std::uint64_t expect = kBlock;
    for (int round = 0; round < 3; ++round) {
        for (NodeId n = 0; n < 4; ++n) {
            EXPECT_EQ(d.load(n, kBlock).value, expect);
            expect = 0x1000u * (round + 1) + n;
            d.store(n, kBlock, expect);
        }
    }
    d.drain();
}

} // namespace
} // namespace tokensim
