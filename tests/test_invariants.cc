/**
 * @file
 * Property tests of the decoupling claim itself (Section 4.1):
 * "performance protocol bugs and various races may hurt performance,
 * but they cannot affect correctness."
 *
 * The failure-injection knobs sabotage TokenB's performance protocol —
 * dropping or misdirecting transient requests — while the random
 * tester checks every load's value and audits token conservation
 * every few hundred completions (conservation is an *at every
 * instant* invariant, not just an end-state one). A parameterized
 * grid also sweeps system sizes, token counts, and MLP windows.
 */

#include <gtest/gtest.h>

#include "harness/random_tester.hh"

namespace tokensim {
namespace {

struct ChaosCase
{
    double drop;
    double misdirect;
    ProtocolKind protocol;
    std::uint64_t seed;
};

class ChaosSoak : public ::testing::TestWithParam<ChaosCase>
{
};

TEST_P(ChaosSoak, BuggyPerformanceProtocolCannotBreakCoherence)
{
    const ChaosCase &c = GetParam();
    RandomTesterConfig cfg;
    cfg.protocol = c.protocol;
    cfg.numNodes = 8;
    cfg.blocks = 4;
    cfg.storeFraction = 0.5;
    cfg.opsPerProcessor = 600;   // chaos makes progress slow
    cfg.seed = c.seed;
    cfg.chaosDropFraction = c.drop;
    cfg.chaosMisdirectFraction = c.misdirect;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
    if (c.drop + c.misdirect > 0.3) {
        // Heavy sabotage must show up as reissues/persistent
        // requests — the liveness machinery earning its keep.
        EXPECT_GT(r.reissuedMisses + r.persistentMisses, 0u);
    }
}

std::string
chaosName(const ::testing::TestParamInfo<ChaosCase> &info)
{
    const ChaosCase &c = info.param;
    return std::string(protocolName(c.protocol)) + "_drop" +
        std::to_string(static_cast<int>(c.drop * 100)) + "_mis" +
        std::to_string(static_cast<int>(c.misdirect * 100)) + "_s" +
        std::to_string(c.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sabotage, ChaosSoak,
    ::testing::Values(
        ChaosCase{0.25, 0.0, ProtocolKind::tokenB, 1},
        ChaosCase{0.50, 0.0, ProtocolKind::tokenB, 2},
        ChaosCase{0.90, 0.0, ProtocolKind::tokenB, 3},
        ChaosCase{0.0, 0.25, ProtocolKind::tokenB, 4},
        ChaosCase{0.0, 0.75, ProtocolKind::tokenB, 5},
        ChaosCase{0.30, 0.30, ProtocolKind::tokenB, 6},
        ChaosCase{0.40, 0.0, ProtocolKind::tokenM, 7},
        ChaosCase{0.40, 0.0, ProtocolKind::tokenD, 8}),
    chaosName);

struct GridCase
{
    int nodes;
    int tokens;       // 0 = nodes
    int outstanding;
    const char *topology;
    std::uint64_t seed;
};

class GridSoak : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(GridSoak, ConservationAndValuesAcrossTheGrid)
{
    const GridCase &g = GetParam();
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.topology = g.topology;
    cfg.numNodes = g.nodes;
    cfg.tokensPerBlock = g.tokens;
    cfg.maxOutstanding = g.outstanding;
    cfg.blocks = static_cast<std::uint64_t>(g.nodes);
    cfg.opsPerProcessor = 800;
    cfg.seed = g.seed;
    cfg.auditEvery = 256;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
}

std::string
gridName(const ::testing::TestParamInfo<GridCase> &info)
{
    const GridCase &g = info.param;
    return std::string("n") + std::to_string(g.nodes) + "_t" +
        std::to_string(g.tokens) + "_o" +
        std::to_string(g.outstanding) + "_" + g.topology;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GridSoak,
    ::testing::Values(
        GridCase{2, 0, 1, "torus", 11},
        GridCase{4, 0, 2, "torus", 12},
        GridCase{4, 64, 4, "torus", 13},
        GridCase{9, 0, 2, "torus", 14},    // 3x3: odd ring sizes
        GridCase{16, 0, 4, "torus", 15},
        GridCase{16, 31, 2, "tree", 16},   // prime-ish T on the tree
        GridCase{32, 0, 2, "torus", 17},
        GridCase{12, 0, 2, "torus", 18}),  // 4x3 rectangular
    gridName);

TEST(InvariantEdge, SingleNodeSystemDegenerates)
{
    // One processor, T = 1: every miss talks only to its own memory.
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.numNodes = 1;
    cfg.blocks = 4;
    cfg.opsPerProcessor = 500;
    cfg.seed = 21;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(InvariantEdge, ChaosWithTinyTimeouts)
{
    // Aggressive reissue on top of sabotage: the worst realistic
    // storm of redundant transient requests.
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.numNodes = 8;
    cfg.blocks = 2;
    cfg.storeFraction = 0.8;
    cfg.opsPerProcessor = 400;
    cfg.seed = 22;
    cfg.chaosDropFraction = 0.5;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
    EXPECT_GT(r.persistentMisses + r.reissuedMisses, 0u);
}

} // namespace
} // namespace tokensim
