/**
 * @file
 * Unit tests for the named-metric registry behind System::Results
 * ("results v2") and the two precision bugfixes it exposed:
 *
 *  - merge-rule equivalence: the generic registry merge (counter sum,
 *    Welford stat combine, histogram bucket-add) reproduces the old
 *    hand-written aggregation bit-for-bit where the digest pins it
 *    (cpt/cptSd), and fixes it where it was wrong (miss latency);
 *  - fractional-tick latency: the cross-seed average miss latency is
 *    a miss-count-weighted pooled mean and is never truncated to a
 *    whole Tick before the ns conversion;
 *  - histogram clamping: linear Histogram::add and
 *    LogHistogram::bucketOf are total functions — negative, NaN, and
 *    huge samples clamp instead of hitting float-to-integer UB (this
 *    suite runs under the CI ubsan job);
 *  - wire: the registry codec round-trips adversarial payloads
 *    bit-exactly, throws a typed WireError at every truncation
 *    offset, and rejects each malformed-input class.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/wire.hh"
#include "net/message.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tokensim {
namespace {

void
expectSameBits(double a, double b, const char *what)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what;
}

// ---------------------------------------------------------------------
// Registry API
// ---------------------------------------------------------------------

TEST(MetricRegistry, LookupAndAbsentDefaults)
{
    MetricRegistry m;
    EXPECT_TRUE(m.empty());
    m.addCounter("ops", metricPinned, 42);
    RunningStat s;
    s.add(3.0);
    m.addStat("lat", metricDiagnostic, s);
    LogHistogram h;
    h.add(5.0);
    m.addHistogram("hist", metricDiagnostic, h);

    EXPECT_EQ(m.size(), 3u);
    ASSERT_NE(m.find("ops"), nullptr);
    EXPECT_EQ(m.find("ops")->kind, MetricKind::counter);
    EXPECT_TRUE(m.find("ops")->pinned);
    EXPECT_EQ(m.counterValue("ops"), 42u);
    EXPECT_EQ(m.statValue("lat").count(), 1u);
    ASSERT_NE(m.histogram("hist"), nullptr);
    EXPECT_EQ(m.histogram("hist")->total(), 1u);

    // Absent names report what a default-constructed Results would:
    // zero / empty / missing — never a throw.
    EXPECT_EQ(m.find("nope"), nullptr);
    EXPECT_EQ(m.counterValue("nope"), 0u);
    EXPECT_EQ(m.statValue("nope").count(), 0u);
    EXPECT_EQ(m.histogram("nope"), nullptr);
}

TEST(MetricRegistry, EmptyOrDuplicateNameThrows)
{
    MetricRegistry m;
    m.addCounter("x", metricPinned, 1);
    EXPECT_THROW(m.addCounter("", metricPinned, 1),
                 std::invalid_argument);
    EXPECT_THROW(m.addCounter("x", metricPinned, 1),
                 std::invalid_argument);
    EXPECT_THROW(m.addStat("x", metricPinned, RunningStat{}),
                 std::invalid_argument);
    EXPECT_THROW(m.addHistogram("x", metricPinned, LogHistogram{}),
                 std::invalid_argument);
}

TEST(MetricRegistry, MergeAppliesPerKindRulesAndAppendsNewNames)
{
    MetricRegistry a;
    a.addCounter("c", metricPinned, 10);
    RunningStat sa;
    sa.add(1.0);
    sa.add(2.0);
    a.addStat("s", metricPinned, sa);
    LogHistogram ha;
    ha.add(2.0);
    a.addHistogram("h", metricDiagnostic, ha);

    MetricRegistry b;
    b.addCounter("c", metricPinned, 32);
    RunningStat sb;
    sb.add(3.0);
    b.addStat("s", metricPinned, sb);
    LogHistogram hb;
    hb.add(2.5);
    hb.add(1000.0);
    b.addHistogram("h", metricDiagnostic, hb);
    b.addCounter("only_in_b", metricDiagnostic, 7);

    a.merge(b);
    EXPECT_EQ(a.counterValue("c"), 42u);
    EXPECT_EQ(a.statValue("s").count(), 3u);
    EXPECT_DOUBLE_EQ(a.statValue("s").mean(), 2.0);
    EXPECT_EQ(a.histogram("h")->total(), 3u);
    // Unknown names append at the end, preserving insertion order.
    EXPECT_EQ(a.counterValue("only_in_b"), 7u);
    EXPECT_EQ(a.all().back().name, "only_in_b");
}

TEST(MetricRegistry, MergeRefusesKindOrPinnedMismatch)
{
    MetricRegistry a;
    a.addCounter("m", metricPinned, 1);

    MetricRegistry kind_clash;
    kind_clash.addStat("m", metricPinned, RunningStat{});
    EXPECT_THROW(a.merge(kind_clash), std::logic_error);

    MetricRegistry flag_clash;
    flag_clash.addCounter("m", metricDiagnostic, 1);
    EXPECT_THROW(a.merge(flag_clash), std::logic_error);
}

TEST(MetricRegistry, EqualityIsOrderSensitiveAndBitExact)
{
    MetricRegistry a, b;
    a.addCounter("x", metricPinned, 1);
    a.addCounter("y", metricPinned, 2);
    b.addCounter("y", metricPinned, 2);
    b.addCounter("x", metricPinned, 1);
    EXPECT_TRUE(a != b);   // same content, different order

    MetricRegistry c, d;
    RunningStat plus, minus;
    plus.add(0.0);
    minus.add(-0.0);
    c.addStat("s", metricPinned, plus);
    d.addStat("s", metricPinned, minus);
    EXPECT_TRUE(c != d);   // -0.0 and +0.0 differ as bit patterns

    MetricRegistry e, f;
    RunningStat nan1, nan2;
    nan1.add(std::nan(""));
    nan2.add(std::nan(""));
    e.addStat("s", metricPinned, nan1);
    f.addStat("s", metricPinned, nan2);
    EXPECT_TRUE(e == f);   // identical NaN payloads compare equal
}

// ---------------------------------------------------------------------
// Merge-rule semantics (the digest-pinning guarantees)
// ---------------------------------------------------------------------

TEST(RunningStatCombine, SingleSampleStatsReplaySequentialAddExactly)
{
    // aggregateResults merges one cpt_ns sample per run; the digest
    // pins the resulting mean/stddev, so the combine of single-sample
    // stats must be bit-identical to the add() loop it replaced.
    const double samples[] = {1234.0625, 980.5,  1111.125, 1023.75,
                              997.03125, 1342.5, 1200.0,   1005.25};
    RunningStat sequential, merged;
    for (double x : samples) {
        sequential.add(x);
        RunningStat one;
        one.add(x);
        merged.combine(one);
    }
    EXPECT_TRUE(sequential == merged);
    expectSameBits(sequential.mean(), merged.mean(), "mean");
    expectSameBits(sequential.stddev(), merged.stddev(), "stddev");
}

TEST(RunningStatCombine, EmptyIsIdentityOnBothSides)
{
    RunningStat s;
    s.add(4.0);
    s.add(8.0);
    const RunningStat before = s;
    s.combine(RunningStat{});
    EXPECT_TRUE(s == before);

    RunningStat empty;
    empty.combine(before);
    EXPECT_TRUE(empty == before);
}

TEST(RunningStatCombine, PooledMomentsMatchFlatAccumulation)
{
    RunningStat left, right, flat;
    for (int i = 0; i < 10; ++i) {
        const double x = 3.25 * i - 7.0;
        left.add(x);
        flat.add(x);
    }
    for (int i = 0; i < 25; ++i) {
        const double x = 0.5 * i + 100.0;
        right.add(x);
        flat.add(x);
    }
    left.combine(right);
    EXPECT_EQ(left.count(), flat.count());
    EXPECT_NEAR(left.mean(), flat.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), flat.variance(), 1e-6);
    EXPECT_EQ(left.min(), flat.min());
    EXPECT_EQ(left.max(), flat.max());
}

TEST(Aggregation, CrossSeedMissLatencyIsWeightedByMissCount)
{
    // The second latency bug: run A has 1 miss at 10 ticks, run B has
    // 3 misses at 20 ticks. The old unweighted mean of per-seed means
    // reported (1.0 + 2.0) / 2 = 1.5 ns; pooling the samples weights
    // seed B 3x and gives 17.5 ticks = 1.75 ns.
    System::Results a, b;
    RunningStat la;
    la.add(10.0);
    a.metrics.addStat("miss_latency_ticks", metricPinned, la);
    RunningStat lb;
    lb.add(20.0);
    lb.add(20.0);
    lb.add(20.0);
    b.metrics.addStat("miss_latency_ticks", metricPinned, lb);

    const ExperimentResult r = aggregateResults({a, b}, "weighted");
    EXPECT_DOUBLE_EQ(r.avgMissLatencyNs, 1.75);
}

TEST(Aggregation, AvgMissLatencyKeepsFractionalTicks)
{
    // The first latency bug: a pooled mean of 3.5 ticks used to be
    // cast to Tick (3) before the ns conversion, quantizing the
    // reported latency to 0.1-ns steps. 3.5 ticks is 0.35 ns.
    System::Results run;
    RunningStat lat;
    lat.add(3.0);
    lat.add(4.0);
    run.metrics.addStat("miss_latency_ticks", metricPinned, lat);

    const ExperimentResult r = aggregateResults({run}, "frac");
    EXPECT_DOUBLE_EQ(r.avgMissLatencyNs, 0.35);
    // The old truncating path really would have differed.
    EXPECT_NE(r.avgMissLatencyNs,
              ticksToNsF(static_cast<Tick>(lat.mean())));
}

TEST(Aggregation, RegistryMergeMatchesHandWrittenAggregate)
{
    // Three synthetic runs with every digest-feeding metric set;
    // aggregateResults must reproduce the old per-field arithmetic.
    struct RunSpec
    {
        std::uint64_t ops, misses, l2, c2c;
        std::uint64_t none, once, more, pers;
        double cpt;
        std::uint64_t bytes[numMsgClasses];
    };
    const RunSpec specs[] = {
        {12000, 700, 9000, 120, 650, 30, 15, 5, 812.5,
         {1000, 2000, 30000, 400, 50}},
        {12000, 900, 9500, 260, 820, 50, 20, 10, 777.25,
         {1100, 2200, 33000, 440, 55}},
        {12000, 500, 8800, 90, 470, 20, 8, 2, 905.0625,
         {900, 1800, 27000, 360, 45}},
    };

    std::vector<System::Results> runs;
    for (const RunSpec &s : specs) {
        System::Results r;
        MetricRegistry &m = r.metrics;
        m.addCounter("ops", metricPinned, s.ops);
        m.addCounter("misses", metricPinned, s.misses);
        m.addCounter("l2_accesses", metricPinned, s.l2);
        m.addCounter("cache_to_cache", metricPinned, s.c2c);
        m.addCounter("miss_reissue_none", metricPinned, s.none);
        m.addCounter("miss_reissue_once", metricPinned, s.once);
        m.addCounter("miss_reissue_more", metricPinned, s.more);
        m.addCounter("miss_persistent", metricPinned, s.pers);
        RunningStat cpt;
        cpt.add(s.cpt);
        m.addStat("cpt_ns", metricPinned, cpt);
        for (std::size_t c = 0; c < numMsgClasses; ++c) {
            m.addCounter(std::string("link_bytes_") +
                             msgClassName(static_cast<MsgClass>(c)),
                         metricPinned, s.bytes[c]);
        }
        runs.push_back(std::move(r));
    }

    const ExperimentResult r = aggregateResults(runs, "equiv");

    // The hand-written version: sum counters, sequential-add cpt.
    std::uint64_t ops = 0, misses = 0, l2 = 0, c2c = 0, none = 0,
                  bytes = 0;
    RunningStat cpt;
    for (const RunSpec &s : specs) {
        ops += s.ops;
        misses += s.misses;
        l2 += s.l2;
        c2c += s.c2c;
        none += s.none;
        cpt.add(s.cpt);
        for (std::size_t c = 0; c < numMsgClasses; ++c)
            bytes += s.bytes[c];
    }
    EXPECT_EQ(r.ops, ops);
    EXPECT_EQ(r.misses, misses);
    expectSameBits(r.cyclesPerTransaction, cpt.mean(), "cpt");
    expectSameBits(r.cyclesPerTransactionStddev, cpt.stddev(),
                   "cptSd");
    expectSameBits(r.bytesPerMiss,
                   static_cast<double>(bytes) /
                       static_cast<double>(misses),
                   "bpm");
    expectSameBits(r.missRate,
                   static_cast<double>(misses) /
                       static_cast<double>(l2),
                   "missRate");
    expectSameBits(r.cacheToCacheFrac,
                   static_cast<double>(c2c) /
                       static_cast<double>(misses),
                   "c2c");
    expectSameBits(r.pctNotReissued,
                   100.0 * static_cast<double>(none) /
                       static_cast<double>(misses),
                   "pNot");
}

// ---------------------------------------------------------------------
// Histogram clamping (runs under the CI ubsan job)
// ---------------------------------------------------------------------

TEST(LinearHistogram, JunkSamplesClampInsteadOfUB)
{
    Histogram h(1.0, 4);   // buckets [0,1) [1,2) [2,3) [3,4) + overflow
    h.add(-3.5);
    h.add(std::nan(""));
    h.add(-std::numeric_limits<double>::infinity());
    h.add(0.5);
    h.add(3.999);
    h.add(4.0);            // boundary: first value past the last bucket
    h.add(1e300);
    h.add(std::numeric_limits<double>::infinity());

    const auto &b = h.buckets();
    ASSERT_EQ(b.size(), 5u);
    EXPECT_EQ(b[0], 4u);   // -3.5, NaN, -inf, 0.5
    EXPECT_EQ(b[1], 0u);
    EXPECT_EQ(b[2], 0u);
    EXPECT_EQ(b[3], 1u);   // 3.999
    EXPECT_EQ(b[4], 3u);   // 4.0, 1e300, inf
    EXPECT_EQ(h.count(), 8u);
}

TEST(LogHistogram, BucketBoundariesAreExact)
{
    EXPECT_EQ(LogHistogram::bucketOf(std::nan("")), 0);
    EXPECT_EQ(LogHistogram::bucketOf(-5.0), 0);
    EXPECT_EQ(LogHistogram::bucketOf(0.0), 0);
    EXPECT_EQ(LogHistogram::bucketOf(0.999), 0);
    EXPECT_EQ(LogHistogram::bucketOf(1.0), 1);
    EXPECT_EQ(LogHistogram::bucketOf(1.999), 1);
    EXPECT_EQ(LogHistogram::bucketOf(2.0), 2);
    EXPECT_EQ(LogHistogram::bucketOf(3.999), 2);
    EXPECT_EQ(LogHistogram::bucketOf(4.0), 3);
    EXPECT_EQ(LogHistogram::bucketOf(0x1p62), 63);
    EXPECT_EQ(LogHistogram::bucketOf(0x1p63), LogHistogram::kMaxBucket);
    EXPECT_EQ(LogHistogram::bucketOf(
                  std::numeric_limits<double>::infinity()),
              LogHistogram::kMaxBucket);
}

TEST(LogHistogram, AddCountClampsOutOfRangeBuckets)
{
    LogHistogram h;
    h.addCount(-7, 3);
    h.addCount(1000, 2);
    h.addCount(5, 1);
    h.addCount(5, 4);
    EXPECT_EQ(h.total(), 10u);
    const auto &b = h.buckets();
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(b[0], (std::pair<std::int32_t, std::uint64_t>{0, 3}));
    EXPECT_EQ(b[1], (std::pair<std::int32_t, std::uint64_t>{5, 5}));
    EXPECT_EQ(b[2],
              (std::pair<std::int32_t, std::uint64_t>{
                  LogHistogram::kMaxBucket, 2}));
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

MetricRegistry
adversarialRegistry()
{
    MetricRegistry m;
    m.addCounter("max_counter", metricPinned,
                 std::numeric_limits<std::uint64_t>::max());
    m.addCounter("zero", metricDiagnostic, 0);

    RunningStat::Snapshot weird;
    weird.count = 5;
    weird.mean = -0.0;
    weird.m2 = std::nan("");
    weird.min = -std::numeric_limits<double>::infinity();
    weird.max = std::numeric_limits<double>::infinity();
    m.addStat("weird", metricDiagnostic,
              RunningStat::fromSnapshot(weird));
    m.addStat("empty_stat", metricPinned, RunningStat{});

    LogHistogram h;
    h.addCount(0, 9);
    h.addCount(7, 123456789);
    h.addCount(LogHistogram::kMaxBucket, 1);
    m.addHistogram("hist", metricDiagnostic, h);
    m.addHistogram("empty_hist", metricDiagnostic, LogHistogram{});
    return m;
}

TEST(MetricsWire, AdversarialRegistryRoundTripsBitExactly)
{
    const MetricRegistry m = adversarialRegistry();
    WireWriter w;
    encodeMetrics(w, m);
    WireReader r(w.buffer());
    const MetricRegistry back = decodeMetrics(r);
    EXPECT_NO_THROW(r.expectEnd("metrics"));
    EXPECT_TRUE(m == back);
}

TEST(MetricsWire, TruncationAtEveryByteOffsetIsATypedError)
{
    WireWriter w;
    encodeMetrics(w, adversarialRegistry());
    const std::string full = w.buffer();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        WireReader r(full.data(), cut);
        EXPECT_THROW(decodeMetrics(r), WireError);
    }
}

/** One-histogram registry with hand-chosen (bucket, count) pairs. */
std::string
histogramWire(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets)
{
    WireWriter w;
    w.varint(1);
    w.str("h");
    w.u8(static_cast<std::uint8_t>(MetricKind::histogram));
    w.boolean(false);
    w.varint(buckets.size());
    for (const auto &[idx, count] : buckets) {
        w.varint(idx);
        w.varint(count);
    }
    return w.take();
}

TEST(MetricsWire, NonAscendingHistogramBucketsAreATypedError)
{
    {
        const std::string buf = histogramWire({{3, 1}, {2, 1}});
        WireReader r(buf);
        EXPECT_THROW(decodeMetrics(r), WireError);
    }
    {
        const std::string buf = histogramWire({{3, 1}, {3, 1}});
        WireReader r(buf);
        EXPECT_THROW(decodeMetrics(r), WireError);
    }
}

TEST(MetricsWire, HistogramBucketIndexOutOfRangeIsATypedError)
{
    const std::string buf = histogramWire(
        {{static_cast<std::uint64_t>(LogHistogram::kMaxBucket) + 1,
          1}});
    WireReader r(buf);
    EXPECT_THROW(decodeMetrics(r), WireError);
}

TEST(MetricsWire, HistogramZeroCountBucketIsATypedError)
{
    const std::string buf = histogramWire({{2, 0}});
    WireReader r(buf);
    EXPECT_THROW(decodeMetrics(r), WireError);
}

TEST(MetricsWire, HistogramBucketCountOverRangeIsATypedError)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> too_many;
    for (std::uint64_t i = 0;
         i <= static_cast<std::uint64_t>(LogHistogram::kMaxBucket) + 1;
         ++i)
        too_many.emplace_back(i, 1);
    const std::string buf = histogramWire(too_many);
    WireReader r(buf);
    EXPECT_THROW(decodeMetrics(r), WireError);
}

} // namespace
} // namespace tokensim
