/**
 * @file
 * Unit tests for the network timing model: latency math,
 * serialization, contention, multicast delivery, total ordering on
 * the tree, and traffic accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"

namespace tokensim {
namespace {

/** Collects deliveries for inspection. */
class Sink : public NetworkEndpoint
{
  public:
    struct Rx
    {
        Message msg;
        Tick at;
    };

    explicit Sink(EventQueue &eq) : eq_(eq) {}

    void
    deliver(const Message &msg) override
    {
        received.push_back(Rx{msg, eq_.curTick()});
    }

    std::vector<Rx> received;

  private:
    EventQueue &eq_;
};

class NetworkTest : public ::testing::Test
{
  protected:
    void
    build(const std::string &topo, int nodes, NetworkParams params = {})
    {
        net = std::make_unique<Network>(
            eq, std::unique_ptr<Topology>(makeTopology(topo, nodes)),
            params);
        sinks.clear();
        for (int i = 0; i < nodes; ++i) {
            sinks.push_back(std::make_unique<Sink>(eq));
            net->attach(static_cast<NodeId>(i), sinks.back().get());
        }
    }

    Message
    ctrlMsg(NodeId src, NodeId dest)
    {
        Message m;
        m.type = MsgType::getS;
        m.cls = MsgClass::request;
        m.addr = 0x1000;
        m.src = src;
        m.dest = dest;
        return m;
    }

    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<Sink>> sinks;
};

TEST_F(NetworkTest, SerializationMatchesTable1)
{
    build("torus", 16);
    // 8 bytes at 3.2 GB/s = 2.5 ns = 25 ticks; 72 bytes = 22.5 ns.
    EXPECT_EQ(net->serializationTicks(8), 25u);
    EXPECT_EQ(net->serializationTicks(72), 225u);
}

TEST_F(NetworkTest, UnicastLatencyOnTorus)
{
    build("torus", 16);
    net->unicast(ctrlMsg(0, 1));   // one hop
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 1u);
    // 1 hop x 150 ticks latency + 25 ticks serialization.
    EXPECT_EQ(sinks[1]->received[0].at, 175u);
    EXPECT_EQ(sinks[1]->received[0].msg.size, 8u);
}

TEST_F(NetworkTest, UnicastLatencyOnTree)
{
    build("tree", 16);
    net->unicast(ctrlMsg(0, 15));
    eq.run();
    ASSERT_EQ(sinks[15]->received.size(), 1u);
    // 4 hops x 150 + 25 serialization.
    EXPECT_EQ(sinks[15]->received[0].at, 625u);
}

TEST_F(NetworkTest, DataMessagesAre72Bytes)
{
    build("torus", 16);
    Message m = ctrlMsg(0, 2);
    m.hasData = true;
    net->unicast(m);
    eq.run();
    ASSERT_EQ(sinks[2]->received.size(), 1u);
    EXPECT_EQ(sinks[2]->received[0].msg.size, 72u);
    // 2 hops x 150 + 225 ser.
    EXPECT_EQ(sinks[2]->received[0].at, 525u);
}

TEST_F(NetworkTest, SelfSendIsLocal)
{
    build("torus", 16);
    net->unicast(ctrlMsg(3, 3));
    eq.run();
    ASSERT_EQ(sinks[3]->received.size(), 1u);
    EXPECT_EQ(sinks[3]->received[0].at, net->params().localDelay);
    // Local messages consume no link bandwidth.
    EXPECT_EQ(net->traffic().totalByteLinks(), 0u);
}

TEST_F(NetworkTest, ContentionSerializesSharedLink)
{
    build("torus", 4);   // 2x2
    net->unicast(ctrlMsg(0, 1));
    net->unicast(ctrlMsg(0, 1));   // same link, same instant
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 2u);
    EXPECT_EQ(sinks[1]->received[0].at, 175u);
    // Second message waits one serialization slot.
    EXPECT_EQ(sinks[1]->received[1].at, 200u);
}

TEST_F(NetworkTest, CutThroughReservesWholePathAtSend)
{
    // Cut-through semantics: the sender walks its route against the
    // per-link busy-until cursors when it enters the network. A
    // message sent FIRST holds its downstream reservation even
    // against a later-sent message whose head would have reached the
    // shared link earlier.
    build("torus", 16);
    net->unicast(ctrlMsg(0, 2));   // two X hops: 0->1, 1->2
    net->unicast(ctrlMsg(1, 2));   // one hop: 1->2, sent same tick
    eq.run();
    // First message: head crosses 0->1 at 150, clears 1->2 at 300,
    // tail at 325. Second message finds 1->2 reserved until 175...
    // but its natural start (tick 0) is BEFORE the reservation was
    // usable — the cursor pushes it to 175: head 325, tail 350.
    ASSERT_EQ(sinks[2]->received.size(), 2u);
    EXPECT_EQ(sinks[2]->received[0].at, 325u);
    EXPECT_EQ(sinks[2]->received[1].at, 350u);
}

TEST_F(NetworkTest, UnicastCostsOneDeliveryEventPerMessage)
{
    // The whole point of cut-through routing: a multi-hop unicast
    // schedules exactly one event (its batched delivery flush), not
    // one continuation per hop.
    build("torus", 16);
    const std::uint64_t before = eq.scheduled();
    net->unicast(ctrlMsg(0, 10));   // 4 hops on the 4x4 torus
    EXPECT_EQ(eq.scheduled() - before, 1u);
    eq.run();
    EXPECT_EQ(sinks[10]->received.size(), 1u);
}

TEST_F(NetworkTest, UnlimitedBandwidthRemovesSerialization)
{
    NetworkParams p;
    p.unlimitedBandwidth = true;
    build("torus", 4, p);
    net->unicast(ctrlMsg(0, 1));
    net->unicast(ctrlMsg(0, 1));
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 2u);
    EXPECT_EQ(sinks[1]->received[0].at, 150u);
    EXPECT_EQ(sinks[1]->received[1].at, 150u);
}

TEST_F(NetworkTest, BroadcastReachesEveryoneIncludingSender)
{
    build("torus", 16);
    Message m = ctrlMsg(5, invalidNode);
    net->broadcast(m);
    eq.run();
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(sinks[static_cast<std::size_t>(i)]->received.size(),
                  1u)
            << "node " << i;
        EXPECT_TRUE(sinks[static_cast<std::size_t>(i)]
                        ->received[0].msg.isBroadcast);
    }
    // Sender sees its own copy locally, fast.
    EXPECT_EQ(sinks[5]->received[0].at, net->params().localDelay);
}

TEST_F(NetworkTest, BroadcastUsesSpanningTreeBandwidth)
{
    build("torus", 16);
    net->broadcast(ctrlMsg(0, invalidNode));
    eq.run();
    // 15 links x 8 bytes.
    EXPECT_EQ(net->traffic().totalByteLinks(), 15u * 8u);
}

TEST_F(NetworkTest, MulticastDeliversOnlyToDestinations)
{
    build("torus", 16);
    Message m = ctrlMsg(0, invalidNode);
    net->multicast(m, {1, 2, 9});
    eq.run();
    int total = 0;
    for (int i = 0; i < 16; ++i)
        total += static_cast<int>(
            sinks[static_cast<std::size_t>(i)]->received.size());
    EXPECT_EQ(total, 3);
    EXPECT_EQ(sinks[1]->received.size(), 1u);
    EXPECT_EQ(sinks[2]->received.size(), 1u);
    EXPECT_EQ(sinks[9]->received.size(), 1u);
}

TEST_F(NetworkTest, MulticastDedupesDestinations)
{
    build("torus", 16);
    net->multicast(ctrlMsg(0, invalidNode), {4, 4, 4});
    eq.run();
    EXPECT_EQ(sinks[4]->received.size(), 1u);
}

TEST_F(NetworkTest, OrderedBroadcastRequiresTree)
{
    build("torus", 16);
    EXPECT_THROW(net->broadcastOrdered(ctrlMsg(0, invalidNode)),
                 std::logic_error);
}

TEST_F(NetworkTest, OrderedBroadcastTotalOrder)
{
    build("tree", 16);
    // Two racing ordered broadcasts from opposite corners: every
    // node must observe them in the same (sequence) order.
    net->broadcastOrdered(ctrlMsg(0, invalidNode));
    net->broadcastOrdered(ctrlMsg(15, invalidNode));
    eq.run();
    std::vector<std::uint64_t> first_order;
    for (int i = 0; i < 16; ++i) {
        auto &rx = sinks[static_cast<std::size_t>(i)]->received;
        ASSERT_EQ(rx.size(), 2u) << "node " << i;
        std::vector<std::uint64_t> seqs{rx[0].msg.seq, rx[1].msg.seq};
        if (first_order.empty())
            first_order = seqs;
        EXPECT_EQ(seqs, first_order) << "node " << i;
        EXPECT_LT(rx[0].msg.seq, rx[1].msg.seq);
        EXPECT_LE(rx[0].at, rx[1].at);
    }
}

TEST_F(NetworkTest, OrderedBroadcastReachesSenderThroughRoot)
{
    build("tree", 16);
    net->broadcastOrdered(ctrlMsg(0, invalidNode));
    eq.run();
    ASSERT_EQ(sinks[0]->received.size(), 1u);
    // 4 link crossings, one store-and-forward at the ordering root
    // (it must receive the whole message before sequencing it), and
    // the tail at the endpoint: 600 + 25 + 25.
    EXPECT_EQ(sinks[0]->received[0].at, 4 * 150u + 25u + 25u);
}

TEST_F(NetworkTest, ManyOrderedBroadcastsStayOrderedUnderContention)
{
    build("tree", 8);
    for (int i = 0; i < 20; ++i)
        net->broadcastOrdered(
            ctrlMsg(static_cast<NodeId>(i % 8), invalidNode));
    eq.run();
    for (int n = 0; n < 8; ++n) {
        auto &rx = sinks[static_cast<std::size_t>(n)]->received;
        ASSERT_EQ(rx.size(), 20u);
        for (std::size_t i = 1; i < rx.size(); ++i)
            EXPECT_LT(rx[i - 1].msg.seq, rx[i].msg.seq);
    }
}

TEST_F(NetworkTest, OrderedBroadcastIsAtomicallyVisible)
{
    // Every node observes a given ordered broadcast at the same tick,
    // even when down-tree links are unevenly congested — the fan-out
    // is delivered at the latest per-link arrival. Traditional
    // snooping's sequential consistency depends on this: a requester
    // must not complete (via its own echo) while another node can
    // still read a stale copy it has not yet been told to invalidate.
    build("tree", 16);
    // Congest one out-leaf's links with data unicasts first.
    Message d = ctrlMsg(0, 15);
    d.hasData = true;
    d.cls = MsgClass::data;
    net->unicast(d);
    net->unicast(d);
    net->broadcastOrdered(ctrlMsg(3, invalidNode));
    eq.run();
    Tick seen = 0;
    for (int i = 0; i < 16; ++i) {
        auto &rx = sinks[static_cast<std::size_t>(i)]->received;
        ASSERT_FALSE(rx.empty()) << "node " << i;
        const Tick at = rx.back().at;   // the broadcast copy
        if (seen == 0)
            seen = at;
        EXPECT_EQ(at, seen) << "node " << i;
    }
}

TEST_F(NetworkTest, TrafficAccountingByClass)
{
    build("torus", 16);
    Message req = ctrlMsg(0, 4);
    net->unicast(req);
    Message data = ctrlMsg(4, 0);
    data.cls = MsgClass::data;
    data.hasData = true;
    net->unicast(data);
    eq.run();
    const TrafficStats &t = net->traffic();
    EXPECT_EQ(t.messagesOf(MsgClass::request), 1u);
    EXPECT_EQ(t.messagesOf(MsgClass::data), 1u);
    EXPECT_GT(t.byteLinksOf(MsgClass::data),
              t.byteLinksOf(MsgClass::request));
    EXPECT_EQ(t.deliveries, 2u);
}

TEST_F(NetworkTest, LatencyStatTracksDeliveries)
{
    build("torus", 16);
    net->unicast(ctrlMsg(0, 1));
    eq.run();
    EXPECT_EQ(net->traffic().latency.count(), 1u);
    EXPECT_DOUBLE_EQ(net->traffic().latency.mean(), 175.0);
}

} // namespace
} // namespace tokensim
