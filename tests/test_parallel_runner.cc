/**
 * @file
 * Determinism regression tests for the sharded experiment runner and
 * the simulation kernel underneath it: the same seed must produce
 * bit-identical statistics whether shards run serially, across worker
 * threads, or in a repeated invocation. This is the harness-level
 * analogue of the paper's decoupling claim — scheduling policy (which
 * thread runs a shard, in what order) must never leak into results.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"

namespace tokensim {
namespace {

/** A small but diverse spec matrix: protocol x topology x tokens. */
std::vector<ExperimentSpec>
smallMatrix()
{
    std::vector<ExperimentSpec> specs;
    struct Pt
    {
        ProtocolKind proto;
        const char *topo;
        int tokens;
    };
    const Pt pts[] = {
        {ProtocolKind::tokenB, "torus", 0},
        {ProtocolKind::tokenB, "tree", 0},
        {ProtocolKind::tokenB, "torus", 19},
        {ProtocolKind::tokenD, "torus", 0},
        {ProtocolKind::snooping, "tree", 0},
        {ProtocolKind::directory, "torus", 0},
        {ProtocolKind::hammer, "torus", 0},
    };
    for (const Pt &p : pts) {
        SystemConfig cfg;
        cfg.numNodes = 8;
        cfg.topology = p.topo;
        cfg.protocol = p.proto;
        cfg.workload = "uniform";
        cfg.workload.uniformBlocks = 128;
        cfg.proto.tokensPerBlock = p.tokens;
        cfg.opsPerProcessor = 300;
        cfg.seed = 23;
        specs.push_back(ExperimentSpec{cfg, 2, protocolName(p.proto)});
    }
    return specs;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    // Exact comparisons on purpose: determinism means bit-identical
    // doubles, not "close".
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.cyclesPerTransaction, b.cyclesPerTransaction);
    EXPECT_EQ(a.cyclesPerTransactionStddev,
              b.cyclesPerTransactionStddev);
    EXPECT_EQ(a.bytesPerMiss, b.bytesPerMiss);
    for (std::size_t c = 0; c < numMsgClasses; ++c)
        EXPECT_EQ(a.bytesPerMissByClass[c], b.bytesPerMissByClass[c]);
    EXPECT_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.cacheToCacheFrac, b.cacheToCacheFrac);
    EXPECT_EQ(a.avgMissLatencyNs, b.avgMissLatencyNs);
    EXPECT_EQ(a.pctNotReissued, b.pctNotReissued);
    EXPECT_EQ(a.pctReissuedOnce, b.pctReissuedOnce);
    EXPECT_EQ(a.pctReissuedMore, b.pctReissuedMore);
    EXPECT_EQ(a.pctPersistent, b.pctPersistent);
    // The shared helper is the authoritative gate: it covers any
    // field a future PR adds without touching the list above.
    EXPECT_TRUE(identicalResults(a, b));
}

void
expectRawIdentical(const System::Results &a, const System::Results &b)
{
    // Whole-registry equality is the authoritative raw gate (every
    // metric, bit-exact); the spot checks keep failures readable.
    EXPECT_EQ(a.runtimeTicks(), b.runtimeTicks());
    EXPECT_EQ(a.ops(), b.ops());
    EXPECT_EQ(a.misses(), b.misses());
    EXPECT_EQ(a.avgMissLatencyTicks(), b.avgMissLatencyTicks());
    EXPECT_EQ(a.totalLinkBytes(), b.totalLinkBytes());
    EXPECT_TRUE(a.metrics == b.metrics);
}

TEST(KernelDeterminism, SameSeedBitIdenticalRawStats)
{
    // Two Systems from the same config must agree on every counter —
    // this pins down the bucketed event queue and the batched network
    // delivery path (any nondeterministic ordering would skew stats).
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "oltp";
    cfg.opsPerProcessor = 500;
    cfg.seed = 77;
    expectRawIdentical(runOnce(cfg, 77), runOnce(cfg, 77));
}

TEST(KernelDeterminism, DifferentSeedsDiffer)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "oltp";
    cfg.opsPerProcessor = 500;
    const System::Results a = runOnce(cfg, 77);
    const System::Results b = runOnce(cfg, 78);
    EXPECT_NE(a.runtimeTicks(), b.runtimeTicks());
}

TEST(SystemReuse, ResetRunIsBitIdenticalToFreshConstructRun)
{
    // The reusable-System path (System::reset + run) must produce raw
    // statistics bit-identical to destroying and rebuilding the
    // System — across multiple seeds AND across configs that share a
    // structural shape but differ in runtime knobs.
    SystemConfig a;
    a.numNodes = 8;
    a.protocol = ProtocolKind::tokenB;
    a.workload = "uniform";
    a.workload.uniformBlocks = 128;
    a.opsPerProcessor = 300;
    a.seed = 5;

    SystemConfig b = a;   // same shape, different runtime knobs
    b.workload = "oltp";
    b.opsPerProcessor = 200;
    b.net.unlimitedBandwidth = true;
    b.proto.maxReissues = 2;
    b.seed = 40;

    std::unique_ptr<System> reused;
    for (const SystemConfig &cfg : {a, b}) {
        for (std::uint64_t seed : {cfg.seed, cfg.seed + 1}) {
            SCOPED_TRACE(cfg.workload.name() + "/" +
                         std::to_string(seed));
            expectRawIdentical(runOnceReusing(reused, cfg, seed),
                               runOnce(cfg, seed));
        }
    }
    // The single System was reused throughout (b shares a's shape).
    ASSERT_NE(reused, nullptr);
}

TEST(SystemReuse, ShapeMismatchRejectsReset)
{
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = "uniform";
    cfg.opsPerProcessor = 10;
    System sys(cfg);

    SystemConfig other = cfg;
    other.numNodes = 8;
    EXPECT_FALSE(sys.reset(other));

    other = cfg;
    other.protocol = ProtocolKind::directory;
    EXPECT_FALSE(sys.reset(other));

    other = cfg;
    other.topology = "tree";
    EXPECT_FALSE(sys.reset(other));

    other = cfg;
    other.l2.sizeBytes /= 2;
    EXPECT_FALSE(sys.reset(other));

    // Runtime-only differences are accepted.
    other = cfg;
    other.seed = 99;
    other.net.unlimitedBandwidth = true;
    other.workload = "hot";
    EXPECT_TRUE(sys.reset(other));
    sys.run();
}

TEST(ParallelRunner, MatchesSerialBitIdentical)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();

    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));

    ParallelRunner runner(ParallelRunnerOptions{4});
    EXPECT_EQ(runner.threads(), 4);
    const std::vector<ExperimentResult> parallel = runner.run(specs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].label);
        expectIdentical(parallel[i], serial[i]);
    }
}

TEST(ParallelRunner, RepeatedRunsIdentical)
{
    const std::vector<ExperimentSpec> specs = smallMatrix();
    ParallelRunner runner(ParallelRunnerOptions{3});
    const std::vector<ExperimentResult> a = runner.run(specs);
    const std::vector<ExperimentResult> b = runner.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(specs[i].label);
        expectIdentical(a[i], b[i]);
    }
}

TEST(ParallelRunner, SingleSpecSeedsShardAcrossThreads)
{
    // One design point, many seeds: the per-seed shards spread over
    // workers and must still merge exactly like the serial loop.
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = ProtocolKind::tokenM;
    cfg.workload = "uniform";
    cfg.workload.uniformBlocks = 64;
    cfg.opsPerProcessor = 250;
    cfg.seed = 5;
    const ExperimentSpec spec{cfg, 5, "tokenM"};

    const ExperimentResult serial = runExperiment(cfg, 5, "tokenM");
    const ExperimentResult parallel =
        ParallelRunner(ParallelRunnerOptions{4}).run(spec);
    expectIdentical(parallel, serial);
    EXPECT_GT(parallel.ops, 0u);
}

TEST(ParallelRunner, ThreadCountResolvesToAtLeastOne)
{
    EXPECT_GE(ParallelRunner().threads(), 1);
    EXPECT_EQ(ParallelRunner(ParallelRunnerOptions{7}).threads(), 7);
}

TEST(ParallelRunner, ZeroSeedsMatchesSerialZeroSeeds)
{
    // seeds <= 0 must mean "run nothing" in both runners, so the
    // bit-identical contract holds even for this degenerate input.
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.opsPerProcessor = 50;
    const ExperimentSpec spec{cfg, 0, "empty"};
    const ExperimentResult serial = runExperiment(cfg, 0, "empty");
    const ExperimentResult parallel =
        ParallelRunner(ParallelRunnerOptions{2}).run(spec);
    EXPECT_EQ(parallel.ops, 0u);
    expectIdentical(parallel, serial);
}

TEST(ParallelRunner, EmptySpecListIsFine)
{
    EXPECT_TRUE(
        ParallelRunner().run(std::vector<ExperimentSpec>{}).empty());
}

TEST(TraceRoundTrip, ReplayMatchesLiveRunSeriallyAndInParallel)
{
    // Record a live generator run, then replay the trace through the
    // serial loop and through the ParallelRunner at several thread
    // counts: every result must be bit-identical to the live run.
    // This welds the trace subsystem onto the determinism contract —
    // a replayed artifact is exactly as reproducible as the
    // generator, no matter how the shards are scheduled.
    std::filesystem::create_directories("test_traces");
    const std::string path = "test_traces/runner_round_trip.trace";

    SystemConfig live;
    live.numNodes = 8;
    live.protocol = ProtocolKind::tokenB;
    live.workload = "oltp";
    live.opsPerProcessor = 400;
    live.seed = 31;
    live.recordTrace = path;
    const ExperimentResult live_result = aggregateResults(
        {runOnce(live, live.seed)}, "live");

    SystemConfig replay = live;
    replay.recordTrace.clear();
    replay.workload = WorkloadSpec::trace(path);
    const ExperimentSpec spec{replay, 1, "replay"};

    const ExperimentResult serial =
        runExperiment(replay, 1, "replay");
    expectIdentical(serial, live_result);

    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const ExperimentResult parallel =
            ParallelRunner(ParallelRunnerOptions{threads}).run(spec);
        expectIdentical(parallel, live_result);
        expectIdentical(parallel, serial);
    }
}

TEST(TraceRoundTrip, MixedPresetAndTraceSweepIsDeterministic)
{
    // A sweep whose specs alternate generator presets and trace
    // replay exercises the worker-arena reset path across
    // preset↔trace switches; parallel must still match serial.
    std::filesystem::create_directories("test_traces");
    const std::string path = "test_traces/runner_mixed.trace";

    SystemConfig rec;
    rec.numNodes = 8;
    rec.protocol = ProtocolKind::tokenB;
    rec.workload = "producer-consumer";
    rec.opsPerProcessor = 300;
    rec.seed = 11;
    rec.recordTrace = path;
    runOnce(rec, rec.seed);

    std::vector<ExperimentSpec> specs;
    for (const char *preset : {"uniform", "lock-ping"}) {
        SystemConfig cfg = rec;
        cfg.recordTrace.clear();
        cfg.workload = preset;
        specs.push_back(ExperimentSpec{cfg, 2, preset});
    }
    SystemConfig cfg = rec;
    cfg.recordTrace.clear();
    cfg.workload = WorkloadSpec::trace(path);
    specs.push_back(ExperimentSpec{cfg, 2, "replay"});

    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.seeds, s.label));
    const std::vector<ExperimentResult> parallel =
        ParallelRunner(ParallelRunnerOptions{3}).run(specs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].label);
        expectIdentical(parallel[i], serial[i]);
    }
}

TEST(ParallelRunner, ShardExceptionPropagates)
{
    // An impossible topology makes System construction throw inside a
    // worker; the runner must surface it on the calling thread.
    SystemConfig cfg;
    cfg.topology = "moebius";
    cfg.opsPerProcessor = 10;
    std::vector<ExperimentSpec> specs{ExperimentSpec{cfg, 2, "bad"}};
    EXPECT_THROW(ParallelRunner(ParallelRunnerOptions{2}).run(specs),
                 std::exception);
}

} // namespace
} // namespace tokensim
